"""Bench: trigger-policy sweep (monitoring overhead vs adaptation lag)."""

from repro.experiments import fig_triggers


def test_fig_triggers(once):
    result = once(fig_triggers.run_fig_triggers)
    print("\n" + fig_triggers.render(result))
    fixed = result.row("fixed-interval", "none")
    entropy = result.row("entropy-percentile", "none")
    # The percentile-sampling budget is bounded (82 probes per sampled
    # step at eps=0.15) and rank-count independent, so the trigger's
    # monitor cost lands well under the every-step full snapshots.
    assert entropy.monitor_cost <= 0.50 * fixed.monitor_cost
    # ... at equal adaptation quality: Eq.-6 end-to-end currency stays
    # within 5% of the every-step baseline.
    assert (
        abs(entropy.end_to_end_seconds - fixed.end_to_end_seconds)
        <= 0.05 * fixed.end_to_end_seconds
    )
    # The baseline never lags (it samples every step); the trigger's
    # staleness stays bounded by its max-interval fallback.
    assert fixed.mean_lag_steps == 0.0
    assert entropy.mean_lag_steps < 2.0
    # Free-rider policies (indicators the driver already computes) spend
    # zero sampling budget.
    assert result.row("imbalance", "none").budget_used == 0
    assert result.row("staging-pressure", "none").budget_used == 0
    # Under the blackout scenario every policy still completes the run.
    for policy in fig_triggers.POLICY_NAMES:
        assert result.row(policy, "blackout").end_to_end_seconds > 0
