"""Bench: the typed event kernel at 64K-1M virtual ranks.

Two claims from ROADMAP item 4 are enforced here, on top of the PR 7
profiler baseline:

- **Fig-scale at 64K ranks under the budget ceilings.**  The quickstart
  workload is weak-scaled to ``REPRO_KERNEL_RANKS`` virtual ranks
  (default 65536): cells and cores grow proportionally so per-rank load
  matches the calibrated 1024-rank baseline that ``benchmarks/
  budgets.json`` pins.  The profiled run must respect **every** budget
  ceiling, use only registered spans, and retain >= 90% wall-time
  attribution in the profiler -- the same bar ``bench_profile.py`` sets
  for the canonical workload.
- **Engine throughput scales to 1M ranks.**  A pure engine-layer stress
  (no workflow, no adapter) batch-schedules per-rank compute and
  transfer bursts with ``EventKernel.schedule_batch`` and drains them
  with batched dispatch, sweeping 64K -> 1M ranks.  Each scale must
  sustain a conservative events/second floor, and the whole sweep must
  complete in seconds -- the array-backed heap's ``pop_run`` extracts a
  million-record burst with one lexsort, not a million Python sifts.

``REPRO_KERNEL_RANKS`` caps both tests (the CI kernel-smoke job sets it
low); the sweep also prints per-scale events/sec so BENCH snapshots of
this file are comparable across revisions.
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.hpc.kernel import COMPUTE, TRANSFER, EventKernel
from repro.hpc.systems import titan
from repro.observability import (
    Profiler,
    check_budgets,
    load_budgets,
    render_budget_report,
    unregistered_spans,
)
from repro.workflow import Mode, WorkflowConfig
from repro.workflow.driver import CoupledWorkflow
from repro.workload import SyntheticAMRConfig, synthetic_amr_trace

BUDGETS_PATH = Path(__file__).parent / "budgets.json"

#: Rank ceiling for the whole file.  The CI kernel-smoke job reduces it;
#: the floor keeps the weak-scaling arithmetic (cells and cores
#: proportional to ranks) meaningful.
_RANKS = max(1024, int(os.environ.get("REPRO_KERNEL_RANKS", "1048576")))

#: The budget-checked fig-scale rank count.  Budgets are calibrated for
#: per-step work, which is rank-independent on the event path but not on
#: the vectorized per-rank path (``workload.build`` grows with ranks),
#: so the ceilings are asserted at the acceptance scale, not at 1M.
_BUDGET_RANKS = min(_RANKS, 65536)

#: The engine-stress sweep: every power-of-4 scale up to ``_RANKS``.
_SWEEP = tuple(r for r in (65536, 262144, 1048576) if r <= _RANKS) or (_RANKS,)

#: Rounds of per-rank compute+transfer bursts per engine-stress scale.
_ROUNDS = 4

#: Conservative sustained-throughput floor (events/second) for the
#: engine stress -- an order of magnitude under measured rates, so only
#: a real batching regression (e.g. pop_run falling back to per-record
#: sifts) trips it, not a noisy CI box.
_MIN_EVENTS_PER_SEC = 50_000


def _scaled_quickstart(nranks: int, steps: int, seed: int):
    """The canonical quickstart workload, weak-scaled to ``nranks``.

    Cells, simulation cores and staging cores all grow with the rank
    count (keeping the 1024:64 sim:staging core ratio), so per-rank load
    -- and therefore the per-step event pattern the budgets were
    calibrated against -- matches the 1024-rank baseline.
    """
    scale = nranks / 1024
    trace = synthetic_amr_trace(
        SyntheticAMRConfig(
            steps=steps,
            nranks=nranks,
            base_cells=5e7 * scale,
            sim_cost_per_cell=8.0,
            growth=2.0,
            analysis_growth_exponent=0.5,
            seed=seed,
        ),
        name=f"trace-kernel-{nranks}",
    )
    config = WorkflowConfig(
        mode=Mode("global"),
        sim_cores=nranks,
        staging_cores=max(64, nranks // 16),
        spec=titan(),
        analysis_cost_per_cell=0.45,
    )
    return config, trace


def test_kernel_fig_scale_under_budgets(once):
    """A >= 64K-rank workflow run in seconds, within every ceiling."""
    manifest = load_budgets(BUDGETS_PATH)
    workload = manifest["workload"]
    profiler = Profiler()
    state = {}

    def _profiled_run():
        started = time.perf_counter()
        with profiler.span("workload.build"):
            config, trace = _scaled_quickstart(
                _BUDGET_RANKS, workload["steps"], workload["seed"]
            )
        with profiler.span("workflow.setup"):
            workflow = CoupledWorkflow(config, trace, profiler=profiler)
        result = workflow.run()
        state["wall"] = time.perf_counter() - started
        state["events"] = workflow.sim.kernel.counters.total_processed
        return result

    result = once(_profiled_run)
    attribution = profiler.total_seconds() / state["wall"]
    print(
        f"\n{_BUDGET_RANKS} virtual ranks: wall={state['wall']:.3f}s  "
        f"events={state['events']}  "
        f"end-to-end={result.end_to_end_seconds:.1f} sim-s  "
        f"attribution={attribution:.1%}"
    )
    print(render_budget_report(profiler, manifest))

    assert state["events"] > 0
    assert unregistered_spans(profiler) == []
    violations = check_budgets(profiler, manifest)
    assert not violations, "; ".join(v.describe() for v in violations)
    assert attribution >= 0.90, (
        f"profiler attributes only {attribution:.1%} of the "
        f"{state['wall']:.3f}s wall time (floor: 90%)"
    )


def _engine_stress(nranks: int) -> tuple[EventKernel, float]:
    """Drain ``_ROUNDS`` per-rank compute+transfer bursts, batched.

    Every round batch-schedules one compute and one transfer event per
    virtual rank, jittered over four distinct timestamps, then drains
    the heap with batched dispatch.  Returns the kernel (for its
    counters) and the wall seconds spent.
    """
    kernel = EventKernel(rng=42)
    sink = []
    kernel.on(COMPUTE, sink.append)
    kernel.on(TRANSFER, sink.append)
    ranks = np.arange(nranks)
    started = time.perf_counter()
    for _ in range(_ROUNDS):
        base = kernel.now
        jitter = np.floor(kernel.rng.random(nranks) * 4)
        kernel.schedule_batch(base + 1.0 + jitter, COMPUTE, ranks)
        kernel.schedule_batch(base + 2.0 + jitter, TRANSFER, ranks)
        kernel.run()
    wall = time.perf_counter() - started
    assert len(sink) == kernel.counters.batches
    return kernel, wall


def test_kernel_engine_scaling_sweep(once):
    """Batched dispatch sustains the throughput floor at every scale."""

    def _sweep():
        rows = []
        for nranks in _SWEEP:
            kernel, wall = _engine_stress(nranks)
            processed = kernel.counters.total_processed
            rows.append(
                (nranks, processed, wall, processed / wall,
                 kernel.counters.batches, kernel.heap.peak_size)
            )
        return rows

    rows = once(_sweep)
    print(f"\n{'ranks':>9} {'events':>10} {'wall (s)':>9} "
          f"{'events/s':>11} {'batches':>8} {'peak heap':>10}")
    for nranks, processed, wall, rate, batches, peak in rows:
        print(f"{nranks:>9,} {processed:>10,} {wall:>9.3f} "
              f"{rate:>11,.0f} {batches:>8} {peak:>10,}")

    for nranks, processed, wall, rate, batches, peak in rows:
        assert processed == 2 * _ROUNDS * nranks
        assert peak == 2 * nranks
        assert rate >= _MIN_EVENTS_PER_SEC, (
            f"{nranks} ranks: {rate:,.0f} events/s is under the "
            f"{_MIN_EVENTS_PER_SEC:,} floor"
        )
