"""Bench: the user-preference design space (Section 3's objectives)."""

from repro.core.preferences import Objective
from repro.experiments import objectives


def test_objectives_pareto(once):
    results = once(objectives.run_objectives)
    print("\n" + objectives.render(results))
    tts = results[Objective.MINIMIZE_TIME_TO_SOLUTION]
    movement = results[Objective.MINIMIZE_DATA_MOVEMENT]
    utilization = results[Objective.MAXIMIZE_RESOURCE_UTILIZATION]

    # Each objective wins (or ties within 1%) its own metric.  Note the
    # movement objective can incidentally match time-to-solution here:
    # with the largest hinted reduction applied, all-in-situ analysis is
    # nearly free -- the coupling Fig. 10's discussion points at.
    best_e2e = min(r.end_to_end_seconds for r in results.values())
    assert tts.end_to_end_seconds <= best_e2e * 1.01
    assert movement.data_moved_bytes == min(
        r.data_moved_bytes for r in results.values()
    )
    assert utilization.utilization_efficiency == max(
        r.utilization_efficiency for r in results.values()
    )
    # The movement objective's signature: (almost) nothing crosses the
    # network.
    assert movement.data_moved_bytes < 0.2 * tts.data_moved_bytes
