"""Benchmark harness configuration.

Every ``bench_fig*`` / ``bench_table*`` benchmark regenerates one figure
or table of the paper and *prints* the reproduced rows/series (run pytest
with ``-s`` to see them), while pytest-benchmark records the wall time of
the regeneration.  Experiment runs are deterministic, so a single round
is meaningful.

At the end of a benchmark session the per-figure wall times are written
to ``benchmarks/BENCH_<git-rev>.json`` -- a versioned perf snapshot that
can be committed alongside the change that produced it, so perf drift is
reviewable history rather than folklore.

When ``bench_profile.py`` ran, the snapshot also carries a ``profile``
section (schema ``repro.bench/2``): the span dump of the canonical
profile workload plus the workload parameters, checked against
``benchmarks/budgets.json``'s per-span-path ceilings and diffable with
``repro bench-diff``.
"""

import json
import os
import subprocess
import time
from pathlib import Path

import pytest

# Benchmark sessions share the on-disk experiment cache under .cache/
# (see docs/performance.md).  A first (cold) session measures real solver
# cost; re-running the session measures the memoized hot path.  Explicit
# REPRO_CACHE_DIR / REPRO_NO_CACHE settings win over this default.
os.environ.setdefault("REPRO_CACHE_DIR", str(Path(__file__).parent.parent / ".cache"))


def bench_jobs() -> int:
    """Worker count for sweep benchmarks (REPRO_BENCH_JOBS, default 1).

    Recorded in the ``BENCH_<rev>.json`` snapshot so wall times measured
    at different parallelism are never compared as like-for-like.
    """
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    except ValueError:
        return 1


#: Wall time per benchmark (test name -> seconds), filled by run_once.
_WALL: dict[str, float] = {}

#: The canonical workload's span profile, stashed by ``bench_profile.py``
#: (``{"workload": {...}, "spans": Profiler.dump()}``); embedded in the
#: snapshot's ``profile`` section when present.
_PROFILE: dict = {}


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except OSError:
        return "unknown"


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with one warm round (experiments are deterministic)."""
    started = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    _WALL[benchmark.name] = time.perf_counter() - started
    return result


@pytest.fixture()
def once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run


def pytest_sessionfinish(session, exitstatus):
    """Write the perf snapshot when at least one benchmark ran."""
    if not _WALL:
        return
    rev = _git_rev()
    payload = {
        "schema": "repro.bench/2",
        "git_rev": rev,
        "jobs": bench_jobs(),
        "figures": {name: round(seconds, 4) for name, seconds in sorted(_WALL.items())},
    }
    if _PROFILE:
        payload["profile"] = _PROFILE
    path = Path(__file__).parent / f"BENCH_{rev}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
