"""Benchmark harness configuration.

Every ``bench_fig*`` / ``bench_table*`` benchmark regenerates one figure
or table of the paper and *prints* the reproduced rows/series (run pytest
with ``-s`` to see them), while pytest-benchmark records the wall time of
the regeneration.  Experiment runs are deterministic, so a single round
is meaningful.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with one warm round (experiments are deterministic)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
