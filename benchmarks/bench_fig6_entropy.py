"""Bench: regenerate Figure 6 (entropy-based down-sampling fidelity)."""

from repro.experiments import fig6_entropy


def test_fig6_entropy(once):
    result = once(fig6_entropy.run_fig6)
    print("\n" + fig6_entropy.render(result))
    # Entropies span a wide range (paper quotes 5.14-9.85 at the finest level).
    spread = result.entropies.max() - result.entropies.min()
    assert spread > 2.0
    # A meaningful share of blocks is reduced (but never the feature-bearing
    # shock blocks), saving a large share of bytes -- the blast's ambient
    # region dominates the volume.
    assert 0.3 <= result.reduced_fraction <= 0.97
    assert result.bytes_saved_fraction > 0.15
    # The core claim: reducing low-entropy blocks loses far less information
    # than the same reduction would lose on high-entropy blocks...
    assert result.low_entropy_error < 0.5 * result.high_entropy_error_if_reduced
    # ...and the isosurface structure survives (neither destroyed nor
    # wildly inflated by reconstruction aliasing).
    assert 0.85 < result.area_ratio < 1.35
