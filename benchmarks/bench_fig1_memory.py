"""Bench: regenerate Figure 1 (peak-memory distribution, Polytropic Gas).

Checks the figure's two claims: erratic (bursty) memory growth and strong
cross-rank imbalance.
"""

from repro.experiments import fig1_memory


def test_fig1_memory(once):
    result = once(fig1_memory.run_fig1, 50)
    print("\n" + fig1_memory.render(result))
    # Growth: the refined region expands over the run.
    assert result.peak[-5:].mean() > result.peak[:5].mean()
    # Erratic: increments arrive in bursts (regrids), not smoothly.
    assert result.growth_erraticness > 1.0
    # Imbalance: the peak rank holds several times the median footprint.
    assert result.imbalance.mean() > 2.0
