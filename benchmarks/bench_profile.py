"""Bench: the span profiler's hot-path budgets and disabled-path overhead.

Two guarantees are enforced here, per ISSUE and ROADMAP item 4:

- **Budgets.**  The canonical profile workload (the same quickstart
  replay ``python -m repro profile`` runs) is profiled and every
  per-span-path ceiling of ``benchmarks/budgets.json`` is asserted, so
  a hot-path regression fails the bench session with the offending span
  named.  The collected span dump is stashed for ``conftest`` to embed
  as the ``profile`` section of ``BENCH_<rev>.json`` (schema
  ``repro.bench/2``), making span-level drift diffable with ``repro
  bench-diff``.
- **Overhead.**  Replaying the instrumented quickstart (trace
  synthesis + construction + run, exactly what ``python -m repro
  profile`` times) must cost < 5% over the uninstrumented replay,
  keeping the ``profiler=`` injection honest about its near-zero
  disabled cost and small enabled cost.  Methodology, chosen for
  noisy single-vCPU CI boxes: per-round CPU time
  (``time.process_time``, immune to scheduler steal), instrumented and
  plain replays alternated so machine drift hits both alike, a
  trimmed-mean ratio (empirically far more stable here than min-of-N,
  which chases rare turbo windows), and up to three independent
  measurement passes -- the assert fails only if *every* pass lands
  above the ceiling, so a single noise burst cannot fail the session
  while a real regression (all passes high) still does.
"""

import time
from pathlib import Path

from benchmarks import conftest

from repro.__main__ import _quickstart
from repro.observability import (
    Profiler,
    check_budgets,
    load_budgets,
    render_budget_report,
    unregistered_spans,
)
from repro.workflow.driver import CoupledWorkflow

BUDGETS_PATH = Path(__file__).parent / "budgets.json"

#: Alternated rounds per variant per measurement pass; the trimmed
#: mean over these damps both scheduler noise and machine drift.
_ROUNDS = 40

#: Independent measurement passes; the assert needs only one to land
#: under the ceiling.
_PASSES = 3

#: The canonical quickstart depth -- the workload the acceptance
#: criterion names (and ``budgets.json`` pins).
_OVERHEAD_STEPS = 20


def _replay(steps: int, profiler=None) -> float:
    """CPU seconds to build, construct and run one quickstart workflow.

    The full instrumented surface -- ``workload.build`` and
    ``workflow.setup`` spans included -- so the ratio measures exactly
    what ``python -m repro profile`` instruments.
    """
    started = time.process_time()
    if profiler is not None:
        with profiler.span("workload.build"):
            config, trace = _quickstart("global", steps, 42)
        with profiler.span("workflow.setup"):
            workflow = CoupledWorkflow(config, trace, profiler=profiler)
    else:
        config, trace = _quickstart("global", steps, 42)
        workflow = CoupledWorkflow(config, trace)
    workflow.run()
    return time.process_time() - started


def _trimmed_mean(samples: list) -> float:
    """Mean of the central half: outlier-robust, more efficient than
    the median."""
    ordered = sorted(samples)
    drop = len(ordered) // 4
    core = ordered[drop:len(ordered) - drop]
    return sum(core) / len(core)


def test_profile_budgets(once):
    """The canonical workload satisfies every budget ceiling."""
    manifest = load_budgets(BUDGETS_PATH)
    workload = manifest["workload"]
    profiler = Profiler()

    def _profiled_run():
        with profiler.span("workload.build"):
            config, trace = _quickstart(
                workload["mode"], workload["steps"], workload["seed"]
            )
        with profiler.span("workflow.setup"):
            workflow = CoupledWorkflow(config, trace, profiler=profiler)
        return workflow.run()

    once(_profiled_run)
    print("\n" + render_budget_report(profiler, manifest))

    assert unregistered_spans(profiler) == []
    violations = check_budgets(profiler, manifest)
    assert not violations, "; ".join(v.describe() for v in violations)

    # Hand the span dump to the session snapshot (BENCH_<rev>.json).
    conftest._PROFILE.clear()
    conftest._PROFILE.update(
        {"workload": dict(workload), "spans": profiler.dump()}
    )


def _overhead_pass() -> float:
    """One measurement pass: the trimmed-mean overhead ratio."""
    plains, profiled = [], []
    for i in range(_ROUNDS):
        # Alternate which variant goes first so slow drift (thermal,
        # steal) is shared evenly instead of biasing one side.
        if i % 2 == 0:
            plains.append(_replay(_OVERHEAD_STEPS))
            profiled.append(_replay(_OVERHEAD_STEPS, profiler=Profiler()))
        else:
            profiled.append(_replay(_OVERHEAD_STEPS, profiler=Profiler()))
            plains.append(_replay(_OVERHEAD_STEPS))
    return _trimmed_mean(profiled) / _trimmed_mean(plains) - 1.0


def test_profiler_overhead_under_5_percent(once):
    """Instrumented quickstart costs < 5% CPU over the uninstrumented one."""
    # Warm both paths (imports, allocator) before timing anything.
    _replay(_OVERHEAD_STEPS)
    _replay(_OVERHEAD_STEPS, profiler=Profiler())

    def _measure():
        estimates = []
        for n in range(_PASSES):
            estimates.append(_overhead_pass())
            print(f"\npass {n}: overhead {estimates[-1] * 100:+.2f}%")
            if estimates[-1] < 0.05:
                break
        return estimates

    estimates = once(_measure)
    best = min(estimates)
    print(f"best of {len(estimates)} pass(es): {best * 100:+.2f}%")
    assert best < 0.05, (
        f"profiler overhead exceeded the 5% budget in every measurement "
        f"pass: {', '.join(f'{e * 100:+.2f}%' for e in estimates)}"
    )
