"""Bench: regenerate Figure 8 (data movement, in-transit vs adaptive)."""

from repro.experiments import fig8_data_movement


def test_fig8_data_movement(once):
    rows = once(fig8_data_movement.run_fig8)
    print("\n" + fig8_data_movement.render(rows))
    for row in rows:
        # Adaptive placement keeps a share of steps in-situ, cutting the
        # aggregated transfer volume (paper: 39-50%).
        assert row.adaptive_bytes < row.intransit_bytes
        assert row.movement_cut > 10.0
