"""Bench: regenerate Figure 8 (data movement, in-transit vs adaptive)."""

from repro.experiments import fig8_data_movement
from repro.experiments.common import run_mode_at_scale


def test_fig8_data_movement(once):
    # Figure 8 shares run_mode_at_scale with Figures 10/11, whose benches
    # run first (alphabetical file order) and warm its lru_cache -- which
    # made this bench report ~0s.  Clear it so the figure's real cost is
    # measured.
    run_mode_at_scale.cache_clear()
    rows = once(fig8_data_movement.run_fig8)
    print("\n" + fig8_data_movement.render(rows))
    for row in rows:
        # Adaptive placement keeps a share of steps in-situ, cutting the
        # aggregated transfer volume (paper: 39-50%).
        assert row.adaptive_bytes < row.intransit_bytes
        assert row.movement_cut > 10.0
