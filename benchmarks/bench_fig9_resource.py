"""Bench: regenerate Figure 9 + Eq. 12 (adaptive in-transit allocation)."""

from repro.experiments import fig9_resource


def test_fig9_resource(once):
    result = once(fig9_resource.run_fig9)
    print("\n" + fig9_resource.render(result))
    adaptive = result.adaptive_series
    # Start small: "only around 50 in-transit cores are needed".
    assert adaptive[:4].mean() < 100
    # Growth: refinement demands more staging cores later in the run.
    assert adaptive[-10:].mean() > 1.5 * adaptive[:4].mean()
    # Never exceeds the 256-core preallocation.
    assert adaptive.max() <= fig9_resource.STAGING_CORES
    # Eq. 12: utilization efficiency strongly improved (paper: 87% vs 55%).
    assert result.adaptive.utilization_efficiency > 0.75
    assert result.static.utilization_efficiency < 0.65
    assert (result.adaptive.utilization_efficiency
            > result.static.utilization_efficiency + 0.2)
    # The saving does not cost time-to-solution (same within 10%).
    assert (result.adaptive.end_to_end_seconds
            <= result.static.end_to_end_seconds * 1.10)
