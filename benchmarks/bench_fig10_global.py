"""Bench: regenerate Figure 10 (global cross-layer vs local adaptation)."""

from repro.experiments import fig10_global


def test_fig10_global(once):
    rows = once(fig10_global.run_fig10)
    print("\n" + fig10_global.render(rows))
    for row in rows:
        # Global adaptation cuts overhead further at every scale
        # (paper: 52-98%).
        assert row.global_.overhead_seconds < row.local.overhead_seconds
        assert row.overhead_cut > 30.0
        # All three layers act: factors were applied...
        assert any(f > 1 for f in row.global_.factors_used())
        # ...and the staging allocation varied from the static preallocation.
        assert row.global_.staging_cores_series().min() < row.global_.staging_total_cores
