"""Microbenchmarks of the substrate kernels.

Not paper figures -- these keep the performance of the building blocks
visible: the event kernel's throughput, the fluid-flow network, a real
AMR Godunov step, isosurface extraction and block entropy.
"""

import numpy as np

from repro.amr.box import Box
from repro.amr.godunov import PolytropicGasSolver
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.stepper import AMRStepper
from repro.analysis.entropy import block_entropies
from repro.analysis.isosurface import extract_isosurface
from repro.hpc.event import Simulator
from repro.hpc.network import Network
from repro.hpc.resources import Resource


def test_event_kernel_throughput(benchmark):
    """Thousands of interleaved timers through the event loop."""

    def run():
        sim = Simulator()

        def ticker(sim, n):
            for _ in range(n):
                yield sim.timeout(1.0)

        for _ in range(100):
            sim.process(ticker(sim, 100))
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result == 100.0


def test_resource_contention(benchmark):
    """A thousand jobs through a contended 8-way resource."""

    def run():
        sim = Simulator()
        cores = Resource(sim, capacity=8)

        def job(sim):
            yield cores.request(1)
            yield sim.timeout(1.0)
            cores.release(1)

        for _ in range(1000):
            sim.process(job(sim))
        sim.run()
        return sim.now

    assert benchmark(run) == 125.0


def test_network_flow_churn(benchmark):
    """Hundreds of overlapping flows with max-min fair sharing."""

    def run():
        sim = Simulator()
        net = Network(sim)
        net.add_link("a", "b", bandwidth=100.0)

        def source(sim):
            for i in range(50):
                done = net.transfer("a", "b", nbytes=10.0 + i)
                yield sim.timeout(0.05)
                del done

        for _ in range(6):
            sim.process(source(sim))
        sim.run()
        return net.total_bytes_moved

    moved = benchmark(run)
    assert moved > 0


def test_amr_godunov_step(benchmark):
    """One full AMR step of the 3-D gas solver (2 levels, 32^3 base)."""
    hierarchy = AMRHierarchy(
        Box((0, 0, 0), (31, 31, 31)), ncomp=5, nghost=2, max_levels=2,
        max_box_size=16, dx0=1 / 32, periodic=True,
    )
    stepper = AMRStepper(hierarchy, PolytropicGasSolver(tag_threshold=0.05),
                         regrid_interval=4)
    stats = benchmark(stepper.step)
    assert stats.total_cells >= 32**3


def test_isosurface_extraction(benchmark):
    """Marching tetrahedra over a 64^3 sphere field."""
    n = 64
    ax = (np.arange(n) + 0.5) / n - 0.5
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    field = 0.3 - np.sqrt(x * x + y * y + z * z)
    verts, tris = benchmark(extract_isosurface, field, 0.0)
    assert len(tris) > 1000


def test_block_entropy(benchmark):
    """Block entropies of a 64^3 field in 8^3 blocks."""
    rng = np.random.default_rng(0)
    field = rng.normal(size=(64, 64, 64))
    out = benchmark(block_entropies, field, (8, 8, 8))
    assert out.shape == (8, 8, 8)
