"""Bench: ablation sweeps over the design choices (DESIGN.md section 4)."""

from repro.experiments import ablations


def test_staging_ratio_sweep(once):
    rows = once(ablations.staging_ratio_sweep)
    by_key = {(r["ratio"], r["mode"]): r for r in rows}
    # With generous staging (8:1) static in-transit is already near-optimal
    # and adaptation can only match it; with lean staging adaptation must
    # win outright.
    for ratio, tolerance in (("8:1", 1.02), ("16:1", 1.0), ("32:1", 1.0)):
        static = by_key[(ratio, "static_intransit")]
        adaptive = by_key[(ratio, "adaptive_middleware")]
        assert adaptive["end_to_end_s"] <= static["end_to_end_s"] * tolerance
    # Leaner staging (32:1) makes static in-transit strictly worse than
    # richer staging (8:1).
    assert (by_key[("32:1", "static_intransit")]["end_to_end_s"]
            > by_key[("8:1", "static_intransit")]["end_to_end_s"])


def test_monitor_interval_sweep(once):
    rows = once(ablations.monitor_interval_sweep)
    # Sparser sampling degrades (or at best matches) the adaptation's
    # overhead -- decisions go stale between samples.
    fine = rows[0]
    coarse = rows[-1]
    assert fine["interval"] == 1 and coarse["interval"] == 8
    assert fine["overhead_s"] <= coarse["overhead_s"] * 1.5
    for row in rows:
        assert row["end_to_end_s"] > 0


def test_entropy_threshold_sweep(once):
    rows = once(ablations.entropy_threshold_sweep)
    saved = [r["bytes_saved_pct"] for r in rows]
    errors = [r["rms_error"] for r in rows]
    # Higher thresholds reduce more blocks...
    assert saved == sorted(saved)
    # ...at monotonically non-decreasing information loss.
    assert all(a <= b + 1e-12 for a, b in zip(errors, errors[1:]))


def test_estimator_bias_sweep(once):
    rows = once(ablations.estimator_bias_sweep)
    by_bias = {r["bias"]: r for r in rows}
    unbiased = by_bias[1.0]
    # The adaptation degrades gracefully under 4x misestimation in either
    # direction: bounded overhead inflation, never a runaway.  (Bias hits
    # both the in-situ and in-transit estimates, so the placement mix can
    # shift either way; robustness is the claim, not direction.)
    for bias, row in by_bias.items():
        assert row["overhead_s"] <= max(unbiased["overhead_s"] * 4.0,
                                        unbiased["overhead_s"] + 120.0)
        assert row["end_to_end_s"] <= unbiased["end_to_end_s"] * 1.1
        assert row["insitu_steps"] >= 0


def test_captured_trace_sweep(once):
    """The synthetic-family results hold on real-solver dynamics too."""
    rows = once(ablations.captured_trace_sweep)
    by_mode = {r["mode"]: r for r in rows}
    adaptive = by_mode["adaptive_middleware"]
    assert adaptive["end_to_end_s"] <= by_mode["static_insitu"]["end_to_end_s"] * 1.001
    assert adaptive["end_to_end_s"] <= by_mode["static_intransit"]["end_to_end_s"] * 1.001
    assert adaptive["moved_gib"] <= by_mode["static_intransit"]["moved_gib"]


def test_hybrid_placement_sweep(once):
    rows = once(ablations.hybrid_placement_sweep)
    binary, hybrid = rows
    assert binary["policy"] == "binary" and hybrid["policy"] == "hybrid"
    # The finer-grained split never loses and actually splits some steps.
    assert hybrid["end_to_end_s"] <= binary["end_to_end_s"] * 1.02
    assert hybrid["hybrid_steps"] > 0


def test_reduction_type_sweep(once):
    rows = once(ablations.reduction_type_sweep)
    for row in rows:
        # At a matched byte budget, error-bounded compression loses far
        # less information than stride down-sampling on the blast field.
        assert row["compression_error"] < 0.5 * row["downsample_error"]
        assert row["compression_tolerance"] is not None


def test_coordination_sweep(once):
    rows = once(ablations.coordination_sweep)
    ordered, naive = rows
    # The root-leaf ordering lets the resource layer size staging for the
    # *reduced* data: it activates far fewer cores than naive simultaneous
    # triggering (which over-allocates for full-resolution data) at
    # comparable overhead -- both overheads being a tiny share of the run.
    assert ordered["mean_staging_cores"] < 0.8 * naive["mean_staging_cores"]
    assert ordered["overhead_s"] <= naive["overhead_s"] * 1.5
