"""Bench: regenerate Figure 4 (placement decision timeline)."""

from repro.core.actions import Placement
from repro.experiments import fig4_timeline


def test_fig4_timeline(once):
    outcome = once(fig4_timeline.run_fig4)
    print("\n" + fig4_timeline.render(outcome))
    placements = [m.placement for m in outcome.result.steps]
    # ts=1, 2: in-transit processors idle -> analysis placed in-transit.
    assert placements[0] is Placement.IN_TRANSIT
    assert placements[1] is Placement.IN_TRANSIT
    # Around the ts~30 burst the in-transit side is busy and slower, so at
    # least one step is diverted in-situ.
    burst_zone = placements[fig4_timeline.BURST_STEPS[0] - 1:
                            fig4_timeline.BURST_STEPS[-1] + 1]
    assert Placement.IN_SITU in burst_zone
