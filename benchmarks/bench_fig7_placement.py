"""Bench: regenerate Figure 7 (end-to-end time, static vs adaptive placement)."""

from repro.experiments import fig7_placement
from repro.experiments.common import PAPER
from repro.workflow.config import Mode


def test_fig7_placement(once):
    rows = once(fig7_placement.run_fig7)
    print("\n" + fig7_placement.render(rows))
    for row in rows:
        adaptive = row.adaptive
        insitu = row.results[Mode.STATIC_INSITU]
        intransit = row.results[Mode.STATIC_INTRANSIT]
        # The headline: adaptive placement minimizes time-to-solution.
        assert adaptive.end_to_end_seconds <= insitu.end_to_end_seconds
        assert adaptive.end_to_end_seconds <= intransit.end_to_end_seconds
        # Overhead reductions are substantial at every scale.
        assert row.overhead_cut_vs(Mode.STATIC_INSITU) > 25.0
        assert row.overhead_cut_vs(Mode.STATIC_INTRANSIT) > 25.0
        # "The end-to-end overhead in all the cases are less than 6% of the
        # simulation time" for the adaptive runs.
        assert adaptive.overhead_fraction < PAPER.fig7_overhead_fraction_bound
