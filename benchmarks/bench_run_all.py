"""Bench: the parallel sweep runner on a small two-experiment slice.

Measures ``run_all`` end to end (grid expansion, worker fan-out when
``REPRO_BENCH_JOBS > 1``, grid-ordered merge and render) rather than any
one figure's solver.  The snapshot's top-level ``jobs`` field records
the worker count used, so wall times measured at different parallelism
are never diffed as like-for-like.
"""

from benchmarks.conftest import bench_jobs

from repro.experiments.parallel import run_all

#: Small grids: the point here is runner overhead, not solver cost.
_GRIDS = {
    "fig6": [{"n": 16, "nsteps": 4}],
    "fig9": [{"role": "static", "steps": 8}, {"role": "adaptive", "steps": 8}],
}


def test_run_all_sweep(once):
    jobs = bench_jobs()
    outcomes = once(run_all, ["fig6", "fig9"], jobs=jobs, grids=_GRIDS)
    for outcome in outcomes:
        print(f"\n{outcome.name}: {outcome.points} point(s), "
              f"jobs={outcome.jobs}, compute {outcome.seconds:.3f}s")
    assert [o.name for o in outcomes] == ["fig6", "fig9"]
    assert all(o.jobs == jobs for o in outcomes)
    assert all(o.text for o in outcomes)
