"""Bench: the paper's motivating claim -- post-processing I/O is infeasible.

"The increasing performance gap between computation and I/O in high-end
computing environment renders traditional post-processing data analysis
approach based on disk I/O infeasible" (Section 6).  Not a numbered
figure, but the comparison every simulation-time approach is judged
against -- so we regenerate it: the same 4K-core workload under
post-processing, static in-situ, static in-transit and adaptive
placement, with time and energy.
"""

from repro.experiments.common import (
    ANALYSIS_COST_PER_CELL,
    SCALES,
    advection_trace,
    render_table,
)
from repro.hpc.systems import titan
from repro.units import format_bytes, format_seconds
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow

_SCALE = SCALES[1]
_MODES = (Mode.POST_PROCESSING, Mode.STATIC_INSITU, Mode.STATIC_INTRANSIT,
          Mode.ADAPTIVE_MIDDLEWARE)


def run_comparison():
    trace = advection_trace(_SCALE)
    results = {}
    for mode in _MODES:
        config = WorkflowConfig(
            mode=mode,
            sim_cores=_SCALE.sim_cores,
            staging_cores=_SCALE.staging_cores,
            spec=titan(),
            analysis_cost_per_cell=ANALYSIS_COST_PER_CELL,
        )
        results[mode] = run_workflow(config, trace)
    return results


def test_post_processing_baseline(once):
    results = once(run_comparison)
    rows = []
    for mode in _MODES:
        r = results[mode]
        rows.append([
            mode.value,
            format_seconds(r.end_to_end_seconds),
            format_seconds(r.overhead_seconds),
            format_bytes(r.pfs_bytes_written + r.pfs_bytes_read),
            f"{r.energy_joules / 1e9:.2f} GJ",
        ])
    print("\n" + render_table(
        ["mode", "end-to-end", "overhead", "PFS traffic", "energy"],
        rows, title="Post-processing vs simulation-time analysis (4K cores)"))

    post = results[Mode.POST_PROCESSING]
    adaptive = results[Mode.ADAPTIVE_MIDDLEWARE]
    # Post-processing is the slowest configuration...
    for mode in _MODES[1:]:
        assert results[mode].end_to_end_seconds < post.end_to_end_seconds
    # ...by a wide margin against adaptive placement...
    assert post.overhead_seconds > 3 * adaptive.overhead_seconds
    # ...and it burns more energy.
    assert post.energy_joules > adaptive.energy_joules
    # Its PFS round-trips the full output; simulation-time modes write none.
    assert post.pfs_bytes_written > 0 and post.pfs_bytes_read > 0
    assert adaptive.pfs_bytes_written == 0
