"""Bench: regenerate Table 2 (in-transit core usage histogram)."""

from repro.core.actions import Placement
from repro.experiments import table2_utilization
from repro.experiments.common import SCALES
from repro.experiments.common import run_mode_at_scale
from repro.workflow.config import Mode


def test_table2_utilization(once):
    rows = once(table2_utilization.run_table2)
    print("\n" + table2_utilization.render(rows))
    for scale, row in zip(SCALES, rows):
        total = sum(row.buckets.values())
        result = run_mode_at_scale(scale, Mode.GLOBAL, with_hints=True)
        # Buckets cover exactly the in-transit steps.
        assert total == result.placement_counts()[Placement.IN_TRANSIT]
        # Under global adaptation a meaningful share of steps uses less
        # than the full preallocation (the table's point).
        partial = total - row.buckets["100%"]
        assert partial > 0
