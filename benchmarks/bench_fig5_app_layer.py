"""Bench: regenerate Figure 5 (adaptive spatial resolution vs memory)."""

import numpy as np

from repro.experiments import fig5_app_layer


def test_fig5_app_layer(once):
    result = once(fig5_app_layer.run_fig5)
    print("\n" + fig5_app_layer.render(result))
    factors = result.factors
    hints_min_early = 2
    # Early in the run memory is plentiful: the minimum (highest-resolution)
    # factor is selected.
    assert (factors[:10] == hints_min_early).all()
    # Memory pressure eventually forces a resolution drop (paper: step 31).
    step = result.adaptation_step
    assert step is not None and step > 10
    # The adaptive consumption never exceeds the MAX-resolution consumption.
    assert (result.consumption_adaptive
            <= result.consumption_max_res + 1e-9).all()
    # After adaptation starts, chosen consumption fits availability wherever
    # any hinted factor fits.
    fits = result.consumption_min_res <= result.availability
    ok = ~fits | (result.consumption_adaptive <= result.availability + 1e-9)
    assert ok.all()
    assert int(factors[-1]) >= int(np.max(factors[:10]))
