"""Bench: regenerate Figure 11 (data movement, global vs local)."""

from repro.experiments import fig11_global_movement


def test_fig11_global_movement(once):
    rows = once(fig11_global_movement.run_fig11)
    print("\n" + fig11_global_movement.render(rows))
    for row in rows:
        # "the data reduction from application layer adaptation still plays
        # a dominant role" -- movement drops despite more in-transit steps.
        assert row.global_bytes < row.local_bytes
        assert row.movement_cut > 5.0
        # More (or equal) steps run in-transit under global adaptation.
        assert row.global_intransit_steps >= row.local_intransit_steps
