"""Trace data model.

A :class:`WorkloadTrace` is a per-step record of everything the coupled
workflow simulator and the adaptation policies need to know about the
simulation side: how much compute a step costs, how much data it emits,
and how that data (and memory pressure) is distributed over virtual ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError

__all__ = ["StepRecord", "WorkloadTrace"]


@dataclass
class StepRecord:
    """One simulation time step as the workflow sees it."""

    step: int
    sim_work: float  # cell-updates the simulation performs this step
    cells: int  # output cells (analysis work scales with this)
    data_bytes: float  # full-resolution output size S_data
    memory_bytes: float  # total simulation memory in use
    rank_bytes: np.ndarray  # per-rank memory footprint (len = nranks)
    # Relative per-cell analysis cost this step.  Isosurface extraction
    # cost tracks feature (shock surface) complexity, which varies
    # independently of the cell count; 1.0 = nominal.
    analysis_intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.sim_work < 0 or self.cells < 0 or self.data_bytes < 0:
            raise TraceError(f"negative quantities in step {self.step}")
        if self.analysis_intensity < 0:
            raise TraceError(f"negative analysis intensity in step {self.step}")
        self.rank_bytes = np.asarray(self.rank_bytes, dtype=np.float64)
        if self.rank_bytes.ndim != 1 or self.rank_bytes.size == 0:
            raise TraceError(f"rank_bytes must be a non-empty 1-D array (step {self.step})")

    @property
    def peak_rank_bytes(self) -> float:
        """Largest per-rank footprint (Figure 1's y-axis)."""
        return float(self.rank_bytes.max())

    @property
    def imbalance(self) -> float:
        """max/mean per-rank footprint."""
        mean = self.rank_bytes.mean()
        return float(self.rank_bytes.max() / mean) if mean > 0 else 1.0


@dataclass
class WorkloadTrace:
    """A named sequence of step records plus workload-wide constants."""

    name: str
    ndim: int
    nranks: int
    bytes_per_cell: float
    steps: list[StepRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.ndim not in (1, 2, 3):
            raise TraceError(f"ndim must be 1, 2 or 3, got {self.ndim}")
        if self.nranks < 1:
            raise TraceError(f"nranks must be >= 1, got {self.nranks}")
        if self.bytes_per_cell <= 0:
            raise TraceError(f"bytes_per_cell must be positive, got {self.bytes_per_cell}")
        for record in self.steps:
            if record.rank_bytes.size != self.nranks:
                raise TraceError(
                    f"step {record.step} has {record.rank_bytes.size} ranks, "
                    f"trace declares {self.nranks}"
                )

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    @property
    def total_data_bytes(self) -> float:
        """Sum of S_data over all steps (the no-reduction movement bound)."""
        return sum(record.data_bytes for record in self.steps)

    @property
    def total_sim_work(self) -> float:
        """Total simulation cell-updates."""
        return sum(record.sim_work for record in self.steps)

    def peak_memory_series(self) -> np.ndarray:
        """Per-step peak rank memory (Figure 1's trajectory)."""
        return np.array([record.peak_rank_bytes for record in self.steps])

    def validate(self) -> None:
        """Re-check cross-record invariants (steps contiguous from 1)."""
        for i, record in enumerate(self.steps):
            if record.step != self.steps[0].step + i:
                raise TraceError(
                    f"steps not contiguous at index {i}: {record.step}"
                )
