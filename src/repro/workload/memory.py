"""Per-rank memory availability model (inputs for Figures 1 and 5).

The application-layer policy trades data resolution against the memory
left on a node after the simulation takes its share.
:class:`MemoryProfile` carries, per step, the memory the simulation uses
on the monitored rank and the capacity, giving the availability series of
Figure 5 ("Real-time Memory Availability").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.workload.trace import WorkloadTrace

__all__ = ["MemoryProfile", "memory_profile_from_trace"]


@dataclass
class MemoryProfile:
    """Memory capacity and per-step simulation usage on one rank."""

    capacity: float  # bytes physically available to the rank
    sim_usage: np.ndarray  # bytes used by the simulation, per step

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise TraceError(f"capacity must be positive, got {self.capacity}")
        self.sim_usage = np.asarray(self.sim_usage, dtype=np.float64)
        if self.sim_usage.ndim != 1 or self.sim_usage.size == 0:
            raise TraceError("sim_usage must be a non-empty 1-D array")
        if (self.sim_usage < 0).any():
            raise TraceError("sim_usage must be non-negative")

    def __len__(self) -> int:
        return len(self.sim_usage)

    def available(self, step_index: int) -> float:
        """Bytes free for analysis/reduction at ``step_index`` (clamped at 0)."""
        return max(0.0, self.capacity - float(self.sim_usage[step_index]))

    def availability_series(self) -> np.ndarray:
        """Free bytes per step."""
        return np.maximum(0.0, self.capacity - self.sim_usage)


def memory_profile_from_trace(
    trace: WorkloadTrace,
    capacity: float,
    rank: str | int = "peak",
    usage_scale: float = 1.0,
) -> MemoryProfile:
    """Build a profile from a trace.

    ``rank="peak"`` monitors the most loaded rank each step (the binding
    constraint for the application-layer policy); an integer monitors one
    fixed rank.  ``usage_scale`` maps captured small-scale footprints into
    the target machine's regime (e.g. onto Intrepid's 500 MB/core).
    """
    if not len(trace):
        raise TraceError("trace has no steps")
    if usage_scale <= 0:
        raise TraceError(f"usage_scale must be positive, got {usage_scale}")
    if rank == "peak":
        usage = np.array([record.peak_rank_bytes for record in trace])
    else:
        index = int(rank)
        if not (0 <= index < trace.nranks):
            raise TraceError(f"rank {index} outside [0, {trace.nranks})")
        usage = np.array([record.rank_bytes[index] for record in trace])
    return MemoryProfile(capacity=capacity, sim_usage=usage * usage_scale)
