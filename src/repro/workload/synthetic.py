"""Synthetic AMR-like workload generator.

The 2K-16K-core experiments of the paper cannot be re-run directly, so we
generate traces with the statistical structure of an AMR run, calibrated
against traces captured from the real (small-scale) solvers:

- total cells grow as the refined region expands -- a logistic envelope
  with multiplicative bursts at regrid steps (Chombo regrids every k
  steps, and refinement arrives in chunks, not smoothly);
- per-rank memory is lognormally imbalanced (Figure 1 shows a heavy
  right tail across ranks);
- occasional coarsening shrinks the grid (refined regions "maybe further
  refined or coarsened").

Everything is seeded; identical configs give identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.workload.trace import StepRecord, WorkloadTrace

__all__ = ["SyntheticAMRConfig", "synthetic_amr_trace"]


@dataclass(frozen=True)
class SyntheticAMRConfig:
    """Parameters of the synthetic workload.

    ``base_cells`` is the level-0 grid size; the total grows to
    ``(1 + growth) * base_cells`` following a logistic curve centred at
    ``midpoint_step`` with ``burst_sigma`` multiplicative noise applied at
    regrid steps.  ``sim_cost_per_cell`` converts cells to work units
    (8 for the Godunov gas solver, 1 for the scalar tracer);
    ``state_bytes_per_cell`` sizes the resident simulation state while
    ``output_bytes_per_cell`` sizes the published analysis variable.
    """

    steps: int
    nranks: int
    base_cells: float
    sim_cost_per_cell: float = 8.0
    state_bytes_per_cell: float = 80.0  # 5 components * 8 B * state+scratch
    output_bytes_per_cell: float = 8.0
    growth: float = 1.5
    midpoint_step: float | None = None
    steepness: float = 0.25
    regrid_interval: int = 4
    burst_sigma: float = 0.12
    coarsen_probability: float = 0.15
    imbalance_sigma: float = 0.45
    # Spread of the per-step analysis intensity (isosurface complexity);
    # drawn lognormal with unit mean.  0 disables the variation.
    analysis_sigma: float = 0.5
    # Refinement coupling of analysis cost: intensity gains a factor
    # (cells / base_cells) ** exponent.  As the shock surface grows with
    # refinement, per-cell visualization cost rises relative to the
    # solver -- this is what drives Fig. 9's growing staging demand.
    analysis_growth_exponent: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise TraceError(f"steps must be >= 1, got {self.steps}")
        if self.nranks < 1:
            raise TraceError(f"nranks must be >= 1, got {self.nranks}")
        if self.base_cells <= 0:
            raise TraceError(f"base_cells must be positive, got {self.base_cells}")
        if self.growth < 0:
            raise TraceError(f"growth must be >= 0, got {self.growth}")
        if self.regrid_interval < 1:
            raise TraceError(f"regrid_interval must be >= 1, got {self.regrid_interval}")


def synthetic_amr_trace(config: SyntheticAMRConfig, name: str = "synthetic") -> WorkloadTrace:
    """Generate a trace from ``config`` (deterministic in the seed)."""
    rng = np.random.default_rng(config.seed)
    midpoint = config.midpoint_step if config.midpoint_step is not None else config.steps / 2

    records = []
    refinement_multiplier = 1.0
    epoch_intensity = 1.0
    for step in range(1, config.steps + 1):
        envelope = 1.0 + config.growth / (
            1.0 + np.exp(-config.steepness * (step - midpoint))
        )
        if (step - 1) % config.regrid_interval == 0:
            # Regrid: refinement arrives (or recedes) in a burst, and the
            # feature (isosurface) complexity driving analysis cost changes.
            burst = rng.lognormal(mean=0.0, sigma=config.burst_sigma)
            if rng.random() < config.coarsen_probability:
                burst = 1.0 / burst
            refinement_multiplier = burst
            if config.analysis_sigma > 0:
                # Unit-mean lognormal: mean of LN(mu, s) is exp(mu + s^2/2).
                epoch_intensity = float(rng.lognormal(
                    mean=-config.analysis_sigma**2 / 2,
                    sigma=config.analysis_sigma,
                ))
        cells = config.base_cells * envelope * refinement_multiplier
        state_bytes = cells * config.state_bytes_per_cell
        rank_weights = rng.lognormal(mean=0.0, sigma=config.imbalance_sigma,
                                     size=config.nranks)
        rank_bytes = rank_weights * (state_bytes / rank_weights.sum())
        intensity = epoch_intensity * (
            (cells / config.base_cells) ** config.analysis_growth_exponent
        )
        records.append(
            StepRecord(
                step=step,
                sim_work=cells * config.sim_cost_per_cell,
                cells=int(round(cells)),
                data_bytes=cells * config.output_bytes_per_cell,
                memory_bytes=state_bytes,
                rank_bytes=rank_bytes,
                analysis_intensity=intensity,
            )
        )
    return WorkloadTrace(
        name=name,
        ndim=3,
        nranks=config.nranks,
        bytes_per_cell=config.output_bytes_per_cell,
        steps=records,
    )
