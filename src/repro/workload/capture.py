"""Capture a workload trace from a live AMR run.

Runs an :class:`~repro.amr.stepper.AMRStepper` for a number of steps and
converts its :class:`~repro.amr.stepper.StepStats` into trace records.
The output data each step is the field the visualization service consumes
(one scalar variable, e.g. density), so ``data_bytes = cells * 8``.
"""

from __future__ import annotations

from repro.amr.stepper import AMRStepper
from repro.errors import TraceError
from repro.workload.trace import StepRecord, WorkloadTrace

__all__ = ["capture_trace"]

_SCALAR_BYTES = 8.0  # one float64 output variable per cell


def capture_trace(
    stepper: AMRStepper,
    nsteps: int,
    name: str = "captured",
) -> WorkloadTrace:
    """Advance ``stepper`` by ``nsteps`` and record a trace.

    The stepper may already have history; only the newly run steps are
    recorded.  The trace's rank count is the hierarchy's virtual rank
    count.
    """
    if nsteps < 1:
        raise TraceError(f"nsteps must be >= 1, got {nsteps}")
    h = stepper.hierarchy
    records = []
    for _ in range(nsteps):
        stats = stepper.step()
        # Analysis-intensity proxy: visualization cost tracks the refined
        # (feature-bearing) share of the grid -- isosurfaces live where
        # the tagging criterion fired.
        fine_cells = sum(stats.cells_per_level[1:])
        intensity = 1.0 + fine_cells / max(1, stats.total_cells)
        records.append(
            StepRecord(
                step=stats.step,
                sim_work=stats.work_units,
                cells=stats.total_cells,
                data_bytes=stats.total_cells * _SCALAR_BYTES,
                memory_bytes=stats.memory_bytes,
                rank_bytes=stats.rank_bytes.astype(float),
                analysis_intensity=intensity,
            )
        )
    return WorkloadTrace(
        name=name,
        ndim=h.domain.ndim,
        nranks=h.nranks,
        bytes_per_cell=_SCALAR_BYTES,
        steps=records,
    )
