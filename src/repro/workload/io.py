"""Workload trace persistence.

Traces are the interface between the (expensive) solver runs and the
(cheap) workflow studies; persisting them lets a captured run be shared,
diffed and replayed without re-running the solver.  Format: ``.npz`` with
a JSON metadata blob, same pattern as the AMR checkpoints.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.workload.trace import StepRecord, WorkloadTrace

__all__ = ["read_trace", "write_trace"]

_FORMAT_VERSION = 1


def write_trace(trace: WorkloadTrace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` (``.npz``)."""
    trace.validate()
    meta = {
        "format": _FORMAT_VERSION,
        "name": trace.name,
        "ndim": trace.ndim,
        "nranks": trace.nranks,
        "bytes_per_cell": trace.bytes_per_cell,
        "n_steps": len(trace),
    }
    scalars = np.array(
        [
            (r.step, r.sim_work, r.cells, r.data_bytes, r.memory_bytes,
             r.analysis_intensity)
            for r in trace
        ],
        dtype=np.float64,
    )
    rank_bytes = np.stack([r.rank_bytes for r in trace]) if len(trace) else \
        np.zeros((0, trace.nranks))
    np.savez_compressed(
        Path(path),
        _meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        scalars=scalars,
        rank_bytes=rank_bytes,
    )


def read_trace(path: str | Path) -> WorkloadTrace:
    """Load a trace previously written with :func:`write_trace`."""
    with np.load(Path(path)) as data:
        try:
            meta = json.loads(bytes(data["_meta"]).decode())
        except KeyError:
            raise TraceError(f"{path} is not a repro workload trace") from None
        if meta.get("format") != _FORMAT_VERSION:
            raise TraceError(f"unsupported trace format {meta.get('format')!r}")
        scalars = data["scalars"]
        rank_bytes = data["rank_bytes"]
        if scalars.shape[0] != meta["n_steps"]:
            raise TraceError("trace step count mismatch")
        records = [
            StepRecord(
                step=int(row[0]),
                sim_work=float(row[1]),
                cells=int(row[2]),
                data_bytes=float(row[3]),
                memory_bytes=float(row[4]),
                rank_bytes=rank_bytes[i],
                analysis_intensity=float(row[5]),
            )
            for i, row in enumerate(scalars)
        ]
    trace = WorkloadTrace(
        name=meta["name"],
        ndim=meta["ndim"],
        nranks=meta["nranks"],
        bytes_per_cell=meta["bytes_per_cell"],
        steps=records,
    )
    trace.validate()
    return trace
