"""Rescale a captured trace to a larger machine / problem.

The paper's runs pair a grid size with a core count (e.g. 1024x1024x512
on 2K cores).  We capture traces at laptop scale and rescale:

- ``cell_factor`` multiplies cells, bytes, and simulation work (a bigger
  problem on proportionally more cores keeps per-core load constant --
  the paper's weak-scaling setup);
- ``nranks`` changes the virtual rank count; the per-rank footprint
  distribution is resampled from the captured empirical distribution so
  the *imbalance structure* (Figure 1's key feature) is preserved.

Resampling is seeded and deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.workload.trace import StepRecord, WorkloadTrace

__all__ = ["scale_trace"]


def scale_trace(
    trace: WorkloadTrace,
    nranks: int,
    cell_factor: float = 1.0,
    name: str | None = None,
    seed: int = 0,
    jitter_sigma: float = 0.1,
) -> WorkloadTrace:
    """Return a new trace scaled to ``nranks`` ranks and ``cell_factor`` size.

    ``jitter_sigma`` is the lognormal dispersion applied on top of the
    captured per-rank distribution.  Captures run with few ranks, where
    load balancing is nearly perfect; real runs at thousands of ranks show
    far wider spreads (the paper's Fig. 1 spans an order of magnitude), so
    upscaling studies typically pass a larger value.
    """
    if nranks < 1:
        raise TraceError(f"nranks must be >= 1, got {nranks}")
    if cell_factor <= 0:
        raise TraceError(f"cell_factor must be positive, got {cell_factor}")
    if jitter_sigma < 0:
        raise TraceError(f"jitter_sigma must be >= 0, got {jitter_sigma}")
    rng = np.random.default_rng(seed)
    records = []
    for record in trace.steps:
        total_bytes_scaled = record.rank_bytes.sum() * cell_factor
        rank_bytes = _resample_distribution(
            record.rank_bytes, nranks, total_bytes_scaled, rng, jitter_sigma
        )
        records.append(
            StepRecord(
                step=record.step,
                sim_work=record.sim_work * cell_factor,
                cells=int(round(record.cells * cell_factor)),
                data_bytes=record.data_bytes * cell_factor,
                memory_bytes=record.memory_bytes * cell_factor,
                rank_bytes=rank_bytes,
                analysis_intensity=record.analysis_intensity,
            )
        )
    return WorkloadTrace(
        name=name or f"{trace.name}-x{nranks}",
        ndim=trace.ndim,
        nranks=nranks,
        bytes_per_cell=trace.bytes_per_cell,
        steps=records,
    )


def _resample_distribution(
    source: np.ndarray,
    nranks: int,
    total: float,
    rng: np.random.Generator,
    jitter_sigma: float,
) -> np.ndarray:
    """Draw ``nranks`` values from the empirical shape of ``source``,
    renormalized to sum to ``total``.

    The multiplicative lognormal jitter decorrelates repeated draws and
    widens the spread toward large-rank-count regimes.
    """
    if source.sum() <= 0:
        return np.full(nranks, total / nranks)
    draws = rng.choice(source, size=nranks, replace=True)
    if jitter_sigma > 0:
        draws = draws * rng.lognormal(mean=0.0, sigma=jitter_sigma, size=nranks)
    draws = np.maximum(draws, 1e-9)
    return draws * (total / draws.sum())
