"""Workload traces: the bridge between the AMR substrate and the workflow simulator.

The paper's experiments run Chombo applications on thousands of cores; we
run the same (Python) applications at small scale, capture their dynamic
behaviour as a :class:`~repro.workload.trace.WorkloadTrace`, and scale
the trace to the experiment's core counts.  A calibrated synthetic
generator covers configurations too large to run directly.

- :mod:`repro.workload.trace` -- the trace data model and invariants;
- :mod:`repro.workload.capture` -- capture a trace from a live AMR run;
- :mod:`repro.workload.scale` -- rescale a trace to more ranks / larger grids;
- :mod:`repro.workload.synthetic` -- synthetic AMR-like workload generator;
- :mod:`repro.workload.memory` -- per-rank memory availability model
  (Figure 1 / Figure 5 inputs).
"""

from repro.workload.trace import StepRecord, WorkloadTrace
from repro.workload.capture import capture_trace
from repro.workload.scale import scale_trace
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace
from repro.workload.memory import MemoryProfile, memory_profile_from_trace

__all__ = [
    "MemoryProfile",
    "StepRecord",
    "SyntheticAMRConfig",
    "WorkloadTrace",
    "capture_trace",
    "memory_profile_from_trace",
    "scale_trace",
    "synthetic_amr_trace",
]
