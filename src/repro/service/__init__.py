"""Multi-tenant workflow service over one shared simulated machine.

Layering (top of the stack documented in ``docs/architecture.md``)::

    WorkflowService          admission queue + arrival events (tenancy)
      AdmissionController    bounded queue, fifo/smallest/fair_share
      TenantScheduler        exact compute/staging pool bookkeeping
      CoupledWorkflow x N    per-tenant driver, Monitor, AdaptationEngine
        StagingArea x N      pool-wide area masked to the tenant's grant

Importing this package registers the ``tenant`` kernel event kind.
"""

from repro.service.admission import ADMISSION_POLICIES, AdmissionController
from repro.service.scheduler import TenantScheduler
from repro.service.tenancy import (
    ServiceReport,
    Tenant,
    TenantReport,
    WorkflowService,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionController",
    "ServiceReport",
    "Tenant",
    "TenantReport",
    "TenantScheduler",
    "WorkflowService",
]
