"""The multi-tenant workflow service: N coupled workflows, one machine.

The paper runs one coupled workflow per machine; production staging
systems (the DataSpaces deployments the paper builds on) serve *several*
applications from one staging pool.  :class:`WorkflowService` closes
that gap: tenants -- complete :class:`~repro.workflow.driver.
CoupledWorkflow` configurations with an arrival time -- are admitted
onto ONE shared simulated machine (one simulator clock, one network
fabric, one parallel file system, one staging-core pool) under an
admission policy, and each admitted tenant's Eq. 9-10 rightsizing then
*negotiates* against the shared pool instead of assuming it owns the
staging partition.

Mechanics
---------

- The service builds the machine once (:func:`~repro.hpc.systems.
  build_workflow_machine` with the pool sizes) and registers the
  ``tenant`` kernel event kind; arrivals, queue drains and grant
  renegotiations all ride typed ``tenant`` events so the kernel's
  per-kind counters attribute service traffic.
- Each admitted tenant gets its own :class:`~repro.staging.area.
  StagingArea` spanning the whole pool, masked down to its grant with
  ``fail_cores`` (and expanded with ``restore_cores`` when it borrows),
  so the area-level ``active <= healthy <= total`` invariant *is* the
  grant ledger, checked on every mutation.  Shrinking a grant below a
  running job's width preempts it exactly like a core-loss fault: the
  job aborts and re-runs from its staged copy.
- A completion watcher process per tenant calls
  :meth:`~repro.workflow.driver.CoupledWorkflow.finalize` at the
  tenant's exact completion time, so staging-utilization integrals and
  the energy model close at the tenant's own end, then releases the
  grant and drains the admission queue.

Single-tenant equivalence
-------------------------

With one tenant whose requests equal the pool sizes, every constructor
argument and every actuation the service performs is identical to the
direct :meth:`CoupledWorkflow.run` path: the grant equals the pool (no
mask), negotiation reduces to ``set_active_cores(requested)``, and the
tenant's trace and result are *bit-identical* to the direct path (the
regression suite diffs both).  Shared-fabric quantities
(``network.total_bytes_moved`` in the energy model, PFS byte counters)
are fabric-wide by design; with one tenant they coincide with the
tenant's own traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServiceError
from repro.hpc.event import Simulator
from repro.hpc.filesystem import ParallelFileSystem
from repro.hpc.kernel import (
    KERNEL_EVENT_KINDS,
    event_kind_code,
    register_event_kind,
)
from repro.hpc.systems import SystemSpec, build_workflow_machine, titan
from repro.observability.events import (
    TENANT_ADMITTED,
    TENANT_COMPLETED,
    TENANT_GRANT,
    TENANT_QUEUED,
    TENANT_REJECTED,
    TENANT_STARVED,
    TENANT_SUBMITTED,
)
from repro.observability.ledger import PredictionLedger
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer
from repro.service.admission import AdmissionController
from repro.service.scheduler import TenantScheduler
from repro.staging.area import StagingArea
from repro.workflow.config import WorkflowConfig
from repro.workflow.driver import CoupledWorkflow
from repro.workflow.metrics import WorkflowResult
from repro.workload.trace import WorkloadTrace

__all__ = [
    "ServiceReport",
    "Tenant",
    "TenantReport",
    "WorkflowService",
]

# The service's kernel event family.  Guarded: the registry refuses
# duplicate names, and this module may be re-imported (tests reload it).
if "tenant" not in KERNEL_EVENT_KINDS:
    TENANT_KIND = register_event_kind(
        "tenant",
        "multi-tenant service control: tenant arrivals, admission-queue "
        "drains and staging-grant renegotiations on the shared machine",
    )
else:  # pragma: no cover - only on re-import
    TENANT_KIND = event_kind_code("tenant")


@dataclass(eq=False)
class Tenant:
    """One submitted workflow's runtime record (the handle ``submit``
    returns).  ``state`` walks ``submitted -> queued -> admitted ->
    completed`` (or ``-> rejected`` when the admission queue is full)."""

    name: str
    config: WorkflowConfig
    trace: WorkloadTrace
    arrival: float
    user: str = "default"
    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None
    ledger: PredictionLedger | None = None
    state: str = "submitted"
    base_grant: int = 0
    grant: int = 0
    admitted_at: float | None = None
    completed_at: float | None = None
    starved: bool = False
    workflow: CoupledWorkflow | None = None
    result: WorkflowResult | None = None
    report: "TenantReport | None" = None


@dataclass(frozen=True)
class TenantReport:
    """One tenant's SLO/fairness numbers, captured at its completion.

    ``slowdown`` is time-to-solution over the tenant's own aggregate
    simulation time -- the contention-sensitive part of its run --
    normalizing tenants of different sizes onto one scale.
    """

    name: str
    user: str
    arrival: float
    admitted_at: float
    completed_at: float
    queue_wait: float
    time_to_solution: float
    slowdown: float
    base_grant: int
    final_grant: int
    staging_share: float  # base grant as a fraction of the pool
    busy_core_seconds: float
    allocated_core_seconds: float
    starved: bool
    result: WorkflowResult

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary (without the embedded result)."""
        return {
            "name": self.name,
            "user": self.user,
            "arrival": self.arrival,
            "admitted_at": self.admitted_at,
            "completed_at": self.completed_at,
            "queue_wait": self.queue_wait,
            "time_to_solution": self.time_to_solution,
            "slowdown": self.slowdown,
            "base_grant": self.base_grant,
            "final_grant": self.final_grant,
            "staging_share": self.staging_share,
            "busy_core_seconds": self.busy_core_seconds,
            "allocated_core_seconds": self.allocated_core_seconds,
            "starved": self.starved,
        }


@dataclass(frozen=True)
class ServiceReport:
    """The whole service run: per-tenant reports plus fleet aggregates."""

    policy: str
    sim_cores: int
    staging_cores: int
    tenants: tuple[TenantReport, ...]
    rejected: tuple[str, ...]
    makespan: float  # last completion on the shared clock
    starvations: int = 0

    @property
    def fairness_index(self) -> float:
        """Jain's index over per-tenant slowdowns (1.0 = perfectly fair)."""
        slowdowns = [t.slowdown for t in self.tenants]
        if not slowdowns:
            return 1.0
        square_of_sum = sum(slowdowns) ** 2
        sum_of_squares = sum(s * s for s in slowdowns)
        if sum_of_squares == 0:
            return 1.0
        return square_of_sum / (len(slowdowns) * sum_of_squares)

    def occupancy_share(self, name: str) -> float:
        """One tenant's share of all tenants' busy staging core-seconds."""
        total = sum(t.busy_core_seconds for t in self.tenants)
        if total <= 0:
            return 0.0
        return self.tenant(name).busy_core_seconds / total

    def tenant(self, name: str) -> TenantReport:
        for report in self.tenants:
            if report.name == name:
                return report
        raise ServiceError(f"no tenant report for {name!r}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "sim_cores": self.sim_cores,
            "staging_cores": self.staging_cores,
            "makespan": self.makespan,
            "fairness_index": self.fairness_index,
            "starvations": self.starvations,
            "rejected": list(self.rejected),
            "tenants": [t.as_dict() for t in self.tenants],
        }


class WorkflowService:
    """Admit N tenant workflows onto one shared simulated machine.

    Parameters
    ----------
    spec:
        The shared machine's system preset (default Titan).
    sim_cores, staging_cores:
        Pool sizes: the whole simulation partition and the whole staging
        partition every tenant shares.
    policy:
        Admission-queue drain order (:data:`~repro.service.admission.
        ADMISSION_POLICIES`).
    max_queue:
        Bounded admission queue; arrivals beyond it are rejected
        (``None`` = unbounded).
    oversubscribe, min_share:
        Compute-pool multiplier and the staging-grant admission floor
        (see :class:`~repro.service.scheduler.TenantScheduler`).
    starvation_wait:
        When set, a queued tenant waiting longer than this (simulated
        seconds) raises the ``tenant.starved`` event and counter once.
    tracer, metrics, profiler:
        Service-level observability: ``tenant.*`` events and
        ``service.*`` metrics land here, distinct from each tenant's own
        hooks (which see exactly what a solo run would emit).
    """

    def __init__(
        self,
        spec: SystemSpec | None = None,
        sim_cores: int = 1024,
        staging_cores: int = 64,
        *,
        policy: str = "fifo",
        max_queue: int | None = None,
        oversubscribe: float = 1.0,
        min_share: float = 0.25,
        starvation_wait: float | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        profiler: Any = None,
    ):
        self.spec = spec if spec is not None else titan()
        self.sim = Simulator(profiler=profiler)
        self.sim.kernel.on(TENANT_KIND, self.sim._call_payload, batch=False)
        self.machine, self.network = build_workflow_machine(
            self.sim, self.spec, sim_cores, staging_cores
        )
        self.pfs = ParallelFileSystem(
            self.sim,
            self.network,
            write_bandwidth=self.spec.pfs_write_bandwidth,
            read_bandwidth=self.spec.pfs_read_bandwidth,
            latency=self.spec.pfs_latency,
        )
        self.pfs.attach("sim")
        self.pfs.attach("staging")
        self.scheduler = TenantScheduler(
            sim_cores, staging_cores,
            oversubscribe=oversubscribe, min_share=min_share,
        )
        self.admission = AdmissionController(policy=policy, max_queue=max_queue)
        if starvation_wait is not None and starvation_wait <= 0:
            raise ServiceError(
                f"starvation_wait must be positive, got {starvation_wait}"
            )
        self.starvation_wait = starvation_wait
        self.sim_cores = int(sim_cores)
        self.staging_cores = int(staging_cores)
        self._staging_memory = self.machine.partition("staging").total_memory
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        if tracer is not None:
            tracer.bind_clock(lambda: self.sim.now)
        self.tenants: list[Tenant] = []
        self._starvation_count = 0
        self._ran = False

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        name: str,
        config: WorkflowConfig,
        trace: WorkloadTrace,
        *,
        arrival: float = 0.0,
        user: str = "default",
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        ledger: PredictionLedger | None = None,
    ) -> Tenant:
        """Register a tenant arriving at ``arrival`` simulated seconds.

        Must be called before :meth:`run`.  Raises
        :class:`~repro.errors.ServiceError` for requests that could
        never be admitted even on an empty machine (they would wait
        forever); requests that merely exceed the *currently* free
        capacity queue normally.
        """
        if self._ran:
            raise ServiceError("service already ran; submit before run()")
        if any(t.name == name for t in self.tenants):
            raise ServiceError(f"duplicate tenant name {name!r}")
        if arrival < 0:
            raise ServiceError(f"arrival must be >= 0, got {arrival}")
        if not self.scheduler.feasible(config.sim_cores, config.staging_cores):
            raise ServiceError(
                f"tenant {name!r} can never fit the machine: needs "
                f"{config.sim_cores} sim cores (capacity "
                f"{self.scheduler.compute_capacity}) and a minimum staging "
                f"grant of {self.scheduler.min_staging_grant(config.staging_cores)} "
                f"(pool {self.staging_cores})"
            )
        tenant = Tenant(
            name=name, config=config, trace=trace, arrival=float(arrival),
            user=user, tracer=tracer, metrics=metrics, ledger=ledger,
        )
        self.tenants.append(tenant)
        self.sim._schedule_at(
            tenant.arrival, self._arrive, tenant, kind=TENANT_KIND
        )
        return tenant

    # -- service loop --------------------------------------------------------

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(kind, **fields)

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _set_committed_gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("service.staging_committed_cores").set(
                self.scheduler.staging_committed
            )

    def _arrive(self, tenant: Tenant) -> None:
        self._emit(
            TENANT_SUBMITTED,
            tenant=tenant.name,
            user=tenant.user,
            sim_cores=tenant.config.sim_cores,
            staging_cores=tenant.config.staging_cores,
            steps=len(tenant.trace),
        )
        if not self.admission.enqueue(tenant):
            tenant.state = "rejected"
            self._emit(
                TENANT_REJECTED,
                tenant=tenant.name,
                queue_depth=len(self.admission),
            )
            self._count("service.tenants_rejected")
            return
        tenant.state = "queued"
        self._emit(
            TENANT_QUEUED, tenant=tenant.name, queue_depth=len(self.admission)
        )
        if self.starvation_wait is not None:
            # Exact detection: fires at enqueue + threshold, not at the
            # next arrival/completion that happens to drain the queue.
            self.sim._schedule_at(
                self.sim.now + self.starvation_wait,
                self._check_starvation,
                tenant,
                kind=TENANT_KIND,
            )
        self._drain()

    def _drain(self) -> None:
        """Admit queued tenants while the policy finds one that fits."""
        while True:
            tenant = self.admission.pick(
                fits=lambda t: self.scheduler.fits(
                    t.config.sim_cores, t.config.staging_cores
                ),
                footprint=lambda t: t.config.staging_cores,
                user=lambda t: t.user,
                usage=self.scheduler.usage,
            )
            if tenant is None:
                break
            self._admit(tenant)

    def _check_starvation(self, tenant: Tenant) -> None:
        if tenant.state != "queued" or tenant.starved:
            return
        tenant.starved = True
        self._starvation_count += 1
        self._emit(
            TENANT_STARVED,
            tenant=tenant.name,
            queue_wait=self.sim.now - tenant.arrival,
            queue_depth=len(self.admission),
        )
        self._count("service.starvations")

    def _admit(self, tenant: Tenant) -> None:
        grant = self.scheduler.admit(
            tenant.config.sim_cores, tenant.config.staging_cores
        )
        tenant.base_grant = tenant.grant = grant
        tenant.admitted_at = self.sim.now
        tenant.state = "admitted"
        queue_wait = self.sim.now - tenant.arrival
        # The tenant's staging area spans the whole pool, masked down to
        # its grant; its memory is the grant's proportional share of the
        # staging partition.  A full-pool grant is exactly the direct
        # path's construction (no mask, whole partition memory).
        area = StagingArea(
            self.sim,
            self.network,
            core_rate=tenant.config.spec.core_rate,
            total_cores=self.staging_cores,
            active_cores=grant,
            memory_bytes=self._staging_memory * (grant / self.staging_cores),
            tracer=tenant.tracer,
            metrics=tenant.metrics,
            ledger=tenant.ledger,
            profiler=self.profiler,
        )
        if grant < self.staging_cores:
            area.fail_cores(self.staging_cores - grant)
        tenant.workflow = CoupledWorkflow(
            tenant.config,
            tenant.trace,
            tracer=tenant.tracer,
            metrics=tenant.metrics,
            ledger=tenant.ledger,
            profiler=self.profiler,
            sim=self.sim,
            machine=self.machine,
            network=self.network,
            staging=area,
            staging_resizer=lambda requested, t=tenant: self._negotiate(
                t, requested
            ),
            # Eq. 9-10 sizes against the negotiable headroom: the grant
            # plus whatever the pool has uncommitted right now.
            staging_ceiling=lambda t=tenant: (
                t.grant + self.scheduler.staging_uncommitted
            ),
            pfs=self.pfs,
        )
        self.sim.process(self._watch(tenant), name=f"tenant({tenant.name})")
        self._emit(
            TENANT_ADMITTED,
            tenant=tenant.name,
            grant=grant,
            requested=tenant.config.staging_cores,
            queue_wait=queue_wait,
            staging_committed=self.scheduler.staging_committed,
        )
        self._count("service.tenants_admitted")
        if self.metrics is not None:
            self.metrics.timer("service.queue_wait_seconds").observe(queue_wait)
        self._set_committed_gauge()

    def _watch(self, tenant: Tenant):
        """Completion watcher: finalize at the tenant's exact end time."""
        yield tenant.workflow.start()
        result = tenant.workflow.finalize()
        tenant.result = result
        tenant.completed_at = self.sim.now
        tenant.state = "completed"
        area = tenant.workflow.staging
        allocated = area.allocated_core_seconds()
        busy = area.busy_core_seconds()
        self.scheduler.release(
            tenant.config.sim_cores, tenant.grant, tenant.user, allocated
        )
        queue_wait = tenant.admitted_at - tenant.arrival
        time_to_solution = self.sim.now - tenant.arrival
        tenant.report = TenantReport(
            name=tenant.name,
            user=tenant.user,
            arrival=tenant.arrival,
            admitted_at=tenant.admitted_at,
            completed_at=tenant.completed_at,
            queue_wait=queue_wait,
            time_to_solution=time_to_solution,
            slowdown=(
                time_to_solution / result.total_sim_seconds
                if result.total_sim_seconds > 0
                else 1.0
            ),
            base_grant=tenant.base_grant,
            final_grant=tenant.grant,
            staging_share=tenant.base_grant / self.staging_cores,
            busy_core_seconds=busy,
            allocated_core_seconds=allocated,
            starved=tenant.starved,
            result=result,
        )
        self._emit(
            TENANT_COMPLETED,
            tenant=tenant.name,
            time_to_solution=time_to_solution,
            queue_wait=queue_wait,
            grant=tenant.grant,
            end_to_end_seconds=result.end_to_end_seconds,
        )
        self._count("service.tenants_completed")
        self._set_committed_gauge()
        # Freed capacity: drain the queue on a fresh tenant-kind event so
        # kernel counters attribute admission work to the service.
        self.sim._schedule_at(self.sim.now, self._drain, kind=TENANT_KIND)

    def _negotiate(self, tenant: Tenant, requested: int) -> None:
        """Grant negotiation: the tenant's Eq. 9-10 resize, pool-clamped.

        Expansion borrows only *uncommitted* pool cores; shrink returns
        borrowed cores but never cuts below the admission base grant, so
        a tenant that briefly asks for less cannot lose its reservation.
        With a full-pool grant (single tenant) both branches are inert
        and this reduces to the direct path's ``set_active_cores``.
        """
        area = tenant.workflow.staging
        if requested > tenant.grant:
            took = self.scheduler.borrow(requested - tenant.grant)
            if took:
                area.restore_cores(took)
                tenant.grant += took
                self._emit(
                    TENANT_GRANT,
                    tenant=tenant.name,
                    delta=took,
                    grant=tenant.grant,
                    requested=requested,
                    staging_committed=self.scheduler.staging_committed,
                )
                self._count("service.grant_expansions")
                self._set_committed_gauge()
        elif requested < tenant.grant and tenant.grant > tenant.base_grant:
            give = min(
                tenant.grant - requested, tenant.grant - tenant.base_grant
            )
            area.fail_cores(give)
            self.scheduler.give_back(give)
            tenant.grant -= give
            self._emit(
                TENANT_GRANT,
                tenant=tenant.name,
                delta=-give,
                grant=tenant.grant,
                requested=requested,
                staging_committed=self.scheduler.staging_committed,
            )
            self._count("service.grant_shrinks")
            self._set_committed_gauge()
        area.set_active_cores(min(requested, tenant.grant))

    # -- terminal ------------------------------------------------------------

    def run(self) -> ServiceReport:
        """Drive the shared clock until every tenant finishes."""
        if self._ran:
            raise ServiceError("service already ran")
        if not self.tenants:
            raise ServiceError("no tenants submitted")
        self._ran = True
        self.sim.run()
        unserved = [
            t.name for t in self.tenants
            if t.state not in ("completed", "rejected")
        ]
        if unserved:  # pragma: no cover - feasibility check prevents this
            raise ServiceError(
                "tenants never served: " + ", ".join(sorted(unserved))
            )
        reports = tuple(
            t.report for t in self.tenants if t.report is not None
        )
        return ServiceReport(
            policy=self.admission.policy,
            sim_cores=self.sim_cores,
            staging_cores=self.staging_cores,
            tenants=reports,
            rejected=tuple(
                t.name for t in self.tenants if t.state == "rejected"
            ),
            makespan=self.sim.now,
            starvations=self._starvation_count,
        )
