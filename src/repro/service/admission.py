"""Bounded admission queue and its ordering policies.

Arriving tenants enter the :class:`AdmissionController`'s bounded queue;
whenever capacity frees (an arrival, or a completion), the service
drains the queue in the order the configured policy dictates:

- ``fifo`` -- arrival order with head-of-line blocking: the queue head
  must fit before anything behind it is considered.  This is the
  behaviour that *breaks* under contention (a wide tenant at the head
  starves narrow ones behind it) and the baseline the other policies
  are contrasted against.
- ``smallest`` -- smallest staging footprint first (backfill): narrow
  tenants slip past a blocked wide head, trading wide-tenant latency
  for throughput.
- ``fair_share`` -- least accumulated service first: candidates are
  ordered by their user's accumulated staging core-seconds
  (:attr:`~repro.service.scheduler.TenantScheduler.usage`), so a user
  who has already consumed the pool yields to one who has not.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import ServiceError

__all__ = ["ADMISSION_POLICIES", "AdmissionController"]

#: Policy name -> one-line description (the CLI's ``--policy`` choices).
ADMISSION_POLICIES: dict[str, str] = {
    "fifo": "arrival order, head-of-line blocking",
    "smallest": "smallest staging footprint first (backfill)",
    "fair_share": "least accumulated per-user staging service first",
}


class AdmissionController:
    """A bounded queue of waiting tenants plus the drain ordering.

    The controller holds opaque tenant records; the service supplies
    accessors at drain time (footprint, user, fit check), so this module
    stays free of workflow imports.
    """

    def __init__(self, policy: str = "fifo", max_queue: int | None = None):
        if policy not in ADMISSION_POLICIES:
            known = ", ".join(sorted(ADMISSION_POLICIES))
            raise ServiceError(f"unknown admission policy {policy!r} "
                               f"(known: {known})")
        if max_queue is not None and max_queue < 0:
            raise ServiceError(f"max_queue must be >= 0, got {max_queue}")
        self.policy = policy
        self.max_queue = max_queue
        self._queue: list[Any] = []

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._queue)

    @property
    def full(self) -> bool:
        """True when another enqueue would exceed ``max_queue``."""
        return self.max_queue is not None and len(self._queue) >= self.max_queue

    def enqueue(self, tenant: Any) -> bool:
        """Queue an arrival; False (untouched) when the queue is full."""
        if self.full:
            return False
        self._queue.append(tenant)
        return True

    def pick(
        self,
        fits: Callable[[Any], bool],
        footprint: Callable[[Any], int],
        user: Callable[[Any], str],
        usage: dict[str, float],
    ) -> Any | None:
        """Remove and return the next admissible tenant, or ``None``.

        ``fits`` checks a candidate against current pool capacity;
        ``footprint`` is its staging request; ``user``/``usage`` feed
        the fair-share ordering.  FIFO considers only the queue head.
        """
        if not self._queue:
            return None
        if self.policy == "fifo":
            candidates = self._queue[:1]
        elif self.policy == "smallest":
            # Stable: ties keep arrival order.
            candidates = sorted(self._queue, key=footprint)
        else:  # fair_share
            candidates = sorted(
                self._queue, key=lambda t: usage.get(user(t), 0.0)
            )
        for tenant in candidates:
            if fits(tenant):
                self._queue.remove(tenant)
                return tenant
        return None
