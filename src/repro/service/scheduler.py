"""Exact core bookkeeping for the shared compute and staging pools.

The :class:`TenantScheduler` is the service's ledger of who holds what:
compute cores are *partitioned* (optionally oversubscribed by a factor,
modelling time-sharing of the simulation partition), staging cores are
*granted* -- each admitted tenant receives a base grant carved out of
the shared staging pool, and may later borrow uncommitted cores through
the negotiation path (:meth:`borrow`/:meth:`give_back`).

The scheduler never touches a :class:`~repro.staging.area.StagingArea`
itself; the service actuates grants by masking each tenant's area with
``fail_cores``/``restore_cores`` and keeps this ledger in lock-step, so
the invariant checked after every mutation here mirrors the area-level
``active <= healthy <= total`` invariant.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.errors import ServiceError

__all__ = ["TenantScheduler"]


class TenantScheduler:
    """Shared-pool accounting: admission checks, grants, borrow/return.

    Parameters
    ----------
    sim_cores, staging_cores:
        The shared machine's pool sizes (the whole simulation and
        staging partitions).
    oversubscribe:
        Compute-pool multiplier (>= 1): ``2.0`` lets the sum of admitted
        tenants' simulation cores reach twice the physical partition
        (time-shared).  Staging cores are never oversubscribed -- grants
        are physical cores.
    min_share:
        Fraction of a tenant's requested staging cores that must be
        uncommitted for admission (the grant is
        ``min(request, uncommitted)``, so under pressure tenants are
        admitted squeezed rather than waiting for their full request).
    """

    def __init__(
        self,
        sim_cores: int,
        staging_cores: int,
        oversubscribe: float = 1.0,
        min_share: float = 0.25,
    ):
        if sim_cores < 1 or staging_cores < 1:
            raise ServiceError("pool core counts must be >= 1")
        if oversubscribe < 1.0:
            raise ServiceError(
                f"oversubscribe must be >= 1, got {oversubscribe}"
            )
        if not 0.0 < min_share <= 1.0:
            raise ServiceError(f"min_share must be in (0, 1], got {min_share}")
        self.sim_cores_total = int(sim_cores)
        self.staging_total = int(staging_cores)
        self.compute_capacity = int(math.floor(sim_cores * oversubscribe))
        self.min_share = float(min_share)
        self.compute_committed = 0
        self.staging_committed = 0
        #: Accumulated staging core-seconds served, per user -- the
        #: fair-share admission policy's ordering key.
        self.usage: dict[str, float] = defaultdict(float)

    # -- capacity queries ----------------------------------------------------

    @property
    def staging_uncommitted(self) -> int:
        """Staging-pool cores not granted to any tenant."""
        return self.staging_total - self.staging_committed

    @property
    def compute_uncommitted(self) -> int:
        """Compute capacity (after oversubscription) not yet committed."""
        return self.compute_capacity - self.compute_committed

    def min_staging_grant(self, requested: int) -> int:
        """Smallest admissible grant for a ``requested``-core tenant."""
        return max(1, math.ceil(requested * self.min_share))

    def fits(self, sim_cores: int, staging_cores: int) -> bool:
        """Would a (compute, staging) request be admissible right now?"""
        return (
            sim_cores <= self.compute_uncommitted
            and self.min_staging_grant(staging_cores) <= self.staging_uncommitted
        )

    def feasible(self, sim_cores: int, staging_cores: int) -> bool:
        """Could the request EVER be admitted (i.e. fits an empty machine)?

        Guarantees queue progress: any enqueued tenant passes this, so it
        is admissible at the latest when every other tenant has finished.
        """
        return (
            1 <= sim_cores <= self.compute_capacity
            and 1 <= staging_cores
            and self.min_staging_grant(staging_cores) <= self.staging_total
        )

    # -- mutations -----------------------------------------------------------

    def admit(self, sim_cores: int, staging_cores: int) -> int:
        """Commit a tenant; returns its base staging grant.

        The grant is the full request when the pool has room, else every
        remaining uncommitted core (``fits`` guarantees at least the
        ``min_share`` floor).
        """
        if not self.fits(sim_cores, staging_cores):
            raise ServiceError(
                f"cannot admit ({sim_cores} sim, {staging_cores} staging) "
                f"cores: uncommitted compute {self.compute_uncommitted}, "
                f"staging {self.staging_uncommitted}"
            )
        grant = min(int(staging_cores), self.staging_uncommitted)
        self.compute_committed += int(sim_cores)
        self.staging_committed += grant
        self._check()
        return grant

    def borrow(self, count: int) -> int:
        """Grant up to ``count`` extra staging cores; returns how many."""
        if count < 1:
            raise ServiceError(f"borrow needs count >= 1, got {count}")
        take = min(int(count), self.staging_uncommitted)
        self.staging_committed += take
        self._check()
        return take

    def give_back(self, count: int) -> None:
        """Return ``count`` previously granted staging cores to the pool."""
        if not 0 <= count <= self.staging_committed:
            raise ServiceError(
                f"cannot return {count} staging cores "
                f"(committed {self.staging_committed})"
            )
        self.staging_committed -= int(count)
        self._check()

    def release(
        self,
        sim_cores: int,
        staging_grant: int,
        user: str,
        served_core_seconds: float,
    ) -> None:
        """Release a completed tenant's holdings and record its service."""
        if sim_cores > self.compute_committed:
            raise ServiceError(
                f"releasing {sim_cores} compute cores but only "
                f"{self.compute_committed} committed"
            )
        if staging_grant > self.staging_committed:
            raise ServiceError(
                f"releasing {staging_grant} staging cores but only "
                f"{self.staging_committed} committed"
            )
        self.compute_committed -= int(sim_cores)
        self.staging_committed -= int(staging_grant)
        self.usage[user] += float(served_core_seconds)
        self._check()

    def _check(self) -> None:
        if not 0 <= self.compute_committed <= self.compute_capacity:
            raise ServiceError(
                f"compute commitment {self.compute_committed} outside "
                f"[0, {self.compute_capacity}]"
            )
        if not 0 <= self.staging_committed <= self.staging_total:
            raise ServiceError(
                f"staging commitment {self.staging_committed} outside "
                f"[0, {self.staging_total}]"
            )
