"""The shared-space server: put/get/query with memory accounting.

:class:`DataSpace` is the coordination half of DataSpaces: simulations
``put`` versioned objects, analysis services ``get`` them by name/version/
box, possibly blocking until the version is published (the coupling
pattern of the paper's workflows).  Memory accounting enforces the
staging memory constraint the resource-layer policy reasons about
(Eq. 10): a put that does not fit raises, or -- with ``evict_policy`` --
evicts the oldest consumed versions first.
"""

from __future__ import annotations

from collections import defaultdict

from repro.amr.box import Box
from repro.errors import StagingError
from repro.hpc.event import Event, Simulator
from repro.staging.index import BoxIndex
from repro.staging.objects import DataObject

__all__ = ["DataSpace"]


class DataSpace:
    """In-memory versioned object space with waitable gets.

    Parameters
    ----------
    sim:
        Event simulator (gets are waitable events).
    capacity_bytes:
        Total staging memory for payloads; ``None`` means unbounded.
    evict_consumed:
        When a put would overflow, evict oldest fully-consumed versions
        (objects already retrieved at least once) to make room.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity_bytes: float | None = None,
        evict_consumed: bool = False,
    ):
        self.sim = sim
        self.capacity = capacity_bytes
        self.evict_consumed = evict_consumed
        self.index = BoxIndex()
        self.bytes_stored = 0.0
        self.bytes_put_total = 0.0
        self._consumed: set[int] = set()
        self._waiters: dict[tuple[str, int], list[Event]] = defaultdict(list)

    # -- publication ----------------------------------------------------------

    def put(self, obj: DataObject) -> None:
        """Publish an object; wakes any blocked :meth:`get_async` waiters."""
        if self.capacity is not None and self.bytes_stored + obj.nbytes > self.capacity:
            if self.evict_consumed:
                self._evict(obj.nbytes)
            if self.bytes_stored + obj.nbytes > (self.capacity or 0):
                raise StagingError(
                    f"space full: {self.bytes_stored:.0f} + {obj.nbytes:.0f} "
                    f"> {self.capacity:.0f} bytes"
                )
        self.index.insert(obj)
        self.bytes_stored += obj.nbytes
        self.bytes_put_total += obj.nbytes
        key = (obj.name, obj.version)
        for event in self._waiters.pop(key, []):
            if not event.triggered:
                event.succeed(self.index.query(obj.name, obj.version))

    def _evict(self, needed: float) -> None:
        """Drop oldest consumed versions until ``needed`` bytes fit."""
        names = {name for (name, _v) in self.index._buckets}
        candidates: list[tuple[int, str]] = sorted(
            (v, name) for name in names for v in self.index.versions(name)
        )
        for version, name in candidates:
            if self.capacity is not None and (
                self.bytes_stored + needed <= self.capacity
            ):
                return
            objs = self.index.query(name, version)
            if objs and all(o.uid in self._consumed for o in objs):
                for obj in self.index.drop_version(name, version):
                    self.bytes_stored -= obj.nbytes
                    self._consumed.discard(obj.uid)

    # -- retrieval ----------------------------------------------------------

    def get(self, name: str, version: int, box: Box | None = None) -> list[DataObject]:
        """Non-blocking query; marks returned objects consumed."""
        results = self.index.query(name, version, box)
        for obj in results:
            self._consumed.add(obj.uid)
        return results

    def get_async(self, name: str, version: int) -> Event:
        """Event firing with the objects of (name, version); immediate if present.

        This is DataSpaces' blocking get: the analysis side of a coupled
        workflow waits for the simulation to publish the next version.
        """
        existing = self.index.query(name, version)
        event = self.sim.event(name=f"get({name}, v{version})")
        if existing:
            for obj in existing:
                self._consumed.add(obj.uid)
            event.succeed(existing)
        else:
            self._waiters[(name, version)].append(event)
        return event

    def remove_version(self, name: str, version: int) -> float:
        """Delete a version entirely; returns bytes freed."""
        freed = 0.0
        for obj in self.index.drop_version(name, version):
            freed += obj.nbytes
            self._consumed.discard(obj.uid)
        self.bytes_stored -= freed
        return freed

    @property
    def available_bytes(self) -> float:
        """Free capacity (inf when unbounded)."""
        if self.capacity is None:
            return float("inf")
        return self.capacity - self.bytes_stored
