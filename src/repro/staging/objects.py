"""Versioned, geometry-addressed data objects (DataSpaces' data model).

A :class:`DataObject` is what a simulation publishes into the space each
time step: a named variable, a version (the time step), the index-space
box it covers, and the payload -- either a real NumPy array (small-scale
runs, examples) or just a byte count (trace-driven experiments where only
sizes matter).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.amr.box import Box
from repro.errors import StagingError

__all__ = ["DataObject"]

_ids = itertools.count()


@dataclass(frozen=True)
class DataObject:
    """One published object.

    Exactly one of ``payload`` (real data) or ``nbytes_hint`` (size-only)
    determines :attr:`nbytes`.
    """

    name: str
    version: int
    box: Box
    payload: np.ndarray | None = None
    nbytes_hint: float | None = None
    uid: int = field(default_factory=lambda: next(_ids))

    def __post_init__(self) -> None:
        if not self.name:
            raise StagingError("data object needs a non-empty name")
        if self.version < 0:
            raise StagingError(f"negative version: {self.version}")
        if (self.payload is None) == (self.nbytes_hint is None):
            raise StagingError("provide exactly one of payload or nbytes_hint")
        if self.nbytes_hint is not None and self.nbytes_hint < 0:
            raise StagingError(f"negative size hint: {self.nbytes_hint}")

    @property
    def nbytes(self) -> float:
        """Size in bytes (payload size or the hint)."""
        if self.payload is not None:
            return float(self.payload.nbytes)
        return float(self.nbytes_hint)

    def overlaps(self, box: Box) -> bool:
        """True if the object's region intersects ``box``."""
        return self.box.intersects(box)
