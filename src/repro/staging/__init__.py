"""DataSpaces-like staging substrate.

The paper implements its adaptive runtime on top of DataSpaces, a
distributed interaction/coordination service offering versioned,
geometry-indexed shared objects with asynchronous put/get.  This package
provides the equivalent over the simulated machine:

- :mod:`repro.staging.objects` -- versioned, box-addressed data objects;
- :mod:`repro.staging.index` -- the (name, version, box) query index;
- :mod:`repro.staging.space` -- the shared-space server with memory
  accounting (put/get/query semantics);
- :mod:`repro.staging.area` -- the in-transit staging area: a resizable
  pool of staging cores executing analysis jobs, with ingest transfers
  over the simulated network and utilization accounting (Eq. 12);
- :mod:`repro.staging.messaging` -- topic pub/sub, mirroring the
  messaging layer of the authors' earlier work, plus the bounded
  retry-with-backoff recovery policy used by faulted ingests.
"""

from repro.staging.objects import DataObject
from repro.staging.index import BoxIndex
from repro.staging.space import DataSpace
from repro.staging.area import AnalysisJob, StagingArea
from repro.staging.messaging import MessageBus, RetryPolicy, retry_with_backoff

__all__ = [
    "AnalysisJob",
    "BoxIndex",
    "DataObject",
    "DataSpace",
    "MessageBus",
    "RetryPolicy",
    "StagingArea",
    "retry_with_backoff",
]
