"""Query index for the shared space: (name, version) -> box-overlap lookup.

DataSpaces resolves ``get(name, version, box)`` queries against the set of
published objects.  The index keeps objects bucketed by name and version;
box queries scan the bucket (buckets are per-step and small, so a scan is
the right complexity here -- an R-tree would only pay off with thousands
of objects per version).
"""

from __future__ import annotations

from collections import defaultdict

from repro.amr.box import Box
from repro.errors import StagingError
from repro.staging.objects import DataObject

__all__ = ["BoxIndex"]


class BoxIndex:
    """Objects bucketed by ``(name, version)`` with box-overlap queries."""

    def __init__(self):
        self._buckets: dict[tuple[str, int], list[DataObject]] = defaultdict(list)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def insert(self, obj: DataObject) -> None:
        """Add an object; duplicate uids are rejected."""
        bucket = self._buckets[(obj.name, obj.version)]
        if any(existing.uid == obj.uid for existing in bucket):
            raise StagingError(f"object uid {obj.uid} already indexed")
        bucket.append(obj)

    def remove(self, obj: DataObject) -> None:
        """Remove an object previously inserted."""
        key = (obj.name, obj.version)
        bucket = self._buckets.get(key, [])
        for i, existing in enumerate(bucket):
            if existing.uid == obj.uid:
                del bucket[i]
                if not bucket:
                    del self._buckets[key]
                return
        raise StagingError(f"object {obj.name!r} v{obj.version} not in index")

    def query(self, name: str, version: int, box: Box | None = None) -> list[DataObject]:
        """All objects of ``name``/``version`` overlapping ``box`` (or all)."""
        bucket = self._buckets.get((name, version), [])
        if box is None:
            return list(bucket)
        return [obj for obj in bucket if obj.overlaps(box)]

    def versions(self, name: str) -> list[int]:
        """Sorted versions present for ``name``."""
        return sorted(v for (n, v) in self._buckets if n == name)

    def latest_version(self, name: str) -> int | None:
        """Highest version present for ``name``, or None."""
        versions = self.versions(name)
        return versions[-1] if versions else None

    def drop_version(self, name: str, version: int) -> list[DataObject]:
        """Remove and return every object of ``name``/``version``."""
        return self._buckets.pop((name, version), [])
