"""The in-transit staging area: resizable core pool executing analysis jobs.

This is the execution half of the staging substrate.  Each workflow time
step placed in-transit becomes an :class:`AnalysisJob`: its data is
ingested over the simulated network (asynchronously -- the simulation
does not wait), held in staging memory, and processed FIFO by the staging
cores.  A job runs data-parallel across all *active* cores, so its
service time is ``work_units / (core_rate * M)`` -- the paper's
``T_intransit(M, S_data)``.

The area tracks exactly what the paper's policies and metrics consume:

- :meth:`estimated_remaining_time` -- ``T_intransit_remaining`` for the
  middleware placement policy (Eq. 7);
- busy/allocated core-second integrals -- utilization efficiency (Eq. 12);
- per-job ingest byte counts -- total data movement (Figs. 8, 11);
- :meth:`set_active_cores` -- the resource-layer actuator (Eq. 9-10).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import StagingError
from repro.hpc.event import Event, Interrupt, Simulator
from repro.hpc.network import Network
from repro.hpc.resources import Store
from repro.observability.events import (
    STAGING_INGEST,
    STAGING_JOB_ABORT,
    STAGING_JOB_END,
    STAGING_JOB_START,
    STAGING_RESIZE,
    STAGING_RETRY,
    STAGING_SUBMIT,
)
from repro.staging.messaging import RetryPolicy, retry_with_backoff
from repro.observability.ledger import PredictionLedger
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer

__all__ = ["AnalysisJob", "StagingArea"]


@dataclass(eq=False)
class AnalysisJob:
    """One in-transit analysis task (typically: one time step's data)."""

    job_id: int
    step: int
    nbytes: float
    work_units: float
    submitted_at: float
    ingest_done: Event
    done: Event
    started_at: float | None = None
    finished_at: float | None = None
    cores_used: int = 0

    @property
    def queue_delay(self) -> float | None:
        """Time between submission and service start (None until started)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


@dataclass
class _CoreSample:
    """Active core count over a time interval (for Table 2)."""

    start: float
    cores: int


class StagingArea:
    """A pool of staging cores fed by asynchronous ingest transfers.

    Parameters
    ----------
    sim:
        Event simulator.
    network:
        The machine network; ingest transfers go ``src_endpoint ->
        dst_endpoint``.
    core_rate:
        Work units per second per core (same calibration as the machine).
    total_cores:
        Physically allocated staging cores (the static preallocation).
    active_cores:
        Cores initially enabled (resource adaptation may change this).
    memory_bytes:
        Staging memory for in-flight step data (Eq. 10's constraint).
    tracer, metrics, ledger:
        Optional observability hooks; when injected, submissions, ingest
        completions, job service boundaries and core resizes emit
        ``staging.*`` events and publish counters/gauges, and each
        submission resolves the middleware layer's pending
        ``memory_demand`` prediction with the bytes actually ingested.
    faults:
        Optional :class:`repro.faults.FaultInjector`.  When attached, the
        area can lose and regain cores (:meth:`fail_cores` /
        :meth:`restore_cores`), ingest attempts the plan marks as dropped
        are retried under ``retry_policy``, corrupted analyses re-run from
        the staged copy, and straggler windows stretch service times.
        When ``None`` (the default) every code path is byte-identical to
        the fault-free area.
    retry_policy:
        Bounded-backoff policy for faulted ingest attempts (only consulted
        when a fault plan drops objects).
    profiler:
        Optional :class:`~repro.observability.Profiler`; when injected,
        each submission runs under a ``staging.submit`` span and each
        job's completion bookkeeping under ``staging.drain`` -- real
        wall-clock cost of the staging service, not simulated time.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        core_rate: float,
        total_cores: int,
        active_cores: int | None = None,
        memory_bytes: float = float("inf"),
        src_endpoint: str = "sim",
        dst_endpoint: str = "staging",
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        ledger: PredictionLedger | None = None,
        faults=None,
        retry_policy: RetryPolicy | None = None,
        profiler=None,
    ):
        if total_cores < 1:
            raise StagingError(f"need at least one staging core, got {total_cores}")
        if core_rate <= 0:
            raise StagingError(f"core_rate must be positive, got {core_rate}")
        self.sim = sim
        self.network = network
        self.core_rate = float(core_rate)
        self.total_cores = int(total_cores)
        self._active_cores = int(active_cores if active_cores is not None else total_cores)
        if not (1 <= self._active_cores <= self.total_cores):
            raise StagingError(
                f"active cores {self._active_cores} outside [1, {total_cores}]"
            )
        self.memory_total = float(memory_bytes)
        self.memory_used = 0.0
        self.src = src_endpoint
        self.dst = dst_endpoint
        self.tracer = tracer
        self.metrics = metrics
        self.ledger = ledger
        self.faults = faults
        self.profiler = profiler
        # Cached reusable handles: submit/drain run per staged step, and a
        # per-call profiler.span() lookup is measurable there.  Safe to
        # share across in-flight jobs: neither span crosses a simulator
        # yield, so entries never overlap.
        if profiler is None:
            self._submit_span = self._drain_span = None
        else:
            self._submit_span = profiler.span("staging.submit")
            self._drain_span = profiler.span("staging.drain")
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._failed_cores = 0
        self._restored: Event | None = None

        self._ids = itertools.count()
        self._queue: Store = Store(sim, name="staging-jobs")
        self._queued_work = 0.0
        self._running: AnalysisJob | None = None
        self._running_ends_at = 0.0
        self.completed: list[AnalysisJob] = []
        self.bytes_ingested = 0.0

        # Utilization accounting (Eq. 12): integrals of busy and allocated
        # core-seconds, plus the active-core history for Table 2.
        self._busy_core_seconds = 0.0
        self._alloc_last_change = sim.now
        self._alloc_core_seconds = 0.0
        self.core_history: list[_CoreSample] = [_CoreSample(sim.now, self._active_cores)]

        self._worker = sim.process(self._serve(), name="staging-worker")
        if faults is not None:
            faults.attach_staging(self)

    # -- resource-layer actuator ------------------------------------------------

    @property
    def active_cores(self) -> int:
        """Cores currently enabled for analysis."""
        return self._active_cores

    def set_active_cores(self, count: int) -> None:
        """Resize the enabled core count (takes effect for subsequent jobs)."""
        if not (1 <= count <= self.total_cores):
            raise StagingError(
                f"active core count {count} outside [1, {self.total_cores}]"
            )
        if self._failed_cores:
            # Failed cores cannot be enabled; clamp silently so the
            # resource layer's sizing still applies after a core loss.
            # At a total blackout the nominal active set is one core --
            # service is suspended, so it is never used, and a resize
            # racing the fault window cannot resurrect dead capacity.
            count = min(count, max(1, self.healthy_cores))
        previous = self._active_cores
        self._account_alloc()
        self._active_cores = int(count)
        self.core_history.append(_CoreSample(self.sim.now, count))
        if self.metrics is not None:
            self.metrics.gauge("staging.active_cores").set(count)
        if self.tracer is not None and self.tracer.enabled and count != previous:
            self.tracer.emit(STAGING_RESIZE, cores=count, previous=previous)
        self._check_invariants()

    def _account_alloc(self) -> None:
        now = self.sim.now
        # During a blackout (no healthy cores) nothing is effectively
        # allocated; with no faults this is exactly the active count.
        effective = self._active_cores if self.reachable else 0
        self._alloc_core_seconds += effective * (now - self._alloc_last_change)
        self._alloc_last_change = now

    # -- fault surface -----------------------------------------------------------

    @property
    def failed_cores(self) -> int:
        """Cores currently dead (0 unless a fault plan killed some)."""
        return self._failed_cores

    @property
    def healthy_cores(self) -> int:
        """Physically usable cores: ``total_cores - failed_cores``."""
        return self.total_cores - self._failed_cores

    @property
    def reachable(self) -> bool:
        """False only during a total staging blackout (every core dead)."""
        return self._failed_cores < self.total_cores

    def fail_cores(self, count: int) -> int:
        """Kill up to ``count`` staging cores; returns how many actually died.

        The active set is clamped to the surviving cores, and a running
        job that loses cores it was using aborts and re-runs from its
        staged copy once cores are available again.
        """
        if count < 1:
            raise StagingError(f"fail_cores needs count >= 1, got {count}")
        killed = min(count, self.healthy_cores)
        if killed == 0:
            return 0
        self._account_alloc()
        self._failed_cores += killed
        if self._active_cores > max(1, self.healthy_cores):
            self.set_active_cores(max(1, self.healthy_cores))
        if self._running is not None and self._running.cores_used > self.healthy_cores:
            self._worker.interrupt("core loss")
        self._check_invariants()
        return killed

    def restore_cores(self, count: int) -> int:
        """Return up to ``count`` failed cores; returns how many came back.

        Restored cores rejoin as allocated-but-inactive; the resource
        layer re-enables them on its next resize.  If the area was
        unreachable, service resumes and aborted work re-runs.
        """
        if count < 1:
            raise StagingError(f"restore_cores needs count >= 1, got {count}")
        revived = min(count, self._failed_cores)
        if revived == 0:
            return 0
        was_unreachable = not self.reachable
        self._account_alloc()
        self._failed_cores -= revived
        if was_unreachable and self.reachable and self._restored is not None:
            restored, self._restored = self._restored, None
            restored.succeed()
        self._check_invariants()
        return revived

    def _check_invariants(self) -> None:
        """Core-accounting invariant, asserted after every mutation.

        ``active_cores <= healthy_cores <= total_cores`` whenever any
        core is healthy; during a total blackout the nominal active set
        is exactly one core (service is suspended, so it is never
        consulted).  A violation means a resize and a fault window
        interleaved incorrectly -- fail loudly rather than letting jobs
        run on more cores than physically exist.
        """
        if not 0 <= self._failed_cores <= self.total_cores:
            raise StagingError(
                f"failed core count {self._failed_cores} outside "
                f"[0, {self.total_cores}]"
            )
        if not 1 <= self._active_cores <= self.total_cores:
            raise StagingError(
                f"active core count {self._active_cores} outside "
                f"[1, {self.total_cores}]"
            )
        if self._active_cores > max(1, self.healthy_cores):
            raise StagingError(
                f"staging core invariant violated: active {self._active_cores} "
                f"> healthy {self.healthy_cores} (total {self.total_cores})"
            )

    # -- job submission -----------------------------------------------------------

    def service_time(self, work_units: float, cores: int | None = None) -> float:
        """``T_intransit(M, S_data)``: run time of a job on ``cores`` cores."""
        m = cores if cores is not None else self._active_cores
        if m < 1:
            raise StagingError(f"cores must be >= 1, got {m}")
        return work_units / (self.core_rate * m)

    def can_fit(self, nbytes: float) -> bool:
        """Eq. 10's memory check for the next step's data."""
        return self.memory_used + nbytes <= self.memory_total * (1 + 1e-9)

    def submit(self, step: int, nbytes: float, work_units: float) -> AnalysisJob:
        """Ingest a step's data asynchronously and queue its analysis.

        Raises :class:`StagingError` if staging memory cannot hold the
        data -- callers (the middleware policy) must check :meth:`can_fit`
        first; the paper falls back to in-situ in that case.
        """
        span = self._submit_span
        if span is not None:
            with span:
                return self._submit(step, nbytes, work_units)
        return self._submit(step, nbytes, work_units)

    def _submit(self, step: int, nbytes: float, work_units: float) -> AnalysisJob:
        if not self.reachable:
            raise StagingError(
                "staging unreachable: every staging core has failed"
            )
        if not self.can_fit(nbytes):
            raise StagingError(
                f"staging memory full: {self.memory_used:.0f} + {nbytes:.0f} "
                f"> {self.memory_total:.0f}"
            )
        if work_units < 0 or nbytes < 0:
            raise StagingError("job sizes must be non-negative")
        self.memory_used += nbytes
        self.bytes_ingested += nbytes
        job = AnalysisJob(
            job_id=next(self._ids),
            step=step,
            nbytes=nbytes,
            work_units=work_units,
            submitted_at=self.sim.now,
            ingest_done=self._ingest(step, nbytes),
            done=self.sim.event(name=f"analysis(step={step})"),
        )
        self._queued_work += work_units
        self._queue.put(job)
        if self.ledger is not None and self.ledger.has_pending("memory_demand", step):
            self.ledger.resolve("memory_demand", step, nbytes)
        if self.metrics is not None:
            self.metrics.counter("staging.jobs_submitted").inc()
            self.metrics.counter("staging.bytes_ingested").inc(nbytes)
            self.metrics.gauge("staging.memory_used").set(self.memory_used)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                STAGING_SUBMIT,
                step=step,
                job_id=job.job_id,
                nbytes=nbytes,
                work_units=work_units,
                memory_used=self.memory_used,
            )
            job.ingest_done.add_callback(
                lambda _evt, job=job: self._trace_ingest(job)
            )
        return job

    def _trace_ingest(self, job: AnalysisJob) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                STAGING_INGEST, step=job.step, job_id=job.job_id, nbytes=job.nbytes
            )

    def _ingest(self, step: int, nbytes: float) -> Event:
        """Start the ingest transfer, retrying under faults when planned.

        The returned event fires with the accepted
        :class:`~repro.hpc.network.Transfer`; on the fault-free path it is
        exactly the network's completion event.
        """
        if self.faults is None or not self.faults.may_drop(step):
            return self.network.transfer(self.src, self.dst, nbytes)

        def _attempt(_k: int) -> Event:
            return self.network.transfer(self.src, self.dst, nbytes)

        def _accept(_k: int, _transfer) -> bool:
            return not self.faults.consume_drop(step)

        def _on_retry(k: int, delay: float) -> None:
            if self.metrics is not None:
                self.metrics.counter("staging.retries").inc()
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.emit(
                    STAGING_RETRY,
                    step=step,
                    attempt=k + 1,
                    backoff_seconds=delay,
                    nbytes=nbytes,
                )

        return retry_with_backoff(
            self.sim,
            _attempt,
            self.retry_policy,
            accept=_accept,
            on_retry=_on_retry,
            describe=f"ingest(step={step})",
        )

    def _serve(self):
        while True:
            job: AnalysisJob = yield self._queue.get()
            # Data must have arrived before analysis can touch it.
            yield job.ingest_done
            self._queued_work -= job.work_units
            while True:
                if self.faults is not None and not self.reachable:
                    # Total blackout: hold the staged copy until cores
                    # return, then resume service.
                    self._restored = self.sim.event(name="staging-restored")
                    self._queued_work += job.work_units
                    yield self._restored
                    self._queued_work -= job.work_units
                cores = self._active_cores
                duration = self.service_time(job.work_units, cores)
                if self.faults is not None:
                    duration *= self.faults.service_multiplier(self.sim.now)
                job.started_at = self.sim.now
                job.cores_used = cores
                self._running = job
                self._running_ends_at = self.sim.now + duration
                if self.tracer is not None and self.tracer.enabled:
                    self.tracer.emit(
                        STAGING_JOB_START,
                        step=job.step,
                        job_id=job.job_id,
                        cores=cores,
                        queue_delay=job.queue_delay,
                        work_units=job.work_units,
                    )
                try:
                    yield self.sim.timeout(duration, kind="staging")
                except Interrupt as interrupt:
                    # Core loss aborted the pass; the partial service is
                    # real core time, and the job re-runs from the staged
                    # copy (analysis is idempotent).
                    elapsed = max(0.0, self.sim.now - job.started_at)
                    self._busy_core_seconds += cores * elapsed
                    self._running = None
                    if self.tracer is not None and self.tracer.enabled:
                        self.tracer.emit(
                            STAGING_JOB_ABORT,
                            step=job.step,
                            job_id=job.job_id,
                            cause=str(interrupt.cause),
                            lost_seconds=elapsed,
                        )
                    continue
                self._busy_core_seconds += cores * duration
                self._running = None
                if self.faults is not None and self.faults.consume_corrupt(job.step):
                    # At-rest corruption detected on completion: the result
                    # is discarded and the job re-runs from the staged copy.
                    continue
                break
            span = self._drain_span
            if span is not None:
                with span:
                    self._complete(job, duration)
            else:
                self._complete(job, duration)

    def _complete(self, job: AnalysisJob, duration: float) -> None:
        """Completion bookkeeping for one drained job (synchronous)."""
        job.finished_at = self.sim.now
        # Clamp: float residue must never drive the gauge negative.
        self.memory_used = max(0.0, self.memory_used - job.nbytes)
        self.completed.append(job)
        if self.metrics is not None:
            self.metrics.counter("staging.jobs_completed").inc()
            self.metrics.timer("staging.service_seconds").observe(duration)
            self.metrics.gauge("staging.memory_used").set(self.memory_used)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                STAGING_JOB_END,
                step=job.step,
                job_id=job.job_id,
                service_seconds=duration,
                memory_used=self.memory_used,
            )
        job.done.succeed(job)

    # -- state the policies observe ------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a job is running or queued (Fig. 4's 'busy' state)."""
        return self._running is not None or len(self._queue) > 0 or self._queued_work > 0

    @property
    def queue_depth(self) -> int:
        """Jobs waiting behind the one in service (a pressure indicator)."""
        return len(self._queue)

    def estimated_remaining_time(self) -> float:
        """``T_intransit_remaining``: time to drain running + queued work."""
        remaining = 0.0
        if self._running is not None:
            remaining += max(0.0, self._running_ends_at - self.sim.now)
        remaining += self._queued_work / (self.core_rate * self._active_cores)
        return remaining

    def utilization_efficiency(self) -> float:
        """Eq. 12: busy core-seconds over allocated core-seconds."""
        self._account_alloc()
        if self._alloc_core_seconds == 0:
            return 0.0
        return self._busy_core_seconds / self._alloc_core_seconds

    def idle_time(self) -> float:
        """Allocated-but-idle core-seconds (the waste adaptive allocation cuts)."""
        self._account_alloc()
        return self._alloc_core_seconds - self._busy_core_seconds

    def busy_core_seconds(self) -> float:
        """Core-seconds spent executing analysis."""
        return self._busy_core_seconds

    def allocated_core_seconds(self) -> float:
        """Core-seconds of active allocation so far."""
        self._account_alloc()
        return self._alloc_core_seconds
