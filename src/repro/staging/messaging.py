"""Topic-based publish/subscribe over the shared space.

Mirrors the messaging layer the authors built on DataSpaces ("a scalable
messaging system for accelerating discovery from large scale scientific
simulations"): subscribers register interest in a topic and receive every
message published after their subscription, in order, as waitable events.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any

from repro.errors import StagingError
from repro.hpc.event import Simulator
from repro.hpc.resources import Store

__all__ = ["MessageBus", "Subscription"]


@dataclass(eq=False)
class Subscription:
    """One subscriber's ordered message queue."""

    topic: str
    _queue: Store

    def get(self):
        """Waitable event firing with the next message on this topic."""
        return self._queue.get()

    def pending(self) -> int:
        """Messages delivered but not yet consumed."""
        return len(self._queue)


class MessageBus:
    """Fan-out pub/sub: each message is delivered to every subscriber."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._subs: dict[str, list[Subscription]] = defaultdict(list)
        self.published: dict[str, int] = defaultdict(int)

    def subscribe(self, topic: str) -> Subscription:
        """Register a new subscriber on ``topic``."""
        if not topic:
            raise StagingError("topic must be non-empty")
        sub = Subscription(topic, Store(self.sim, name=f"sub({topic})"))
        self._subs[topic].append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Remove a subscriber; its queued messages remain readable."""
        subs = self._subs.get(sub.topic, [])
        try:
            subs.remove(sub)
        except ValueError:
            raise StagingError(f"subscription not active on {sub.topic!r}") from None

    def publish(self, topic: str, message: Any) -> int:
        """Deliver ``message`` to all current subscribers; returns fan-out."""
        subs = self._subs.get(topic, [])
        for sub in subs:
            sub._queue.put(message)
        self.published[topic] += 1
        return len(subs)
