"""Topic-based publish/subscribe over the shared space.

Mirrors the messaging layer the authors built on DataSpaces ("a scalable
messaging system for accelerating discovery from large scale scientific
simulations"): subscribers register interest in a topic and receive every
message published after their subscription, in order, as waitable events.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import StagingError
from repro.hpc.event import Event, Process, Simulator
from repro.hpc.resources import Store

__all__ = ["MessageBus", "RetryPolicy", "Subscription", "retry_with_backoff"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for staging operations.

    Attempt ``k`` (0-based) that fails is retried after
    ``base_delay * backoff_factor ** k`` simulated seconds, up to
    ``max_attempts`` total attempts.  ``timeout`` bounds the whole
    operation (attempts plus backoff) in simulated seconds; exceeding
    either bound raises :class:`~repro.errors.StagingError`.
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    backoff_factor: float = 2.0
    timeout: float = float("inf")

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise StagingError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise StagingError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.backoff_factor < 1.0:
            raise StagingError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.timeout <= 0:
            raise StagingError(f"timeout must be positive, got {self.timeout}")

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after the (0-based) failed ``attempt``."""
        return self.base_delay * self.backoff_factor ** attempt


def retry_with_backoff(
    sim: Simulator,
    attempt: Callable[[int], Event],
    policy: RetryPolicy,
    accept: Callable[[int, Any], bool] | None = None,
    on_retry: Callable[[int, float], None] | None = None,
    describe: str = "staging operation",
) -> Process:
    """Run ``attempt(k)`` under ``policy``; the process's value is the result.

    Each attempt returns a waitable :class:`Event`; the attempt fails when
    the event fails, or when ``accept(k, value)`` returns False (a
    detected corruption rather than a raised error).  ``on_retry(k,
    delay)`` is invoked before each backoff sleep, so callers can emit
    trace events and count retries.  Exhausting ``max_attempts`` or
    ``policy.timeout`` raises :class:`~repro.errors.StagingError`.
    """

    def _runner():
        started = sim.now
        last_error: BaseException | None = None
        # The two exits are distinct: ``timed_out`` is set only when the
        # deadline cut the loop short (before an attempt, or before a
        # backoff sleep).  A final attempt that merely *consumed* time
        # past the deadline still counts as exhaustion -- every
        # configured attempt ran.
        timed_out = False
        attempts_run = 0
        for k in range(policy.max_attempts):
            if sim.now - started >= policy.timeout:
                timed_out = True
                break
            attempts_run += 1
            try:
                value = yield attempt(k)
            except StagingError as error:
                last_error = error
            else:
                if accept is None or accept(k, value):
                    return value
                last_error = StagingError(
                    f"{describe}: attempt {k + 1} rejected (corrupt result)"
                )
            if k + 1 >= policy.max_attempts:
                break
            delay = policy.delay(k)
            if sim.now - started + delay >= policy.timeout:
                timed_out = True
                break
            if on_retry is not None:
                on_retry(k, delay)
            yield sim.timeout(delay)
        if timed_out:
            raise StagingError(
                f"{describe}: retry timeout after {sim.now - started:g}s "
                f"(policy timeout {policy.timeout:g}s, "
                f"{attempts_run} of {policy.max_attempts} attempts ran)"
            ) from last_error
        raise StagingError(
            f"{describe}: retries exhausted after {policy.max_attempts} attempts"
        ) from last_error

    return sim.process(_runner(), name=f"retry({describe})")


@dataclass(eq=False)
class Subscription:
    """One subscriber's ordered message queue."""

    topic: str
    _queue: Store

    def get(self):
        """Waitable event firing with the next message on this topic."""
        return self._queue.get()

    def pending(self) -> int:
        """Messages delivered but not yet consumed."""
        return len(self._queue)


class MessageBus:
    """Fan-out pub/sub: each message is delivered to every subscriber."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._subs: dict[str, list[Subscription]] = defaultdict(list)
        self.published: dict[str, int] = defaultdict(int)

    def subscribe(self, topic: str) -> Subscription:
        """Register a new subscriber on ``topic``."""
        if not topic:
            raise StagingError("topic must be non-empty")
        sub = Subscription(topic, Store(self.sim, name=f"sub({topic})"))
        self._subs[topic].append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Remove a subscriber; its queued messages remain readable."""
        subs = self._subs.get(sub.topic, [])
        try:
            subs.remove(sub)
        except ValueError:
            raise StagingError(f"subscription not active on {sub.topic!r}") from None

    def publish(self, topic: str, message: Any) -> int:
        """Deliver ``message`` to all current subscribers; returns fan-out."""
        subs = self._subs.get(topic, [])
        for sub in subs:
            sub._queue.put(message)
        self.published[topic] += 1
        return len(subs)
