"""Typed discrete-event kernel: the engine under :mod:`repro.hpc.event`.

This module is the *engine layer* of the stack documented in
``docs/kernel.md``: a domain-agnostic event core with no knowledge of
workflows, staging or policies.  It owns exactly four things:

- **Typed event records.**  Every scheduled occurrence is a
  ``(time, seq, kind, payload)`` record.  ``kind`` is a small integer
  code drawn from the :data:`KERNEL_EVENT_KINDS` registry (``control``,
  ``timer``, ``compute``, ``transfer``, ``staging``, ...), so the engine
  can count, group and batch events without inspecting payloads.
- **An array-backed binary heap** (:class:`EventHeap`): four parallel
  NumPy arrays -- ``times`` (float64), ``seqs`` (int64), ``kinds``
  (int32), ``payloads`` (int64 slot indices) -- ordered by
  ``(time, seq)``.  ``seq`` increases monotonically with submission, so
  same-timestamp events pop in submission order; :class:`EventHeap` and
  the heapq-based :class:`ReferenceEventHeap` oracle produce *identical*
  orderings (the property suite replays random event soups on both).
- **First-class cheap counters** (:class:`KernelCounters`): per-kind
  scheduled/processed tallies plus named counters, each a plain integer
  increment -- always on, no observability hook required.
- **An injected RNG**: :class:`EventKernel` owns a
  ``numpy.random.Generator`` so stochastic domains draw from a seeded,
  replaceable stream instead of global state.

Batching: event kinds registered with ``batched=True`` are *eligible*
for batch dispatch.  :meth:`EventKernel.run` pops a maximal run of
events sharing one ``(time, kind)`` and hands the whole payload batch to
the kind's handler in a single call (NumPy-style: one Python dispatch
for N events).  The :class:`~repro.hpc.event.Simulator` adapter never
uses batch dispatch -- it drives :meth:`EventKernel.dispatch_next` one
event at a time so closure semantics (orphan-failure barriers between
events) stay bit-identical with the pre-kernel implementation.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "KERNEL_EVENT_KINDS",
    "EventHeap",
    "EventKernel",
    "KernelCounters",
    "ReferenceEventHeap",
    "batched_event_kinds",
    "event_kind_code",
    "event_kind_name",
    "register_event_kind",
]


#: Every registered event kind, ``name -> description``.  Codes are the
#: insertion order (``control`` is 0).  ``docs/kernel.md`` documents each
#: and ``TestKernelDocs`` keeps the table in sync with this registry.
KERNEL_EVENT_KINDS: dict[str, str] = {}

_KIND_CODES: dict[str, int] = {}
_KIND_NAMES: list[str] = []
_KIND_BATCHED: list[bool] = []


def register_event_kind(name: str, description: str, *, batched: bool = False) -> int:
    """Register an event kind; returns its integer code.

    ``batched=True`` marks the kind *eligible* for batch dispatch in
    :meth:`EventKernel.run` (a handler registration may still opt out).
    Codes are assigned by registration order and never reused.
    """
    if not name or not description.strip():
        raise SimulationError("event kinds need a name and a description")
    if name in _KIND_CODES:
        raise SimulationError(f"event kind {name!r} already registered")
    code = len(_KIND_NAMES)
    KERNEL_EVENT_KINDS[name] = description
    _KIND_CODES[name] = code
    _KIND_NAMES.append(name)
    _KIND_BATCHED.append(bool(batched))
    return code


def event_kind_code(name: str) -> int:
    """The integer code of a registered kind name."""
    try:
        return _KIND_CODES[name]
    except KeyError:
        raise SimulationError(f"unknown event kind {name!r}") from None


def event_kind_name(code: int) -> str:
    """The registered name of an integer kind code."""
    if 0 <= code < len(_KIND_NAMES):
        return _KIND_NAMES[code]
    raise SimulationError(f"unknown event kind code {code}")


def batched_event_kinds() -> tuple[str, ...]:
    """Names of kinds registered as eligible for batch dispatch."""
    return tuple(
        name for name, batched in zip(_KIND_NAMES, _KIND_BATCHED) if batched
    )


#: The engine's own bookkeeping events: process starts and resumes,
#: event-callback deliveries, combinator wake-ups.
CONTROL = register_event_kind(
    "control",
    "engine bookkeeping: process starts/resumes, event-callback "
    "deliveries and combinator wake-ups",
)
#: A plain :class:`~repro.hpc.event.Timeout` firing.
TIMER = register_event_kind(
    "timer",
    "a plain Timeout firing (untagged simulated delays)",
)
#: Simulation/analysis compute intervals (the workflow driver's step,
#: reduction and analysis timeouts).
COMPUTE = register_event_kind(
    "compute",
    "a compute interval completing: simulation steps, reductions and "
    "analysis passes",
    batched=True,
)
#: Network flow-set changes (admissions, wake-ups, zero-size finishes).
TRANSFER = register_event_kind(
    "transfer",
    "a network flow-set change: flow admission, completion wake-up or "
    "zero-size finish",
    batched=True,
)
#: Staging service intervals.
STAGING = register_event_kind(
    "staging",
    "a staging service interval completing (one analysis job's pass)",
    batched=True,
)


_EMPTY_POP = "pop from an empty event heap"


class EventHeap:
    """Array-backed binary min-heap of typed event records.

    Four parallel NumPy arrays hold the records::

        times    float64  -- simulated firing time
        seqs     int64    -- monotonically increasing submission sequence
        kinds    int32    -- event-kind code (KERNEL_EVENT_KINDS order)
        payloads int64    -- payload slot index (opaque to the heap)

    Ordering is lexicographic on ``(time, seq)``.  Because ``seq`` is
    strictly increasing, same-timestamp records pop in submission order
    -- the determinism contract the simulator documents and the property
    suite cross-checks against :class:`ReferenceEventHeap`.

    ``peak_size`` tracks the high-water record count (capacity planning
    for the scaling benchmarks).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise SimulationError(f"heap capacity must be >= 1, got {capacity}")
        self._times = np.empty(capacity, dtype=np.float64)
        self._seqs = np.empty(capacity, dtype=np.int64)
        self._kinds = np.empty(capacity, dtype=np.int32)
        self._payloads = np.empty(capacity, dtype=np.int64)
        self._size = 0
        self._next_seq = 0
        self.peak_size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Current backing-array length (doubles on demand)."""
        return self._times.shape[0]

    def _grow(self, need: int) -> None:
        new = self._times.shape[0]
        while new < need:
            new *= 2
        for name in ("_times", "_seqs", "_kinds", "_payloads"):
            old = getattr(self, name)
            fresh = np.empty(new, dtype=old.dtype)
            fresh[: self._size] = old[: self._size]
            setattr(self, name, fresh)

    def push(self, time: float, kind: int, payload: int) -> int:
        """Insert one record; returns its submission sequence number."""
        n = self._size
        t = self._times
        if n == t.shape[0]:
            self._grow(n + 1)
            t = self._times
        s, k, p = self._seqs, self._kinds, self._payloads
        seq = self._next_seq
        self._next_seq = seq + 1
        # Sift up.  The new seq is larger than every stored seq, so a
        # time tie keeps the parent in place: compare times only.
        i = n
        while i > 0:
            parent = (i - 1) >> 1
            if t[parent] <= time:
                break
            t[i] = t[parent]
            s[i] = s[parent]
            k[i] = k[parent]
            p[i] = p[parent]
            i = parent
        t[i] = time
        s[i] = seq
        k[i] = kind
        p[i] = payload
        self._size = n + 1
        if self._size > self.peak_size:
            self.peak_size = self._size
        return seq

    def push_batch(
        self,
        times: np.ndarray | Sequence[float] | float,
        kind: int,
        payloads: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        """Insert many same-kind records in one vectorized pass.

        ``times`` may be a scalar (broadcast over ``payloads``) or an
        array of equal length.  Sequence numbers are assigned in array
        order, so batch order *is* submission order.  The heap invariant
        is restored with one ``numpy.lexsort`` over ``(time, seq)`` --
        a sorted array is a valid binary heap -- which is far cheaper
        than Python-level sifting for large batches.
        """
        payloads = np.ascontiguousarray(payloads, dtype=np.int64)
        if payloads.ndim != 1:
            raise SimulationError("push_batch payloads must be 1-D")
        m = payloads.shape[0]
        times = np.broadcast_to(
            np.asarray(times, dtype=np.float64), (m,)
        )
        if m == 0:
            return np.empty(0, dtype=np.int64)
        need = self._size + m
        if need > self._times.shape[0]:
            self._grow(need)
        n = self._size
        seqs = np.arange(self._next_seq, self._next_seq + m, dtype=np.int64)
        self._next_seq += m
        self._times[n:need] = times
        self._seqs[n:need] = seqs
        self._kinds[n:need] = kind
        self._payloads[n:need] = payloads
        order = np.lexsort((self._seqs[:need], self._times[:need]))
        self._times[:need] = self._times[:need][order]
        self._seqs[:need] = self._seqs[:need][order]
        self._kinds[:need] = self._kinds[:need][order]
        self._payloads[:need] = self._payloads[:need][order]
        self._size = need
        if need > self.peak_size:
            self.peak_size = need
        return seqs

    def peek_time(self) -> float:
        """Firing time of the next record, ``inf`` when empty."""
        return float(self._times[0]) if self._size else math.inf

    def peek_kind(self) -> int:
        """Kind code of the next record, ``-1`` when empty."""
        return int(self._kinds[0]) if self._size else -1

    def pop(self) -> tuple[float, int, int, int]:
        """Remove and return the next ``(time, seq, kind, payload)``."""
        n = self._size
        if n == 0:
            raise SimulationError(_EMPTY_POP)
        t, s, k, p = self._times, self._seqs, self._kinds, self._payloads
        record = (float(t[0]), int(s[0]), int(k[0]), int(p[0]))
        n -= 1
        self._size = n
        if n:
            lt, ls, lk, lp = t[n], s[n], k[n], p[n]
            i = 0
            child = 1
            while child < n:
                right = child + 1
                if right < n and (
                    t[right] < t[child]
                    or (t[right] == t[child] and s[right] < s[child])
                ):
                    child = right
                tc = t[child]
                if tc < lt or (tc == lt and s[child] < ls):
                    t[i] = tc
                    s[i] = s[child]
                    k[i] = k[child]
                    p[i] = p[child]
                    i = child
                    child = 2 * i + 1
                else:
                    break
            t[i] = lt
            s[i] = ls
            k[i] = lk
            p[i] = lp
        return record

    #: Runs at or below this length pop record-by-record; longer runs
    #: take the vectorized extract-and-rebuild path.  Scalar pops cost
    #: O(run * log n) Python-level sifts; the vectorized path costs one
    #: O(n log n) NumPy lexsort of the survivors, so it only wins once
    #: the run is a few dozen records.
    _RUN_SCALAR_MAX = 32

    def pop_run(self) -> tuple[float, int, np.ndarray, np.ndarray]:
        """Pop the maximal run of records sharing the top ``(time, kind)``.

        Returns ``(time, kind, seqs, payloads)`` with the arrays in
        submission order -- the unit of batch dispatch.  Large runs (the
        64K-1M virtual-rank event bursts the scaling benchmarks admit
        with :meth:`push_batch`) are extracted in one vectorized pass:
        select every record at the top timestamp, order by ``seq``, cut
        at the first kind change, and re-heapify the survivors with one
        ``numpy.lexsort`` -- never a Python-level sift per record.
        """
        n = self._size
        if n == 0:
            raise SimulationError(_EMPTY_POP)
        time = float(self._times[0])
        kind = int(self._kinds[0])
        at_t = np.flatnonzero(self._times[:n] == time)
        take = None
        if at_t.shape[0] > self._RUN_SCALAR_MAX:
            ordered = at_t[np.argsort(self._seqs[at_t])]
            mismatch = np.flatnonzero(self._kinds[ordered] != kind)
            stop = int(mismatch[0]) if mismatch.shape[0] else ordered.shape[0]
            if stop > self._RUN_SCALAR_MAX:
                take = ordered[:stop]
        if take is None:
            # Short run: record-by-record sifts are cheaper than a
            # full rebuild of the survivor arrays.
            _, seq, _, payload = self.pop()
            seqs = [seq]
            payloads = [payload]
            while (
                self._size
                and self._times[0] == time
                and self._kinds[0] == kind
            ):
                _, s2, _, p2 = self.pop()
                seqs.append(s2)
                payloads.append(p2)
            return (
                time,
                kind,
                np.asarray(seqs, dtype=np.int64),
                np.asarray(payloads, dtype=np.int64),
            )
        run_seqs = self._seqs[take].copy()
        run_payloads = self._payloads[take].copy()
        keep = np.ones(n, dtype=bool)
        keep[take] = False
        times = self._times[:n][keep]
        seqs = self._seqs[:n][keep]
        kinds = self._kinds[:n][keep]
        payloads = self._payloads[:n][keep]
        order = np.lexsort((seqs, times))
        m = times.shape[0]
        self._times[:m] = times[order]
        self._seqs[:m] = seqs[order]
        self._kinds[:m] = kinds[order]
        self._payloads[:m] = payloads[order]
        self._size = m
        return (time, kind, run_seqs, run_payloads)


class ReferenceEventHeap:
    """The heapq-based oracle with :class:`EventHeap`'s exact API.

    Kept per the reference-implementation testing pattern: tuples
    ``(time, seq, kind, payload)`` on :mod:`heapq` reproduce the
    pre-kernel simulator's ordering exactly (``seq`` is unique, so
    comparison never reaches ``kind``).  The property suite replays the
    same event soups on both heaps and asserts identical pop sequences;
    ``EventKernel.heap_class`` lets integration tests run entire
    workflows on this heap and diff the traces byte-for-byte.
    """

    def __init__(self, capacity: int = 256):
        self._heap: list[tuple[float, int, int, int]] = []
        self._next_seq = 0
        self.peak_size = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def capacity(self) -> int:
        return max(len(self._heap), 1)

    def push(self, time: float, kind: int, payload: int) -> int:
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._heap, (float(time), seq, int(kind), int(payload)))
        if len(self._heap) > self.peak_size:
            self.peak_size = len(self._heap)
        return seq

    def push_batch(self, times, kind, payloads) -> np.ndarray:
        payloads = np.ascontiguousarray(payloads, dtype=np.int64)
        if payloads.ndim != 1:
            raise SimulationError("push_batch payloads must be 1-D")
        times = np.broadcast_to(
            np.asarray(times, dtype=np.float64), payloads.shape
        )
        return np.asarray(
            [self.push(t, kind, p) for t, p in zip(times, payloads)],
            dtype=np.int64,
        )

    def peek_time(self) -> float:
        return self._heap[0][0] if self._heap else math.inf

    def peek_kind(self) -> int:
        return self._heap[0][2] if self._heap else -1

    def pop(self) -> tuple[float, int, int, int]:
        if not self._heap:
            raise SimulationError(_EMPTY_POP)
        return heapq.heappop(self._heap)

    def pop_run(self) -> tuple[float, int, np.ndarray, np.ndarray]:
        time, seq, kind, payload = self.pop()
        seqs = [seq]
        payloads = [payload]
        while self._heap and self._heap[0][0] == time and self._heap[0][2] == kind:
            _, s2, _, p2 = self.pop()
            seqs.append(s2)
            payloads.append(p2)
        return (
            time,
            kind,
            np.asarray(seqs, dtype=np.int64),
            np.asarray(payloads, dtype=np.int64),
        )


class KernelCounters:
    """Always-on integer tallies: the kernel's first-class cheap metrics.

    Per-kind ``scheduled``/``processed`` lists are indexed by kind code;
    ``batches`` counts batch dispatches; :meth:`inc` maintains arbitrary
    named counters.  Every update is one integer add, cheap enough to
    leave on unconditionally (unlike the injected observability hooks).
    """

    __slots__ = ("scheduled", "processed", "batches", "named")

    def __init__(self) -> None:
        n = len(_KIND_NAMES)
        self.scheduled = [0] * n
        self.processed = [0] * n
        self.batches = 0
        self.named: dict[str, int] = {}

    def _ensure(self, code: int) -> None:
        while len(self.scheduled) <= code:
            self.scheduled.append(0)
            self.processed.append(0)

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        self.named[name] = self.named.get(name, 0) + amount

    @property
    def total_scheduled(self) -> int:
        """Events scheduled across every kind."""
        return sum(self.scheduled)

    @property
    def total_processed(self) -> int:
        """Events dispatched across every kind."""
        return sum(self.processed)

    def scheduled_by_kind(self) -> dict[str, int]:
        """``kind name -> scheduled count`` (registered kinds only)."""
        return {
            name: self.scheduled[code]
            for code, name in enumerate(_KIND_NAMES)
            if code < len(self.scheduled)
        }

    def processed_by_kind(self) -> dict[str, int]:
        """``kind name -> processed count`` (registered kinds only)."""
        return {
            name: self.processed[code]
            for code, name in enumerate(_KIND_NAMES)
            if code < len(self.processed)
        }

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly snapshot of every tally."""
        return {
            "scheduled": self.scheduled_by_kind(),
            "processed": self.processed_by_kind(),
            "batches": self.batches,
            "named": dict(self.named),
        }


class EventKernel:
    """The pure engine: clock + heap + payload table + handlers.

    Parameters
    ----------
    rng:
        Seed or ``numpy.random.Generator`` for stochastic domains.  The
        kernel never draws from it itself; owning it here gives every
        domain one seeded, injectable stream (``kernel.rng``).
    profiler:
        Optional :class:`~repro.observability.Profiler`.  Only the
        batched dispatch path opens spans (``kernel.dispatch``); the
        one-event :meth:`dispatch_next` path stays span-free because the
        simulator adapter already wraps its loop in ``sim.run``.
    heap:
        An explicit heap instance; defaults to ``heap_class()``.

    The class attribute :attr:`heap_class` is the heap factory --
    integration tests swap in :class:`ReferenceEventHeap` to replay a
    whole workflow on the oracle heap and compare traces byte-for-byte.
    """

    #: Factory for the event heap; tests swap in ReferenceEventHeap.
    heap_class: type = EventHeap

    def __init__(self, rng: Any = None, profiler: Any = None, heap: Any = None):
        self.now = 0.0
        self.heap = heap if heap is not None else self.heap_class()
        self.counters = KernelCounters()
        self.rng = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        self.profiler = profiler
        self._dispatch_span = (
            None if profiler is None else profiler.span("kernel.dispatch")
        )
        # Payload slot table with a free list: heap records carry int64
        # slot indices, so arbitrary Python payloads ride along without
        # entering the NumPy arrays.
        self._payloads: list[Any] = []
        self._free: list[int] = []
        # kind code -> (handler, batch) or None.
        self._handlers: list[tuple[Callable, bool] | None] = [None] * len(_KIND_NAMES)

    def __len__(self) -> int:
        return len(self.heap)

    # -- handlers ----------------------------------------------------------

    def on(self, kind: int | str, handler: Callable, batch: bool | None = None) -> None:
        """Register ``handler`` for an event kind.

        With ``batch=False`` (or for kinds not registered as batched)
        the handler is called once per event as ``handler(payload)``.
        With ``batch=True`` it receives a whole same-``(time, kind)``
        run as ``handler(payloads)`` (a list, submission-ordered).
        ``batch=None`` defers to the kind's registry eligibility.
        """
        code = kind if isinstance(kind, int) else event_kind_code(kind)
        if not (0 <= code < len(_KIND_NAMES)):
            raise SimulationError(f"unknown event kind code {code}")
        while len(self._handlers) <= code:
            self._handlers.append(None)
        if batch is None:
            batch = _KIND_BATCHED[code]
        self._handlers[code] = (handler, bool(batch))

    # -- scheduling --------------------------------------------------------

    def _store(self, payload: Any) -> int:
        free = self._free
        if free:
            slot = free.pop()
            self._payloads[slot] = payload
        else:
            slot = len(self._payloads)
            self._payloads.append(payload)
        return slot

    def _take(self, slot: int) -> Any:
        payloads = self._payloads
        payload = payloads[slot]
        payloads[slot] = None
        self._free.append(slot)
        return payload

    def _store_batch(self, payloads: Sequence[Any]) -> np.ndarray:
        """Slot a whole batch: reuse the free-list tail, extend for the rest."""
        table = self._payloads
        free = self._free
        m = len(payloads)
        slots = np.empty(m, dtype=np.int64)
        reuse = min(len(free), m)
        if reuse:
            reused = free[len(free) - reuse:]
            del free[len(free) - reuse:]
            slots[:reuse] = reused
            for slot, payload in zip(reused, payloads):
                table[slot] = payload
        base = len(table)
        table.extend(payloads[reuse:])
        slots[reuse:] = np.arange(base, base + (m - reuse), dtype=np.int64)
        return slots

    def _take_batch(self, slots: np.ndarray) -> list[Any]:
        table = self._payloads
        idx = slots.tolist()
        out = [table[s] for s in idx]
        for s in idx:
            table[s] = None
        self._free.extend(idx)
        return out

    def schedule(self, when: float, kind: int, payload: Any = None) -> int:
        """Schedule one event; returns its sequence number.

        ``kind`` must be an integer code (resolve names once with
        :func:`event_kind_code`; this is the per-event hot path).
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past ({when} < {self.now})"
            )
        counters = self.counters
        try:
            counters.scheduled[kind] += 1
        except IndexError:
            counters._ensure(kind)
            counters.scheduled[kind] += 1
        return self.heap.push(when, kind, self._store(payload))

    def schedule_batch(
        self,
        when: np.ndarray | Sequence[float] | float,
        kind: int,
        payloads: Sequence[Any],
    ) -> np.ndarray:
        """Schedule many same-kind events in one vectorized heap pass."""
        slots = self._store_batch(payloads)
        times = np.broadcast_to(
            np.asarray(when, dtype=np.float64), slots.shape
        )
        if slots.size and float(times.min()) < self.now:
            self._take_batch(slots)
            raise SimulationError(
                f"cannot schedule in the past ({float(times.min())} < {self.now})"
            )
        counters = self.counters
        counters._ensure(kind)
        counters.scheduled[kind] += slots.size
        return self.heap.push_batch(times, kind, slots)

    def peek(self) -> float:
        """Time of the next event, ``inf`` when the heap is empty."""
        return self.heap.peek_time()

    # -- dispatch ----------------------------------------------------------

    def _handler_for(self, code: int) -> tuple[Callable, bool]:
        handler = (
            self._handlers[code] if 0 <= code < len(self._handlers) else None
        )
        if handler is None:
            raise SimulationError(
                f"no handler registered for event kind "
                f"{event_kind_name(code)!r}"
            )
        return handler

    def dispatch_next(self) -> None:
        """Pop and dispatch exactly one event (the adapter's hot path).

        Advances the clock to the event's time, counts it, and calls the
        kind's handler as ``handler(payload)`` -- never batched, so
        callers may interleave per-event work (the simulator's
        orphan-failure barrier) between dispatches.
        """
        when, _seq, code, slot = self.heap.pop()
        self.now = when
        counters = self.counters
        try:
            counters.processed[code] += 1
        except IndexError:
            counters._ensure(code)
            counters.processed[code] += 1
        handler, _batch = self._handler_for(code)
        handler(self._take(slot))

    def run(self, until: float | None = None) -> None:
        """Drain the heap, batch-dispatching eligible kinds.

        Events of a kind whose handler registered ``batch=True`` are
        popped in maximal same-``(time, kind)`` runs and delivered as one
        ``handler(payloads)`` call (under a ``kernel.dispatch`` span when
        a profiler is injected); every other event goes through
        :meth:`dispatch_next`.  With ``until`` set, the clock stops
        there: events past the horizon stay queued, and the clock
        advances to ``until`` exactly as :meth:`Simulator.run` does.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self.now})"
            )
        heap = self.heap
        counters = self.counters
        span = self._dispatch_span
        while len(heap):
            when = heap.peek_time()
            if until is not None and when > until:
                self.now = until
                return
            code = heap.peek_kind()
            handler, batch = self._handler_for(code)
            if not batch:
                self.dispatch_next()
                continue
            when, code, _seqs, slots = heap.pop_run()
            self.now = when
            counters._ensure(code)
            counters.processed[code] += len(slots)
            counters.batches += 1
            payloads = self._take_batch(slots)
            if span is not None:
                with span:
                    handler(payloads)
            else:
                handler(payloads)
