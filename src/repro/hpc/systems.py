"""Calibrated presets for the two systems used in the paper.

The constants are *calibration* values chosen so that the simulated
workflows land in the paper's reported operating regime (per-step
simulation times of tens of seconds, end-to-end runs of 1000-4500 s,
adaptive overhead < 6% of simulation time).  They are not vendor specs:
``core_rate`` is a sustained useful rate in cell-updates/second for a
multi-stage AMR Godunov update, orders of magnitude below peak flops.

Shapes (cores/node, memory/node) match the real machines:

- Intrepid (IBM BG/P): quad-core 850 MHz nodes, 2 GB RAM (500 MB/core),
  3-D torus.
- Titan (Cray XK7): 16-core AMD Opteron nodes, 32 GB RAM, Gemini
  interconnect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ResourceError
from repro.hpc.event import Simulator
from repro.hpc.machine import Machine
from repro.hpc.network import Network
from repro.hpc.topology import staging_uplink
from repro.units import GiB, MiB

__all__ = ["SystemSpec", "intrepid", "titan", "build_workflow_machine"]


@dataclass(frozen=True)
class SystemSpec:
    """Shape and calibration constants for one system.

    The PFS bandwidths are the share a job of the paper's size sees, not
    the file system's aggregate peak; the power figures are sustained
    per-core draws derived from each system's published total power.
    """

    name: str
    cores_per_node: int
    memory_per_node: float  # bytes
    core_rate: float  # sustained cell-updates / second / core
    node_injection_bw: float  # bytes/s a node can push into the fabric
    network_latency: float  # one-way software+wire latency, seconds
    pfs_write_bandwidth: float = 10.0e9  # bytes/s, job share
    pfs_read_bandwidth: float = 12.0e9  # bytes/s, job share
    pfs_latency: float = 1e-3  # per-operation metadata latency, seconds
    core_power_active: float = 10.0  # watts while computing
    core_power_idle: float = 4.0  # watts while allocated but idle
    network_energy_per_byte: float = 1.0e-9  # joules per byte moved

    @property
    def memory_per_core(self) -> float:
        """Bytes of RAM per core (the paper quotes 500 MB/core on Intrepid)."""
        return self.memory_per_node / self.cores_per_node

    def nodes_for_cores(self, cores: int) -> int:
        """Smallest node count providing ``cores`` cores."""
        if cores < 1:
            raise ResourceError(f"need at least one core, got {cores}")
        return math.ceil(cores / self.cores_per_node)


def intrepid() -> SystemSpec:
    """Intrepid IBM BlueGene/P at Argonne (40,960 nodes, 557 TF peak)."""
    return SystemSpec(
        name="intrepid",
        cores_per_node=4,
        memory_per_node=2 * GiB,
        core_rate=2.0e4,
        node_injection_bw=1.7 * GiB,
        network_latency=6.0e-6,
        pfs_write_bandwidth=8.0e9,
        pfs_read_bandwidth=10.0e9,
        core_power_active=7.7,  # 557 TF at ~1.26 MW over 163,840 cores
        core_power_idle=3.0,
    )


def titan() -> SystemSpec:
    """Titan Cray XK7 at Oak Ridge (18,688 nodes, 20 PF peak, Gemini)."""
    return SystemSpec(
        name="titan",
        cores_per_node=16,
        memory_per_node=32 * GiB,
        core_rate=6.0e4,
        node_injection_bw=4.0 * GiB,
        network_latency=2.0e-6,
        pfs_write_bandwidth=30.0e9,  # Spider/Lustre job share
        pfs_read_bandwidth=36.0e9,
        core_power_active=15.0,
        core_power_idle=5.0,
    )


def build_workflow_machine(
    sim: Simulator,
    spec: SystemSpec,
    sim_cores: int,
    staging_cores: int,
) -> tuple[Machine, Network]:
    """Build a two-partition machine + staging-uplink network for a workflow.

    Returns ``(machine, network)`` where the machine has partitions named
    ``"simulation"`` and ``"staging"`` and the network has endpoints
    ``"sim"`` and ``"staging"``.
    """
    sim_nodes = spec.nodes_for_cores(sim_cores)
    staging_nodes = spec.nodes_for_cores(staging_cores)
    machine = Machine(
        sim,
        node_count=sim_nodes + staging_nodes,
        cores_per_node=spec.cores_per_node,
        memory_per_node=spec.memory_per_node,
        core_rate=spec.core_rate,
        name=spec.name,
    )
    simulation = machine.create_partition("simulation", sim_nodes)
    staging = machine.create_partition("staging", staging_nodes)
    simulation.set_active_cores(min(sim_cores, simulation.physical_cores))
    staging.set_active_cores(min(staging_cores, staging.physical_cores))
    network = staging_uplink(
        sim,
        sim_injection_bw=spec.node_injection_bw * sim_nodes,
        staging_ingest_bw=spec.node_injection_bw * staging_nodes,
        latency=spec.network_latency,
    )
    return machine, network


# Guard against accidental unit errors in presets: Intrepid must expose the
# paper's 500 MB/core figure.
assert abs(intrepid().memory_per_core - 512 * MiB) < 1e-6
