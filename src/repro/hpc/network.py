"""Interconnect model with max-min fair bandwidth sharing.

Transfers are fluid flows: each active flow drains at a rate computed by
progressive filling (water-filling) over the links on its route, the
textbook max-min fair allocation.  Whenever the flow set changes, progress
is materialized, rates are recomputed and the next completion is
rescheduled.  This captures the first-order behaviour that matters to the
paper's policies -- concurrent in-transit sends contend for staging ingest
bandwidth -- without modelling packets.

Routes are shortest paths on a :mod:`networkx` graph whose edges carry
:class:`Link` objects, so arbitrary topologies from
:mod:`repro.hpc.topology` plug in directly.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import SimulationError
from repro.hpc.event import Event, Simulator

__all__ = ["Link", "Network", "Transfer"]

_EPS_BYTES = 1e-6
_MIN_STEP = 1e-9  # seconds; smallest wake-up interval the scheduler will use


@dataclass(eq=False)
class Link:
    """A directed-capacity link: ``bandwidth`` bytes/s shared by its flows.

    ``latency`` is a one-way propagation delay added once per route hop.
    ``bytes_carried`` accumulates for the data-movement metrics.
    """

    name: str
    bandwidth: float
    latency: float = 0.0
    bytes_carried: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise SimulationError(f"link {self.name!r} needs positive bandwidth")
        if self.latency < 0:
            raise SimulationError(f"link {self.name!r} has negative latency")


@dataclass(eq=False)
class Transfer:
    """One fluid flow in progress.  ``done`` fires with the transfer itself."""

    transfer_id: int
    src: str
    dst: str
    size: float
    route: tuple[Link, ...]
    done: Event
    remaining: float = 0.0
    rate: float = 0.0
    started_at: float = 0.0
    finished_at: float | None = None

    @property
    def elapsed(self) -> float | None:
        """Wall time of the transfer once finished, else ``None``."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class Network:
    """Topology + flow scheduler.

    Usage::

        net = Network(sim)
        net.add_link("sim", "staging", bandwidth=10 * GiB, latency=5e-6)
        done = net.transfer("sim", "staging", nbytes=1 * GiB)
        sim.run(done)
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.graph = nx.Graph()
        self._flows: set[Transfer] = set()
        self._ids = itertools.count()
        self._last_update = sim.now
        self._wake_version = 0
        self._route_cache: dict[tuple[str, str], tuple[Link, ...]] = {}
        self.total_bytes_moved = 0.0

    # -- topology ---------------------------------------------------------

    def add_link(self, a: str, b: str, bandwidth: float, latency: float = 0.0,
                 name: str | None = None) -> Link:
        """Connect endpoints ``a`` and ``b`` with a shared-capacity link."""
        link = Link(name or f"{a}--{b}", bandwidth, latency)
        self.graph.add_edge(a, b, link=link)
        self._route_cache.clear()
        return link

    def update_link(self, a: str, b: str, bandwidth: float | None = None,
                    latency: float | None = None) -> Link:
        """Mutate a live link's capacity and/or latency.

        Progress of active flows is materialized at the old rates before
        the change and rates are recomputed after it, so the mutation is
        exact at the current timestamp.  New latency only affects
        transfers admitted after the change.
        """
        link = self.link_between(a, b)
        if bandwidth is not None and bandwidth <= 0:
            raise SimulationError(f"link {link.name!r} needs positive bandwidth")
        if latency is not None and latency < 0:
            raise SimulationError(f"link {link.name!r} has negative latency")
        self._materialize_progress()
        if bandwidth is not None:
            link.bandwidth = float(bandwidth)
        if latency is not None:
            link.latency = float(latency)
        self._reschedule()
        return link

    def link_between(self, a: str, b: str) -> Link:
        """The link directly joining ``a`` and ``b``."""
        try:
            return self.graph.edges[a, b]["link"]
        except KeyError:
            raise SimulationError(f"no link between {a!r} and {b!r}") from None

    def route(self, src: str, dst: str) -> tuple[Link, ...]:
        """Shortest-hop route between endpoints (cached)."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        try:
            path = nx.shortest_path(self.graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise SimulationError(f"no route from {src!r} to {dst!r}") from exc
        links = tuple(self.graph.edges[u, v]["link"] for u, v in zip(path, path[1:]))
        self._route_cache[key] = links
        return links

    # -- transfers ----------------------------------------------------------

    @property
    def active_flows(self) -> int:
        """Number of flows currently draining."""
        return len(self._flows)

    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Start an asynchronous transfer; returns its completion event."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        route = self.route(src, dst)
        if not route:
            raise SimulationError(f"src and dst are the same endpoint: {src!r}")
        done = self.sim.event(name=f"xfer({src}->{dst}, {nbytes:.0f}B)")
        flow = Transfer(
            transfer_id=next(self._ids),
            src=src,
            dst=dst,
            size=float(nbytes),
            route=route,
            done=done,
            remaining=float(nbytes),
            started_at=self.sim.now,
        )
        self.total_bytes_moved += flow.size
        for link in route:
            link.bytes_carried += flow.size
        propagation = sum(link.latency for link in route)
        if nbytes <= _EPS_BYTES:
            self.sim._schedule_at(self.sim.now + propagation, self._finish_zero,
                                  flow, kind="transfer")
        else:
            self.sim._schedule_at(self.sim.now + propagation, self._admit,
                                  flow, kind="transfer")
        return done

    def transfer_batch(self, src: str, dst: str,
                       sizes: "Iterable[float]") -> list[Event]:
        """Start many same-route transfers with one flow-set change.

        Semantically equivalent to calling :meth:`transfer` once per
        size at the same timestamp -- the max-min fair allocation only
        depends on the final flow set -- but the burst is admitted as a
        *single* typed ``transfer`` event: progress is materialized
        once, rates are recomputed once and one wake-up is scheduled,
        instead of one admission event per flow.  This is the batched
        event path that makes rank-granular data movement affordable at
        64K+ virtual ranks (see ``docs/kernel.md``).

        Returns the per-flow completion events, in ``sizes`` order.
        """
        route = self.route(src, dst)
        if not route:
            raise SimulationError(f"src and dst are the same endpoint: {src!r}")
        propagation = sum(link.latency for link in route)
        now = self.sim.now
        flows: list[Transfer] = []
        events: list[Event] = []
        for nbytes in sizes:
            if nbytes < 0:
                raise SimulationError(f"negative transfer size: {nbytes}")
            done = self.sim.event(name=f"xfer({src}->{dst}, {nbytes:.0f}B)")
            flow = Transfer(
                transfer_id=next(self._ids),
                src=src,
                dst=dst,
                size=float(nbytes),
                route=route,
                done=done,
                remaining=float(nbytes),
                started_at=now,
            )
            self.total_bytes_moved += flow.size
            for link in route:
                link.bytes_carried += flow.size
            flows.append(flow)
            events.append(done)
        if flows:
            self.sim._schedule_at(now + propagation, self._admit_batch,
                                  tuple(flows), kind="transfer")
        return events

    def estimate_transfer_time(self, src: str, dst: str, nbytes: float) -> float:
        """Uncontended transfer time estimate (latency + size/bottleneck)."""
        route = self.route(src, dst)
        latency = sum(link.latency for link in route)
        if nbytes <= 0:
            return latency
        bottleneck = min(link.bandwidth for link in route)
        return latency + nbytes / bottleneck

    # -- fluid-flow internals ---------------------------------------------

    def _finish_zero(self, flow: Transfer) -> None:
        flow.finished_at = self.sim.now
        flow.done.succeed(flow)

    def _admit(self, flow: Transfer) -> None:
        self._materialize_progress()
        flow.started_at = min(flow.started_at, self.sim.now)
        self._flows.add(flow)
        self._reschedule()

    def _admit_batch(self, flows: tuple[Transfer, ...]) -> None:
        """Admit a burst of flows with one materialize/recompute pass."""
        self._materialize_progress()
        now = self.sim.now
        for flow in flows:
            if flow.size <= _EPS_BYTES:
                # Zero-size flows finish right at admission, exactly
                # when transfer() would have finished them.
                flow.finished_at = now
                flow.done.succeed(flow)
                continue
            flow.started_at = min(flow.started_at, now)
            self._flows.add(flow)
        self._reschedule()

    def _materialize_progress(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
        self._last_update = now

    def _recompute_rates(self) -> None:
        """Max-min fair allocation by progressive filling."""
        unfrozen = set(self._flows)
        capacity = {link: link.bandwidth for links in (f.route for f in self._flows)
                    for link in links}
        for flow in self._flows:
            flow.rate = 0.0
        while unfrozen:
            # Bottleneck link: smallest fair share among links carrying
            # unfrozen flows.
            shares: dict[Link, float] = {}
            loads: dict[Link, int] = {}
            for flow in unfrozen:
                for link in flow.route:
                    loads[link] = loads.get(link, 0) + 1
            for link, load in loads.items():
                shares[link] = capacity[link] / load
            bottleneck = min(shares, key=lambda lk: shares[lk])
            fair = shares[bottleneck]
            frozen_now = {f for f in unfrozen if bottleneck in f.route}
            for flow in frozen_now:
                flow.rate = fair
                for link in flow.route:
                    capacity[link] -= fair
            unfrozen -= frozen_now

    def _reschedule(self) -> None:
        self._recompute_rates()
        self._wake_version += 1
        if not self._flows:
            return
        horizon = min(
            (f.remaining / f.rate) for f in self._flows if f.rate > 0
        )
        # Never schedule a zero/denormal step: float residue on `remaining`
        # could otherwise pin the wake-up at the current timestamp forever.
        horizon = max(horizon, _MIN_STEP)
        self.sim._schedule_at(self.sim.now + horizon, self._wake,
                              self._wake_version, kind="transfer")

    def _wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a newer flow-set change
        self._materialize_progress()
        # A flow is done when its residue is below the absolute epsilon or
        # below what it drains within one minimum scheduling step.
        finished = [
            f for f in self._flows
            if f.remaining <= max(_EPS_BYTES, f.rate * _MIN_STEP)
        ]
        for flow in finished:
            self._flows.discard(flow)
            flow.remaining = 0.0
            flow.finished_at = self.sim.now
            flow.done.succeed(flow)
        self._reschedule()
