"""Parallel file system model.

The paper's opening argument: "the increasing performance gap between
computation and I/O in high-end computing environment renders traditional
post-processing data analysis approach based on disk I/O infeasible."
To make that comparison runnable, this module models a Lustre/GPFS-class
parallel file system as two shared fluid-flow links (write and read
paths) hanging off the machine's network, with byte accounting.

Writes/reads contend with each other and with concurrent clients exactly
like network transfers do (max-min fair sharing on the PFS links).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.hpc.event import Event, Simulator
from repro.hpc.network import Network

__all__ = ["ParallelFileSystem"]


class ParallelFileSystem:
    """A bandwidth-shared storage target attached to a network.

    Parameters
    ----------
    sim, network:
        The simulation and the machine network to attach to.
    write_bandwidth, read_bandwidth:
        Aggregate sequential bandwidths of the storage system.
    latency:
        Per-operation software/metadata latency.
    endpoint:
        Name of the PFS endpoint created on the network.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        write_bandwidth: float,
        read_bandwidth: float,
        latency: float = 1e-3,
        endpoint: str = "pfs",
    ):
        if write_bandwidth <= 0 or read_bandwidth <= 0:
            raise SimulationError("PFS bandwidths must be positive")
        self.sim = sim
        self.network = network
        self.endpoint = endpoint
        # Two disjoint paths model the separate write/read pipes, each with
        # ONE shared capacity link: all clients' writes contend for the
        # storage system's aggregate write bandwidth (and likewise reads),
        # while a read burst cannot starve writers.
        self._write_ep = f"{endpoint}.write"
        self._read_ep = f"{endpoint}.read"
        self._write_hub = f"{endpoint}.write.hub"
        self._read_hub = f"{endpoint}.read.hub"
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        self._clients: set[str] = set()
        self._latency = float(latency)
        network.add_link(self._write_hub, self._write_ep,
                         bandwidth=float(write_bandwidth), latency=0.0)
        network.add_link(self._read_hub, self._read_ep,
                         bandwidth=float(read_bandwidth), latency=0.0)

    # Client links are effectively unconstrained: the client side's real
    # injection limit lives on the machine's own links; the PFS hub link is
    # the shared bottleneck.
    _CLIENT_BW = 1e18

    def attach(self, client: str) -> None:
        """Give ``client`` (an existing network endpoint) a PFS path."""
        if client in self._clients:
            return
        self.network.add_link(client, self._write_hub,
                              bandwidth=self._CLIENT_BW, latency=self._latency)
        self.network.add_link(client, self._read_hub,
                              bandwidth=self._CLIENT_BW, latency=self._latency)
        self._clients.add(client)

    def _check(self, client: str) -> None:
        if client not in self._clients:
            raise SimulationError(
                f"client {client!r} not attached to PFS {self.endpoint!r}"
            )

    def write(self, client: str, nbytes: float) -> Event:
        """Start a write from ``client``; returns the completion event."""
        self._check(client)
        self.bytes_written += nbytes
        return self.network.transfer(client, self._write_ep, nbytes)

    def read(self, client: str, nbytes: float) -> Event:
        """Start a read into ``client``; returns the completion event."""
        self._check(client)
        self.bytes_read += nbytes
        return self.network.transfer(self._read_ep, client, nbytes)

    def estimate_write_time(self, client: str, nbytes: float) -> float:
        """Uncontended write-time estimate."""
        self._check(client)
        return self.network.estimate_transfer_time(client, self._write_ep, nbytes)

    def estimate_read_time(self, client: str, nbytes: float) -> float:
        """Uncontended read-time estimate."""
        self._check(client)
        return self.network.estimate_transfer_time(self._read_ep, client, nbytes)
