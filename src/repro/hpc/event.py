"""Deterministic discrete-event simulation: the generator-process adapter.

The waitable API every component programs against -- :class:`Simulator`,
:class:`Process`, :class:`Event`, :class:`Timeout`, the combinators --
is a thin adapter over the typed event engine in
:mod:`repro.hpc.kernel` (see ``docs/kernel.md`` for the layering).  The
kernel owns the clock, the array-backed event heap, the per-kind
counters and the injected RNG; this module owns generator processes,
callbacks and failure propagation.

The design follows the classic event-list pattern (and will feel familiar
to SimPy users) but is intentionally small and fully deterministic:

- :class:`Simulator` schedules typed event records on the kernel and
  drains them one at a time.  **Tie-breaking contract:** events at the
  same timestamp fire in submission order -- the kernel orders records
  by ``(time, seq)`` with a monotonically increasing ``seq``, so a run
  is a pure function of its inputs.  The array-backed heap and the
  heapq-based reference heap implement the same contract; the property
  suite replays event soups on both and the regression suite diffs whole
  workflow traces byte-for-byte.
- :class:`Process` wraps a Python generator.  The generator *yields*
  waitables (:class:`Timeout`, :class:`Event`, another :class:`Process`,
  :class:`AllOf`, :class:`AnyOf`) and is resumed when the waitable fires.
- :class:`Event` is a one-shot triggerable with a value; failing an event
  propagates the exception into every waiter.

Domain components tag the events they schedule (``kind="compute"``,
``"transfer"``, ``"staging"``) so the kernel's counters attribute event
traffic per layer; untagged engine bookkeeping is ``control`` and plain
timeouts are ``timer``.  There is no wall-clock or thread anywhere in
the kernel.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Iterable
from typing import Any

from repro.errors import SimulationError
from repro.hpc.kernel import EventKernel, event_kind_code

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
]

_PENDING = object()

_CONTROL = event_kind_code("control")
_TIMER = event_kind_code("timer")


class Interrupt(Exception):
    """Thrown into a process that another process interrupts.

    The ``cause`` attribute carries the value given to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is fired exactly once with
    :meth:`succeed` or :meth:`fail`.  Waiters registered before or after
    the trigger both observe it: a callback added to an already-triggered
    event is scheduled immediately.
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = _PENDING
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["Event"], None]] = []
        # Set when the last waiter detached (interrupt) before the trigger:
        # resources/stores use it to drop zombie requests from their queues.
        self.abandoned = False

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value; raises if the event is pending or failed."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError(f"event {self.name!r} has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._value = value
        self.sim._queue_callbacks(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, propagating to all waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._exception = exception
        self.sim._queue_callbacks(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event triggers."""
        if self.triggered:
            self.sim._schedule_call(lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` seconds in the future.

    ``kind`` tags the scheduled record for the kernel's per-kind
    counters; domain components pass ``"compute"``/``"staging"`` so
    event traffic is attributable per layer.
    """

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 kind: int | str = _TIMER):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = float(delay)
        sim._schedule_at(sim.now + self.delay, self._fire, value, kind=kind)

    def _fire(self, value: Any) -> None:
        if not self.triggered:
            self._value = value
            self.sim._queue_callbacks(self)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The value of the process-event is the generator's return value; an
    uncaught exception in the generator fails the event (and, if nothing
    is waiting on the process, aborts the simulation run so bugs do not
    pass silently).
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        sim._schedule_call(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waited = self._waiting_on
        if waited is not None and not waited.triggered:
            # Detach from whatever the process was waiting on; if that
            # leaves the event with no waiters it is a zombie (e.g. a
            # queued resource request) and must never consume a grant.
            self._detach(waited)
            if not waited._callbacks:
                waited.abandoned = True
        self._waiting_on = None
        self.sim._schedule_call(lambda: self._resume(None, Interrupt(cause)))

    def _detach(self, event: Event) -> None:
        event._callbacks = [cb for cb in event._callbacks if getattr(cb, "__self__", None) is not self]

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if event is not self._waiting_on:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        if event._exception is not None:
            self._resume(None, event._exception)
        else:
            self._resume(event._value, None)

    def _resume(self, value: Any, exc: BaseException | None) -> None:
        if self.triggered:
            return
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._value = stop.value
            self.sim._queue_callbacks(self)
            return
        except BaseException as error:  # noqa: BLE001 - deliberate fault barrier
            self._exception = error
            # A failure is "handled" iff somebody was already waiting on this
            # process when it died; that waiter receives the exception.
            handled = bool(self._callbacks)
            self.sim._queue_callbacks(self)
            if not handled:
                self.sim._note_process_failure(self, error)
            return
        self._wait_on(self._coerce(target))

    def _coerce(self, target: Any) -> Event:
        if isinstance(target, Event):
            return target
        raise SimulationError(
            f"process {self.name!r} yielded {target!r}; processes must yield Event instances"
        )

    def _wait_on(self, event: Event) -> None:
        self._waiting_on = event
        event.add_callback(self._on_event)


class AllOf(Event):
    """Fires when every child event has triggered successfully.

    Its value is the list of child values in the order given.  If any
    child fails, this event fails with the first failure.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            sim._schedule_call(lambda: self.succeed([]))
        else:
            for event in self._events:
                event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(Event):
    """Fires when the first child event triggers; value is ``(event, value)``."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed((event, event._value))


class Simulator:
    """The generator-process adapter over :class:`~repro.hpc.kernel.EventKernel`.

    Owns no clock and no heap of its own: scheduling pushes typed
    ``(time, seq, kind, payload)`` records onto the kernel and the run
    loop drains them one at a time through
    :meth:`~repro.hpc.kernel.EventKernel.dispatch_next`, preserving the
    pre-kernel semantics bit-for-bit (per-event orphan-failure barrier
    included).  Payloads on this path are ``(func, args)`` pairs.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 1.5 and proc.value == "done"

    **Determinism / tie-breaking.**  Events scheduled for the same
    timestamp fire in submission order: the kernel's heap orders records
    by ``(time, seq)`` and ``seq`` increases monotonically with each
    :meth:`_schedule_at` call.  This holds identically for the
    array-backed heap and the reference heap (swap via
    ``EventKernel.heap_class``), so traces are byte-identical across
    heap implementations.
    """

    def __init__(self, faults: Any = None, profiler: Any = None, rng: Any = None):
        self.kernel = EventKernel(rng=rng, profiler=profiler)
        self._invoke = self._call_payload
        # Every kind dispatches the closure payload un-batched on this
        # path: batch dispatch would break the per-event failure barrier.
        for name in ("control", "timer", "compute", "transfer", "staging"):
            self.kernel.on(name, self._call_payload, batch=False)
        self._unhandled: list[tuple[Process, BaseException]] = []
        # Optional fault injector (repro.faults.FaultInjector); duck-typed
        # so the kernel stays free of upward imports.
        self.faults = faults
        # Optional wall-clock profiler (repro.observability.Profiler), also
        # duck-typed: the kernel itself stays free of wall time -- the
        # profiler only measures how long *we* take to replay simulated time.
        self.profiler = profiler
        if faults is not None:
            faults.attach_simulator(self)

    @property
    def now(self) -> float:
        """The current simulated time in seconds."""
        return self.kernel.now

    @property
    def rng(self):
        """The kernel's injected ``numpy.random.Generator``."""
        return self.kernel.rng

    # -- factory helpers -------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None,
                kind: int | str = _TIMER) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` seconds from now."""
        return Timeout(self, delay, value, kind=kind)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new :class:`Process` from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling internals --------------------------------------------

    def _call_payload(self, payload: tuple[Callable, tuple]) -> None:
        func, args = payload
        func(*args)

    def _schedule_at(self, when: float, func: Callable, *args: Any,
                     kind: int | str = _CONTROL) -> None:
        """Schedule ``func(*args)`` at simulated time ``when``.

        Same-``when`` calls run in the order they were scheduled (the
        kernel's ``seq`` tie-break); scheduling in the past raises.
        """
        code = kind if type(kind) is int else event_kind_code(kind)
        self.kernel.schedule(when, code, (func, args))

    def _schedule_call(self, func: Callable[[], None]) -> None:
        self.kernel.schedule(self.kernel.now, _CONTROL, (func, ()))

    def _queue_callbacks(self, event: Event) -> None:
        callbacks, event._callbacks = event._callbacks, []
        for callback in callbacks:
            self._schedule_call(lambda cb=callback: cb(event))

    def _note_process_failure(self, process: Process, error: BaseException) -> None:
        self._unhandled.append((process, error))

    # -- run loop ----------------------------------------------------------

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the event list drains, ``until`` seconds, or an event fires.

        - ``until=None``: run to exhaustion, return ``None``.
        - ``until=<float>``: stop the clock at that time (events exactly at
          the boundary are executed), return ``None``.
        - ``until=<Event>``: run until the event triggers and return its
          value (re-raising on failure).

        If a process died with an exception nobody was waiting on, the
        exception is re-raised here so failures are never lost.
        """
        if self.profiler is not None:
            with self.profiler.span("sim.run"):
                return self._run_loop(until)
        return self._run_loop(until)

    def _run_loop(self, until: float | Event | None) -> Any:
        stop_event: Event | None = None
        horizon: float | None = None
        kernel = self.kernel
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            horizon = float(until)
            if horizon < kernel.now:
                raise SimulationError(f"run(until={horizon}) is in the past (now={kernel.now})")

        heap = kernel.heap
        while len(heap):
            if stop_event is not None and stop_event.triggered:
                break
            if horizon is not None and heap.peek_time() > horizon:
                kernel.now = horizon
                break
            kernel.dispatch_next()
            self._raise_orphan_failures()

        self._raise_orphan_failures()
        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError("event list drained before the awaited event fired")
            return stop_event.value
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the list is empty."""
        return self.kernel.peek()

    def _raise_orphan_failures(self) -> None:
        if self._unhandled:
            _process, error = self._unhandled.pop(0)
            raise error
