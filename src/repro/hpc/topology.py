"""Interconnect topology builders.

The workflow experiments use the aggregate two-partition model
(:func:`staging_uplink`): all simulation nodes behind one endpoint, all
staging nodes behind another, joined by a link whose capacity equals the
aggregate injection bandwidth of the smaller partition.  This is the level
of detail the paper's policies observe (they see transfer latencies, not
per-hop congestion).

Full 3-D torus builders are provided for topology-sensitive studies and
are exercised by the ablation benchmarks.
"""

from __future__ import annotations

import itertools

from repro.errors import SimulationError
from repro.hpc.event import Simulator
from repro.hpc.network import Network

__all__ = ["staging_uplink", "torus3d", "node_name"]


def node_name(coords: tuple[int, int, int]) -> str:
    """Canonical endpoint name for a torus node coordinate."""
    return "n{}.{}.{}".format(*coords)


def staging_uplink(
    sim: Simulator,
    sim_injection_bw: float,
    staging_ingest_bw: float,
    latency: float,
) -> Network:
    """Two-endpoint model: ``sim`` and ``staging`` joined by one shared link.

    The link capacity is the min of the simulation partition's aggregate
    injection bandwidth and the staging partition's aggregate ingest
    bandwidth -- whichever side saturates first bounds in-transit sends.
    """
    if sim_injection_bw <= 0 or staging_ingest_bw <= 0:
        raise SimulationError("partition bandwidths must be positive")
    net = Network(sim)
    net.add_link(
        "sim",
        "staging",
        bandwidth=min(sim_injection_bw, staging_ingest_bw),
        latency=latency,
        name="uplink",
    )
    return net


def torus3d(
    sim: Simulator,
    shape: tuple[int, int, int],
    link_bandwidth: float,
    link_latency: float,
) -> Network:
    """A wrap-around 3-D torus of ``shape`` nodes (BG/P- and Gemini-like).

    Every node is an endpoint named by :func:`node_name`; each of the six
    neighbour links is a shared-capacity :class:`~repro.hpc.network.Link`.
    """
    nx_, ny, nz = shape
    if min(shape) < 1:
        raise SimulationError(f"torus shape must be positive, got {shape}")
    net = Network(sim)
    for x, y, z in itertools.product(range(nx_), range(ny), range(nz)):
        here = node_name((x, y, z))
        for dim, size in enumerate(shape):
            if size == 1:
                continue  # no self-loops on degenerate dimensions
            coords = [x, y, z]
            coords[dim] = (coords[dim] + 1) % size
            there = node_name(tuple(coords))
            if not net.graph.has_edge(here, there):
                net.add_link(here, there, bandwidth=link_bandwidth, latency=link_latency)
    return net
