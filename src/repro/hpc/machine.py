"""Machine model: nodes, cores, memory accounting and partitions.

The model captures exactly the quantities the paper's adaptation policies
observe: per-core/per-node memory availability, core counts on the
simulation and staging partitions, and compute rates used by the cost
estimators.  It deliberately does *not* model caches, NUMA or OS noise --
the policies never see those.

A :class:`Machine` is a collection of identical :class:`Node` objects plus
a :class:`~repro.hpc.network.Network`.  Cores are grouped into named
:class:`Partition` objects ("simulation", "staging"); the resource-layer
adaptation resizes the staging partition at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResourceError
from repro.hpc.event import Simulator
from repro.hpc.resources import Resource

__all__ = ["CoreAllocation", "Machine", "MemoryPool", "Node", "Partition"]


class MemoryPool:
    """Byte-granularity memory accounting for one node.

    ``allocate``/``free`` raise on over-commit rather than swapping -- the
    application-layer policy exists precisely to keep usage under the
    physical limit, so exceeding it is a programming error in experiments.
    """

    def __init__(self, total_bytes: float, name: str = "mem"):
        if total_bytes <= 0:
            raise ResourceError(f"memory pool must be positive, got {total_bytes}")
        self.name = name
        self.total = float(total_bytes)
        self._used = 0.0
        self.peak = 0.0

    @property
    def used(self) -> float:
        """Bytes currently allocated."""
        return self._used

    @property
    def available(self) -> float:
        """Bytes free."""
        return self.total - self._used

    def allocate(self, nbytes: float) -> None:
        """Reserve ``nbytes``; raises :class:`ResourceError` on over-commit."""
        if nbytes < 0:
            raise ResourceError(f"cannot allocate negative bytes: {nbytes}")
        if self._used + nbytes > self.total * (1 + 1e-9):
            raise ResourceError(
                f"out of memory on {self.name!r}: requested {nbytes:.0f}, "
                f"available {self.available:.0f} of {self.total:.0f}"
            )
        self._used += nbytes
        self.peak = max(self.peak, self._used)

    def free(self, nbytes: float) -> None:
        """Release ``nbytes`` previously allocated."""
        if nbytes < 0:
            raise ResourceError(f"cannot free negative bytes: {nbytes}")
        if nbytes > self._used + 1e-6:
            raise ResourceError(
                f"freeing {nbytes:.0f} bytes exceeds {self._used:.0f} in use on {self.name!r}"
            )
        self._used = max(0.0, self._used - nbytes)

    def can_fit(self, nbytes: float) -> bool:
        """True if an allocation of ``nbytes`` would succeed."""
        return nbytes <= self.available * (1 + 1e-9)


@dataclass
class Node:
    """One compute node: a fixed number of cores and a memory pool."""

    node_id: int
    cores: int
    memory: MemoryPool

    @property
    def memory_per_core(self) -> float:
        """Even split of node memory across its cores (the paper's metric)."""
        return self.memory.total / self.cores


class Partition:
    """A named group of nodes with a core :class:`Resource` for scheduling.

    The partition's resource capacity equals the number of *active* cores,
    which the resource layer may resize (never above the physical total).
    """

    def __init__(self, sim: Simulator, name: str, nodes: list[Node]):
        if not nodes:
            raise ResourceError(f"partition {name!r} needs at least one node")
        self.sim = sim
        self.name = name
        self.nodes = nodes
        self.physical_cores = sum(node.cores for node in nodes)
        self.cores = Resource(sim, self.physical_cores, name=f"{name}.cores")

    @property
    def total_memory(self) -> float:
        """Aggregate bytes across the partition's nodes."""
        return sum(node.memory.total for node in self.nodes)

    @property
    def available_memory(self) -> float:
        """Aggregate free bytes across the partition's nodes."""
        return sum(node.memory.available for node in self.nodes)

    @property
    def memory_per_core(self) -> float:
        """Memory per physical core (uniform nodes assumed)."""
        return self.total_memory / self.physical_cores

    @property
    def active_cores(self) -> int:
        """Cores currently schedulable (resource-layer adaptation target)."""
        return self.cores.capacity

    def set_active_cores(self, count: int) -> None:
        """Resize the schedulable core count, clamped to the physical total."""
        if count < 1:
            raise ResourceError(f"partition {self.name!r} needs >= 1 active core")
        if count > self.physical_cores:
            raise ResourceError(
                f"partition {self.name!r} has only {self.physical_cores} physical cores, "
                f"cannot activate {count}"
            )
        self.cores.resize(count)

    def allocate_memory(self, nbytes: float) -> None:
        """Spread an allocation evenly across nodes (block-distributed data)."""
        share = nbytes / len(self.nodes)
        done = []
        try:
            for node in self.nodes:
                node.memory.allocate(share)
                done.append(node)
        except ResourceError:
            for node in done:
                node.memory.free(share)
            raise

    def free_memory(self, nbytes: float) -> None:
        """Release an allocation made with :meth:`allocate_memory`."""
        share = nbytes / len(self.nodes)
        for node in self.nodes:
            node.memory.free(share)


@dataclass
class CoreAllocation:
    """Record of cores held from a partition; returned by ``Machine.acquire``."""

    partition: Partition
    count: int
    released: bool = field(default=False)

    def release(self) -> None:
        """Give the cores back (idempotent)."""
        if not self.released:
            self.partition.cores.release(self.count)
            self.released = True


class Machine:
    """A simulated system: uniform nodes split into named partitions.

    Parameters
    ----------
    sim:
        The owning event simulator.
    node_count:
        Total nodes in the job allocation (not the whole system).
    cores_per_node, memory_per_node:
        Per-node shape.
    core_rate:
        Sustained useful rate per core, in cell-updates/second.  This is a
        calibration constant, not a flops figure; see ``repro.hpc.systems``.
    """

    def __init__(
        self,
        sim: Simulator,
        node_count: int,
        cores_per_node: int,
        memory_per_node: float,
        core_rate: float,
        name: str = "machine",
    ):
        if node_count < 2:
            raise ResourceError("machine needs at least 2 nodes (simulation + staging)")
        if core_rate <= 0:
            raise ResourceError(f"core_rate must be positive, got {core_rate}")
        self.sim = sim
        self.name = name
        self.cores_per_node = cores_per_node
        self.memory_per_node = float(memory_per_node)
        self.core_rate = float(core_rate)
        self.nodes = [
            Node(i, cores_per_node, MemoryPool(memory_per_node, name=f"{name}.node{i}.mem"))
            for i in range(node_count)
        ]
        self.partitions: dict[str, Partition] = {}

    def create_partition(self, name: str, node_count: int) -> Partition:
        """Carve the next ``node_count`` unassigned nodes into a partition."""
        assigned = {id(n) for p in self.partitions.values() for n in p.nodes}
        free_nodes = [n for n in self.nodes if id(n) not in assigned]
        if node_count > len(free_nodes):
            raise ResourceError(
                f"cannot create partition {name!r}: {node_count} nodes requested, "
                f"{len(free_nodes)} unassigned"
            )
        if name in self.partitions:
            raise ResourceError(f"partition {name!r} already exists")
        partition = Partition(self.sim, name, free_nodes[:node_count])
        self.partitions[name] = partition
        return partition

    def partition(self, name: str) -> Partition:
        """Look up a partition by name."""
        try:
            return self.partitions[name]
        except KeyError:
            raise ResourceError(f"no partition named {name!r}") from None

    def compute_time(self, work_units: float, cores: int) -> float:
        """Seconds to process ``work_units`` cell-updates on ``cores`` cores."""
        if cores <= 0:
            raise ResourceError(f"cores must be positive, got {cores}")
        return work_units / (self.core_rate * cores)

    def compute_batch(self, work_units, cores: int):
        """Vectorized :meth:`compute_time` over an array of work sizes.

        The per-rank-block counterpart used by the kernel's batched
        ``compute`` event path (see ``docs/kernel.md``): one NumPy
        division prices a whole block of virtual ranks instead of one
        Python call per rank.  Returns a float64 array.
        """
        import numpy as np

        if cores <= 0:
            raise ResourceError(f"cores must be positive, got {cores}")
        work = np.asarray(work_units, dtype=np.float64)
        if work.size and float(work.min()) < 0:
            raise ResourceError("work_units must be non-negative")
        return work / (self.core_rate * cores)
