"""Simulated HPC machine substrate.

This package substitutes for the leadership-class systems the paper ran on
(Intrepid IBM BG/P and Titan Cray XK7).  It provides a typed
discrete-event engine over an array-backed heap (:mod:`repro.hpc.kernel`,
see ``docs/kernel.md``), the deterministic generator-process adapter on
top of it (:mod:`repro.hpc.event`), waitable resources
(:mod:`repro.hpc.resources`), a machine model with nodes, cores and
memory accounting (:mod:`repro.hpc.machine`), an interconnect model
with processor-sharing bandwidth allocation (:mod:`repro.hpc.network`),
interconnect topologies (:mod:`repro.hpc.topology`) and calibrated presets
for the two systems used in the paper (:mod:`repro.hpc.systems`).
"""

from repro.hpc.event import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.hpc.kernel import (
    KERNEL_EVENT_KINDS,
    EventHeap,
    EventKernel,
    KernelCounters,
    ReferenceEventHeap,
    batched_event_kinds,
    event_kind_code,
    event_kind_name,
    register_event_kind,
)
from repro.hpc.machine import CoreAllocation, Machine, MemoryPool, Node, Partition
from repro.hpc.network import Link, Network, Transfer
from repro.hpc.resources import Resource, Store
from repro.hpc.systems import SystemSpec, build_workflow_machine, intrepid, titan

__all__ = [
    "AllOf",
    "AnyOf",
    "CoreAllocation",
    "Event",
    "EventHeap",
    "EventKernel",
    "Interrupt",
    "KERNEL_EVENT_KINDS",
    "KernelCounters",
    "Link",
    "Machine",
    "MemoryPool",
    "Network",
    "Node",
    "Partition",
    "Process",
    "ReferenceEventHeap",
    "Resource",
    "Simulator",
    "Store",
    "SystemSpec",
    "Timeout",
    "Transfer",
    "batched_event_kinds",
    "build_workflow_machine",
    "event_kind_code",
    "event_kind_name",
    "intrepid",
    "register_event_kind",
    "titan",
]
