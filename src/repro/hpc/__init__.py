"""Simulated HPC machine substrate.

This package substitutes for the leadership-class systems the paper ran on
(Intrepid IBM BG/P and Titan Cray XK7).  It provides a deterministic
discrete-event simulation kernel (:mod:`repro.hpc.event`), waitable
resources (:mod:`repro.hpc.resources`), a machine model with nodes, cores
and memory accounting (:mod:`repro.hpc.machine`), an interconnect model
with processor-sharing bandwidth allocation (:mod:`repro.hpc.network`),
interconnect topologies (:mod:`repro.hpc.topology`) and calibrated presets
for the two systems used in the paper (:mod:`repro.hpc.systems`).
"""

from repro.hpc.event import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.hpc.machine import CoreAllocation, Machine, MemoryPool, Node, Partition
from repro.hpc.network import Link, Network, Transfer
from repro.hpc.resources import Resource, Store
from repro.hpc.systems import SystemSpec, build_workflow_machine, intrepid, titan

__all__ = [
    "AllOf",
    "AnyOf",
    "CoreAllocation",
    "Event",
    "Interrupt",
    "Link",
    "Machine",
    "MemoryPool",
    "Network",
    "Node",
    "Partition",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "SystemSpec",
    "Timeout",
    "Transfer",
    "build_workflow_machine",
    "intrepid",
    "titan",
]
