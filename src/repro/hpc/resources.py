"""Waitable resources built on the event kernel.

Two primitives cover everything the rest of the package needs:

- :class:`Resource` -- a counted FCFS resource (cores, channels).  Requests
  are events; ``release`` wakes the head of the queue.
- :class:`Store` -- an unbounded (or bounded) FIFO of items; ``get``
  returns an event that fires when an item is available.  This is the
  building block for the staging request queues.

Both keep simple occupancy statistics so the metrics layer can compute
utilization without instrumenting call sites.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import ResourceError
from repro.hpc.event import Event, Simulator

__all__ = ["Resource", "Store"]


class _Request(Event):
    """Event representing a pending resource acquisition."""

    def __init__(self, resource: "Resource", amount: int):
        super().__init__(resource.sim, name=f"request({resource.name}, {amount})")
        self.resource = resource
        self.amount = amount


class Resource:
    """A counted, FCFS resource such as a pool of cores.

    ``request(n)`` returns an event that fires once ``n`` units are held by
    the caller; ``release(n)`` returns them.  Capacity may be resized at
    runtime (the resource-layer adaptation grows/shrinks the staging pool),
    which immediately re-evaluates the wait queue.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 0:
            raise ResourceError(f"negative capacity: {capacity}")
        self.sim = sim
        self.name = name
        self._capacity = int(capacity)
        self._in_use = 0
        self._queue: deque[_Request] = deque()
        # Occupancy statistics: integral of in_use over time.
        self._busy_integral = 0.0
        self._last_change = sim.now

    @property
    def capacity(self) -> int:
        """Total units this resource currently offers."""
        return self._capacity

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units free right now."""
        return self._capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting."""
        return len(self._queue)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_integral += self._in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Core-seconds of held capacity accumulated so far."""
        self._account()
        return self._busy_integral

    def request(self, amount: int = 1) -> Event:
        """Acquire ``amount`` units; the returned event fires on acquisition."""
        if amount <= 0:
            raise ResourceError(f"request amount must be positive, got {amount}")
        if amount > self._capacity:
            raise ResourceError(
                f"request of {amount} exceeds capacity {self._capacity} of {self.name!r}"
            )
        req = _Request(self, amount)
        self._queue.append(req)
        self._drain()
        return req

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` units and wake queued requests that now fit."""
        if amount <= 0:
            raise ResourceError(f"release amount must be positive, got {amount}")
        if amount > self._in_use:
            raise ResourceError(
                f"release of {amount} exceeds {self._in_use} units in use on {self.name!r}"
            )
        self._account()
        self._in_use -= amount
        self._drain()

    def resize(self, capacity: int) -> None:
        """Change total capacity.  Shrinking below ``in_use`` is allowed; the
        deficit is absorbed as units are released."""
        if capacity < 0:
            raise ResourceError(f"negative capacity: {capacity}")
        self._account()
        self._capacity = int(capacity)
        self._drain()

    def _drain(self) -> None:
        # FCFS: stop at the first request that does not fit to preserve order.
        while self._queue:
            head = self._queue[0]
            if head.triggered or head.abandoned:
                # Waiter vanished (e.g. interrupted process); discard.
                self._queue.popleft()
                continue
            if head.amount > self._capacity - self._in_use:
                break
            self._queue.popleft()
            self._account()
            self._in_use += head.amount
            head.succeed(head.amount)


class Store:
    """A FIFO buffer of Python objects with waitable ``get``.

    ``put`` succeeds immediately unless a ``capacity`` (in items) is set and
    reached, in which case the returned event fires when space frees up.
    ``get`` returns an event firing with the oldest item.
    """

    def __init__(self, sim: Simulator, capacity: int | None = None, name: str = "store"):
        if capacity is not None and capacity <= 0:
            raise ResourceError(f"store capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Insert an item; the event fires when the item is accepted."""
        event = Event(self.sim, name=f"put({self.name})")
        self._putters.append((event, item))
        self._drain()
        return event

    def get(self) -> Event:
        """Remove and return (via the event value) the oldest item."""
        event = Event(self.sim, name=f"get({self.name})")
        self._getters.append(event)
        self._drain()
        return event

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Move accepted puts into the buffer (abandoned puts vanish).
            while self._putters and (self.capacity is None or len(self._items) < self.capacity):
                event, item = self._putters.popleft()
                if event.abandoned:
                    progressed = True
                    continue
                self._items.append(item)
                if not event.triggered:
                    event.succeed(item)
                progressed = True
            # Serve waiting getters (abandoned getters must not eat items).
            while self._getters and self._items:
                getter = self._getters.popleft()
                if getter.triggered or getter.abandoned:
                    progressed = True
                    continue
                getter.succeed(self._items.popleft())
                progressed = True
