"""Cross-layer adaptations for dynamic data management in coupled scientific workflows.

A Python reproduction of Jin et al., "Using Cross-Layer Adaptations for
Dynamic Data Management in Large Scale Coupled Scientific Workflows"
(SC '13).  The package provides:

- :mod:`repro.hpc` -- a discrete-event simulated HPC machine (nodes, memory,
  interconnect with bandwidth sharing, Intrepid/Titan presets) that stands
  in for the leadership systems used in the paper.
- :mod:`repro.amr` -- a Chombo-like block-structured AMR library with real
  advection-diffusion and polytropic-gas (Euler/Godunov) solvers.
- :mod:`repro.analysis` -- in-situ/in-transit analysis kernels: marching
  cubes and marching squares isosurface extraction, block entropy,
  downsampling operators, descriptive statistics and fidelity metrics.
- :mod:`repro.staging` -- a DataSpaces-like staging substrate: versioned
  bounding-box object store, asynchronous transport, resizable staging
  server pool and pub/sub messaging.
- :mod:`repro.workload` -- workload traces captured from real AMR runs,
  trace scaling and a synthetic AMR workload generator.
- :mod:`repro.core` -- the paper's contribution: the autonomic Monitor /
  Adaptation Engine / Adaptation Policies stack with per-layer policies
  (application, middleware, resource) and the combined root-leaf
  cross-layer policy.
- :mod:`repro.workflow` -- the coupled simulation + analysis workflow
  driver and its metrics (time-to-solution, overhead, data movement,
  utilization efficiency).
- :mod:`repro.experiments` -- one module per figure/table of the paper's
  evaluation section.
"""

from repro._version import __version__

__all__ = ["__version__"]
