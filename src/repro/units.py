"""Unit helpers: byte/second constants, parsing and human-readable formatting.

All sizes in the package are plain ``float``/``int`` bytes and all times are
``float`` seconds; these helpers exist so configuration code reads naturally
(``512 * MiB``) and reports render consistently.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB

MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0

_BINARY_SUFFIXES = [(TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")]

_SUFFIX_TO_BYTES = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
}


def format_bytes(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``format_bytes(3 * GiB)``.

    Negative values are rendered with a leading minus sign.
    """
    sign = "-" if n < 0 else ""
    n = abs(float(n))
    for factor, suffix in _BINARY_SUFFIXES:
        if n >= factor:
            return f"{sign}{n / factor:.2f} {suffix}"
    return f"{sign}{n:.0f} B"


def parse_bytes(text: str) -> float:
    """Parse a human-readable size such as ``"512 MiB"`` or ``"2GB"`` to bytes.

    Raises :class:`ValueError` on unknown suffixes or malformed numbers.
    """
    stripped = text.strip().lower()
    for suffix in sorted(_SUFFIX_TO_BYTES, key=len, reverse=True):
        if stripped.endswith(suffix):
            number = stripped[: -len(suffix)].strip()
            if not number:
                raise ValueError(f"missing numeric part in size string: {text!r}")
            return float(number) * _SUFFIX_TO_BYTES[suffix]
    try:
        return float(stripped)
    except ValueError as exc:
        raise ValueError(f"unrecognized size string: {text!r}") from exc


def format_seconds(t: float) -> str:
    """Render a duration: microseconds up to hours, picking a sensible unit."""
    sign = "-" if t < 0 else ""
    t = abs(float(t))
    if t >= HOUR:
        return f"{sign}{t / HOUR:.2f} h"
    if t >= MINUTE:
        return f"{sign}{t / MINUTE:.2f} min"
    if t >= 1.0:
        return f"{sign}{t:.2f} s"
    if t >= MILLISECOND:
        return f"{sign}{t / MILLISECOND:.2f} ms"
    return f"{sign}{t / MICROSECOND:.2f} us"
