"""Parallel sweep runner: fan experiment grids out over worker processes.

Every figure/table of the paper is an independent sweep over
deterministic workflow configurations, so regenerating them is
embarrassingly parallel.  Each experiment module exposes a tiny sweep
protocol --

- ``grid()``    -- the ordered list of parameter dicts (one per point);
- ``run_point(params)`` -- compute one point (picklable result);
- ``merge(results)``    -- assemble grid-ordered point results into the
  object the module's existing ``render`` accepts;

-- and :func:`run_all` fans every selected experiment's points over a
``ProcessPoolExecutor`` with ``jobs`` workers.  Results are merged
**deterministically, ordered by grid index** (never by completion
order), so the rendered output is bit-identical to the serial path:
``run_all(jobs=8)`` and ``run_all(jobs=1)`` print the same bytes.

Workers share the content-addressed disk cache (``REPRO_CACHE_DIR``):
per-key advisory locks in :mod:`repro.experiments.cache` turn would-be
stampedes into one compute plus N-1 disk hits, and the parent resolves
the git code salt once (:func:`~repro.experiments.cache.set_code_salt`)
instead of each worker spawning its own ``git rev-parse``.

Observability: each completed point returns its worker's metrics dump
and profiler span dump; the parent folds them into an injected
:class:`~repro.observability.MetricsRegistry` via
:func:`~repro.observability.merge_worker_metrics` and an injected
:class:`~repro.observability.Profiler` via
:func:`~repro.observability.merge_worker_profiles` (both in grid order,
so aggregates are reproducible) and emits one ``sweep.point`` trace
event per point when a tracer is injected.

``python -m repro run-all [--jobs N] [--only fig6,fig9]`` is the CLI
face of this module; see ``docs/performance.md``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from importlib import import_module
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ExperimentError
from repro.experiments import cache as cache_mod

__all__ = [
    "SWEEPS",
    "SweepOutcome",
    "SweepSpec",
    "expand_grid",
    "run_all",
    "sweep_names",
]


@dataclass(frozen=True)
class SweepSpec:
    """One experiment's sweep protocol, resolved lazily by module path.

    Workers receive only ``(name, index, params)`` tasks -- strings,
    ints and plain dicts -- and look the spec up in :data:`SWEEPS`, so
    nothing unpicklable ever crosses the process boundary.
    """

    name: str
    module: str
    description: str

    def _mod(self):
        return import_module(self.module)

    def grid(self) -> list[dict]:
        """The ordered parameter grid (one dict per sweep point)."""
        return list(self._mod().grid())

    def run_point(self, params: Mapping[str, Any]) -> Any:
        """Compute one grid point (runs in a worker process)."""
        return self._mod().run_point(dict(params))

    def merge(self, results: Sequence[Any]) -> Any:
        """Assemble grid-ordered point results into the figure object."""
        return self._mod().merge(list(results))

    def render(self, merged: Any) -> str:
        """The module's existing text rendering of the merged result."""
        return self._mod().render(merged)


#: Every experiment the ``run-all`` sweep covers, in report order
#: (mirrors ``repro.__main__.EXPERIMENTS``).
SWEEPS: dict[str, SweepSpec] = {
    spec.name: spec
    for spec in (
        SweepSpec("fig1", "repro.experiments.fig1_memory",
                  "peak-memory distribution, Polytropic Gas"),
        SweepSpec("fig4", "repro.experiments.fig4_timeline",
                  "placement decision timeline"),
        SweepSpec("fig5", "repro.experiments.fig5_app_layer",
                  "adaptive spatial resolution vs memory"),
        SweepSpec("fig6", "repro.experiments.fig6_entropy",
                  "entropy-based down-sampling fidelity"),
        SweepSpec("fig7", "repro.experiments.fig7_placement",
                  "end-to-end time: static vs adaptive placement"),
        SweepSpec("fig8", "repro.experiments.fig8_data_movement",
                  "data movement: in-transit vs adaptive"),
        SweepSpec("fig9", "repro.experiments.fig9_resource",
                  "adaptive staging allocation + Eq. 12"),
        SweepSpec("fig10", "repro.experiments.fig10_global",
                  "global cross-layer vs local adaptation"),
        SweepSpec("fig11", "repro.experiments.fig11_global_movement",
                  "data movement: global vs local"),
        SweepSpec("table2", "repro.experiments.table2_utilization",
                  "staging core usage histogram"),
        SweepSpec("ablations", "repro.experiments.ablations",
                  "design-choice sweeps"),
        SweepSpec("objectives", "repro.experiments.objectives",
                  "user-preference trade-off comparison"),
        SweepSpec("fig_triggers", "repro.experiments.fig_triggers",
                  "monitoring overhead vs adaptation lag across trigger "
                  "policies"),
        SweepSpec("fig_tenants", "repro.experiments.fig_tenants",
                  "multi-tenant contention across admission policies"),
    )
}


def sweep_names() -> list[str]:
    """Every sweepable experiment id, in report order."""
    return list(SWEEPS)


@dataclass(frozen=True)
class SweepOutcome:
    """One experiment's merged sweep result.

    ``seconds`` sums the per-point compute wall times (what the workers
    spent), which can exceed the sweep's wall-clock when points ran
    concurrently.
    """

    name: str
    description: str
    result: Any
    text: str
    points: int
    jobs: int
    seconds: float


def expand_grid(
    names: Sequence[str],
    grids: Mapping[str, Sequence[Mapping[str, Any]]] | None = None,
) -> list[tuple[str, int, dict]]:
    """The flat, ordered task list ``(experiment, grid index, params)``.

    ``grids`` overrides individual experiments' default grids (tests and
    the CI smoke job use small configurations); points must follow the
    order the experiment's ``merge`` expects.
    """
    tasks = []
    for name in names:
        spec = SWEEPS.get(name)
        if spec is None:
            known = ", ".join(SWEEPS)
            raise ExperimentError(f"unknown experiment {name!r} (known: {known})")
        points = grids.get(name) if grids is not None else None
        if points is None:
            points = spec.grid()
        tasks.extend((name, index, dict(params))
                     for index, params in enumerate(points))
    return tasks


def _execute_point(
    name: str, params: Mapping[str, Any]
) -> tuple[Any, dict, dict, float]:
    """Run one grid point with private metrics + profiler attached.

    The registry and profiler are swapped onto the process-wide default
    cache for the duration of the point, so the returned dumps attribute
    cache traffic and wall time to exactly this point (workers ship them
    back to the parent).  The whole point runs under a ``sweep.point``
    span, so cache lookups/computes nest beneath it.
    """
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.profiler import Profiler

    registry = MetricsRegistry()
    profiler = Profiler()
    cache = cache_mod.default_cache()
    previous = cache.metrics
    previous_profiler = cache.profiler
    cache.metrics = registry
    cache.profiler = profiler
    try:
        started = time.perf_counter()
        with profiler.span("sweep.point"):
            result = SWEEPS[name].run_point(params)
        seconds = time.perf_counter() - started
    finally:
        cache.metrics = previous
        cache.profiler = previous_profiler
    return result, registry.dump(), profiler.dump(), seconds


def _worker_init(code_salt: str, cache_dir: str | None) -> None:
    """Seed a pool worker: pinned code salt, shared disk cache dir.

    Pinning the salt means a pool of N workers runs zero git
    subprocesses; the parent resolved it once.
    """
    cache_mod.set_code_salt(code_salt)
    if cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir


def _worker_run(
    task: tuple[str, int, dict]
) -> tuple[str, int, Any, dict, dict, float, int]:
    """Pool entry point: compute one task, return it with provenance."""
    name, index, params = task
    result, dump, profile, seconds = _execute_point(name, params)
    return name, index, result, dump, profile, seconds, os.getpid()


def run_all(
    only: Iterable[str] | None = None,
    *,
    jobs: int = 1,
    metrics=None,
    tracer=None,
    profiler=None,
    grids: Mapping[str, Sequence[Mapping[str, Any]]] | None = None,
) -> list[SweepOutcome]:
    """Regenerate experiments, fanning grid points over ``jobs`` workers.

    Parameters
    ----------
    only:
        Experiment ids to run (default: every entry of :data:`SWEEPS`),
        reported in :data:`SWEEPS` order regardless of input order.
    jobs:
        Worker processes.  ``1`` (the default) runs every point in this
        process -- no pool, no pickling -- and is the reference output;
        any higher value must produce bit-identical text.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; worker
        dumps are folded in with
        :func:`~repro.observability.merge_worker_metrics` in grid order.
    tracer:
        Optional :class:`~repro.observability.Tracer`; one
        ``sweep.point`` event is emitted per completed point.
    profiler:
        Optional :class:`~repro.observability.Profiler`; every point's
        span dump (one ``sweep.point`` root with cache spans beneath) is
        folded in with
        :func:`~repro.observability.merge_worker_profiles` in grid
        order, yielding one deterministic aggregated profile no matter
        how many workers ran.
    grids:
        Per-experiment grid overrides (see :func:`expand_grid`).
    """
    from repro.observability.metrics import merge_worker_metrics
    from repro.observability.profiler import merge_worker_profiles

    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if only is None:
        names = sweep_names()
    else:
        requested = set(only)
        unknown = sorted(requested - set(SWEEPS))
        if unknown:
            raise ExperimentError(
                f"unknown experiments {unknown} (known: {', '.join(SWEEPS)})"
            )
        names = [name for name in SWEEPS if name in requested]

    tasks = expand_grid(names, grids)
    if jobs == 1:
        completed = [
            (name, index, *_execute_point(name, params), os.getpid())
            for name, index, params in tasks
        ]
    else:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(cache_mod._code_salt(), cache_dir),
        ) as pool:
            # ``map`` yields in submission order, so the aggregation
            # below is deterministic no matter which worker finishes
            # first; chunksize=1 keeps the pool load-balanced.
            completed = list(pool.map(_worker_run, tasks, chunksize=1))

    by_experiment: dict[str, list[Any]] = {name: [] for name in names}
    seconds: dict[str, float] = {name: 0.0 for name in names}
    for name, index, result, dump, profile, point_seconds, worker in completed:
        by_experiment[name].append((index, result))
        seconds[name] += point_seconds
        if metrics is not None:
            merge_worker_metrics(metrics, [dump])
        if profiler is not None:
            merge_worker_profiles(profiler, [profile])
        if tracer is not None:
            tracer.emit(
                "sweep.point",
                experiment=name,
                index=index,
                worker=worker,
                seconds=point_seconds,
            )

    outcomes = []
    for name in names:
        spec = SWEEPS[name]
        ordered = [result for _, result in sorted(by_experiment[name],
                                                  key=lambda item: item[0])]
        merged = spec.merge(ordered)
        outcomes.append(
            SweepOutcome(
                name=name,
                description=spec.description,
                result=merged,
                text=spec.render(merged),
                points=len(ordered),
                jobs=jobs,
                seconds=seconds[name],
            )
        )
    return outcomes
