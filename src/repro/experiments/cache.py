"""Memoized simulation sessions for the experiment hot path.

Several experiments re-run the same deterministic solver configurations:
the Figure 1/5 memory studies and the captured-trace sweep all capture
the same Polytropic Gas run (at 50, 40 and 30 steps), and the Figure 6
entropy study shares its density field with two ablation sweeps.  The
:class:`ExperimentCache` removes that redundancy without changing a
single output bit:

- **Prefix reuse.**  A captured trace of ``k`` steps is, by determinism,
  exactly the first ``k`` records of a longer capture from the same
  configuration, so shorter requests are served by slicing.
- **Stepper extension.**  :class:`~repro.amr.stepper.AMRStepper.run`
  continues the step counter, so a session keeps the live stepper and
  advances it *forward* for longer requests instead of re-running from
  step zero.  A session whose stepper has already passed the requested
  step recomputes from scratch (state cannot be rewound).
- **Content-addressed disk artifacts.**  With ``REPRO_CACHE_DIR`` set,
  finished artifacts are pickled under a key hashing the experiment
  kind, its parameters, :data:`CACHE_VERSION` and the current git
  revision, so stale artifacts from other code states can never be
  served.

Set ``REPRO_NO_CACHE=1`` (or ``true`` / ``yes``, case-insensitive) to
bypass the cache entirely; every request then computes exactly as the
un-cached experiments always did.  ``""``, ``0``, ``false`` and ``no``
keep it enabled; any other value warns once and keeps the cache on
(bypassing is the *exceptional* state and must be asked for
unambiguously).  When a
:class:`~repro.observability.MetricsRegistry` is attached, lookups
publish the ``experiments.cache_hits`` / ``experiments.cache_misses``
counters, failed disk stores the
``experiments.cache_store_failures`` counter, and contended per-key
file locks the ``experiments.cache_lock_waits`` counter.  When a
:class:`~repro.observability.Profiler` is attached
(:meth:`ExperimentCache.attach_profiler`), every lookup runs under a
``cache.lookup`` span with actual artifact computes nested under
``cache.compute``.

The disk layer is safe for concurrent writers: artifacts are written
via ``os.replace`` (never torn), and the miss path holds a per-key
advisory file lock (``<key>.lock`` under the cache dir) so N workers
asking for the same artifact compute it once instead of stampeding.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import subprocess
import tempfile
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable

try:  # POSIX advisory locks; on platforms without fcntl the cache
    import fcntl  # degrades to lock-free (correct, stampede-prone).
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

import numpy as np

from repro.workload.capture import capture_trace
from repro.workload.trace import WorkloadTrace

__all__ = [
    "CACHE_VERSION",
    "ExperimentCache",
    "cache_enabled",
    "default_cache",
    "reset_default_cache",
    "set_code_salt",
]

#: Bump when a cached artifact's meaning changes (invalidates disk keys).
CACHE_VERSION = 1

#: Distinguishes "not cached" from a legitimately cached ``None`` artifact
#: in both the in-memory dict and the disk layer.
_MISS = object()

#: One warning per process when the disk layer cannot store artifacts.
_STORE_FAILURE_WARNED = False

_CODE_SALT: str | None = None


def _code_salt() -> str:
    """The current git revision, or ``"nogit"`` outside a repository.

    Folded into every cache key so on-disk artifacts written by one code
    state are never served to another.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=10,
            )
            rev = proc.stdout.strip()
            _CODE_SALT = rev if proc.returncode == 0 and rev else "nogit"
        except (OSError, subprocess.SubprocessError):
            _CODE_SALT = "nogit"
    return _CODE_SALT


def set_code_salt(salt: str) -> None:
    """Pin the code salt instead of deriving it from ``git rev-parse``.

    The parallel sweep runner resolves the salt once in the parent and
    seeds every worker with it, so a pool of N workers does not spawn N
    git subprocesses (and workers spawned outside the repository still
    key artifacts consistently with their parent).
    """
    global _CODE_SALT
    _CODE_SALT = str(salt)


#: ``REPRO_NO_CACHE`` values that disable / keep the cache, after
#: stripping and lower-casing.  Anything else warns once per value.
_NO_CACHE_TRUE = ("1", "true", "yes")
_NO_CACHE_FALSE = ("", "0", "false", "no")

_WARNED_NO_CACHE_VALUES: set[str] = set()


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` asks for plain recomputation.

    Only ``1`` / ``true`` / ``yes`` (case-insensitive, stripped)
    disable the cache; ``""`` / ``0`` / ``false`` / ``no`` keep it
    enabled.  Unrecognized values warn once and keep the cache enabled
    rather than silently bypassing it.
    """
    raw = os.environ.get("REPRO_NO_CACHE", "")
    value = raw.strip().lower()
    if value in _NO_CACHE_TRUE:
        return False
    if value in _NO_CACHE_FALSE:
        return True
    if raw not in _WARNED_NO_CACHE_VALUES:
        _WARNED_NO_CACHE_VALUES.add(raw)
        warnings.warn(
            f"unrecognized REPRO_NO_CACHE value {raw!r}; the cache stays "
            "enabled (set REPRO_NO_CACHE=1 to bypass it)",
            RuntimeWarning,
            stacklevel=2,
        )
    return True


class _TraceSession:
    """One solver configuration's captured records, grown incrementally."""

    def __init__(self, build: Callable[[], Any], name: str):
        self.build = build
        self.name = name
        self.stepper = None
        self.records: list = []
        self.meta: tuple[int, int, float] | None = None  # ndim, nranks, b/cell

    def adopt(self, trace: WorkloadTrace) -> None:
        """Seed from a disk artifact (records only; no live stepper)."""
        self.records = list(trace.steps)
        self.meta = (trace.ndim, trace.nranks, trace.bytes_per_cell)

    def prefix(self, nsteps: int) -> WorkloadTrace:
        ndim, nranks, bpc = self.meta
        return WorkloadTrace(
            name=self.name,
            ndim=ndim,
            nranks=nranks,
            bytes_per_cell=bpc,
            steps=list(self.records[:nsteps]),
        )

    def extend_to(self, nsteps: int) -> WorkloadTrace:
        if self.stepper is None:
            # Either a fresh session or one adopted from disk; a disk
            # prefix cannot be extended without solver state, so restart.
            self.stepper = self.build()
            self.records = []
        captured = capture_trace(
            self.stepper, nsteps - len(self.records), name=self.name
        )
        self.records.extend(captured.steps)
        self.meta = (captured.ndim, captured.nranks, captured.bytes_per_cell)
        return self.prefix(nsteps)


class _FieldSession:
    """One solver configuration's live stepper plus extracted fields."""

    def __init__(self, build: Callable[[], Any], extract: Callable[[Any], np.ndarray]):
        self.build = build
        self.extract = extract
        self.stepper = None
        self.steps_done = 0
        self.fields: dict[int, np.ndarray] = {}

    def advance_to(self, nsteps: int) -> np.ndarray:
        if self.stepper is None or self.steps_done > nsteps:
            self.stepper = self.build()
            self.steps_done = 0
        if nsteps > self.steps_done:
            self.stepper.run(nsteps - self.steps_done)
            self.steps_done = nsteps
        return self.extract(self.stepper)


class ExperimentCache:
    """Parameter-keyed memo for deterministic experiment inputs.

    In-process sessions hold live steppers (for prefix/extension reuse);
    the optional on-disk layer under ``REPRO_CACHE_DIR`` persists
    finished artifacts across processes.  All public entry points honour
    ``REPRO_NO_CACHE=1`` by delegating straight to the compute path.
    """

    def __init__(self, cache_dir: str | Path | None = None, metrics=None,
                 profiler=None):
        self.cache_dir = cache_dir
        self.metrics = metrics
        self.profiler = profiler
        self._values: dict[str, Any] = {}
        self._sessions: dict[str, Any] = {}

    # -- plumbing ----------------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """Publish hit/miss counters to ``registry`` from now on."""
        self.metrics = registry

    def attach_profiler(self, profiler) -> None:
        """Wrap lookups (``cache.lookup``) and artifact computes
        (``cache.compute``) in profiler spans from now on."""
        self.profiler = profiler

    def _compute(self, fn: Callable[[], Any]) -> Any:
        """Run an artifact compute, spanned as ``cache.compute`` when a
        profiler is attached (nested under ``cache.lookup`` on the
        cache-enabled path)."""
        if self.profiler is not None:
            with self.profiler.span("cache.compute"):
                return fn()
        return fn()

    def _count(self, hit: bool) -> None:
        if self.metrics is not None:
            name = "experiments.cache_hits" if hit else "experiments.cache_misses"
            self.metrics.counter(name).inc()

    def key(self, kind: str, **params) -> str:
        """Content hash of (kind, params, cache version, code revision).

        Parameters exposing a ``cache_token()`` method (e.g.
        :class:`repro.faults.FaultPlan`) are keyed by that token, so
        artifacts computed under one fault plan are never served to a
        run with a different plan -- or to a fault-free run.
        """
        canonical = {
            name: (
                value.cache_token()
                if hasattr(value, "cache_token")
                else value
            )
            for name, value in params.items()
        }
        payload = json.dumps(
            {
                "kind": kind,
                "params": canonical,
                "version": CACHE_VERSION,
                "salt": _code_salt(),
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _dir(self) -> Path | None:
        if self.cache_dir is not None:
            return Path(self.cache_dir)
        env = os.environ.get("REPRO_CACHE_DIR", "")
        return Path(env) if env else None

    def _disk_load(self, key: str) -> Any:
        """The stored artifact, or :data:`_MISS` when absent/unreadable.

        The sentinel (not ``None``) signals a miss, so a legitimately
        cached ``None`` artifact round-trips as a hit.
        """
        root = self._dir()
        if root is None:
            return _MISS
        path = root / f"{key}.pkl"
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError):
            return _MISS

    def _disk_store(self, key: str, value: Any) -> None:
        root = self._dir()
        if root is None:
            return
        try:
            root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, root / f"{key}.pkl")
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError as exc:
            # A read-only or full cache dir degrades to recomputation;
            # say so (once) instead of silently eating every future run.
            if self.metrics is not None:
                self.metrics.counter("experiments.cache_store_failures").inc()
            global _STORE_FAILURE_WARNED
            if not _STORE_FAILURE_WARNED:
                _STORE_FAILURE_WARNED = True
                warnings.warn(
                    f"experiment cache store under {root} failed ({exc}); "
                    "artifacts will be recomputed every run until "
                    "REPRO_CACHE_DIR is writable again",
                    RuntimeWarning,
                    stacklevel=3,
                )

    @contextmanager
    def _locked(self, root: Path, key: str):
        """Per-key advisory file lock serializing concurrent computes.

        Holding ``<key>.lock`` while computing and storing an artifact
        turns a would-be cache stampede (N workers computing the same
        artifact) into one compute plus N-1 disk hits.  A blocked
        acquisition increments ``experiments.cache_lock_waits``.  On
        platforms without :mod:`fcntl`, or when the lock file cannot be
        created, the cache degrades to lock-free operation -- still
        correct (stores are atomic), just stampede-prone.
        """
        if fcntl is None:
            yield
            return
        try:
            root.mkdir(parents=True, exist_ok=True)
            handle = open(root / f"{key}.lock", "ab")
        except OSError:
            yield
            return
        try:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                if self.metrics is not None:
                    self.metrics.counter("experiments.cache_lock_waits").inc()
                fcntl.flock(handle, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle, fcntl.LOCK_UN)
            finally:
                handle.close()

    # -- entry points ------------------------------------------------------

    def value(self, kind: str, params: dict, compute: Callable[[], Any]) -> Any:
        """Generic memo for a deterministic, parameter-keyed computation."""
        if not cache_enabled():
            return self._compute(compute)
        if self.profiler is not None:
            with self.profiler.span("cache.lookup"):
                return self._value(kind, params, compute)
        return self._value(kind, params, compute)

    def _value(self, kind: str, params: dict, compute: Callable[[], Any]) -> Any:
        key = self.key(kind, **params)
        cached = self._values.get(key, _MISS)
        if cached is not _MISS:
            self._count(hit=True)
            return cached
        stored = self._disk_load(key)
        if stored is not _MISS:
            self._count(hit=True)
            self._values[key] = stored
            return stored
        self._count(hit=False)
        root = self._dir()
        if root is None:
            result = self._values[key] = self._compute(compute)
            return result
        with self._locked(root, key):
            # A concurrent worker may have stored it while this one
            # waited on the lock; one compute serves the whole pool.
            stored = self._disk_load(key)
            if stored is not _MISS:
                self._values[key] = stored
                return stored
            result = self._values[key] = self._compute(compute)
            self._disk_store(key, result)
        return result

    def trace(
        self,
        kind: str,
        params: dict,
        nsteps: int,
        build: Callable[[], Any],
        name: str,
    ) -> WorkloadTrace:
        """A captured trace, served from prefixes / stepper extension.

        ``build`` constructs the (deterministic) stepper; ``nsteps`` of
        capture are returned.  One session per (kind, params) holds the
        longest capture so far; shorter requests slice it, longer ones
        advance the live stepper forward.
        """
        if not cache_enabled():
            return self._compute(lambda: capture_trace(build(), nsteps, name=name))
        if self.profiler is not None:
            with self.profiler.span("cache.lookup"):
                return self._trace(kind, params, nsteps, build, name)
        return self._trace(kind, params, nsteps, build, name)

    def _trace(
        self,
        kind: str,
        params: dict,
        nsteps: int,
        build: Callable[[], Any],
        name: str,
    ) -> WorkloadTrace:
        skey = self.key(kind, **params)
        session = self._sessions.get(skey)
        if session is None:
            session = _TraceSession(build, name)
            stored = self._disk_load(skey)
            if stored is not _MISS:
                session.adopt(stored)
            self._sessions[skey] = session
        if len(session.records) >= nsteps:
            self._count(hit=True)
            return session.prefix(nsteps)
        self._count(hit=False)
        root = self._dir()
        if root is None:
            return self._compute(lambda: session.extend_to(nsteps))
        with self._locked(root, skey):
            # A concurrent worker may have stored a capture at least as
            # long while this one waited; adopting it (when no live
            # stepper would be discarded) skips the recompute and is
            # bit-identical by determinism.
            stored = self._disk_load(skey)
            if (
                stored is not _MISS
                and session.stepper is None
                and len(stored.steps) >= nsteps
            ):
                session.adopt(stored)
                return session.prefix(nsteps)
            trace = self._compute(lambda: session.extend_to(nsteps))
            if stored is _MISS or len(stored.steps) < len(session.records):
                self._disk_store(skey, session.prefix(len(session.records)))
        return trace

    def field(
        self,
        kind: str,
        params: dict,
        nsteps: int,
        build: Callable[[], Any],
        extract: Callable[[Any], np.ndarray],
    ) -> np.ndarray:
        """A dense field extracted after ``nsteps``, with stepper reuse.

        Returns a private copy, so callers may mutate the result freely.
        """
        if not cache_enabled():
            def _fresh() -> np.ndarray:
                stepper = build()
                stepper.run(nsteps)
                return extract(stepper)
            return self._compute(_fresh)
        if self.profiler is not None:
            with self.profiler.span("cache.lookup"):
                return self._field(kind, params, nsteps, build, extract)
        return self._field(kind, params, nsteps, build, extract)

    def _field(
        self,
        kind: str,
        params: dict,
        nsteps: int,
        build: Callable[[], Any],
        extract: Callable[[Any], np.ndarray],
    ) -> np.ndarray:
        skey = self.key(kind, **params)
        session = self._sessions.get(skey)
        if session is None:
            session = _FieldSession(build, extract)
            self._sessions[skey] = session
        if nsteps in session.fields:
            self._count(hit=True)
            return session.fields[nsteps].copy()
        fkey = self.key(kind, **params, nsteps=nsteps)
        stored = self._disk_load(fkey)
        if stored is not _MISS:
            self._count(hit=True)
            session.fields[nsteps] = stored
            return stored.copy()
        self._count(hit=False)
        root = self._dir()
        if root is None:
            field = self._compute(lambda: session.advance_to(nsteps))
            session.fields[nsteps] = field
            return field.copy()
        with self._locked(root, fkey):
            stored = self._disk_load(fkey)
            if stored is not _MISS:
                session.fields[nsteps] = stored
                return stored.copy()
            field = self._compute(lambda: session.advance_to(nsteps))
            session.fields[nsteps] = field
            self._disk_store(fkey, field)
        return field.copy()


_DEFAULT: ExperimentCache | None = None


def default_cache() -> ExperimentCache:
    """The process-wide cache the experiments share."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ExperimentCache()
    return _DEFAULT


def reset_default_cache() -> None:
    """Drop the shared cache (tests use this to isolate sessions)."""
    global _DEFAULT
    _DEFAULT = None
