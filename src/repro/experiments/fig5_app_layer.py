"""Figure 5: application-layer adaptation of the data's spatial resolution.

The memory-intensive 3-D Polytropic Gas run on Intrepid (500 MB/core):
acceptable down-sampling factors are {2, 4} for the first half of the
40-step run and {2, 4, 8, 16} for the second half (user hints).  While
memory is plentiful the policy keeps the minimum factor (highest
resolution); when availability drops below the high-resolution reduce
cost (paper: at step 31) the factor rises, reaching the minimum
resolution by the last step.

The memory-availability series comes from the real Godunov run's captured
footprint, calibrated into Intrepid's 500 MB/core regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.downsample import downsample_memory_cost
from repro.core.policies.application import ApplicationLayerPolicy
from repro.core.preferences import UserHints
from repro.core.state import OperationalState
from repro.experiments.common import PAPER, render_table
from repro.experiments.fig1_memory import captured_gas_trace
from repro.hpc.systems import intrepid
from repro.units import MiB, format_bytes
from repro.workload.memory import MemoryProfile, memory_profile_from_trace

__all__ = ["Fig5Result", "render", "run_fig5"]

STEPS = 40


@dataclass(frozen=True)
class Fig5Result:
    """The four curves of the figure plus the chosen factors."""

    availability: np.ndarray  # real-time memory availability (bytes)
    consumption_max_res: np.ndarray  # min factor of the phase
    consumption_min_res: np.ndarray  # max factor of the phase
    consumption_adaptive: np.ndarray
    factors: np.ndarray
    ndim: int = 3

    @property
    def adaptation_step(self) -> int | None:
        """First step where the adaptive factor leaves the phase minimum
        (the paper sees this at step 31)."""
        hints = UserHints(downsample_phases=PAPER.fig5_phases)
        for i, factor in enumerate(self.factors):
            if factor > min(hints.factors_for_step(i + 1)):
                return i + 1
        return None


def _calibrated_profile(steps: int) -> tuple[MemoryProfile, np.ndarray]:
    """Availability series + per-step peak-rank output bytes, calibrated so
    the high-resolution reduce cost crosses availability near 3/4 of the run.
    """
    trace = captured_gas_trace(nsteps=steps)
    capacity = intrepid().memory_per_core  # 500 MB/core
    # The simulation occupies a growing share of the rank: scale the
    # captured footprint so usage nearly exhausts the node by the last
    # step (the paper's run ends with the adaptive resolution forced to
    # its minimal value).
    raw_peak = trace.peak_memory_series()
    usage_scale = 0.998 * capacity / raw_peak.max()
    profile = memory_profile_from_trace(trace, capacity=capacity,
                                        usage_scale=usage_scale)
    # Per-rank output data: proportional to the rank's footprint share.
    out_raw = np.array([
        rec.data_bytes * rec.rank_bytes.max() / rec.rank_bytes.sum()
        for rec in trace
    ])
    # Calibrate the output size so the high-resolution (factor-2) reduce
    # cost crosses the falling availability around 3/4 of the run -- the
    # paper sees the adaptation trigger at step 31 of 40.
    availability = profile.availability_series()
    crossing = int(0.75 * len(availability))
    cost2_per_byte = downsample_memory_cost(1.0, 2, ndim=3)
    out_scale = availability[crossing] / (out_raw[crossing] * cost2_per_byte)
    return profile, out_raw * out_scale


def run_fig5(steps: int = STEPS) -> Fig5Result:
    """Drive the application-layer policy over the calibrated profile."""
    hints = UserHints(downsample_phases=PAPER.fig5_phases)
    policy = ApplicationLayerPolicy(hints)
    profile, out_bytes = _calibrated_profile(steps)
    ndim = 3

    availability, cons_max, cons_min, cons_adaptive, factors = [], [], [], [], []
    for i in range(steps):
        avail = profile.available(i)
        data = out_bytes[i]
        phase = hints.factors_for_step(i + 1)
        state = OperationalState(
            step=i + 1,
            ndim=ndim,
            core_rate=intrepid().core_rate,
            data_bytes=data * 64,
            rank_data_bytes=data,
            rank_memory_available=avail,
            analysis_work=1.0,
            sim_cores=4096,
            staging_active_cores=256,
            est_insitu_time=0.0,
            est_intransit_time=0.0,
            est_intransit_remaining=0.0,
            staging_busy=False,
            insitu_memory_ok=True,
            intransit_memory_ok=True,
            staging_total_cores=256,
            staging_memory_total=1e12,
            staging_memory_used=0.0,
            est_next_sim_time=1.0,
            est_send_time=0.0,
        )
        action = policy.decide(state)
        availability.append(avail)
        cons_max.append(downsample_memory_cost(data, min(phase), ndim))
        cons_min.append(downsample_memory_cost(data, max(phase), ndim))
        cons_adaptive.append(downsample_memory_cost(data, action.factor, ndim))
        factors.append(action.factor)

    return Fig5Result(
        availability=np.array(availability),
        consumption_max_res=np.array(cons_max),
        consumption_min_res=np.array(cons_min),
        consumption_adaptive=np.array(cons_adaptive),
        factors=np.array(factors),
    )


def grid() -> list[dict]:
    """Sweep protocol: the whole figure is one deterministic point."""
    return [{}]


def run_point(params: dict) -> Fig5Result:
    """Sweep protocol: compute one grid point (worker-side)."""
    return run_fig5(**params)


def merge(results: list) -> Fig5Result:
    """Sweep protocol: a single-point grid merges to its only result."""
    (result,) = results
    return result


def render(result: Fig5Result) -> str:
    headers = ["step", "availability", "consumption MAX res",
               "consumption MIN res", "consumption adaptive", "factor"]
    body = []
    for i in range(len(result.factors)):
        body.append([
            str(i + 1),
            format_bytes(result.availability[i]),
            format_bytes(result.consumption_max_res[i]),
            format_bytes(result.consumption_min_res[i]),
            format_bytes(result.consumption_adaptive[i]),
            f"x{int(result.factors[i])}",
        ])
    table = render_table(
        headers, body,
        title="Fig. 5: adaptive spatial resolution vs memory availability",
    )
    note = (
        f"\n\nadaptation first departs from the phase-minimum factor at step "
        f"{result.adaptation_step} (paper: step 31); final factor "
        f"x{int(result.factors[-1])} (paper: minimal resolution, x16)"
    )
    return table + note


if __name__ == "__main__":
    print(render(run_fig5()))
