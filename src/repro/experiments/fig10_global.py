"""Figure 10: global cross-layer adaptation vs local middleware adaptation.

Same workflow and scales as Fig. 7, plus the Fig. 5 down-sampling hints
for the application layer.  The paper reports global end-to-end overhead
dropping 52.16/84.22/97.84/88.87 % vs local-only middleware adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    PAPER,
    SCALES,
    ScaleConfig,
    render_table,
    run_mode_at_scale,
)
from repro.workflow.config import Mode
from repro.workflow.metrics import WorkflowResult

__all__ = ["Fig10Row", "render", "run_fig10"]


@dataclass(frozen=True)
class Fig10Row:
    """One scale's Local/Global bar pair."""

    scale: str
    local: WorkflowResult
    global_: WorkflowResult

    @property
    def overhead_cut(self) -> float:
        """Percent overhead reduction of global vs local adaptation."""
        if self.local.overhead_seconds <= 0:
            return 0.0
        return 100.0 * (1 - self.global_.overhead_seconds / self.local.overhead_seconds)


def _row(scale: ScaleConfig) -> Fig10Row:
    """Local and global adaptation at one scale (one sweep point)."""
    local = run_mode_at_scale(scale, Mode.ADAPTIVE_MIDDLEWARE)
    global_ = run_mode_at_scale(scale, Mode.GLOBAL, with_hints=True)
    return Fig10Row(scale=scale.label, local=local, global_=global_)


def run_fig10(scales: tuple[ScaleConfig, ...] = SCALES) -> list[Fig10Row]:
    """Run local middleware-only and global cross-layer at every scale."""
    return [_row(scale) for scale in scales]


def grid() -> list[dict]:
    """Sweep protocol: one point per scale (the figure's bar pairs)."""
    return [{"scale": index} for index in range(len(SCALES))]


def run_point(params: dict) -> Fig10Row:
    """Sweep protocol: compute one scale's row (worker-side)."""
    return _row(SCALES[params["scale"]])


def merge(results: list) -> list[Fig10Row]:
    """Sweep protocol: grid-ordered rows are ``run_fig10``'s output."""
    return list(results)


def render(rows: list[Fig10Row]) -> str:
    headers = ["cores", "config", "sim time (s)", "overhead (s)",
               "end-to-end (s)", "ovh cut", "paper"]
    body = []
    for row, paper_cut in zip(rows, PAPER.fig10_overhead_cut_vs_local):
        body.append([
            row.scale, "Local",
            f"{row.local.total_sim_seconds:.1f}",
            f"{row.local.overhead_seconds:.1f}",
            f"{row.local.end_to_end_seconds:.1f}",
            "", "",
        ])
        body.append([
            row.scale, "Global",
            f"{row.global_.total_sim_seconds:.1f}",
            f"{row.global_.overhead_seconds:.1f}",
            f"{row.global_.end_to_end_seconds:.1f}",
            f"{row.overhead_cut:.1f}%",
            f"{paper_cut:.1f}%",
        ])
    return render_table(
        headers, body,
        title="Fig. 10: end-to-end time, global cross-layer vs local adaptation",
    )


if __name__ == "__main__":
    print(render(run_fig10()))
