"""Figure 1: peak-memory distribution of an AMR Polytropic Gas run.

The paper profiles the Chombo Polytropic Gas application on 4K cores over
50 time steps and observes (a) memory consumption rising at an erratic
pace and (b) strongly uneven distribution across processes.  We run the
real (NumPy) Godunov solver, capture the per-rank memory trace, scale it
to 4K virtual ranks, and report the same distribution statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.box import Box
from repro.amr.godunov import PolytropicGasSolver
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.stepper import AMRStepper
from repro.experiments.cache import default_cache
from repro.experiments.common import render_table
from repro.units import MiB, format_bytes
from repro.workload.scale import scale_trace
from repro.workload.trace import WorkloadTrace

__all__ = ["Fig1Result", "captured_gas_trace", "render", "run_fig1"]

TARGET_RANKS = 4096


def _gas_stepper(n: int, nranks: int) -> AMRStepper:
    domain = Box((0, 0, 0), (n - 1, n // 2 - 1, n // 2 - 1))
    hierarchy = AMRHierarchy(
        domain,
        ncomp=5,
        nghost=2,
        max_levels=2,
        nranks=nranks,
        max_box_size=8,
        dx0=1.0 / n,
        periodic=True,
    )
    solver = PolytropicGasSolver(tag_threshold=0.06, blast_pressure_jump=20.0)
    return AMRStepper(hierarchy, solver, regrid_interval=4)


def captured_gas_trace(
    nsteps: int = 50, n: int = 32, nranks: int = 16, cache=None
) -> WorkloadTrace:
    """Run the real 3-D Polytropic Gas solver and capture its trace.

    Domain proportions follow the paper's 128x64x64 base grid (2:1:1).
    Small boxes and few capture ranks keep several boxes per rank, so the
    per-rank peak tracks refinement growth the way the paper's does.

    Requests for the same configuration share one memoized solver
    session (:mod:`repro.experiments.cache`): shorter traces are served
    as prefixes of the longest capture so far, longer ones extend the
    live stepper -- both bit-identical to a fresh run of that length.
    """
    cache = default_cache() if cache is None else cache
    return cache.trace(
        "captured_gas_trace",
        {"n": n, "nranks": nranks},
        nsteps,
        build=lambda: _gas_stepper(n, nranks),
        name="polytropic-gas-3d",
    )


@dataclass(frozen=True)
class Fig1Result:
    """Distribution statistics per step, across virtual ranks."""

    steps: np.ndarray
    peak: np.ndarray  # max over ranks
    p90: np.ndarray
    median: np.ndarray
    minimum: np.ndarray

    @property
    def imbalance(self) -> np.ndarray:
        """Peak / median per step."""
        return self.peak / np.maximum(self.median, 1e-9)

    @property
    def growth_erraticness(self) -> float:
        """Coefficient of variation of the step-to-step peak increments;
        > 1 means growth arrives in bursts rather than smoothly."""
        deltas = np.diff(self.peak)
        if deltas.size == 0 or np.abs(deltas).mean() == 0:
            return 0.0
        return float(deltas.std() / np.abs(deltas.mean()))


def run_fig1(nsteps: int = 50, memory_scale: float | None = None) -> Fig1Result:
    """Capture, scale to 4K ranks, and summarize the distribution.

    ``memory_scale`` maps the small-run footprints into the paper's
    regime (peaks of hundreds of MB per process); by default the peak is
    normalized to ~320 MiB at the end of the run.
    """
    base = captured_gas_trace(nsteps)
    # jitter_sigma 0.6: the 16-rank capture is nearly perfectly balanced,
    # but at 4K ranks Chombo's box-granular balancing leaves an
    # order-of-magnitude spread (what the paper's Fig. 1 shows).
    scaled = scale_trace(base, nranks=TARGET_RANKS, name="polytropic-4k",
                         seed=7, jitter_sigma=0.6)
    if memory_scale is None:
        final_peak = scaled.steps[-1].peak_rank_bytes
        memory_scale = (320 * MiB) / final_peak if final_peak > 0 else 1.0
    peak, p90, median, minimum = [], [], [], []
    for record in scaled:
        ranks = record.rank_bytes * memory_scale
        peak.append(ranks.max())
        p90.append(np.percentile(ranks, 90))
        median.append(np.median(ranks))
        minimum.append(ranks.min())
    return Fig1Result(
        steps=np.arange(1, len(scaled) + 1),
        peak=np.array(peak),
        p90=np.array(p90),
        median=np.array(median),
        minimum=np.array(minimum),
    )


def grid() -> list[dict]:
    """Sweep protocol: the whole figure is one deterministic point."""
    return [{}]


def run_point(params: dict) -> Fig1Result:
    """Sweep protocol: compute one grid point (worker-side)."""
    return run_fig1(**params)


def merge(results: list) -> Fig1Result:
    """Sweep protocol: a single-point grid merges to its only result."""
    (result,) = results
    return result


def render(result: Fig1Result) -> str:
    headers = ["time step", "min", "median", "p90", "peak", "peak/median"]
    stride = max(1, len(result.steps) // 16)
    body = []
    for i in range(0, len(result.steps), stride):
        body.append([
            str(int(result.steps[i])),
            format_bytes(result.minimum[i]),
            format_bytes(result.median[i]),
            format_bytes(result.p90[i]),
            format_bytes(result.peak[i]),
            f"{result.imbalance[i]:.2f}x",
        ])
    table = render_table(
        headers, body,
        title="Fig. 1: per-rank memory distribution, Polytropic Gas on 4K ranks",
    )
    summary = (
        f"\npeak memory growth: {format_bytes(result.peak[0])} -> "
        f"{format_bytes(result.peak[-1])} over {len(result.steps)} steps\n"
        f"growth erraticness (CV of increments): {result.growth_erraticness:.2f}\n"
        f"cross-rank imbalance (peak/median), mean: {result.imbalance.mean():.2f}x"
    )
    return table + summary


if __name__ == "__main__":
    print(render(run_fig1()))
