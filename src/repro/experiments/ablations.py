"""Ablations over the design choices DESIGN.md calls out.

Four sweeps, each isolating one knob of the system:

- :func:`staging_ratio_sweep` -- the 16:1 simulation-to-staging ratio the
  paper fixes; shows where static in-transit placement breaks down and
  how much adaptation recovers at 8:1 / 16:1 / 32:1.
- :func:`monitor_interval_sweep` -- the Monitor's sampling period
  ("after every specified number of simulation time steps"): stale
  decisions vs adaptation overhead.
- :func:`entropy_threshold_sweep` -- the entropy threshold of the
  automatic application-layer mechanism: bytes saved vs fidelity lost.
- :func:`coordination_sweep` -- root-leaf ordered execution (Section 4.4)
  vs naive simultaneous triggering of all three layers on the *same*
  unmodified snapshot: the ordered plan lets downstream mechanisms see
  upstream effects (reduced S_data), the naive one over-allocates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.actions import Placement
from repro.core.preferences import UserHints
from repro.experiments.common import (
    ANALYSIS_COST_PER_CELL,
    SCALES,
    default_hints,
    render_table,
)
from repro.hpc.systems import titan
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace

__all__ = [
    "captured_trace_sweep",
    "coordination_sweep",
    "entropy_threshold_sweep",
    "estimator_bias_sweep",
    "hybrid_placement_sweep",
    "monitor_interval_sweep",
    "reduction_type_sweep",
    "render",
    "render_all",
    "staging_ratio_sweep",
]

_SCALE = SCALES[1]  # the 4K-core configuration


def _trace():
    from repro.experiments.common import advection_trace

    return advection_trace(_SCALE)


def staging_ratio_sweep(ratios: tuple[int, ...] = (8, 16, 32)) -> list[dict]:
    """Vary staging cores at fixed simulation cores."""
    rows = []
    for ratio in ratios:
        staging = max(1, _SCALE.sim_cores // ratio)
        for mode in (Mode.STATIC_INTRANSIT, Mode.ADAPTIVE_MIDDLEWARE):
            config = WorkflowConfig(
                mode=mode,
                sim_cores=_SCALE.sim_cores,
                staging_cores=staging,
                spec=titan(),
                analysis_cost_per_cell=ANALYSIS_COST_PER_CELL,
            )
            result = run_workflow(config, _trace())
            rows.append({
                "ratio": f"{ratio}:1",
                "mode": mode.value,
                "overhead_s": result.overhead_seconds,
                "end_to_end_s": result.end_to_end_seconds,
                "moved_gib": result.data_moved_bytes / 2**30,
            })
    return rows


def monitor_interval_sweep(intervals: tuple[int, ...] = (1, 2, 4, 8)) -> list[dict]:
    """Vary the Monitor's sampling period for the adaptive placement."""
    rows = []
    for interval in intervals:
        config = WorkflowConfig(
            mode=Mode.ADAPTIVE_MIDDLEWARE,
            sim_cores=_SCALE.sim_cores,
            staging_cores=_SCALE.staging_cores,
            spec=titan(),
            analysis_cost_per_cell=ANALYSIS_COST_PER_CELL,
            hints=UserHints(monitor_interval=interval),
        )
        result = run_workflow(config, _trace())
        rows.append({
            "interval": interval,
            "overhead_s": result.overhead_seconds,
            "end_to_end_s": result.end_to_end_seconds,
            "insitu_steps": result.placement_counts()[Placement.IN_SITU],
        })
    return rows


def entropy_threshold_sweep(
    percentiles: tuple[int, ...] = (10, 30, 50, 70, 90),
    n: int = 32,
    nsteps: int = 15,
) -> list[dict]:
    """Sweep the entropy threshold on the real gas density field."""
    from repro.analysis.downsample import blockwise_stride_reconstruction
    from repro.analysis.entropy import block_entropies, entropy_downsample_factors
    from repro.experiments.fig6_entropy import density_field

    field = density_field(n=n, nsteps=nsteps)
    block = 8
    entropies = block_entropies(field, (block, block, block), bins=256)
    rows = []
    for pct in percentiles:
        threshold = float(np.percentile(entropies, pct))
        factors = entropy_downsample_factors(entropies, [threshold], [4, 1])
        mask = factors > 1
        recon = blockwise_stride_reconstruction(
            field, (block, block, block), 4, block_mask=mask
        )
        # Each reduced block saves (1 - 1/64); the product is exact, so
        # this equals the per-block accumulation it replaces.
        saved = float(np.count_nonzero(mask)) * (1 - 1 / 64)
        span = field.max() - field.min()
        rms = float(np.sqrt(np.mean((field - recon) ** 2))) / max(span, 1e-12)
        rows.append({
            "threshold_pct": pct,
            "threshold_bits": threshold,
            "reduced_blocks_pct": 100 * float((factors > 1).mean()),
            "bytes_saved_pct": 100 * saved / entropies.size,
            "rms_error": rms,
        })
    return rows


def estimator_bias_sweep(
    biases: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
) -> list[dict]:
    """Sensitivity of the adaptive placement to systematic misestimation.

    The middleware policy decides from *estimated* times (the paper uses
    Chombo's embedded performance tools); this sweep multiplies every
    analysis-time estimate by a bias factor and measures how gracefully
    the adaptation degrades.
    """
    rows = []
    for bias in biases:
        config = WorkflowConfig(
            mode=Mode.ADAPTIVE_MIDDLEWARE,
            sim_cores=_SCALE.sim_cores,
            staging_cores=_SCALE.staging_cores,
            spec=titan(),
            analysis_cost_per_cell=ANALYSIS_COST_PER_CELL,
            estimator_bias=bias,
        )
        result = run_workflow(config, _trace())
        rows.append({
            "bias": bias,
            "overhead_s": result.overhead_seconds,
            "end_to_end_s": result.end_to_end_seconds,
            "insitu_steps": result.placement_counts()[Placement.IN_SITU],
        })
    return rows


def captured_trace_sweep() -> list[dict]:
    """The placement comparison on a *captured* (real-solver) trace.

    The scale experiments use the calibrated synthetic workload family;
    this sweep validates the synthetic results against dynamics captured
    from the actual Godunov run, rescaled to the 4K-core configuration.
    """
    from repro.experiments.fig1_memory import captured_gas_trace
    from repro.workload.scale import scale_trace

    base = captured_gas_trace(nsteps=30)
    trace = scale_trace(base, nranks=4096, cell_factor=2.0e4,
                        name="captured-4k", seed=9, jitter_sigma=0.4)
    rows = []
    for mode in (Mode.STATIC_INSITU, Mode.STATIC_INTRANSIT,
                 Mode.ADAPTIVE_MIDDLEWARE):
        config = WorkflowConfig(
            mode=mode,
            sim_cores=4096,
            staging_cores=256,
            spec=titan(),
            # The Godunov solver costs 8 work units per cell; 0.45 puts the
            # in-transit/sim ratio near 16 * 0.45 / 8 = 0.9, the same regime
            # as the synthetic calibration.
            analysis_cost_per_cell=0.45,
        )
        result = run_workflow(config, trace)
        rows.append({
            "mode": mode.value,
            "overhead_s": result.overhead_seconds,
            "end_to_end_s": result.end_to_end_seconds,
            "moved_gib": result.data_moved_bytes / 2**30,
        })
    return rows


def hybrid_placement_sweep() -> list[dict]:
    """Binary vs hybrid (in-situ + in-transit) placement.

    The paper lists hybrid among the placement options (Section 3); this
    sweep quantifies what the finer-grained split buys over the
    all-or-nothing decisions of Section 4.2.  The workload grows its
    analysis load steeply, so late steps sit exactly in hybrid's regime:
    part of the work still fits the shrinking hidden window.
    """
    trace = synthetic_amr_trace(SyntheticAMRConfig(
        steps=25, nranks=1024, base_cells=2e7, sim_cost_per_cell=1.0,
        growth=2.0, analysis_growth_exponent=1.0, seed=0,
    ))
    rows = []
    for hybrid in (False, True):
        config = WorkflowConfig(
            mode=Mode.ADAPTIVE_MIDDLEWARE,
            sim_cores=1024,
            staging_cores=64,
            spec=titan(),
            analysis_cost_per_cell=0.035,
            hybrid_placement=hybrid,
        )
        result = run_workflow(config, trace)
        counts = result.placement_counts()
        rows.append({
            "policy": "hybrid" if hybrid else "binary",
            "overhead_s": result.overhead_seconds,
            "end_to_end_s": result.end_to_end_seconds,
            "moved_gib": result.data_moved_bytes / 2**30,
            "hybrid_steps": counts[Placement.HYBRID],
        })
    return rows


def reduction_type_sweep(n: int = 32, nsteps: int = 15) -> list[dict]:
    """Down-sampling vs error-bounded compression at matched reduction.

    Section 3 lists both as application-layer reduction parameters
    ("down-sample factor, compression rate, etc.").  On the real blast
    field we compare, per achieved size reduction, the information lost:
    compression adapts to local smoothness and preserves far more than
    stride sampling at the same byte budget.
    """
    from repro.analysis.compression import compress_field, decompress_field
    from repro.analysis.downsample import downsample_stride, upsample_nearest
    from repro.experiments.fig6_entropy import density_field

    field = density_field(n=n, nsteps=nsteps)
    span = float(field.max() - field.min())
    rows: list[dict] = []
    for factor in (2, 4):
        reduced = downsample_stride(field, factor)
        recon = upsample_nearest(reduced, factor, target_shape=field.shape)
        ds_ratio = field.nbytes / reduced.nbytes
        ds_err = float(np.sqrt(np.mean((field - recon) ** 2))) / span
        # Find a tolerance whose compressed size matches the downsample.
        budget = reduced.nbytes
        tolerance, compressed = None, None
        for t in (1e-5, 1e-4, 1e-3, 1e-2, 5e-2):
            c = compress_field(field, t)
            if c.nbytes <= budget:
                tolerance, compressed = t, c
                break
        c_err = float(
            np.sqrt(np.mean((field - decompress_field(compressed)) ** 2))
        ) / span
        rows.append({
            "reduction": f"{ds_ratio:.0f}x",
            "downsample_error": ds_err,
            "compression_tolerance": tolerance,
            "compression_bytes": compressed.nbytes,
            "compression_error": c_err,
        })
    return rows


def coordination_sweep() -> list[dict]:
    """Root-leaf ordered cross-layer execution vs naive simultaneous firing.

    The naive variant runs all three policies on the same unmodified
    snapshot -- the resource layer sizes staging for *full-resolution*
    data even though the application layer is about to reduce it.
    """
    from repro.core.engine import AdaptationEngine
    from repro.core.mechanisms import Layer

    trace = _trace()
    hints = default_hints()

    ordered_cfg = WorkflowConfig(
        mode=Mode.GLOBAL,
        sim_cores=_SCALE.sim_cores,
        staging_cores=_SCALE.staging_cores,
        spec=titan(),
        analysis_cost_per_cell=ANALYSIS_COST_PER_CELL,
        hints=hints,
    )
    ordered = run_workflow(ordered_cfg, trace)

    # Naive: monkey-patch the engine's adapt to skip inter-mechanism state
    # propagation (every policy sees the raw snapshot).
    class NaiveEngine(AdaptationEngine):
        def adapt(self, state):
            from repro.core.engine import AdaptationDecision

            decision = AdaptationDecision(step=state.step)
            for layer in self.plan:
                if layer is Layer.APPLICATION:
                    action = self.application.decide(state)
                    decision.factor = action.factor
                elif layer is Layer.RESOURCE:
                    action = self.resource.decide(state)
                    decision.staging_cores = action.cores
                elif layer is Layer.MIDDLEWARE:
                    action = self.middleware.decide(state)
                    decision.placement = action.placement
                decision.actions.append(action)
            self.decisions.append(decision)
            return decision

    from repro.workflow.driver import CoupledWorkflow

    naive_wf = CoupledWorkflow(ordered_cfg, trace)
    naive_wf.engine = NaiveEngine(preferences=ordered_cfg.preferences, hints=hints)
    naive = naive_wf.run()

    def mean_cores(result):
        return float(result.staging_cores_series().mean())

    return [
        {
            "scheme": "root-leaf ordered (paper 4.4)",
            "overhead_s": ordered.overhead_seconds,
            "moved_gib": ordered.data_moved_bytes / 2**30,
            "mean_staging_cores": mean_cores(ordered),
        },
        {
            "scheme": "naive simultaneous",
            "overhead_s": naive.overhead_seconds,
            "moved_gib": naive.data_moved_bytes / 2**30,
            "mean_staging_cores": mean_cores(naive),
        },
    ]


#: Every sweep, in report order (the sweep grid and ``render`` both
#: follow this order).
_SWEEP_ORDER = (
    ("staging_ratio", staging_ratio_sweep),
    ("monitor_interval", monitor_interval_sweep),
    ("entropy_threshold", entropy_threshold_sweep),
    ("coordination", coordination_sweep),
    ("reduction_type", reduction_type_sweep),
    ("hybrid_placement", hybrid_placement_sweep),
    ("estimator_bias", estimator_bias_sweep),
    ("captured_trace", captured_trace_sweep),
)


def grid() -> list[dict]:
    """Sweep protocol: one point per ablation sweep."""
    return [{"sweep": name} for name, _ in _SWEEP_ORDER]


def run_point(params: dict) -> list[dict]:
    """Sweep protocol: run one named ablation sweep (worker-side)."""
    return dict(_SWEEP_ORDER)[params["sweep"]]()


def merge(results: list) -> list[list[dict]]:
    """Sweep protocol: grid-ordered row sets, one per sweep."""
    return list(results)


def render_all() -> str:
    """Run every sweep and format one combined report."""
    return render([fn() for _, fn in _SWEEP_ORDER])


def render(rowsets: list[list[dict]]) -> str:
    """Format the combined report from grid-ordered sweep row sets."""
    sections = []
    (rows_ratio, rows_interval, rows_entropy, rows_coord, rows_reduction,
     rows_hybrid, rows_bias, rows_captured) = rowsets

    rows = rows_ratio
    sections.append(render_table(
        ["ratio", "mode", "overhead (s)", "end-to-end (s)", "moved (GiB)"],
        [[r["ratio"], r["mode"], f"{r['overhead_s']:.1f}",
          f"{r['end_to_end_s']:.1f}", f"{r['moved_gib']:.1f}"] for r in rows],
        title="Ablation: staging ratio",
    ))

    rows = rows_interval
    sections.append(render_table(
        ["interval", "overhead (s)", "end-to-end (s)", "in-situ steps"],
        [[str(r["interval"]), f"{r['overhead_s']:.1f}",
          f"{r['end_to_end_s']:.1f}", str(r["insitu_steps"])] for r in rows],
        title="Ablation: monitor sampling interval",
    ))

    rows = rows_entropy
    sections.append(render_table(
        ["threshold pct", "bits", "blocks reduced", "bytes saved", "nRMS error"],
        [[str(r["threshold_pct"]), f"{r['threshold_bits']:.2f}",
          f"{r['reduced_blocks_pct']:.0f}%", f"{r['bytes_saved_pct']:.0f}%",
          f"{r['rms_error']:.4f}"] for r in rows],
        title="Ablation: entropy threshold",
    ))

    rows = rows_coord
    sections.append(render_table(
        ["scheme", "overhead (s)", "moved (GiB)", "mean staging cores"],
        [[r["scheme"], f"{r['overhead_s']:.1f}", f"{r['moved_gib']:.1f}",
          f"{r['mean_staging_cores']:.0f}"] for r in rows],
        title="Ablation: cross-layer coordination scheme",
    ))

    rows = rows_reduction
    sections.append(render_table(
        ["reduction", "downsample nRMS", "compression tol", "compression nRMS"],
        [[r["reduction"], f"{r['downsample_error']:.4f}",
          f"{r['compression_tolerance']:.0e}", f"{r['compression_error']:.5f}"]
         for r in rows],
        title="Ablation: reduction type (down-sampling vs compression)",
    ))

    rows = rows_hybrid
    sections.append(render_table(
        ["policy", "overhead (s)", "end-to-end (s)", "moved (GiB)", "hybrid steps"],
        [[r["policy"], f"{r['overhead_s']:.1f}", f"{r['end_to_end_s']:.1f}",
          f"{r['moved_gib']:.1f}", str(r["hybrid_steps"])] for r in rows],
        title="Ablation: binary vs hybrid placement",
    ))

    rows = rows_bias
    sections.append(render_table(
        ["estimate bias", "overhead (s)", "end-to-end (s)", "in-situ steps"],
        [[f"{r['bias']:g}x", f"{r['overhead_s']:.1f}",
          f"{r['end_to_end_s']:.1f}", str(r["insitu_steps"])] for r in rows],
        title="Ablation: estimator misestimation sensitivity",
    ))

    rows = rows_captured
    sections.append(render_table(
        ["mode", "overhead (s)", "end-to-end (s)", "moved (GiB)"],
        [[r["mode"], f"{r['overhead_s']:.1f}", f"{r['end_to_end_s']:.1f}",
          f"{r['moved_gib']:.1f}"] for r in rows],
        title="Validation: placement comparison on a captured (real-solver) trace",
    ))

    return "\n\n".join(sections)


if __name__ == "__main__":
    print(render_all())
