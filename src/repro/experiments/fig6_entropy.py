"""Figure 6: entropy-based data down-sampling.

The paper renders two isosurfaces of the Polytropic Gas density field and
shows that regions whose block entropy falls below a threshold can be
down-sampled (every 4th grid point) without visibly losing structure,
while high-entropy regions keep full resolution (their Fig. 6 quotes
block entropies of 5.14 vs 9.21 bits against the finest level's 5.14-9.85
range).

Without a renderer we verify the same claim quantitatively on the real
solver's density field:

- per-block Shannon entropies span a wide range;
- the entropy->factor mapping reduces low-entropy blocks aggressively;
- reconstruction error and isosurface fidelity degrade far less on
  low-entropy blocks than the same reduction would cost on high-entropy
  blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.box import Box
from repro.amr.godunov import PolytropicGasSolver
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.stepper import AMRStepper
from repro.analysis.downsample import blockwise_stride_reconstruction
from repro.analysis.entropy import block_entropies, entropy_downsample_factors
from repro.analysis.fidelity import blockwise_reconstruction_errors
from repro.analysis.isosurface import extract_isosurface, surface_area
from repro.experiments.cache import default_cache
from repro.experiments.common import render_table

__all__ = ["Fig6Result", "density_field", "render", "run_fig6"]

BLOCK = 8
FACTOR = 4  # the paper's "down-sampled at every 4th grid point"


def _gas_stepper(n: int) -> AMRStepper:
    domain = Box((0, 0, 0), (n - 1, n - 1, n - 1))
    hierarchy = AMRHierarchy(
        domain, ncomp=5, nghost=2, max_levels=2, max_box_size=16,
        dx0=1.0 / n, periodic=True,
    )
    solver = PolytropicGasSolver(tag_threshold=0.06, blast_pressure_jump=30.0,
                                 blast_density_jump=5.0)
    return AMRStepper(hierarchy, solver, regrid_interval=4)


def _density(stepper: AMRStepper) -> np.ndarray:
    hierarchy = stepper.hierarchy
    dense = hierarchy.levels[0].data.to_dense(hierarchy.level_domain(0))
    return dense[0]  # density


def density_field(n: int = 48, nsteps: int = 25, cache=None) -> np.ndarray:
    """Run the 3-D gas solver and return the dense density field.

    Repeated requests share one memoized solver session
    (:mod:`repro.experiments.cache`); a longer request advances the same
    stepper forward, bit-identical to a fresh run of that length.
    """
    cache = default_cache() if cache is None else cache
    return cache.field(
        "density_field",
        {"n": n},
        nsteps,
        build=lambda: _gas_stepper(n),
        extract=_density,
    )


@dataclass(frozen=True)
class Fig6Result:
    """Entropy statistics and fidelity of the entropy-guided reduction."""

    entropies: np.ndarray
    threshold: float
    factors: np.ndarray
    low_entropy_error: float  # reconstruction error on reduced blocks
    high_entropy_error_if_reduced: float  # what reducing the kept blocks would cost
    reduced_fraction: float  # fraction of blocks down-sampled
    bytes_saved_fraction: float
    area_ratio: float  # isosurface area retained after adaptive reduction
    triangle_ratio: float


def run_fig6(n: int = 48, nsteps: int = 25, metrics=None) -> Fig6Result:
    """Entropy-guided reduction of the real density field."""
    field = density_field(n, nsteps)
    entropies = block_entropies(field, (BLOCK, BLOCK, BLOCK), bins=256,
                                metrics=metrics)
    # A threshold inside the observed range, as the paper's user picks one
    # between the finest level's 5.14 and 9.85 bits.  The range midpoint
    # separates near-constant ambient blocks from feature-bearing ones.
    threshold = float(0.5 * (entropies.min() + entropies.max()))
    factors = entropy_downsample_factors(
        entropies, thresholds=[threshold], factors=[FACTOR, 1]
    )

    # Per-block reconstruction errors in one vectorized pass; boolean
    # indexing walks the block grid in the same C order as a block loop.
    errors = blockwise_reconstruction_errors(field, (BLOCK, BLOCK, BLOCK), FACTOR)
    reduced_mask = factors > 1
    low_errors = errors[reduced_mask]
    high_errors = errors[~reduced_mask]
    blocks = int(factors.size)
    # k blocks each save (1 - 1/FACTOR^3); the product is exact in binary
    # arithmetic, so this equals the per-block accumulation it replaces.
    saved = float(np.count_nonzero(reduced_mask)) * (1 - 1 / FACTOR**3)

    # Isosurface fidelity of the adaptively reduced field: resolution is
    # dropped only inside low-entropy blocks via stride-upsampled
    # reconstruction, applied to all reduced blocks in a single gather.
    recon = blockwise_stride_reconstruction(
        field, (BLOCK, BLOCK, BLOCK), FACTOR, block_mask=reduced_mask
    )

    iso = float(np.percentile(field, 90))
    verts_f, tris_f = extract_isosurface(field, iso)
    verts_r, tris_r = extract_isosurface(recon, iso)
    full_area = surface_area(verts_f, tris_f)
    red_area = surface_area(verts_r, tris_r)

    return Fig6Result(
        entropies=entropies,
        threshold=threshold,
        factors=factors,
        low_entropy_error=float(np.mean(low_errors)) if low_errors.size else 0.0,
        high_entropy_error_if_reduced=(
            float(np.mean(high_errors)) if high_errors.size else 0.0
        ),
        reduced_fraction=float((factors > 1).mean()),
        bytes_saved_fraction=saved / blocks,
        area_ratio=red_area / full_area if full_area else 1.0,
        triangle_ratio=len(tris_r) / len(tris_f) if len(tris_f) else 1.0,
    )


def grid() -> list[dict]:
    """Sweep protocol: the whole figure is one deterministic point."""
    return [{}]


def run_point(params: dict) -> Fig6Result:
    """Sweep protocol: compute one grid point (worker-side)."""
    return run_fig6(**params)


def merge(results: list) -> Fig6Result:
    """Sweep protocol: a single-point grid merges to its only result."""
    (result,) = results
    return result


def render(result: Fig6Result) -> str:
    ent = result.entropies
    rows = [
        ["block entropy range (bits)",
         f"{ent.min():.2f} - {ent.max():.2f}", "5.14 - 9.85 (finest level)"],
        ["threshold (range midpoint)", f"{result.threshold:.2f}", "user-specified"],
        ["blocks down-sampled x4", f"{result.reduced_fraction * 100:.0f}%", "-"],
        ["bytes saved", f"{result.bytes_saved_fraction * 100:.0f}%", "-"],
        ["recon. error, low-entropy blocks",
         f"{result.low_entropy_error:.4f}", "low (claim: little info lost)"],
        ["recon. error if high-entropy blocks were reduced",
         f"{result.high_entropy_error_if_reduced:.4f}",
         "higher (claim: keep full res)"],
        ["isosurface area retained", f"{result.area_ratio * 100:.1f}%",
         "structure preserved"],
        ["isosurface triangles retained", f"{result.triangle_ratio * 100:.1f}%", "-"],
    ]
    table = render_table(["metric", "measured", "paper / claim"], rows,
                         title="Fig. 6: entropy-based down-sampling, quantitative")
    verdict = (
        "PASS" if result.low_entropy_error < result.high_entropy_error_if_reduced
        and result.area_ratio > 0.8 else "FAIL"
    )
    return table + f"\n\nclaim check (low-entropy regions reduce cheaply): {verdict}"


if __name__ == "__main__":
    print(render(run_fig6()))
