"""Figure 7: end-to-end execution time, static vs adaptive placement.

Reproduces the comparison of cumulative end-to-end execution time between
static in-situ, static in-transit and adaptive placement of the
visualization service at 2K/4K/8K/16K simulation cores (16:1 staging
ratio).  The paper reports adaptive overhead reductions of
50.00/50.31/50.50/56.30 % vs in-situ and 75.42/38.78/21.29/48.22 % vs
in-transit, with adaptive overhead below 6 % of simulation time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    PAPER,
    SCALES,
    ScaleConfig,
    render_table,
    run_mode_at_scale,
)
from repro.workflow.config import Mode
from repro.workflow.metrics import WorkflowResult

__all__ = ["Fig7Row", "render", "run_fig7"]

_MODES = (Mode.STATIC_INSITU, Mode.STATIC_INTRANSIT, Mode.ADAPTIVE_MIDDLEWARE)


@dataclass(frozen=True)
class Fig7Row:
    """One scale's bar group."""

    scale: str
    results: dict[Mode, WorkflowResult]

    @property
    def adaptive(self) -> WorkflowResult:
        return self.results[Mode.ADAPTIVE_MIDDLEWARE]

    def overhead_cut_vs(self, mode: Mode) -> float:
        """Percent overhead reduction of adaptive placement vs ``mode``."""
        base = self.results[mode].overhead_seconds
        if base <= 0:
            return 0.0
        return 100.0 * (1 - self.adaptive.overhead_seconds / base)


def _row(scale: ScaleConfig) -> Fig7Row:
    """All three placement modes at one scale (one sweep point)."""
    results = {mode: run_mode_at_scale(scale, mode) for mode in _MODES}
    return Fig7Row(scale=scale.label, results=results)


def run_fig7(scales: tuple[ScaleConfig, ...] = SCALES) -> list[Fig7Row]:
    """Run the three placement modes at every scale."""
    return [_row(scale) for scale in scales]


def grid() -> list[dict]:
    """Sweep protocol: one point per scale (the figure's bar groups)."""
    return [{"scale": index} for index in range(len(SCALES))]


def run_point(params: dict) -> Fig7Row:
    """Sweep protocol: compute one scale's row (worker-side)."""
    return _row(SCALES[params["scale"]])


def merge(results: list) -> list[Fig7Row]:
    """Sweep protocol: grid-ordered rows are ``run_fig7``'s output."""
    return list(results)


def render(rows: list[Fig7Row]) -> str:
    """The figure's bar values plus the paper-vs-measured reductions."""
    headers = [
        "cores", "mode", "sim time (s)", "overhead (s)", "end-to-end (s)",
        "ovh/sim",
    ]
    body = []
    for row in rows:
        for mode in _MODES:
            r = row.results[mode]
            body.append([
                row.scale,
                mode.value,
                f"{r.total_sim_seconds:.1f}",
                f"{r.overhead_seconds:.1f}",
                f"{r.end_to_end_seconds:.1f}",
                f"{r.overhead_fraction * 100:.1f}%",
            ])
    table = render_table(headers, body, title="Fig. 7: end-to-end execution time")

    cmp_headers = [
        "cores",
        "ovh cut vs in-situ",
        "paper",
        "ovh cut vs in-transit",
        "paper",
    ]
    cmp_rows = []
    for row, p_ins, p_int in zip(
        rows, PAPER.fig7_overhead_cut_vs_insitu, PAPER.fig7_overhead_cut_vs_intransit
    ):
        cmp_rows.append([
            row.scale,
            f"{row.overhead_cut_vs(Mode.STATIC_INSITU):.1f}%",
            f"{p_ins:.1f}%",
            f"{row.overhead_cut_vs(Mode.STATIC_INTRANSIT):.1f}%",
            f"{p_int:.1f}%",
        ])
    comparison = render_table(cmp_headers, cmp_rows,
                              title="Adaptive overhead reduction (measured vs paper)")
    return table + "\n\n" + comparison


if __name__ == "__main__":
    print(render(run_fig7()))
