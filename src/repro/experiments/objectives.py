"""Objective comparison: what each user preference trades away.

Not a paper figure, but the direct consequence of its user-preference
design (Section 3 lists minimizing time-to-solution, minimizing data
movement and maximizing resource utilization as selectable objectives):
the same workload under each global-adaptation objective, reported across
every metric -- a small Pareto view of the cross-layer design space.
"""

from __future__ import annotations

from repro.core.actions import Placement
from repro.core.preferences import Objective, UserPreferences
from repro.experiments.common import (
    ANALYSIS_COST_PER_CELL,
    SCALES,
    advection_trace,
    default_hints,
    render_table,
)
from repro.hpc.systems import titan
from repro.units import format_bytes, format_seconds
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow
from repro.workflow.metrics import WorkflowResult

__all__ = ["render", "run_objectives"]

OBJECTIVES = (
    Objective.MINIMIZE_TIME_TO_SOLUTION,
    Objective.MINIMIZE_DATA_MOVEMENT,
    Objective.MAXIMIZE_RESOURCE_UTILIZATION,
)


def _run_objective(objective: Objective, scale_index: int) -> WorkflowResult:
    """Global adaptation under one objective (one sweep point)."""
    scale = SCALES[scale_index]
    config = WorkflowConfig(
        mode=Mode.GLOBAL,
        sim_cores=scale.sim_cores,
        staging_cores=scale.staging_cores,
        spec=titan(),
        analysis_cost_per_cell=ANALYSIS_COST_PER_CELL,
        preferences=UserPreferences(objective=objective),
        hints=default_hints(),
    )
    return run_workflow(config, advection_trace(scale))


def run_objectives(scale_index: int = 1) -> dict[Objective, WorkflowResult]:
    """Run global adaptation under each objective on one scale's workload."""
    return {
        objective: _run_objective(objective, scale_index)
        for objective in OBJECTIVES
    }


def grid() -> list[dict]:
    """Sweep protocol: one point per user objective."""
    return [{"objective": objective.value, "scale_index": 1}
            for objective in OBJECTIVES]


def run_point(params: dict) -> WorkflowResult:
    """Sweep protocol: run one objective (worker-side)."""
    return _run_objective(Objective(params["objective"]),
                          params.get("scale_index", 1))


def merge(results: list) -> dict[Objective, WorkflowResult]:
    """Sweep protocol: grid order matches :data:`OBJECTIVES`."""
    return dict(zip(OBJECTIVES, results))


def render(results: dict[Objective, WorkflowResult]) -> str:
    headers = ["objective", "end-to-end", "overhead", "moved",
               "utilization", "energy", "in-situ steps"]
    rows = []
    for objective, r in results.items():
        rows.append([
            objective.value,
            format_seconds(r.end_to_end_seconds),
            format_seconds(r.overhead_seconds),
            format_bytes(r.data_moved_bytes),
            f"{r.utilization_efficiency * 100:.1f}%",
            f"{r.energy_joules / 1e9:.2f} GJ",
            str(r.placement_counts()[Placement.IN_SITU]),
        ])
    return render_table(headers, rows,
                        title="User objectives compared (global adaptation, 4K cores)")


if __name__ == "__main__":
    print(render(run_objectives()))
