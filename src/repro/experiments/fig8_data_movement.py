"""Figure 8: total data movement, static in-transit vs adaptive placement.

The paper reports the aggregated in-situ -> in-transit transfer volume
dropping by 50.00/48.00/47.90/39.04 % at 2K/4K/8K/16K cores when adaptive
placement keeps roughly half the steps' analysis in-situ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    PAPER,
    SCALES,
    ScaleConfig,
    render_table,
    run_mode_at_scale,
)
from repro.units import format_bytes
from repro.workflow.config import Mode

__all__ = ["Fig8Row", "render", "run_fig8"]


@dataclass(frozen=True)
class Fig8Row:
    """One scale's pair of bars."""

    scale: str
    intransit_bytes: float
    adaptive_bytes: float

    @property
    def movement_cut(self) -> float:
        """Percent reduction of data movement with adaptive placement."""
        if self.intransit_bytes <= 0:
            return 0.0
        return 100.0 * (1 - self.adaptive_bytes / self.intransit_bytes)


def _row(scale: ScaleConfig) -> Fig8Row:
    """Both placements' movement at one scale (one sweep point)."""
    static = run_mode_at_scale(scale, Mode.STATIC_INTRANSIT)
    adaptive = run_mode_at_scale(scale, Mode.ADAPTIVE_MIDDLEWARE)
    return Fig8Row(
        scale=scale.label,
        intransit_bytes=static.data_moved_bytes,
        adaptive_bytes=adaptive.data_moved_bytes,
    )


def run_fig8(scales: tuple[ScaleConfig, ...] = SCALES) -> list[Fig8Row]:
    """Measure movement for static in-transit and adaptive placement."""
    return [_row(scale) for scale in scales]


def grid() -> list[dict]:
    """Sweep protocol: one point per scale (the figure's bar pairs)."""
    return [{"scale": index} for index in range(len(SCALES))]


def run_point(params: dict) -> Fig8Row:
    """Sweep protocol: compute one scale's row (worker-side)."""
    return _row(SCALES[params["scale"]])


def merge(results: list) -> list[Fig8Row]:
    """Sweep protocol: grid-ordered rows are ``run_fig8``'s output."""
    return list(results)


def render(rows: list[Fig8Row]) -> str:
    headers = ["cores", "in-transit placement", "adaptive placement",
               "reduction", "paper"]
    body = []
    for row, paper_cut in zip(rows, PAPER.fig8_movement_cut):
        body.append([
            row.scale,
            format_bytes(row.intransit_bytes),
            format_bytes(row.adaptive_bytes),
            f"{row.movement_cut:.1f}%",
            f"{paper_cut:.1f}%",
        ])
    return render_table(headers, body,
                        title="Fig. 8: aggregated in-situ -> in-transit data transfers")


if __name__ == "__main__":
    print(render(run_fig8()))
