"""Figure 4: demonstration of the analysis placement adaptation policy.

The paper's illustration: at ts=1 and ts=2 the in-transit processors are
idle, so analysis is placed in-transit; at ts=30 they are busy, the
in-situ and in-transit times are estimated, and the analysis is placed
in-situ because it is faster.  We reproduce the scenario with a scripted
workload whose step-30 region carries a multi-step analysis burst, and
report each placement decision with the policy's own reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.actions import Placement
from repro.experiments.common import render_table
from repro.hpc.systems import titan
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import CoupledWorkflow
from repro.workflow.metrics import WorkflowResult
from repro.workload.trace import StepRecord, WorkloadTrace

__all__ = ["Fig4Result", "render", "run_fig4", "scripted_trace"]

STEPS = 34
BURST_STEPS = (29, 30, 31)


def scripted_trace() -> WorkloadTrace:
    """A deterministic workload: steady steps with an analysis burst at ~30."""
    nranks = 64
    records = []
    for step in range(1, STEPS + 1):
        cells = 2.0e7
        intensity = 4.0 if step in BURST_STEPS else 0.6
        records.append(
            StepRecord(
                step=step,
                sim_work=cells * 8.0,
                cells=int(cells),
                data_bytes=cells * 8.0,
                memory_bytes=cells * 40.0,
                rank_bytes=np.full(nranks, cells * 40.0 / nranks),
                analysis_intensity=intensity,
            )
        )
    return WorkloadTrace("fig4-scripted", 3, nranks, 8.0, records)


@dataclass(frozen=True)
class Fig4Result:
    """The run plus the engine's per-step decisions."""

    result: WorkflowResult
    reasons: dict[int, str]


def run_fig4() -> Fig4Result:
    """Run adaptive placement on the scripted trace."""
    config = WorkflowConfig(
        mode=Mode.ADAPTIVE_MIDDLEWARE,
        sim_cores=1024,
        staging_cores=64,
        spec=titan(),
        analysis_cost_per_cell=0.55,
    )
    workflow = CoupledWorkflow(config, scripted_trace())
    result = workflow.run()
    reasons = {}
    assert workflow.engine is not None
    for decision in workflow.engine.decisions:
        for action in decision.actions:
            reasons[decision.step] = action.reason
    return Fig4Result(result=result, reasons=reasons)


def grid() -> list[dict]:
    """Sweep protocol: the whole figure is one deterministic point."""
    return [{}]


def run_point(params: dict) -> Fig4Result:
    """Sweep protocol: compute one grid point (worker-side)."""
    return run_fig4(**params)


def merge(results: list) -> Fig4Result:
    """Sweep protocol: a single-point grid merges to its only result."""
    (result,) = results
    return result


def render(outcome: Fig4Result) -> str:
    headers = ["ts", "placement", "policy reasoning"]
    interesting = [1, 2, 3] + list(range(28, 34))
    body = []
    for metric in outcome.result.steps:
        if metric.step not in interesting:
            continue
        body.append([
            str(metric.step),
            metric.placement.value,
            outcome.reasons.get(metric.step, "(off-sample: previous decision kept)"),
        ])
    table = render_table(headers, body, title="Fig. 4: placement decisions")
    placements = [m.placement for m in outcome.result.steps]
    check = (
        placements[0] is Placement.IN_TRANSIT
        and placements[1] is Placement.IN_TRANSIT
        and any(
            placements[s - 1] is Placement.IN_SITU
            for s in range(BURST_STEPS[0], BURST_STEPS[-1] + 2)
        )
    )
    return table + (
        "\n\nscenario check (idle->in-transit at ts=1,2; busy->in-situ near "
        f"ts=30): {'PASS' if check else 'FAIL'}"
    )


if __name__ == "__main__":
    print(render(run_fig4()))
