"""Experiment reproductions: one module per figure/table of the paper.

Each module exposes a ``run_*`` function returning a structured result and
a ``render`` function producing the text table/series the paper reports.
The benchmark harness (``benchmarks/``) wraps these; EXPERIMENTS.md
records paper-reported vs measured values.

=====================  =====================================================
module                 reproduces
=====================  =====================================================
``fig1_memory``        Fig. 1 -- peak-memory distribution of the Polytropic
                       Gas run (erratic growth, cross-rank imbalance)
``fig4_timeline``      Fig. 4 -- placement decisions on an idle-then-busy
                       staging timeline
``fig5_app_layer``     Fig. 5 -- adaptive spatial resolution under runtime
                       memory availability
``fig6_entropy``       Fig. 6 -- entropy-based down-sampling and fidelity
``fig7_placement``     Fig. 7 -- end-to-end time: static vs adaptive
                       placement at 2K-16K cores
``fig8_data_movement`` Fig. 8 -- total data movement, in-transit vs adaptive
``fig9_resource``      Fig. 9 + Eq. 12 -- adaptive staging allocation and
                       utilization efficiency
``fig10_global``       Fig. 10 -- global cross-layer vs local middleware
                       adaptation
``fig11_global_movement`` Fig. 11 -- data movement, global vs local
``table2_utilization`` Table 2 -- per-step staging core usage histogram
``ablations``          design-choice sweeps (staging ratio, monitor
                       interval, entropy threshold, coordination scheme)
=====================  =====================================================
"""

__all__ = [
    "ablations",
    "common",
    "fig1_memory",
    "fig4_timeline",
    "fig5_app_layer",
    "fig6_entropy",
    "fig7_placement",
    "fig8_data_movement",
    "fig9_resource",
    "fig10_global",
    "fig11_global_movement",
    "table2_utilization",
]
