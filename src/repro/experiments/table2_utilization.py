"""Table 2: actual in-transit core utilization under global adaptation.

For each scale the table histograms the time steps whose in-transit
analysis used 100 % / 75 % / 50 % / <50 % of the preallocated staging
cores.  Under global adaptation the application layer's reduction shrinks
the in-transit work, so the resource layer frequently activates only a
fraction of the preallocation -- the paper highlights the 4K and 16K
cases using under half the cores on some steps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    PAPER,
    SCALES,
    ScaleConfig,
    render_table,
    run_mode_at_scale,
)
from repro.workflow.config import Mode
from repro.workflow.metrics import core_usage_histogram

__all__ = ["Table2Row", "render", "run_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One scale's histogram row."""

    case: str
    total_steps: int
    buckets: dict[str, int]


def _row(scale: ScaleConfig) -> Table2Row:
    """One scale's core-usage histogram (one sweep point)."""
    result = run_mode_at_scale(scale, Mode.GLOBAL, with_hints=True)
    return Table2Row(
        case=f"{scale.label}:{scale.staging_cores}",
        total_steps=len(result.steps),
        buckets=core_usage_histogram(result),
    )


def run_table2(scales: tuple[ScaleConfig, ...] = SCALES) -> list[Table2Row]:
    """Histogram per-step staging core usage for the global runs."""
    return [_row(scale) for scale in scales]


def grid() -> list[dict]:
    """Sweep protocol: one point per scale (the table's rows)."""
    return [{"scale": index} for index in range(len(SCALES))]


def run_point(params: dict) -> Table2Row:
    """Sweep protocol: compute one scale's row (worker-side)."""
    return _row(SCALES[params["scale"]])


def merge(results: list) -> list[Table2Row]:
    """Sweep protocol: grid-ordered rows are ``run_table2``'s output."""
    return list(results)


def render(rows: list[Table2Row]) -> str:
    headers = ["case", "total steps", "100% cores", "75% cores", "50% cores",
               "<50% cores", "paper (100/75/50/<50)"]
    body = []
    for row in rows:
        paper = PAPER.table2.get(row.case)
        paper_text = "/".join(str(v) for v in paper[1:]) if paper else "-"
        body.append([
            row.case,
            str(row.total_steps),
            str(row.buckets["100%"]),
            str(row.buckets["75%"]),
            str(row.buckets["50%"]),
            str(row.buckets["<50%"]),
            paper_text,
        ])
    return render_table(
        headers, body,
        title="Table 2: in-transit core utilization while performing in-transit analysis",
    )


if __name__ == "__main__":
    print(render(run_table2()))
