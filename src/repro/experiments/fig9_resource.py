"""Figure 9 + Eq. 12: adaptive in-transit resource allocation.

The Polytropic Gas workflow on 4,096 simulation cores with 256
preallocated staging cores (configurations as in Section 5.2.1).  At the
start the data is small and ~50 staging cores suffice; as the grid
refines the allocation grows toward the preallocation.  The paper
reports CPU utilization efficiency (Eq. 12) of 87.11 % with adaptive
allocation vs 54.57 % static.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.experiments.common import PAPER, render_table
from repro.hpc.systems import intrepid
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow
from repro.workflow.metrics import WorkflowResult
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace
from repro.workload.trace import WorkloadTrace

__all__ = ["Fig9Result", "polytropic_trace", "render", "run_fig9"]

SIM_CORES = 4096
STAGING_CORES = 256
STEPS = 40

# Godunov gas update cost per cell, and an analysis constant placing the
# initial staging demand near the paper's ~50 cores:
# M0 ~ N * c_a / c_s = 4096 * 0.1 / 8 ~ 51.
_SIM_COST = 8.0
_ANALYSIS_COST = 0.1


@lru_cache(maxsize=4)
def polytropic_trace(steps: int = STEPS, seed: int = 21) -> WorkloadTrace:
    """Polytropic-Gas-like workload: strong refinement growth over the run."""
    config = SyntheticAMRConfig(
        steps=steps,
        nranks=SIM_CORES,
        base_cells=4.0e7,
        sim_cost_per_cell=_SIM_COST,
        state_bytes_per_cell=80.0,  # 5 conserved components + scratch
        output_bytes_per_cell=8.0,
        growth=2.2,
        analysis_growth_exponent=1.0,
        analysis_sigma=0.35,
        seed=seed,
    )
    return synthetic_amr_trace(config, name="polytropic-4k")


@dataclass(frozen=True)
class Fig9Result:
    """The figure's two series plus Eq. 12's efficiencies."""

    static: WorkflowResult
    adaptive: WorkflowResult

    @property
    def static_series(self) -> np.ndarray:
        return self.static.staging_cores_series()

    @property
    def adaptive_series(self) -> np.ndarray:
        return self.adaptive.staging_cores_series()


#: Sweep roles, in grid (and :class:`Fig9Result` field) order.
_ROLES = {"static": Mode.STATIC_INTRANSIT, "adaptive": Mode.ADAPTIVE_RESOURCE}


def _run_mode(mode: Mode, steps: int) -> WorkflowResult:
    """One allocation mode on the gas workload (one sweep point)."""
    config = WorkflowConfig(
        mode=mode,
        sim_cores=SIM_CORES,
        staging_cores=STAGING_CORES,
        spec=intrepid(),
        analysis_cost_per_cell=_ANALYSIS_COST,
    )
    return run_workflow(config, polytropic_trace(steps))


def run_fig9(steps: int = STEPS) -> Fig9Result:
    """Run static and resource-adaptive allocation on the gas workload."""
    return Fig9Result(
        static=_run_mode(Mode.STATIC_INTRANSIT, steps),
        adaptive=_run_mode(Mode.ADAPTIVE_RESOURCE, steps),
    )


def grid() -> list[dict]:
    """Sweep protocol: one point per allocation mode, static first."""
    return [{"role": role, "steps": STEPS} for role in _ROLES]


def run_point(params: dict) -> WorkflowResult:
    """Sweep protocol: run one allocation mode (worker-side)."""
    return _run_mode(_ROLES[params["role"]], params.get("steps", STEPS))


def merge(results: list) -> Fig9Result:
    """Sweep protocol: grid order is (static, adaptive)."""
    static, adaptive = results
    return Fig9Result(static=static, adaptive=adaptive)


def render(result: Fig9Result) -> str:
    adaptive = result.adaptive_series
    static = result.static_series
    headers = ["time step", "static cores", "adaptive cores"]
    body = [
        [str(step + 1), str(int(static[step])), str(int(adaptive[step]))]
        for step in range(0, len(adaptive), max(1, len(adaptive) // 20))
    ]
    series = render_table(headers, body,
                          title="Fig. 9: in-transit cores per time step")
    summary = render_table(
        ["metric", "static", "adaptive", "paper static", "paper adaptive"],
        [
            [
                "utilization efficiency (Eq. 12)",
                f"{result.static.utilization_efficiency * 100:.2f}%",
                f"{result.adaptive.utilization_efficiency * 100:.2f}%",
                f"{PAPER.fig9_utilization_static:.2f}%",
                f"{PAPER.fig9_utilization_adaptive:.2f}%",
            ],
            [
                "end-to-end time (s)",
                f"{result.static.end_to_end_seconds:.1f}",
                f"{result.adaptive.end_to_end_seconds:.1f}",
                "-",
                "-",
            ],
            [
                "idle core-seconds",
                f"{result.static.staging_idle_core_seconds:.0f}",
                f"{result.adaptive.staging_idle_core_seconds:.0f}",
                "-",
                "-",
            ],
        ],
        title="Eq. 12: CPU utilization efficiency",
    )
    return series + "\n\n" + summary


if __name__ == "__main__":
    print(render(run_fig9()))
