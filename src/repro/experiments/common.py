"""Shared experiment infrastructure: scale configs, runners, rendering.

The paper's placement/global experiments run the Advection-Diffusion
workflow on Titan at four scales with a 16:1 simulation-to-staging core
ratio (Section 5.2.2); Table 2 gives the step counts per scale.  The
grids (1024x1024x512 ... 2048x2048x1024) fix the base cell counts; the
simulation cost constant is calibrated so cumulative times land in the
paper's 1000-4500 s band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.preferences import UserHints, UserPreferences
from repro.hpc.systems import SystemSpec, titan
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import run_workflow
from repro.workflow.metrics import WorkflowResult
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace
from repro.workload.trace import WorkloadTrace

__all__ = [
    "PAPER",
    "SCALES",
    "ScaleConfig",
    "advection_trace",
    "default_hints",
    "render_table",
    "run_mode_at_scale",
]


@dataclass(frozen=True)
class ScaleConfig:
    """One column of Figs. 7/8/10/11 and one row of Table 2."""

    sim_cores: int
    staging_cores: int
    grid: tuple[int, int, int]
    steps: int
    seed: int

    @property
    def base_cells(self) -> float:
        nx, ny, nz = self.grid
        return float(nx) * ny * nz

    @property
    def label(self) -> str:
        return f"{self.sim_cores // 1024}K"


# Grids, core counts and step totals from Sections 5.2.2 and Table 2.
SCALES: tuple[ScaleConfig, ...] = (
    ScaleConfig(2048, 128, (1024, 1024, 512), 27, seed=11),
    ScaleConfig(4096, 256, (1024, 1024, 1024), 42, seed=12),
    ScaleConfig(8192, 512, (2048, 1024, 1024), 49, seed=13),
    ScaleConfig(16384, 1024, (2048, 2048, 1024), 41, seed=14),
)

# Calibration: multi-stage solver work per cell per step (advection
# solver with subcycled fine levels), chosen so per-step times are tens
# of seconds on the paper's core counts.  The analysis constant puts the
# mean in-transit/simulation time ratio at 16 * 0.7 / 12 ~ 0.93 on the
# 16:1 partition: staging keeps up on quiet regrid epochs and falls
# behind on complex-isosurface epochs -- the regime of Figs. 4 and 7.
SIM_COST_PER_CELL = 12.0
ANALYSIS_COST_PER_CELL = 0.7


class _Paper:
    """Values reported in the paper, for EXPERIMENTS.md comparisons."""

    # Fig. 7: adaptive end-to-end overhead reduction (%) per scale.
    fig7_overhead_cut_vs_insitu = (50.00, 50.31, 50.50, 56.30)
    fig7_overhead_cut_vs_intransit = (75.42, 38.78, 21.29, 48.22)
    fig7_overhead_fraction_bound = 0.06  # "less than 6% of simulation time"
    # Fig. 8: adaptive data-movement reduction (%) vs static in-transit.
    fig8_movement_cut = (50.00, 48.00, 47.90, 39.04)
    # Fig. 9 / Eq. 12 utilization efficiencies (%).
    fig9_utilization_adaptive = 87.11
    fig9_utilization_static = 54.57
    # Fig. 10: global overhead reduction (%) vs local middleware adaptation.
    fig10_overhead_cut_vs_local = (52.16, 84.22, 97.84, 88.87)
    # Fig. 11: global data-movement reduction (%) vs local.
    fig11_movement_cut_vs_local = (45.93, 17.25, 5.76, 32.41)
    # Table 2 (cases, total steps, steps at 100/75/50/<50 % core usage).
    table2 = {
        "2K:128": (27, 25, 2, 0, 0),
        "4K:256": (42, 8, 13, 4, 17),
        "8K:512": (49, 4, 23, 22, 0),
        "16K:1024": (41, 10, 12, 10, 9),
    }
    # Fig. 5: adaptation kicks in at step 31 of 40; factor phases.
    fig5_steps = 40
    fig5_phases = ((1, (2, 4)), (21, (2, 4, 8, 16)))
    # Fig. 6: entropy range at the finest level of step 60.
    fig6_entropy_range = (5.14, 9.85)


PAPER = _Paper()


def advection_trace(scale: ScaleConfig, cache=None) -> WorkloadTrace:
    """The synthetic Advection-Diffusion workload for one scale.

    Rank count equals the simulation core count; per-rank state is sized
    so the workload fits the machine (Titan: 2 GiB/core) with AMR
    imbalance on top.  Memoized through the shared experiment cache
    (:mod:`repro.experiments.cache`), keyed by the scale's fields.
    """
    from dataclasses import asdict

    from repro.experiments.cache import default_cache

    def _compute() -> WorkloadTrace:
        config = SyntheticAMRConfig(
            steps=scale.steps,
            nranks=scale.sim_cores,
            base_cells=scale.base_cells,
            sim_cost_per_cell=SIM_COST_PER_CELL,
            state_bytes_per_cell=16.0,  # scalar tracer + scratch
            output_bytes_per_cell=8.0,
            growth=1.8,
            analysis_growth_exponent=0.1,
            seed=scale.seed,
        )
        return synthetic_amr_trace(config, name=f"advection-{scale.label}")

    cache = default_cache() if cache is None else cache
    return cache.value("advection_trace", asdict(scale), _compute)


def default_hints() -> UserHints:
    """The paper's user hints: Fig. 5's phase-dependent factor sets."""
    return UserHints(downsample_phases=PAPER.fig5_phases)


@lru_cache(maxsize=128)
def run_mode_at_scale(
    scale: ScaleConfig,
    mode: Mode,
    with_hints: bool = False,
    spec: SystemSpec | None = None,
) -> WorkflowResult:
    """Run (and memoize) one mode at one scale."""
    config = WorkflowConfig(
        mode=mode,
        sim_cores=scale.sim_cores,
        staging_cores=scale.staging_cores,
        spec=spec or titan(),
        analysis_cost_per_cell=ANALYSIS_COST_PER_CELL,
        preferences=UserPreferences(),
        hints=default_hints() if with_hints else UserHints(),
    )
    return run_workflow(config, advection_trace(scale))


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Plain-text table rendering shared by all experiment reports."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "-" * len(line)
    out = []
    if title:
        out.extend([title, "=" * len(title)])
    out.extend([line, sep])
    for row in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
