"""Multi-tenant contention sweep: admission policies on a shared machine.

Not a figure of the paper -- the service-layer extension (ISSUE 10):
the paper runs one coupled workflow per machine, while the DataSpaces
deployments it builds on serve several applications from one staging
pool.  This sweep quantifies what that sharing costs.  Each point admits
``tenants`` workflows (alternating wide/narrow staging footprints, two
users) onto ONE shared :class:`~repro.service.WorkflowService` machine
under one admission policy and reports the fleet's SLO numbers:

- **mean/max time-to-solution** -- arrival to completion on the shared
  clock, queue wait included (the per-tenant ``tenant.completed`` view);
- **Δ vs solo** -- mean time-to-solution against the same policy's
  single-tenant point: the degradation contention buys;
- **queue wait / starvations** -- how long admission held tenants back,
  and how often a queued tenant crossed the starvation threshold;
- **fairness** -- Jain's index over per-tenant slowdowns (1.0 = every
  tenant degraded equally).

``grid()/run_point()/merge()`` follow the sweep protocol, so ``python
-m repro run-all --only fig_tenants --jobs 2`` fans the points over
workers; ``python -m repro tenants`` renders the same table
interactively and ``python -m repro tenants --smoke`` is the CI
tenant-smoke entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ExperimentError
from repro.experiments.common import render_table
from repro.hpc.systems import titan
from repro.observability import MetricsRegistry
from repro.service import ADMISSION_POLICIES, WorkflowService
from repro.workflow.config import Mode, WorkflowConfig
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace
from repro.workload.trace import WorkloadTrace

__all__ = [
    "FigTenantsResult",
    "TenantRow",
    "grid",
    "merge",
    "render",
    "run_fig_tenants",
    "run_point",
]

#: Shared-machine pool sizes every point runs on.
POOL_SIM_CORES = 1024
POOL_STAGING_CORES = 64
STEPS = 10
SEED = 42
#: Tenant-count axis: 1 is the solo baseline each policy is compared to.
TENANT_COUNTS = (1, 2, 4)
#: Policy axis, registry order (fifo first -- the head-of-line baseline).
POLICY_NAMES = tuple(ADMISSION_POLICIES)
#: Seconds between consecutive tenant arrivals.
ARRIVAL_STAGGER = 1.0
#: Queue wait beyond this raises ``tenant.starved`` (simulated seconds).
STARVATION_WAIT = 5.0


@lru_cache(maxsize=16)
def _workload(seed: int, steps: int = STEPS) -> WorkloadTrace:
    """One tenant's AMR workload (seed-distinct so tenants differ)."""
    return synthetic_amr_trace(
        SyntheticAMRConfig(
            steps=steps,
            nranks=256,
            base_cells=2e7,
            sim_cost_per_cell=1.0,
            growth=1.5,
            analysis_growth_exponent=1.0,
            seed=seed,
        ),
        name=f"trace-tenant-{seed}",
    )


def _tenant_config(index: int) -> WorkflowConfig:
    """Alternating profiles: even tenants wide, odd tenants narrow.

    Wide tenants request half the compute pool and most of the staging
    pool; narrow ones a quarter and a sliver.  The mix is what separates
    the policies: under fifo a blocked wide head starves the narrow
    tenants behind it, ``smallest`` backfills them, ``fair_share``
    alternates the two users.
    """
    wide = index % 2 == 0
    return WorkflowConfig(
        mode=Mode.GLOBAL,
        sim_cores=POOL_SIM_CORES // 2 if wide else POOL_SIM_CORES // 4,
        staging_cores=48 if wide else 8,
        spec=titan(),
        analysis_cost_per_cell=0.035,
    )


@dataclass(frozen=True)
class TenantRow:
    """One (policy, tenant-count) point's fleet SLO numbers."""

    policy: str
    tenants: int
    makespan: float
    mean_tts: float  # mean time-to-solution (arrival -> completion)
    max_tts: float
    mean_queue_wait: float
    fairness_index: float  # Jain's index over per-tenant slowdowns
    starvations: int
    grant_expansions: int  # pool-negotiated staging-grant growths


@dataclass(frozen=True)
class FigTenantsResult:
    """All swept rows, grid order (policy-major, tenant-count-minor)."""

    rows: tuple[TenantRow, ...]

    def row(self, policy: str, tenants: int) -> TenantRow:
        for row in self.rows:
            if row.policy == policy and row.tenants == tenants:
                return row
        raise ExperimentError(f"no row for {policy!r} x {tenants} tenants")


def grid() -> list[dict]:
    """Sweep protocol: policy-major, tenant-count-minor (solo first)."""
    return [
        {"policy": policy, "tenants": count, "steps": STEPS}
        for policy in POLICY_NAMES
        for count in TENANT_COUNTS
    ]


def run_point(params: dict) -> TenantRow:
    """Sweep protocol: one fleet on one shared machine (worker-side)."""
    policy = params["policy"]
    count = int(params["tenants"])
    steps = int(params.get("steps", STEPS))
    metrics = MetricsRegistry()
    service = WorkflowService(
        sim_cores=POOL_SIM_CORES,
        staging_cores=POOL_STAGING_CORES,
        policy=policy,
        starvation_wait=STARVATION_WAIT,
        metrics=metrics,
    )
    for index in range(count):
        service.submit(
            f"tenant-{index}",
            _tenant_config(index),
            _workload(SEED + index, steps),
            arrival=index * ARRIVAL_STAGGER,
            user=f"user-{index % 2}",
        )
    report = service.run()
    waits = [t.queue_wait for t in report.tenants]
    tts = [t.time_to_solution for t in report.tenants]
    return TenantRow(
        policy=policy,
        tenants=count,
        makespan=report.makespan,
        mean_tts=sum(tts) / len(tts),
        max_tts=max(tts),
        mean_queue_wait=sum(waits) / len(waits),
        fairness_index=report.fairness_index,
        starvations=report.starvations,
        grant_expansions=int(
            metrics.counter("service.grant_expansions").value
        ),
    )


def merge(results: list) -> FigTenantsResult:
    """Sweep protocol: grid-ordered rows -> the result object."""
    return FigTenantsResult(rows=tuple(results))


def run_fig_tenants(steps: int = STEPS) -> FigTenantsResult:
    """Run the whole sweep in-process (the serial reference path)."""
    return merge(
        [run_point({**params, "steps": steps}) for params in grid()]
    )


def render(result: FigTenantsResult) -> str:
    """The contention table: per-policy degradation vs the solo point."""
    body = []
    for row in result.rows:
        # Baseline: the policy's smallest fleet present (the solo point
        # in a full sweep; the row itself when the CLI filtered it out).
        solo = min(
            (r for r in result.rows if r.policy == row.policy),
            key=lambda r: r.tenants,
        )
        degradation = (
            100.0 * (row.mean_tts - solo.mean_tts) / solo.mean_tts
            if solo.mean_tts > 0
            else 0.0
        )
        body.append([
            row.policy,
            str(row.tenants),
            f"{row.makespan:.1f}",
            f"{row.mean_tts:.1f}",
            f"{degradation:+.0f}%",
            f"{row.max_tts:.1f}",
            f"{row.mean_queue_wait:.1f}",
            f"{row.fairness_index:.3f}",
            str(row.starvations),
            str(row.grant_expansions),
        ])
    return render_table(
        ["policy", "tenants", "makespan (s)", "mean tts (s)", "Δ vs solo",
         "max tts (s)", "queue wait (s)", "fairness", "starved",
         "expansions"],
        body,
        title=f"Multi-tenant contention on a {POOL_SIM_CORES}/"
        f"{POOL_STAGING_CORES}-core shared machine "
        "(tts = arrival to completion, queue wait included)",
    )


if __name__ == "__main__":
    print(render(run_fig_tenants()))
