"""Trigger sweep: monitoring overhead vs adaptation lag across policies.

Not a figure of the paper -- the cross-layer loop's natural extension
(ROADMAP item 5): replace the Monitor's fixed sampling interval with the
trigger-detection policies of :mod:`repro.workflow.triggers` and map the
trade-off they buy.  Each point runs the quickstart-scale workload under
one registered trigger policy, fault-free and under the PR 4 ``blackout``
scenario, and reports

- **monitor cost** -- full snapshots times ranks touched, plus the
  bounded percentile-sampling budget the policy spent on indicators;
- **adaptation lag** -- the mean age (in steps) of the decision in
  effect, i.e. how stale the settings the off-sample steps reused were;
- **currency regret** -- the end-to-end (Eq. 6) delta against the
  ``fixed-interval`` baseline of the same scenario, plus the ledger's
  counterfactual placement regret.

``grid()/run_point()/merge()`` follow the sweep protocol, so ``python
-m repro run-all --only fig_triggers --jobs 2`` fans the points over
workers with a deterministic, grid-ordered merge; ``python -m repro
triggers`` renders the same table for one scenario interactively.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ExperimentError
from repro.experiments.common import render_table
from repro.faults import build_scenario
from repro.hpc.systems import titan
from repro.observability import MetricsRegistry, PredictionLedger, placement_regret
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import CoupledWorkflow, run_workflow
from repro.workflow.triggers import TRIGGER_POLICIES, build_trigger
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace
from repro.workload.trace import WorkloadTrace

__all__ = [
    "FigTriggersResult",
    "TriggerRow",
    "grid",
    "merge",
    "render",
    "run_fig_triggers",
    "run_point",
]

SIM_CORES = 1024
STAGING_CORES = 64
STEPS = 20
SEED = 42

#: Sweep scenarios, grid order: fault-free first, then the PR 4 blackout.
SCENARIO_NAMES = ("none", "blackout")
#: The trigger policies swept, in registry order (fixed-interval first --
#: the per-scenario baseline the relative columns compare against).
POLICY_NAMES = tuple(TRIGGER_POLICIES)
#: Self-calibration cadence every swept policy runs with.
RECALIBRATE_EVERY = 5


@lru_cache(maxsize=4)
def _workload(steps: int = STEPS) -> WorkloadTrace:
    """The quickstart-scale AMR workload every point replays."""
    return synthetic_amr_trace(
        SyntheticAMRConfig(
            steps=steps,
            nranks=SIM_CORES,
            base_cells=5e7,
            sim_cost_per_cell=8.0,
            growth=2.0,
            analysis_growth_exponent=0.5,
            seed=SEED,
        ),
        name="trace-triggers",
    )


def _config() -> WorkflowConfig:
    return WorkflowConfig(
        mode=Mode.GLOBAL,
        sim_cores=SIM_CORES,
        staging_cores=STAGING_CORES,
        spec=titan(),
        analysis_cost_per_cell=0.45,
    )


@lru_cache(maxsize=4)
def _horizon(steps: int = STEPS) -> float:
    """Fault-free, trigger-free end-to-end time: the scenario horizon."""
    return run_workflow(_config(), _workload(steps)).end_to_end_seconds


@dataclass(frozen=True)
class TriggerRow:
    """One (policy, scenario) point's overhead/lag/quality numbers."""

    policy: str
    scenario: str
    end_to_end_seconds: float
    data_moved_bytes: float
    snapshots: int  # full OperationalState snapshots assembled
    fires: int  # trigger verdicts that requested adaptation
    budget_used: int  # per-rank indicator probes spent
    monitor_cost: int  # snapshots * nranks + budget_used
    mean_lag_steps: float  # mean age of the decision in effect
    regret_seconds: float  # ledger counterfactual placement regret


@dataclass(frozen=True)
class FigTriggersResult:
    """All swept rows, grid order (scenario-major, policy-minor)."""

    rows: tuple[TriggerRow, ...]

    def row(self, policy: str, scenario: str) -> TriggerRow:
        for row in self.rows:
            if row.policy == policy and row.scenario == scenario:
                return row
        raise ExperimentError(f"no row for {policy!r} x {scenario!r}")


def grid() -> list[dict]:
    """Sweep protocol: scenario-major, policy-minor (baseline first)."""
    return [
        {"policy": policy, "scenario": scenario, "steps": STEPS}
        for scenario in SCENARIO_NAMES
        for policy in POLICY_NAMES
    ]


def run_point(params: dict) -> TriggerRow:
    """Sweep protocol: one policy under one scenario (worker-side)."""
    policy = params["policy"]
    scenario = params["scenario"]
    steps = int(params.get("steps", STEPS))
    trace = _workload(steps)
    plan = None
    if scenario != "none":
        plan = build_scenario(
            scenario,
            horizon=_horizon(steps),
            seed=0,
            staging_cores=STAGING_CORES,
            steps=steps,
        )
    metrics = MetricsRegistry()
    ledger = PredictionLedger()
    workflow = CoupledWorkflow(
        _config(),
        trace,
        metrics=metrics,
        ledger=ledger,
        faults=plan,
        trigger=build_trigger(policy, recalibrate_every=RECALIBRATE_EVERY),
    )
    result = workflow.run()
    sampled = [state.step for state in workflow.monitor.history]
    lags = []
    for step in range(1, steps + 1):
        newest = max((s for s in sampled if s <= step), default=step)
        lags.append(step - newest)
    snapshots = int(metrics.counter("monitor.samples").value)
    budget = int(metrics.counter("monitor.sampling_budget_used").value)
    return TriggerRow(
        policy=policy,
        scenario=scenario,
        end_to_end_seconds=result.end_to_end_seconds,
        data_moved_bytes=result.data_moved_bytes,
        snapshots=snapshots,
        fires=int(metrics.counter("monitor.trigger_fires").value),
        budget_used=budget,
        monitor_cost=snapshots * trace.nranks + budget,
        mean_lag_steps=sum(lags) / len(lags),
        regret_seconds=placement_regret(ledger).total_regret_seconds,
    )


def merge(results: list) -> FigTriggersResult:
    """Sweep protocol: grid-ordered rows -> the result object."""
    return FigTriggersResult(rows=tuple(results))


def run_fig_triggers(steps: int = STEPS) -> FigTriggersResult:
    """Run the whole sweep in-process (the serial reference path)."""
    return merge(
        [run_point({**params, "steps": steps}) for params in grid()]
    )


def render(result: FigTriggersResult) -> str:
    """The overhead-vs-adaptation-lag table, one block per scenario."""
    blocks = []
    scenarios = []
    for row in result.rows:
        if row.scenario not in scenarios:
            scenarios.append(row.scenario)
    for scenario in scenarios:
        rows = [r for r in result.rows if r.scenario == scenario]
        base = next((r for r in rows if r.policy == "fixed-interval"), rows[0])
        body = []
        for r in rows:
            d_e2e = (
                100.0 * (r.end_to_end_seconds - base.end_to_end_seconds)
                / base.end_to_end_seconds
                if base.end_to_end_seconds > 0
                else 0.0
            )
            rel_cost = (
                100.0 * r.monitor_cost / base.monitor_cost
                if base.monitor_cost > 0
                else 0.0
            )
            body.append([
                r.policy,
                f"{r.end_to_end_seconds:.1f}",
                f"{d_e2e:+.1f}%",
                str(r.snapshots),
                str(r.fires),
                str(r.budget_used),
                str(r.monitor_cost),
                f"{rel_cost:.0f}%",
                f"{r.mean_lag_steps:.2f}",
                f"{r.regret_seconds:.2f}",
            ])
        blocks.append(render_table(
            ["policy", "end-to-end (s)", "Δe2e", "snapshots", "fires",
             "budget", "monitor cost", "vs fixed", "mean lag", "regret (s)"],
            body,
            title=f"Trigger policies, scenario={scenario} "
            "(cost = snapshots x ranks + sampling budget)",
        ))
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(render(run_fig_triggers()))
