"""Figure 11: total data movement, global cross-layer vs local adaptation.

Global adaptation sends *more* steps in-transit (Table 2) yet moves less
data overall because the application layer reduces resolution first --
the paper reports reductions of 45.93/17.25/5.76/32.41 % vs local-only
adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    PAPER,
    SCALES,
    ScaleConfig,
    render_table,
    run_mode_at_scale,
)
from repro.units import format_bytes
from repro.workflow.config import Mode

__all__ = ["Fig11Row", "render", "run_fig11"]


@dataclass(frozen=True)
class Fig11Row:
    """One scale's Local/Global movement pair."""

    scale: str
    local_bytes: float
    global_bytes: float
    local_intransit_steps: int
    global_intransit_steps: int

    @property
    def movement_cut(self) -> float:
        """Percent reduction of movement under global adaptation."""
        if self.local_bytes <= 0:
            return 0.0
        return 100.0 * (1 - self.global_bytes / self.local_bytes)


def _row(scale: ScaleConfig) -> Fig11Row:
    """Local and global movement at one scale (one sweep point)."""
    from repro.core.actions import Placement

    local = run_mode_at_scale(scale, Mode.ADAPTIVE_MIDDLEWARE)
    global_ = run_mode_at_scale(scale, Mode.GLOBAL, with_hints=True)
    return Fig11Row(
        scale=scale.label,
        local_bytes=local.data_moved_bytes,
        global_bytes=global_.data_moved_bytes,
        local_intransit_steps=local.placement_counts()[Placement.IN_TRANSIT],
        global_intransit_steps=global_.placement_counts()[Placement.IN_TRANSIT],
    )


def run_fig11(scales: tuple[ScaleConfig, ...] = SCALES) -> list[Fig11Row]:
    """Measure movement for local and global adaptation."""
    return [_row(scale) for scale in scales]


def grid() -> list[dict]:
    """Sweep protocol: one point per scale (the figure's bar pairs)."""
    return [{"scale": index} for index in range(len(SCALES))]


def run_point(params: dict) -> Fig11Row:
    """Sweep protocol: compute one scale's row (worker-side)."""
    return _row(SCALES[params["scale"]])


def merge(results: list) -> list[Fig11Row]:
    """Sweep protocol: grid-ordered rows are ``run_fig11``'s output."""
    return list(results)


def render(rows: list[Fig11Row]) -> str:
    headers = ["cores", "local movement", "global movement", "reduction",
               "paper", "in-transit steps (local->global)"]
    body = []
    for row, paper_cut in zip(rows, PAPER.fig11_movement_cut_vs_local):
        body.append([
            row.scale,
            format_bytes(row.local_bytes),
            format_bytes(row.global_bytes),
            f"{row.movement_cut:.1f}%",
            f"{paper_cut:.1f}%",
            f"{row.local_intransit_steps} -> {row.global_intransit_steps}",
        ])
    return render_table(headers, body,
                        title="Fig. 11: data movement, global vs local adaptation")


if __name__ == "__main__":
    print(render(run_fig11()))
