"""Render traces for humans: decision timelines and occupancy Gantts.

Two views of one trace, both plain text (the repo's output discipline):

- :func:`decision_timeline` -- one row per ``adapt.decision`` event with
  the inputs the engine decided on (backlog, estimated in-situ vs
  in-transit time) and the policies' own reasoning, so a single decision
  can be read end to end;
- :func:`occupancy_gantt` -- the Fig.-4-style picture: simulation-core
  occupancy (with stalls marked) over staging-core occupancy, on a
  shared simulated-time axis;
- :func:`fault_timeline` -- injected faults, retries, aborts and
  placement fallbacks in chronological order (the ``repro faults`` CLI's
  output).
"""

from __future__ import annotations

from repro.observability.events import (
    ADAPT_ACTION,
    ADAPT_DECISION,
    FAULT_CLEARED,
    FAULT_INJECTED,
    PLACEMENT_FALLBACK,
    SIM_STALL,
    STAGING_JOB_ABORT,
    STAGING_JOB_END,
    STAGING_JOB_START,
    STAGING_RETRY,
    STEP_END,
    STEP_START,
)
from repro.observability.tracer import Tracer

__all__ = ["decision_timeline", "fault_timeline", "occupancy_gantt"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def _truncation_banner(tracer: Tracer) -> str | None:
    """A warning line when the ring buffer evicted events, else None.

    Both renderers prepend it so a wrapped trace is never silently
    presented as the whole run.
    """
    if tracer.dropped <= 0:
        return None
    return (
        f"!! trace truncated: ring buffer (capacity {tracer.capacity}) "
        f"evicted {tracer.dropped} older events; "
        f"showing the newest {len(tracer)}"
    )


def decision_timeline(tracer: Tracer) -> str:
    """One row per adaptation decision: outputs, inputs, reasoning."""
    banner = _truncation_banner(tracer)
    decisions = tracer.events(kind=ADAPT_DECISION)
    if not decisions:
        empty = "(no adaptation decisions in trace)"
        return f"{banner}\n{empty}" if banner else empty
    reasons: dict[int | None, list[str]] = {}
    for action in tracer.events(kind=ADAPT_ACTION):
        layer = action.fields.get("layer", "?")
        reason = action.fields.get("reason", "")
        if reason:
            reasons.setdefault(action.step, []).append(f"[{layer}] {reason}")

    headers = ["t(s)", "step", "factor", "placement", "M", "backlog(s)",
               "T_insitu(s)", "T_intransit(s)"]
    rows = []
    for event in decisions:
        f = event.fields
        rows.append([
            f"{event.ts:.2f}",
            _fmt(event.step),
            _fmt(f.get("factor") or 1),
            _fmt(f.get("placement") or "-"),
            _fmt(f.get("staging_cores") or "-"),
            _fmt(f.get("est_intransit_remaining", 0.0)),
            _fmt(f.get("est_insitu_time", 0.0)),
            _fmt(f.get("est_intransit_time", 0.0)),
        ])
    widths = [max(len(h), max(len(r[i]) for r in rows))
              for i, h in enumerate(headers)]
    lines = [banner] if banner else []
    lines += ["  ".join(h.rjust(w) for h, w in zip(headers, widths)),
              "  ".join("-" * w for w in widths)]
    for event, row in zip(decisions, rows):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        for reason in reasons.get(event.step, []):
            lines.append(" " * 4 + reason)
    return "\n".join(lines)


def _intervals(
    tracer: Tracer, open_kind: str, close_kind: str, key
) -> list[tuple[float, float]]:
    """Pair open/close events by ``key`` into (start, end) intervals."""
    pending: dict[object, float] = {}
    out: list[tuple[float, float]] = []
    paired = tracer.events(kind=open_kind) + tracer.events(kind=close_kind)
    for event in sorted(paired, key=lambda e: e.seq):
        k = key(event)
        if event.kind == open_kind:
            pending[k] = event.ts
        else:
            start = pending.pop(k, None)
            if start is not None and event.ts > start:
                out.append((start, event.ts))
    return out


def occupancy_gantt(tracer: Tracer, width: int = 72) -> str:
    """Sim vs in-transit occupancy bars over the run (Fig. 4's picture).

    ``=`` marks busy time, ``x`` marks simulation stalls (blocked on
    staging memory or a collective PFS write), ``.`` marks idle.
    """
    banner = _truncation_banner(tracer)
    events = tracer.events()
    if not events:
        empty = "(empty trace)"
        return f"{banner}\n{empty}" if banner else empty
    t_end = max(e.ts for e in events)
    if t_end <= 0:
        flat = "(trace spans zero simulated time)"
        return f"{banner}\n{flat}" if banner else flat
    width = max(10, int(width))
    scale = width / t_end

    sim_busy = _intervals(tracer, STEP_START, STEP_END, key=lambda e: e.step)
    staging_busy = _intervals(
        tracer, STAGING_JOB_START, STAGING_JOB_END,
        key=lambda e: e.fields.get("job_id"),
    )
    stalls = [
        (e.ts - e.fields.get("seconds", 0.0), e.ts)
        for e in tracer.events(kind=SIM_STALL)
        if e.fields.get("seconds", 0.0) > 0
    ]

    def bar(intervals: list[tuple[float, float]], overlay=None) -> str:
        cells = ["."] * width
        for start, end in intervals:
            lo = min(width - 1, int(start * scale))
            hi = min(width - 1, max(lo, int(end * scale - 1e-12)))
            for i in range(lo, hi + 1):
                cells[i] = "="
        for start, end in overlay or []:
            lo = min(width - 1, int(start * scale))
            hi = min(width - 1, max(lo, int(end * scale - 1e-12)))
            for i in range(lo, hi + 1):
                cells[i] = "x"
        return "".join(cells)

    axis = f"0s{' ' * (width - 2 - len(f'{t_end:.1f}s'))}{t_end:.1f}s"
    lines = [banner] if banner else []
    lines += [
        f"sim      |{bar(sim_busy, overlay=stalls)}|",
        f"staging  |{bar(staging_busy)}|",
        f"          {axis}",
        "          = busy   x stalled   . idle",
    ]
    return "\n".join(lines)


#: Event kinds rendered by :func:`fault_timeline`, in emission order.
_FAULT_TIMELINE_KINDS = (
    FAULT_INJECTED,
    FAULT_CLEARED,
    STAGING_RETRY,
    STAGING_JOB_ABORT,
    PLACEMENT_FALLBACK,
)


def fault_timeline(tracer: Tracer) -> str:
    """Chronological log of injected faults and the recovery they triggered.

    One line per ``fault.injected`` / ``fault.cleared`` /
    ``staging.retry`` / ``staging.job_abort`` / ``placement.fallback``
    event, plus any degraded adaptation decisions, so an operator can
    read cause (injection) and effect (recovery decision) off one page.
    """
    banner = _truncation_banner(tracer)
    picked = [
        e for e in tracer.events()
        if e.kind in _FAULT_TIMELINE_KINDS
        or (e.kind == ADAPT_DECISION and e.fields.get("degraded"))
    ]
    if not picked:
        empty = "(no fault activity in trace)"
        return f"{banner}\n{empty}" if banner else empty
    lines = [banner] if banner else []
    for event in picked:
        if event.kind == ADAPT_DECISION:
            what = "adapt.decision DEGRADED placement=in_situ"
        else:
            detail = " ".join(
                f"{k}={_fmt(v)}"
                for k, v in event.fields.items()
                if k != "fault"
            )
            if event.kind == FAULT_INJECTED:
                parts = ["inject", event.fields.get("fault", "?"), detail]
            elif event.kind == FAULT_CLEARED:
                parts = ["clear", event.fields.get("fault", "?"), detail]
            else:
                parts = [event.kind, detail]
            what = " ".join(p for p in parts if p)
        step = f" step={event.step}" if event.step is not None else ""
        lines.append(f"t={event.ts:10.3f}s{step}  {what}")
    return "\n".join(lines)
