"""The metrics registry: counters, gauges and EMA timers.

The quantitative companion to the tracer: where the tracer answers *why*
(a decision's inputs and reasoning), the registry answers *how much* (how
many decisions, how many bytes, what the smoothed service time is).  The
same injection discipline applies -- components take ``metrics=None`` and
publish only when a registry was injected, so the disabled path is one
``is not None`` test per instrumentation point.

Instruments are created lazily by name (``registry.counter("x")``), are
idempotent (the same name returns the same instrument) and type-checked
(reusing a counter name as a gauge is an error, not silent aliasing).
:data:`METRIC_NAMES` registers every name the built-in instrumentation
publishes; ``docs/observability.md`` documents each and the
docs-consistency test keeps them in sync.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "EmaTimer",
    "Gauge",
    "METRIC_NAMES",
    "MetricsRegistry",
    "merge_worker_metrics",
]


#: Every metric name the built-in instrumentation publishes.
METRIC_NAMES: dict[str, str] = {
    "workflow.steps": "counter: simulation steps completed",
    "workflow.stall_seconds": "counter: seconds the simulation spent blocked",
    "monitor.samples": "counter: OperationalState snapshots assembled",
    "monitor.sim_step_seconds": "EMA timer: recent simulation step durations",
    "monitor.insitu_observations": "counter: completed in-situ analyses observed",
    "monitor.intransit_observations": "counter: completed in-transit analyses observed",
    "monitor.transfer_observations": "counter: completed staging transfers observed",
    "monitor.transfer_discards": "counter: transfer observations discarded as "
    "latency-saturated (seconds <= link latency)",
    "engine.decisions": "counter: adaptation decisions committed",
    "staging.jobs_submitted": "counter: analysis jobs submitted to staging",
    "staging.jobs_completed": "counter: analysis jobs drained by staging",
    "staging.bytes_ingested": "counter: bytes shipped into staging memory",
    "staging.service_seconds": "EMA timer: recent staging job service times",
    "staging.memory_used": "gauge: staging memory currently held by jobs",
    "staging.active_cores": "gauge: staging cores currently enabled",
    "analysis.entropy_kernel_seconds": "EMA timer: recent block-entropy "
    "kernel durations",
    "experiments.cache_hits": "counter: experiment cache lookups served "
    "from memory or disk",
    "experiments.cache_misses": "counter: experiment cache lookups that "
    "had to compute",
    "experiments.cache_store_failures": "counter: disk-cache artifact stores "
    "that failed (read-only or full REPRO_CACHE_DIR)",
    "experiments.cache_lock_waits": "counter: per-key cache lock acquisitions "
    "that had to wait for a concurrent holder",
    "faults.injected": "counter: planned faults the injector applied",
    "staging.retries": "counter: staging ingest attempts retried with backoff",
    "placement.fallbacks": "counter: staging placements degraded to in-situ "
    "because staging was unreachable",
    "monitor.trigger_fires": "counter: trigger evaluations that requested "
    "a full adaptation",
    "monitor.samples_taken": "counter: full OperationalState snapshots "
    "assembled on a trigger-driven run",
    "monitor.sampling_budget_used": "counter: per-rank indicator probes "
    "spent by trigger policies (the percentile-sampling budget)",
    "kernel.events_processed": "counter: typed kernel events dispatched "
    "over a workflow run (the engine layer's always-on tally)",
    "service.tenants_admitted": "counter: tenant workflows admitted onto "
    "the shared machine",
    "service.tenants_rejected": "counter: tenant arrivals turned away "
    "(admission queue full)",
    "service.tenants_completed": "counter: admitted tenant workflows that "
    "finished",
    "service.queue_wait_seconds": "EMA timer: recent admission-queue "
    "waits of admitted tenants",
    "service.staging_committed_cores": "gauge: staging-pool cores "
    "currently granted to tenants",
    "service.grant_expansions": "counter: staging grants expanded by "
    "borrowing uncommitted pool cores",
    "service.grant_shrinks": "counter: staging grants shrunk back toward "
    "their admission base",
    "service.starvations": "counter: queued tenants whose wait crossed "
    "the starvation threshold",
}


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class EmaTimer:
    """An exponentially weighted moving average of observed durations.

    The same smoothing the Monitor's estimators use: the first
    observation seeds the average, later ones blend in with weight
    ``alpha``.  ``count`` and ``total`` keep the raw tallies.
    """

    __slots__ = ("alpha", "value", "count", "total")

    def __init__(self, alpha: float = 0.3) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ObservabilityError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.value = 0.0
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ObservabilityError(f"duration must be >= 0, got {seconds}")
        if self.count == 0:
            self.value = float(seconds)
        else:
            self.value = (1 - self.alpha) * self.value + self.alpha * seconds
        self.count += 1
        self.total += seconds


class MetricsRegistry:
    """Named instruments, created lazily and shared by name."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | EmaTimer] = {}

    def _get(self, name: str, kind: type) -> Counter | Gauge | EmaTimer:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ObservabilityError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def timer(self, name: str, alpha: float = 0.3) -> EmaTimer:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = EmaTimer(alpha)
            self._instruments[name] = instrument
        elif not isinstance(instrument, EmaTimer):
            raise ObservabilityError(
                f"metric {name!r} is a {type(instrument).__name__}, not an EmaTimer"
            )
        return instrument

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._instruments)

    def instruments(self) -> dict[str, Counter | Gauge | EmaTimer]:
        """A copy of the name -> instrument mapping (for exporters)."""
        return dict(self._instruments)

    def as_dict(self) -> dict[str, float]:
        """Current value of every instrument (EMA value for timers)."""
        return {name: self._instruments[name].value for name in self.names()}

    def dump(self) -> dict[str, dict[str, Any]]:
        """A picklable snapshot of every instrument, for cross-process merge.

        The parallel sweep runner ships one dump per completed grid
        point back to the parent, which folds them in with
        :func:`merge_worker_metrics`.
        """
        out: dict[str, dict[str, Any]] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = {"kind": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"kind": "gauge", "value": instrument.value}
            else:
                out[name] = {
                    "kind": "timer",
                    "value": instrument.value,
                    "count": instrument.count,
                    "total": instrument.total,
                    "alpha": instrument.alpha,
                }
        return out

    def render(self) -> str:
        """A small fixed-width table of every instrument's value."""
        if not self._instruments:
            return "(no metrics recorded)"
        width = max(len(name) for name in self._instruments)
        lines = []
        for name in self.names():
            instrument = self._instruments[name]
            value = instrument.value
            text = f"{value:.6g}"
            if isinstance(instrument, EmaTimer):
                text += f" (n={instrument.count}, total={instrument.total:.6g})"
            lines.append(f"{name.ljust(width)}  {text}")
        return "\n".join(lines)


def merge_worker_metrics(
    parent: MetricsRegistry,
    dumps: Iterable[Mapping[str, Mapping[str, Any]]],
) -> MetricsRegistry:
    """Fold worker :meth:`MetricsRegistry.dump` snapshots into ``parent``.

    Counters sum, gauges take the last dump's value (the dumps arrive in
    grid order, so "last" is deterministic), and timers combine their raw
    tallies -- ``count`` and ``total`` add exactly, while the smoothed
    value becomes a count-weighted average of the per-worker EMAs (the
    original observation interleaving is gone, so an exact EMA cannot be
    reconstructed).  Returns ``parent`` for chaining.
    """
    for dump in dumps:
        for name, snap in dump.items():
            kind = snap.get("kind")
            if kind == "counter":
                parent.counter(name).inc(float(snap["value"]))
            elif kind == "gauge":
                parent.gauge(name).set(float(snap["value"]))
            elif kind == "timer":
                count = int(snap.get("count", 0))
                if count <= 0:
                    continue
                timer = parent.timer(name, float(snap.get("alpha", 0.3)))
                merged_count = timer.count + count
                timer.value = (
                    timer.count * timer.value + count * float(snap["value"])
                ) / merged_count
                timer.count = merged_count
                timer.total += float(snap.get("total", 0.0))
            else:
                raise ObservabilityError(
                    f"worker dump for metric {name!r} has unknown kind {kind!r}"
                )
    return parent
