"""The prediction ledger: every estimate, paired with what really happened.

The policies decide on *estimated* costs (Eqs. 4-10: ``T_insitu``,
``T_intransit``, ``T_sd``, staging memory demand, the chosen ``M``); the
event simulator later delivers the realized values.  The tracer records
the decisions -- the ledger records whether the numbers under them were
any good.  Each estimate becomes a :class:`PredictionRecord` keyed by
``(quantity, step)`` and carrying the mechanism that produced it; when
the realized value arrives the record is resolved in place, so the full
prediction-error history of every estimator is available for the
calibration report (:mod:`repro.observability.calibration`).

The ledger also keeps one :class:`PlacementOutcome` per scored placement
decision: the middleware layer's estimated in-situ vs in-transit costs
at dispatch, the exact (simulator-true) counterfactual costs, and the
realized cost of the chosen path.  :meth:`PredictionLedger.finalize`
turns these into per-step counterfactual regret -- how many decisions
Eq. 8 got wrong, and what the wrong calls cost.

The same injection discipline as the tracer applies: components take
``ledger=None`` and publish only when one was injected, and the ledger
itself only *reads* runtime state, so an instrumented run is
bit-identical to an uninstrumented one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import ObservabilityError

__all__ = [
    "PlacementOutcome",
    "PredictionLedger",
    "PredictionRecord",
    "QUANTITIES",
]

#: Every quantity the built-in instrumentation predicts, with the
#: mechanism that owns the estimate.  Closed registry, like
#: ``EVENT_KINDS``: predicting an unknown quantity is an error, and the
#: docs-consistency test keeps this table in sync with the docs.
QUANTITIES: dict[str, str] = {
    "sim_step_time": "Monitor: predicted next simulation step duration "
    "(T_{i+1}_sim) vs the step time actually observed",
    "insitu_time": "Monitor: predicted in-situ analysis time (T_insitu) "
    "vs the realized serialized run time",
    "intransit_time": "Monitor: predicted in-transit service time "
    "(T_intransit) vs the realized staging job duration",
    "transfer_time": "Monitor: predicted staging transfer time (T_sd) "
    "vs the realized ingest transfer time",
    "memory_demand": "Engine: predicted staging memory demand of the "
    "placed step vs the bytes actually ingested",
    "staging_cores": "Engine: chosen staging core count M vs the cores "
    "actually enabled after clamping",
}

#: Tolerance below which a counterfactual advantage is not a flip.
_FLIP_EPSILON = 1e-9


@dataclass
class PredictionRecord:
    """One estimate and (once resolved) its realized value."""

    seq: int
    quantity: str
    step: int
    predicted: float
    predicted_at: float
    mechanism: str = ""
    realized: float | None = None
    realized_at: float | None = None

    @property
    def resolved(self) -> bool:
        return self.realized is not None

    @property
    def error(self) -> float | None:
        """Signed error (predicted - realized); None until resolved."""
        if self.realized is None:
            return None
        return self.predicted - self.realized

    @property
    def signed_relative_error(self) -> float | None:
        """(predicted - realized) / realized; None unless realized > 0."""
        if self.realized is None or self.realized <= 0:
            return None
        return (self.predicted - self.realized) / self.realized

    @property
    def absolute_percentage_error(self) -> float | None:
        """|predicted - realized| / realized * 100; None unless realized > 0."""
        rel = self.signed_relative_error
        if rel is None:
            return None
        return abs(rel) * 100.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "quantity": self.quantity,
            "step": self.step,
            "predicted": self.predicted,
            "predicted_at": self.predicted_at,
            "mechanism": self.mechanism,
            "realized": self.realized,
            "realized_at": self.realized_at,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PredictionRecord":
        return cls(
            seq=int(payload["seq"]),
            quantity=str(payload["quantity"]),
            step=int(payload["step"]),
            predicted=float(payload["predicted"]),
            predicted_at=float(payload["predicted_at"]),
            mechanism=str(payload.get("mechanism", "")),
            realized=(
                None if payload.get("realized") is None
                else float(payload["realized"])
            ),
            realized_at=(
                None if payload.get("realized_at") is None
                else float(payload["realized_at"])
            ),
        )


@dataclass
class PlacementOutcome:
    """One scored placement decision and its counterfactual.

    The *estimated* costs are what the middleware policy compared (the
    possibly-lying numbers); the *true* components are exact under the
    simulator's model (the staging backlog and service rates are known),
    so the counterfactual is hindsight, not another estimate.

    Costs are in the currency of Eq. 6 -- seconds the decision added to
    the end-to-end time beyond pure simulation:

    - an in-situ run costs its serialized analysis time;
    - an in-transit placement costs its memory stall plus however much
      of the job outlived the simulation pipeline (the unhidden tail).

    ``HYBRID`` and ``POST_PROCESS`` steps are recorded by the driver's
    metrics but not scored here (their counterfactual is not a single
    placement).  Per-step regret ignores cross-step knock-on effects
    (queueing one job delays the next), so the summed regret is a
    marginal, slightly pessimistic bound.
    """

    step: int
    chosen: str
    est_insitu: float
    est_intransit: float
    insitu_true: float
    backlog_true: float
    service_true: float
    dispatched_at: float
    block_seconds: float = 0.0
    finished_at: float | None = None
    realized_insitu: float | None = None
    scored: bool = False
    chosen_cost: float | None = None
    alt_cost: float | None = None

    @property
    def regret(self) -> float:
        """Seconds the other placement would have saved (0 when right)."""
        if not self.scored:
            return 0.0
        return max(0.0, self.chosen_cost - self.alt_cost)

    @property
    def flipped(self) -> bool:
        """True when hindsight strictly prefers the other placement."""
        if not self.scored:
            return False
        return self.alt_cost + _FLIP_EPSILON < self.chosen_cost

    def as_dict(self) -> dict[str, Any]:
        return {
            "step": self.step,
            "chosen": self.chosen,
            "est_insitu": self.est_insitu,
            "est_intransit": self.est_intransit,
            "insitu_true": self.insitu_true,
            "backlog_true": self.backlog_true,
            "service_true": self.service_true,
            "dispatched_at": self.dispatched_at,
            "block_seconds": self.block_seconds,
            "finished_at": self.finished_at,
            "realized_insitu": self.realized_insitu,
            "scored": self.scored,
            "chosen_cost": self.chosen_cost,
            "alt_cost": self.alt_cost,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PlacementOutcome":
        def opt(key: str) -> float | None:
            value = payload.get(key)
            return None if value is None else float(value)

        return cls(
            step=int(payload["step"]),
            chosen=str(payload["chosen"]),
            est_insitu=float(payload["est_insitu"]),
            est_intransit=float(payload["est_intransit"]),
            insitu_true=float(payload["insitu_true"]),
            backlog_true=float(payload["backlog_true"]),
            service_true=float(payload["service_true"]),
            dispatched_at=float(payload["dispatched_at"]),
            block_seconds=float(payload.get("block_seconds", 0.0)),
            finished_at=opt("finished_at"),
            realized_insitu=opt("realized_insitu"),
            scored=bool(payload.get("scored", False)),
            chosen_cost=opt("chosen_cost"),
            alt_cost=opt("alt_cost"),
        )


class PredictionLedger:
    """Estimates paired with realized values, keyed by quantity and step.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current (simulated) time;
        the workflow driver binds this to the run's simulator, like the
        tracer's clock.  Unset, timestamps are 0.0.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock
        self._records: list[PredictionRecord] = []
        self._pending: dict[tuple[str, int], list[PredictionRecord]] = {}
        self._placements: dict[int, PlacementOutcome] = {}
        #: Resolutions that arrived with no matching prediction pending.
        self.unmatched = 0
        self._seq = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach (or replace) the time source for subsequent records."""
        self.clock = clock

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    # -- predictions --------------------------------------------------------

    def predict(
        self, quantity: str, step: int, predicted: float, mechanism: str = ""
    ) -> PredictionRecord:
        """Record one estimate for ``(quantity, step)``."""
        if quantity not in QUANTITIES:
            raise ObservabilityError(
                f"unknown prediction quantity {quantity!r}; "
                f"registered: {sorted(QUANTITIES)}"
            )
        record = PredictionRecord(
            seq=self._seq,
            quantity=quantity,
            step=step,
            predicted=float(predicted),
            predicted_at=self._now(),
            mechanism=mechanism,
        )
        self._seq += 1
        self._records.append(record)
        self._pending.setdefault((quantity, step), []).append(record)
        return record

    def resolve(
        self, quantity: str, step: int, realized: float
    ) -> PredictionRecord | None:
        """Pair a realized value with the oldest pending prediction.

        Returns the resolved record, or ``None`` (and counts the event in
        :attr:`unmatched`) when nothing was pending for the key --
        off-sample steps legitimately realize values nobody predicted.
        """
        queue = self._pending.get((quantity, step))
        if not queue:
            self.unmatched += 1
            return None
        record = queue.pop(0)
        if not queue:
            del self._pending[(quantity, step)]
        record.realized = float(realized)
        record.realized_at = self._now()
        return record

    def has_pending(self, quantity: str, step: int) -> bool:
        """True when a prediction for ``(quantity, step)`` awaits its value."""
        return bool(self._pending.get((quantity, step)))

    # -- placement outcomes -------------------------------------------------

    def record_placement(
        self,
        step: int,
        chosen: str,
        est_insitu: float,
        est_intransit: float,
        insitu_true: float,
        backlog_true: float,
        service_true: float,
        dispatched_at: float,
    ) -> PlacementOutcome:
        """Record one placement decision's estimates and true components."""
        outcome = PlacementOutcome(
            step=step,
            chosen=chosen,
            est_insitu=float(est_insitu),
            est_intransit=float(est_intransit),
            insitu_true=float(insitu_true),
            backlog_true=float(backlog_true),
            service_true=float(service_true),
            dispatched_at=float(dispatched_at),
        )
        self._placements[step] = outcome
        return outcome

    def resolve_placement(
        self,
        step: int,
        *,
        block_seconds: float | None = None,
        finished_at: float | None = None,
        realized_insitu: float | None = None,
    ) -> None:
        """Attach realized components to a recorded placement.

        Silently ignores steps with no recorded placement (hybrid and
        post-process steps share the driver's completion paths but are
        not scored).
        """
        outcome = self._placements.get(step)
        if outcome is None:
            return
        if block_seconds is not None:
            outcome.block_seconds = float(block_seconds)
        if finished_at is not None:
            outcome.finished_at = float(finished_at)
        if realized_insitu is not None:
            outcome.realized_insitu = float(realized_insitu)

    def finalize(self, sim_end: float) -> None:
        """Score every placement against its counterfactual.

        ``sim_end`` is the simulated time the simulation pipeline
        finished (before the staging drain); in-transit work completing
        after it is the unhidden tail Eq. 6 charges to the run.
        """
        for outcome in self._placements.values():
            if outcome.chosen == "in_situ":
                if outcome.realized_insitu is None:
                    continue
                outcome.chosen_cost = outcome.realized_insitu
                # Had we shipped it: the sim pipeline would have ended
                # earlier by the serialized time we actually paid, and
                # only the job's overshoot past that end would count.
                window = max(
                    0.0,
                    sim_end - outcome.dispatched_at - outcome.realized_insitu,
                )
                outcome.alt_cost = max(
                    0.0, outcome.backlog_true + outcome.service_true - window
                )
                outcome.scored = True
            elif outcome.chosen == "in_transit":
                if outcome.finished_at is None:
                    continue
                tail = max(0.0, outcome.finished_at - sim_end)
                outcome.chosen_cost = outcome.block_seconds + tail
                outcome.alt_cost = outcome.insitu_true
                outcome.scored = True

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(
        self, quantity: str | None = None, step: int | None = None
    ) -> list[PredictionRecord]:
        """All records, optionally filtered by quantity and/or step."""
        out = self._records
        if quantity is not None:
            out = [r for r in out if r.quantity == quantity]
        if step is not None:
            out = [r for r in out if r.step == step]
        return list(out)

    def resolved_records(self, quantity: str | None = None) -> list[PredictionRecord]:
        """Records whose realized value has arrived, in prediction order."""
        return [r for r in self.records(quantity) if r.resolved]

    def pending_count(self, quantity: str | None = None) -> int:
        """Predictions still awaiting their realized value."""
        return sum(1 for r in self.records(quantity) if not r.resolved)

    def quantities_seen(self) -> set[str]:
        """Distinct quantities currently recorded."""
        return {r.quantity for r in self._records}

    @property
    def placements(self) -> list[PlacementOutcome]:
        """Recorded placement outcomes in step order."""
        return [self._placements[step] for step in sorted(self._placements)]

    # -- export -------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation of the full ledger."""
        return {
            "records": [r.as_dict() for r in self._records],
            "placements": [p.as_dict() for p in self.placements],
            "unmatched": self.unmatched,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PredictionLedger":
        """Rebuild a ledger from :meth:`as_dict` output."""
        ledger = cls()
        for item in payload.get("records", []):
            record = PredictionRecord.from_dict(item)
            ledger._records.append(record)
            ledger._seq = max(ledger._seq, record.seq + 1)
            if not record.resolved:
                ledger._pending.setdefault(
                    (record.quantity, record.step), []
                ).append(record)
        for item in payload.get("placements", []):
            outcome = PlacementOutcome.from_dict(item)
            ledger._placements[outcome.step] = outcome
        ledger.unmatched = int(payload.get("unmatched", 0))
        return ledger
