"""Hot-path budgets: per-span-path wall-clock ceilings for benchmarks.

``benchmarks/budgets.json`` declares, for the canonical profile
workload (the quickstart replay ``python -m repro profile`` runs), a
ceiling in seconds on each guarded span path's *cumulative* wall time.
The bench harness collects a profile, embeds it in ``BENCH_<rev>.json``
(schema ``repro.bench/2``) and asserts every ceiling -- so a hot-path
regression fails CI with the offending span named, instead of surfacing
months later as benchmark folklore.  ROADMAP item 4's event-kernel
rewrite is measured against exactly these ceilings.

Manifest format (:data:`BUDGETS_SCHEMA`)::

    {
      "schema": "repro.budgets/1",
      "workload": {"mode": "global", "steps": 20, "seed": 42},
      "budgets": {"workflow.run": 2.0, "workflow.run/sim.run": 1.5, ...}
    }

Ceilings are deliberately generous (an order of magnitude over a warm
local run): they guard against *gross* regressions on arbitrary CI
hardware, while ``repro bench-diff`` tracks the fine-grained drift
between committed snapshots.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ObservabilityError
from repro.observability.profiler import PROFILE_SPANS, Profiler, _as_dump

__all__ = [
    "BUDGETS_SCHEMA",
    "BudgetViolation",
    "check_budgets",
    "load_budgets",
    "render_budget_report",
]

#: Version tag of the budget manifest layout; bumped on breaking changes.
BUDGETS_SCHEMA = "repro.budgets/1"


class BudgetViolation:
    """One span path over its ceiling (or missing from the profile)."""

    __slots__ = ("path", "ceiling_seconds", "measured_seconds")

    def __init__(self, path: str, ceiling_seconds: float,
                 measured_seconds: float | None):
        self.path = path
        self.ceiling_seconds = ceiling_seconds
        #: ``None`` when the guarded span never ran (itself a failure:
        #: a silently-vanished span means the instrumentation rotted).
        self.measured_seconds = measured_seconds

    def describe(self) -> str:
        if self.measured_seconds is None:
            return (
                f"{self.path}: guarded span missing from the profile "
                f"(ceiling {self.ceiling_seconds:.3f}s)"
            )
        return (
            f"{self.path}: {self.measured_seconds:.4f}s exceeds ceiling "
            f"{self.ceiling_seconds:.3f}s"
        )


def load_budgets(source: str | Path | Mapping[str, Any]) -> dict[str, Any]:
    """Load and validate a budget manifest (dict, JSON text, or path).

    Every budgeted path's span names must be registered in
    :data:`PROFILE_SPANS` and every ceiling must be a positive number --
    a typo'd path would otherwise guard nothing, forever, silently.
    """
    if isinstance(source, Mapping):
        payload: Any = dict(source)
    else:
        if isinstance(source, Path) or (
            isinstance(source, str)
            and "\n" not in source
            and source.endswith(".json")
        ):
            text = Path(source).read_text()
        else:
            text = str(source)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"not a budget manifest: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != BUDGETS_SCHEMA:
        raise ObservabilityError(
            f"not a {BUDGETS_SCHEMA} manifest: schema="
            f"{payload.get('schema')!r}"
            if isinstance(payload, dict)
            else "not a budget manifest: top level is not an object"
        )
    budgets = payload.get("budgets")
    if not isinstance(budgets, dict) or not budgets:
        raise ObservabilityError("budget manifest has no 'budgets' mapping")
    for path, ceiling in budgets.items():
        unknown = [name for name in path.split("/")
                   if name not in PROFILE_SPANS]
        if unknown:
            raise ObservabilityError(
                f"budget path {path!r} uses unregistered span names "
                f"{unknown} (register them in PROFILE_SPANS first)"
            )
        if not isinstance(ceiling, (int, float)) or ceiling <= 0:
            raise ObservabilityError(
                f"budget ceiling for {path!r} must be a positive number, "
                f"got {ceiling!r}"
            )
    return payload


def check_budgets(
    profile: Profiler | Mapping[str, Mapping[str, Any]],
    budgets: str | Path | Mapping[str, Any],
) -> list[BudgetViolation]:
    """Every ceiling violated by ``profile`` (empty list = all within).

    A guarded span path that never ran is also a violation: the budget
    exists because the path is hot, so its disappearance means the
    instrumentation (or the workload) silently changed.
    """
    manifest = load_budgets(budgets)
    dump = _as_dump(profile)
    violations = []
    for path, ceiling in sorted(manifest["budgets"].items()):
        snap = dump.get(path)
        if snap is None:
            violations.append(BudgetViolation(path, float(ceiling), None))
        elif snap["cum_seconds"] > float(ceiling):
            violations.append(
                BudgetViolation(path, float(ceiling), snap["cum_seconds"])
            )
    return violations


def render_budget_report(
    profile: Profiler | Mapping[str, Mapping[str, Any]],
    budgets: str | Path | Mapping[str, Any],
) -> str:
    """One line per guarded path: measured vs ceiling, violations marked."""
    manifest = load_budgets(budgets)
    dump = _as_dump(profile)
    entries = sorted(manifest["budgets"].items())
    width = max(len(path) for path, _ in entries)
    lines = []
    violated = 0
    for path, ceiling in entries:
        snap = dump.get(path)
        if snap is None:
            violated += 1
            lines.append(f"{path.ljust(width)}  MISSING   "
                         f"(ceiling {float(ceiling):.3f}s)  FAIL")
            continue
        measured = snap["cum_seconds"]
        ok = measured <= float(ceiling)
        if not ok:
            violated += 1
        lines.append(
            f"{path.ljust(width)}  {measured:8.4f}s  "
            f"(ceiling {float(ceiling):.3f}s)  {'ok' if ok else 'FAIL'}"
        )
    lines.append("")
    lines.append(
        f"{len(entries) - violated}/{len(entries)} span budgets satisfied"
        + ("" if violated == 0 else f" ({violated} VIOLATED)")
    )
    return "\n".join(lines)
