"""The cross-layer trace event schema.

A :class:`TraceEvent` is one typed, timestamped record of something the
runtime did: a workflow step starting, the Monitor assembling a snapshot,
the Adaptation Engine committing a decision (with the inputs it decided
on), the staging area ingesting or draining a job, the simulation
stalling on staging memory.  Timestamps are *simulated* seconds -- the
same clock every other quantity in the reproduction uses -- so traces
line up exactly with the metrics the paper reports.

:data:`EVENT_KINDS` is the closed registry of event kinds the built-in
instrumentation emits; ``docs/observability.md`` documents each one and
the docs-consistency test keeps the two in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "ADAPT_ACTION",
    "ADAPT_DECISION",
    "EVENT_KINDS",
    "FAULT_CLEARED",
    "FAULT_INJECTED",
    "MONITOR_SAMPLE",
    "PLACEMENT_FALLBACK",
    "RUN_END",
    "RUN_START",
    "SIM_STALL",
    "STAGING_INGEST",
    "STAGING_JOB_ABORT",
    "STAGING_JOB_END",
    "STAGING_JOB_START",
    "STAGING_RESIZE",
    "STAGING_RETRY",
    "STAGING_SUBMIT",
    "STEP_END",
    "STEP_START",
    "SWEEP_POINT",
    "TENANT_ADMITTED",
    "TENANT_COMPLETED",
    "TENANT_GRANT",
    "TENANT_QUEUED",
    "TENANT_REJECTED",
    "TENANT_STARVED",
    "TENANT_SUBMITTED",
    "TRIGGER_FIRED",
    "TRIGGER_RECALIBRATED",
    "TRIGGER_SUPPRESSED",
    "TraceEvent",
]

# -- event kinds ---------------------------------------------------------------

RUN_START = "run.start"
RUN_END = "run.end"
STEP_START = "step.start"
STEP_END = "step.end"
SIM_STALL = "sim.stall"
MONITOR_SAMPLE = "monitor.sample"
ADAPT_DECISION = "adapt.decision"
ADAPT_ACTION = "adapt.action"
STAGING_SUBMIT = "staging.submit"
STAGING_INGEST = "staging.ingest"
STAGING_JOB_START = "staging.job_start"
STAGING_JOB_END = "staging.job_end"
STAGING_RESIZE = "staging.resize"
FAULT_INJECTED = "fault.injected"
FAULT_CLEARED = "fault.cleared"
STAGING_RETRY = "staging.retry"
STAGING_JOB_ABORT = "staging.job_abort"
PLACEMENT_FALLBACK = "placement.fallback"
SWEEP_POINT = "sweep.point"
TRIGGER_FIRED = "trigger.fired"
TRIGGER_SUPPRESSED = "trigger.suppressed"
TRIGGER_RECALIBRATED = "trigger.recalibrated"
TENANT_SUBMITTED = "tenant.submitted"
TENANT_QUEUED = "tenant.queued"
TENANT_ADMITTED = "tenant.admitted"
TENANT_REJECTED = "tenant.rejected"
TENANT_GRANT = "tenant.grant"
TENANT_STARVED = "tenant.starved"
TENANT_COMPLETED = "tenant.completed"

#: Every kind the built-in instrumentation emits, with a one-line meaning.
EVENT_KINDS: dict[str, str] = {
    RUN_START: "a workflow run begins (mode, core counts, trace length)",
    RUN_END: "a workflow run ends (end-to-end time, data moved)",
    STEP_START: "a simulation step begins computing",
    STEP_END: "a step's analysis was dispatched (placement, factor, costs)",
    SIM_STALL: "the simulation blocked (staging memory full or PFS write)",
    MONITOR_SAMPLE: "the Monitor assembled an OperationalState snapshot",
    ADAPT_DECISION: "the Adaptation Engine committed a decision + its inputs",
    ADAPT_ACTION: "one layer's action within a decision (with its reasoning)",
    STAGING_SUBMIT: "a step's data was submitted for in-transit analysis",
    STAGING_INGEST: "an asynchronous staging ingest transfer completed",
    STAGING_JOB_START: "a staging job started service on the active cores",
    STAGING_JOB_END: "a staging job finished and released its memory",
    STAGING_RESIZE: "the resource layer resized the active staging cores",
    FAULT_INJECTED: "the fault injector applied a planned fault",
    FAULT_CLEARED: "a windowed fault (degrade/straggler) ended, or cores "
    "were restored",
    STAGING_RETRY: "a staging ingest attempt failed and is being retried "
    "with backoff",
    STAGING_JOB_ABORT: "a running staging job was aborted by core loss and "
    "requeued",
    PLACEMENT_FALLBACK: "the driver degraded a staging placement to in-situ "
    "(staging unreachable)",
    SWEEP_POINT: "the sweep runner finished one grid point (experiment, "
    "index, worker pid, wall seconds)",
    TRIGGER_FIRED: "a trigger policy requested a full adaptation (policy, "
    "reason, indicator value, sampling budget spent)",
    TRIGGER_SUPPRESSED: "a trigger policy held the previous adaptation "
    "(policy, reason, indicator value, sampling budget spent)",
    TRIGGER_RECALIBRATED: "the self-calibration loop adjusted trigger "
    "thresholds or the estimator bias from measured ledger feedback",
    TENANT_SUBMITTED: "a tenant workflow arrived at the multi-tenant "
    "service (name, requested cores)",
    TENANT_QUEUED: "an arriving tenant entered the bounded admission "
    "queue (queue depth)",
    TENANT_ADMITTED: "a tenant was admitted onto the shared machine "
    "(staging grant, queue wait)",
    TENANT_REJECTED: "an arriving tenant was turned away (admission "
    "queue full)",
    TENANT_GRANT: "a tenant's staging grant was renegotiated against "
    "the shared pool (borrowed or returned cores)",
    TENANT_STARVED: "a queued tenant's wait crossed the starvation "
    "threshold without being admitted",
    TENANT_COMPLETED: "an admitted tenant finished (time to solution, "
    "queue wait, grant)",
}


@dataclass(frozen=True)
class TraceEvent:
    """One typed, timestamped record in a trace.

    ``seq`` is the emission sequence number -- it totally orders events,
    including simultaneous ones (the event kernel breaks time ties by
    insertion order, and ``seq`` preserves exactly that order).
    """

    seq: int
    ts: float
    kind: str
    step: int | None = None
    fields: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation (one JSONL line's payload)."""
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "step": self.step,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceEvent":
        """Rebuild an event from :meth:`as_dict` output."""
        return cls(
            seq=int(payload["seq"]),
            ts=float(payload["ts"]),
            kind=str(payload["kind"]),
            step=payload.get("step"),
            fields=dict(payload.get("fields", {})),
        )
