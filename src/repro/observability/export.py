"""Exporters: Prometheus text exposition and versioned JSON snapshots.

Two ways to get the observability state out of a run:

- :func:`prometheus_text` -- the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / sample lines) over a
  :class:`~repro.observability.metrics.MetricsRegistry`, the span
  aggregates of an injected
  :class:`~repro.observability.profiler.Profiler` (call counts plus
  cumulative and self seconds, one ``span`` label per path) and, when a
  ledger is given, the calibration gauges and regret counters derived
  from it.  Metric names are prefixed ``repro_`` with dots mapped to
  underscores (``workflow.steps`` -> ``repro_workflow_steps_total``).
- :func:`export_snapshot` / :func:`load_snapshot` /
  :func:`diff_snapshots` -- a versioned JSON snapshot
  (:data:`SNAPSHOT_SCHEMA`) carrying the metrics, the profiler span
  aggregates, the per-quantity calibration summary, the regret summary
  and the full ledger, plus a differ that reports estimate-error drift,
  regret delta and placement decision flips between two exported runs
  (``repro audit --diff``).  Version-1 snapshots (no ``profile`` key)
  load and diff without error.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ObservabilityError
from repro.observability.calibration import calibrate, placement_regret
from repro.observability.ledger import PredictionLedger
from repro.observability.metrics import (
    METRIC_NAMES,
    Counter,
    EmaTimer,
    Gauge,
    MetricsRegistry,
)
from repro.observability.profiler import Profiler

__all__ = [
    "BENCH_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "diff_bench",
    "diff_snapshots",
    "export_snapshot",
    "load_bench",
    "load_snapshot",
    "prometheus_text",
    "render_bench_diff",
    "render_diff",
]

#: Version tag of the JSON snapshot layout; bumped on breaking changes.
#: Version 2 added the ``profile`` section (profiler span aggregates);
#: version-1 snapshots still load.
SNAPSHOT_SCHEMA = "repro.observability.snapshot/2"

#: Older snapshot layouts :func:`load_snapshot` still accepts.
_SNAPSHOT_SCHEMAS = (SNAPSHOT_SCHEMA, "repro.observability.snapshot/1")

#: Version tag of the benchmark wall-time snapshots ``benchmarks/conftest.py``
#: writes (``benchmarks/BENCH_<rev>.json``).  Version 2 added the
#: ``profile`` section (span aggregates + budget audit of the canonical
#: profile workload); version-1 snapshots still load and diff.
BENCH_SCHEMA = "repro.bench/2"

#: Older bench layouts :func:`load_bench` still accepts.
_BENCH_SCHEMAS = (BENCH_SCHEMA, "repro.bench/1")


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_value(value: float) -> str:
    # Prometheus accepts float text; integers render without the dot.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(
    metrics: MetricsRegistry | None = None,
    ledger: PredictionLedger | None = None,
    profiler: Profiler | None = None,
) -> str:
    """Render the current state in Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; EMA timers export
    their smoothed value as a gauge plus ``_count``/``_sum`` counters
    (the summary convention).  Ledger-derived series carry a
    ``quantity`` label per estimator; profiler span aggregates carry a
    ``span`` label per path (call counts plus cumulative and self
    seconds).
    """
    lines: list[str] = []

    def sample(name: str, kind: str, help_text: str, value: float,
               labels: str = "") -> None:
        if not any(line.startswith(f"# TYPE {name} ") for line in lines):
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{labels} {_prom_value(value)}")

    if metrics is not None:
        for name, instrument in sorted(metrics.instruments().items()):
            help_text = METRIC_NAMES.get(name, "unregistered metric")
            if isinstance(instrument, Counter):
                sample(_prom_name(name) + "_total", "counter", help_text,
                       instrument.value)
            elif isinstance(instrument, Gauge):
                sample(_prom_name(name), "gauge", help_text, instrument.value)
            elif isinstance(instrument, EmaTimer):
                base = _prom_name(name)
                sample(base, "gauge", help_text + " (EMA)", instrument.value)
                sample(base + "_count", "counter", help_text + " (observations)",
                       instrument.count)
                sample(base + "_sum", "counter", help_text + " (total seconds)",
                       instrument.total)

    if profiler is not None:
        for path, snap in sorted(profiler.dump().items()):
            labels = f'{{span="{path}"}}'
            sample("repro_span_calls_total", "counter",
                   "times the span was entered", snap["count"], labels)
            sample("repro_span_seconds_total", "counter",
                   "cumulative wall-clock seconds inside the span",
                   snap["cum_seconds"], labels)
            sample("repro_span_self_seconds_total", "counter",
                   "wall-clock seconds inside the span minus child spans",
                   snap["self_seconds"], labels)

    if ledger is not None:
        stats = calibrate(ledger)
        for quantity in sorted(stats):
            s = stats[quantity]
            labels = f'{{quantity="{quantity}"}}'
            sample("repro_ledger_predictions_total", "counter",
                   "estimates recorded in the prediction ledger",
                   s.count + s.pending + s.skipped, labels)
            sample("repro_ledger_resolved_total", "counter",
                   "estimates paired with a realized value",
                   s.count + s.skipped, labels)
            sample("repro_calibration_bias_pct", "gauge",
                   "mean signed relative prediction error (percent)",
                   s.bias_pct, labels)
            sample("repro_calibration_mape_pct", "gauge",
                   "mean absolute percentage prediction error",
                   s.mape_pct, labels)
        regret = placement_regret(ledger)
        sample("repro_placement_decisions_scored_total", "counter",
               "placement decisions scored against their counterfactual",
               regret.scored)
        sample("repro_placement_decision_flips_total", "counter",
               "scored placements hindsight flips", regret.flips)
        sample("repro_placement_regret_seconds_total", "counter",
               "summed counterfactual regret of wrong placements",
               regret.total_regret_seconds)
        sample("repro_ledger_unmatched_total", "counter",
               "realized values with no matching prediction",
               ledger.unmatched)

    return "\n".join(lines) + ("\n" if lines else "")


# -- JSON snapshots ------------------------------------------------------------


def export_snapshot(
    metrics: MetricsRegistry | None = None,
    ledger: PredictionLedger | None = None,
    label: str = "",
    path: str | Path | None = None,
    profiler: Profiler | None = None,
) -> dict[str, Any]:
    """Build (and optionally write) a versioned observability snapshot.

    With a ``profiler`` the snapshot's ``profile`` key carries the span
    aggregates (:meth:`~repro.observability.profiler.Profiler.dump`);
    without one it is an empty mapping, matching what version-1
    snapshots implicitly had.
    """
    payload: dict[str, Any] = {"schema": SNAPSHOT_SCHEMA, "label": label}
    payload["profile"] = profiler.dump() if profiler is not None else {}

    metrics_payload: dict[str, Any] = {}
    if metrics is not None:
        for name, instrument in metrics.instruments().items():
            if isinstance(instrument, EmaTimer):
                metrics_payload[name] = {
                    "type": "ema_timer",
                    "value": instrument.value,
                    "count": instrument.count,
                    "total": instrument.total,
                }
            elif isinstance(instrument, Gauge):
                metrics_payload[name] = {"type": "gauge",
                                         "value": instrument.value}
            else:
                metrics_payload[name] = {"type": "counter",
                                         "value": instrument.value}
    payload["metrics"] = dict(sorted(metrics_payload.items()))

    calibration_payload: dict[str, Any] = {}
    regret_payload: dict[str, Any] = {}
    placements_payload: dict[str, str] = {}
    ledger_payload: dict[str, Any] = {}
    if ledger is not None:
        for quantity, s in calibrate(ledger).items():
            calibration_payload[quantity] = {
                "count": s.count,
                "pending": s.pending,
                "skipped": s.skipped,
                "bias_pct": s.bias_pct,
                "mape_pct": s.mape_pct,
                "max_ape_pct": s.max_ape_pct,
                "final_ema_pct": s.final_ema_pct,
            }
        regret = placement_regret(ledger)
        regret_payload = {
            "decisions": regret.decisions,
            "scored": regret.scored,
            "flips": regret.flips,
            "total_regret_seconds": regret.total_regret_seconds,
            "worst_step": regret.worst_step,
            "worst_regret_seconds": regret.worst_regret_seconds,
        }
        placements_payload = {
            str(p.step): p.chosen for p in ledger.placements
        }
        ledger_payload = ledger.as_dict()
    payload["calibration"] = calibration_payload
    payload["regret"] = regret_payload
    payload["placements"] = placements_payload
    payload["ledger"] = ledger_payload

    if path is not None:
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def load_snapshot(source: str | Path | Mapping[str, Any]) -> dict[str, Any]:
    """Load and validate a snapshot (dict, JSON text, or file path)."""
    if isinstance(source, Mapping):
        payload: Any = dict(source)
    else:
        if isinstance(source, Path) or (
            isinstance(source, str)
            and "\n" not in source
            and source.endswith(".json")
        ):
            text = Path(source).read_text()
        else:
            text = str(source)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"not a snapshot: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("schema") not in _SNAPSHOT_SCHEMAS
    ):
        raise ObservabilityError(
            f"not a {SNAPSHOT_SCHEMA} snapshot: "
            f"schema={payload.get('schema')!r}"
            if isinstance(payload, dict)
            else "not a snapshot: top level is not an object"
        )
    return payload


def diff_snapshots(
    a: str | Path | Mapping[str, Any], b: str | Path | Mapping[str, Any]
) -> dict[str, Any]:
    """Drift between two snapshots: estimate error, regret, decisions.

    Positive ``*_delta`` values mean ``b`` is worse (more error, more
    regret, more flips) than ``a``.
    """
    snap_a, snap_b = load_snapshot(a), load_snapshot(b)
    cal_a, cal_b = snap_a.get("calibration", {}), snap_b.get("calibration", {})
    calibration: dict[str, Any] = {}
    for quantity in sorted(set(cal_a) | set(cal_b)):
        qa, qb = cal_a.get(quantity), cal_b.get(quantity)
        calibration[quantity] = {
            "mape_a": None if qa is None else qa["mape_pct"],
            "mape_b": None if qb is None else qb["mape_pct"],
            "mape_delta": (
                None if qa is None or qb is None
                else qb["mape_pct"] - qa["mape_pct"]
            ),
            "bias_a": None if qa is None else qa["bias_pct"],
            "bias_b": None if qb is None else qb["bias_pct"],
            "bias_delta": (
                None if qa is None or qb is None
                else qb["bias_pct"] - qa["bias_pct"]
            ),
        }
    reg_a, reg_b = snap_a.get("regret", {}), snap_b.get("regret", {})
    places_a = snap_a.get("placements", {})
    places_b = snap_b.get("placements", {})
    changes = [
        {"step": int(step), "a": places_a[step], "b": places_b[step]}
        for step in sorted(set(places_a) & set(places_b), key=int)
        if places_a[step] != places_b[step]
    ]
    return {
        "labels": (snap_a.get("label", ""), snap_b.get("label", "")),
        "calibration": calibration,
        "regret_a": reg_a.get("total_regret_seconds", 0.0),
        "regret_b": reg_b.get("total_regret_seconds", 0.0),
        "regret_delta": (
            reg_b.get("total_regret_seconds", 0.0)
            - reg_a.get("total_regret_seconds", 0.0)
        ),
        "flips_a": reg_a.get("flips", 0),
        "flips_b": reg_b.get("flips", 0),
        "flips_delta": reg_b.get("flips", 0) - reg_a.get("flips", 0),
        "placement_changes": changes,
    }


# -- benchmark snapshots -------------------------------------------------------


def load_bench(source: str | Path | Mapping[str, Any]) -> dict[str, Any]:
    """Load and validate a benchmark snapshot (dict, JSON text, or path)."""
    if isinstance(source, Mapping):
        payload: Any = dict(source)
    else:
        if isinstance(source, Path) or (
            isinstance(source, str)
            and "\n" not in source
            and source.endswith(".json")
        ):
            text = Path(source).read_text()
        else:
            text = str(source)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"not a bench snapshot: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("schema") not in _BENCH_SCHEMAS
    ):
        raise ObservabilityError(
            f"not a {BENCH_SCHEMA} snapshot: schema="
            f"{payload.get('schema')!r}"
            if isinstance(payload, dict)
            else "not a bench snapshot: top level is not an object"
        )
    figures = payload.get("figures")
    if not isinstance(figures, dict):
        raise ObservabilityError("bench snapshot has no 'figures' mapping")
    return payload


def diff_bench(
    a: str | Path | Mapping[str, Any], b: str | Path | Mapping[str, Any]
) -> dict[str, Any]:
    """Per-benchmark wall-time drift between two bench snapshots.

    Positive ``delta`` values mean ``b`` is slower than ``a``; ``speedup``
    is ``a / b`` (>1 means ``b`` improved).  Totals cover only benchmarks
    present in both snapshots.  When both snapshots carry a ``profile``
    section (schema ``repro.bench/2``), the span aggregates drift the
    same way under the ``spans`` key; a ``repro.bench/1`` snapshot on
    either side simply yields an empty ``spans`` mapping.
    """
    snap_a, snap_b = load_bench(a), load_bench(b)
    figs_a, figs_b = snap_a["figures"], snap_b["figures"]
    figures: dict[str, Any] = {}
    for name in sorted(set(figs_a) | set(figs_b)):
        sec_a, sec_b = figs_a.get(name), figs_b.get(name)
        figures[name] = {
            "seconds_a": sec_a,
            "seconds_b": sec_b,
            "delta": None if sec_a is None or sec_b is None else sec_b - sec_a,
            "speedup": (
                None if sec_a is None or sec_b is None or sec_b <= 0
                else sec_a / sec_b
            ),
        }
    shared = [n for n in figures if n in figs_a and n in figs_b]
    total_a = float(sum(figs_a[n] for n in shared))
    total_b = float(sum(figs_b[n] for n in shared))

    spans_a = (snap_a.get("profile") or {}).get("spans", {})
    spans_b = (snap_b.get("profile") or {}).get("spans", {})
    spans: dict[str, Any] = {}
    if spans_a and spans_b:
        for path in sorted(set(spans_a) | set(spans_b)):
            pa, pb = spans_a.get(path), spans_b.get(path)
            cum_a = None if pa is None else float(pa["cum_seconds"])
            cum_b = None if pb is None else float(pb["cum_seconds"])
            spans[path] = {
                "cum_a": cum_a,
                "cum_b": cum_b,
                "count_a": None if pa is None else int(pa["count"]),
                "count_b": None if pb is None else int(pb["count"]),
                "delta": (
                    None if cum_a is None or cum_b is None else cum_b - cum_a
                ),
                "speedup": (
                    None if cum_a is None or cum_b is None or cum_b <= 0
                    else cum_a / cum_b
                ),
            }
    return {
        "labels": (snap_a.get("git_rev", "a"), snap_b.get("git_rev", "b")),
        "figures": figures,
        "spans": spans,
        "total_a": total_a,
        "total_b": total_b,
        "total_delta": total_b - total_a,
        "total_speedup": total_a / total_b if total_b > 0 else None,
    }


def render_bench_diff(diff: Mapping[str, Any]) -> str:
    """Human-readable rendering of :func:`diff_bench` (slowest first)."""
    label_a, label_b = diff.get("labels", ("a", "b"))
    lines = [f"bench drift: {label_a or 'a'} -> {label_b or 'b'}", ""]

    def fmt(value: Any, pattern: str) -> str:
        return "-" if value is None else pattern.format(value)

    headers = ["benchmark", "a (s)", "b (s)", "delta (s)", "speedup"]
    entries = sorted(
        diff["figures"].items(),
        key=lambda item: -(item[1]["seconds_a"] or 0.0),
    )
    rows = [
        [
            name,
            fmt(f["seconds_a"], "{:.3f}"),
            fmt(f["seconds_b"], "{:.3f}"),
            fmt(f["delta"], "{:+.3f}"),
            fmt(f["speedup"], "{:.2f}x"),
        ]
        for name, f in entries
    ]
    widths = [
        max(len(h), max((len(r[i]) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append("")
    lines.append(
        f"total (shared benchmarks): {diff['total_a']:.3f}s -> "
        f"{diff['total_b']:.3f}s ({diff['total_delta']:+.3f}s, "
        + (
            f"{diff['total_speedup']:.2f}x"
            if diff["total_speedup"] is not None
            else "-"
        )
        + ")"
    )
    spans = diff.get("spans", {})
    if spans:
        lines.append("")
        lines.append("profile span drift (cumulative seconds):")
        span_headers = ["span path", "a (s)", "b (s)", "delta (s)", "speedup"]
        span_entries = sorted(
            spans.items(), key=lambda item: -(item[1]["cum_a"] or 0.0)
        )
        span_rows = [
            [
                path,
                fmt(s["cum_a"], "{:.4f}"),
                fmt(s["cum_b"], "{:.4f}"),
                fmt(s["delta"], "{:+.4f}"),
                fmt(s["speedup"], "{:.2f}x"),
            ]
            for path, s in span_entries
        ]
        span_widths = [
            max(len(h), max((len(r[i]) for r in span_rows), default=0))
            for i, h in enumerate(span_headers)
        ]
        lines.append("  ".join(h.ljust(w)
                               for h, w in zip(span_headers, span_widths)))
        lines.append("  ".join("-" * w for w in span_widths))
        for row in span_rows:
            lines.append("  ".join(c.ljust(w)
                                   for c, w in zip(row, span_widths)))
    return "\n".join(lines)


def render_diff(diff: Mapping[str, Any]) -> str:
    """Human-readable rendering of :func:`diff_snapshots` output."""
    label_a, label_b = diff.get("labels", ("a", "b"))
    lines = [f"drift: {label_a or 'a'} -> {label_b or 'b'}", ""]
    calibration = diff.get("calibration", {})
    if calibration:
        headers = ["estimator", "MAPE% a", "MAPE% b", "dMAPE",
                   "bias% a", "bias% b", "dbias"]
        rows = []
        for quantity in sorted(calibration):
            c = calibration[quantity]

            def fmt(value: Any, signed: bool = False) -> str:
                if value is None:
                    return "-"
                return f"{value:+.1f}" if signed else f"{value:.1f}"

            rows.append([
                quantity,
                fmt(c["mape_a"]), fmt(c["mape_b"]),
                fmt(c["mape_delta"], signed=True),
                fmt(c["bias_a"], signed=True), fmt(c["bias_b"], signed=True),
                fmt(c["bias_delta"], signed=True),
            ])
        widths = [max(len(h), max(len(r[i]) for r in rows))
                  for i, h in enumerate(headers)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    else:
        lines.append("(no calibration data in either snapshot)")
    lines.append("")
    lines.append(
        f"regret: {diff['regret_a']:.2f}s -> {diff['regret_b']:.2f}s "
        f"({diff['regret_delta']:+.2f}s)"
    )
    lines.append(
        f"flips : {diff['flips_a']} -> {diff['flips_b']} "
        f"({diff['flips_delta']:+d})"
    )
    changes = diff.get("placement_changes", [])
    if changes:
        lines.append(f"placement decisions changed on {len(changes)} steps:")
        for change in changes[:20]:
            lines.append(
                f"  step {change['step']}: {change['a']} -> {change['b']}"
            )
        if len(changes) > 20:
            lines.append(f"  ... and {len(changes) - 20} more")
    else:
        lines.append("placement decisions identical on shared steps")
    return "\n".join(lines)
