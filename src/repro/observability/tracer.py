"""The Tracer: a bounded in-memory event sink with JSONL export.

Components never construct a tracer themselves -- one is *injected*
(``tracer=...``) into the Monitor, the Adaptation Engine, the staging
area and the workflow driver.  When no tracer is injected (the default)
instrumentation is a single ``is not None`` test; when a tracer is
injected but disabled, the call sites also check :attr:`Tracer.enabled`
so field construction is skipped entirely (and :meth:`Tracer.emit`
returns on its first line as a backstop).  Either way tracing costs
nothing measurable on the hot path.

Events land in a ring buffer (``capacity`` newest events are kept; the
``dropped`` counter records evictions) and can be exported as JSON Lines
-- one event object per line -- the format ``repro trace`` writes and
:func:`read_jsonl` parses back.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.errors import ObservabilityError
from repro.observability.events import TraceEvent

__all__ = ["Tracer", "read_jsonl"]


def _json_default(value: Any) -> Any:
    """Coerce non-JSON field values: numpy scalars unwrap, the rest repr."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class Tracer:
    """Collects :class:`TraceEvent` records in emission order.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time.  The workflow
        driver binds this to the event simulator's clock so timestamps
        are simulated seconds; when unset, timestamps are 0.0 and the
        ``seq`` field alone orders events.
    capacity:
        Ring-buffer size; the oldest events are evicted (and counted in
        :attr:`dropped`) once it fills.
    enabled:
        When False, :meth:`emit` is a no-op returning ``None``.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        capacity: int = 65536,
        enabled: bool = True,
    ):
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity}")
        self.clock = clock
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        self.dropped = 0
        self._events: deque[TraceEvent] = deque(maxlen=self.capacity)
        self._seq = 0

    # -- recording ---------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach (or replace) the time source for subsequent events."""
        self.clock = clock

    def emit(self, kind: str, step: int | None = None, **fields: Any) -> TraceEvent | None:
        """Record one event; returns it, or ``None`` when disabled."""
        if not self.enabled:
            return None
        event = TraceEvent(
            seq=self._seq,
            ts=self.clock() if self.clock is not None else 0.0,
            kind=kind,
            step=step,
            fields=fields,
        )
        self._seq += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        return event

    def clear(self) -> None:
        """Discard all recorded events (sequence numbers keep counting)."""
        self._events.clear()
        self.dropped = 0

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(
        self, kind: str | None = None, step: int | None = None
    ) -> list[TraceEvent]:
        """All retained events, optionally filtered by kind and/or step."""
        out: Iterable[TraceEvent] = self._events
        if kind is not None:
            out = (e for e in out if e.kind == kind)
        if step is not None:
            out = (e for e in out if e.step == step)
        return list(out)

    def kinds_seen(self) -> set[str]:
        """Distinct event kinds currently retained."""
        return {e.kind for e in self._events}

    # -- export ------------------------------------------------------------

    def to_jsonl(self, path: str | Path | None = None) -> str:
        """Serialize retained events as JSON Lines (optionally to ``path``)."""
        text = "\n".join(
            json.dumps(e.as_dict(), default=_json_default) for e in self._events
        )
        if text:
            text += "\n"
        if path is not None:
            Path(path).write_text(text)
        return text


def read_jsonl(source: str | Path) -> list[TraceEvent]:
    """Parse :meth:`Tracer.to_jsonl` output (text or a file path)."""
    if isinstance(source, Path) or (
        isinstance(source, str)
        and "\n" not in source
        and source.endswith((".jsonl", ".json"))
    ):
        text = Path(source).read_text()
    else:
        text = str(source)
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            events.append(TraceEvent.from_dict(payload))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"not a trace: line {lineno} is invalid ({exc})"
            ) from exc
    return events
