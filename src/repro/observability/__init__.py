"""Structured observability: cross-layer event tracing and metrics.

The paper's Monitor "captures runtime status information at the
different layers"; this package makes that capture *inspectable*.  It
provides the measurement surface every layer of the reproduction
publishes into:

- :class:`Tracer` -- typed, timestamped :class:`TraceEvent` records
  (step boundaries, monitor samples, adaptation decisions with their
  inputs, staging ingest/drain, stalls) in a bounded ring buffer, with
  JSONL export (:meth:`Tracer.to_jsonl` / :func:`read_jsonl`);
- :class:`MetricsRegistry` -- named :class:`Counter` / :class:`Gauge` /
  :class:`EmaTimer` instruments;
- :func:`decision_timeline` / :func:`occupancy_gantt` -- human-readable
  renderings of a trace (the ``repro trace`` CLI's output).

Instrumentation is injected: the Monitor, Adaptation Engine, staging
area and workflow driver all accept optional ``tracer=`` / ``metrics=``
arguments and publish only when given one, so a run without observers
pays a single ``is not None`` test per would-be event.

:data:`EVENT_KINDS` and :data:`METRIC_NAMES` are the closed registries
of everything the built-in instrumentation can emit; see
``docs/observability.md`` for the schema and a worked example.
"""

from repro.observability.events import EVENT_KINDS, TraceEvent
from repro.observability.metrics import (
    METRIC_NAMES,
    Counter,
    EmaTimer,
    Gauge,
    MetricsRegistry,
)
from repro.observability.timeline import decision_timeline, occupancy_gantt
from repro.observability.tracer import Tracer, read_jsonl

__all__ = [
    "Counter",
    "EmaTimer",
    "EVENT_KINDS",
    "Gauge",
    "METRIC_NAMES",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
    "decision_timeline",
    "occupancy_gantt",
    "read_jsonl",
]
