"""Structured observability: tracing, metrics, prediction auditing, export.

The paper's Monitor "captures runtime status information at the
different layers"; this package makes that capture *inspectable*.  It
provides the measurement surface every layer of the reproduction
publishes into:

- :class:`Tracer` -- typed, timestamped :class:`TraceEvent` records
  (step boundaries, monitor samples, adaptation decisions with their
  inputs, staging ingest/drain, stalls) in a bounded ring buffer, with
  JSONL export (:meth:`Tracer.to_jsonl` / :func:`read_jsonl`);
- :class:`MetricsRegistry` -- named :class:`Counter` / :class:`Gauge` /
  :class:`EmaTimer` instruments;
- :class:`Profiler` -- nested wall-clock spans (``with
  profiler.span("engine.adapt")``) aggregating call counts, cumulative
  and self seconds per span path (:data:`PROFILE_SPANS` is the closed
  registry of span names), with :func:`render_profile` /
  :func:`render_hot_spans` renderings, :func:`merge_worker_profiles`
  cross-process aggregation and the :func:`check_budgets` /
  :func:`load_budgets` hot-path budget layer over
  ``benchmarks/budgets.json`` (:data:`BUDGETS_SCHEMA`);
- :class:`PredictionLedger` -- every estimate the Monitor and the
  Adaptation Engine decide on, paired with the realized value the event
  simulator later delivers, plus per-step placement outcomes for
  counterfactual regret (:data:`QUANTITIES` is the closed registry);
- :func:`calibrate` / :func:`placement_regret` /
  :func:`calibration_report` -- per-estimator bias, MAPE and
  EMA-convergence curves, and the regret audit of Eq. 8's decisions
  (the ``repro audit`` CLI's output);
- :func:`prometheus_text` / :func:`export_snapshot` /
  :func:`load_snapshot` / :func:`diff_snapshots` / :func:`render_diff`
  -- the exporters: Prometheus text exposition and versioned JSON
  snapshots (:data:`SNAPSHOT_SCHEMA`), diffable across runs;
- :func:`decision_timeline` / :func:`occupancy_gantt` -- human-readable
  renderings of a trace (the ``repro trace`` CLI's output).

Instrumentation is injected: the Monitor, Adaptation Engine, staging
area and workflow driver all accept optional ``tracer=`` / ``metrics=``
/ ``ledger=`` arguments and publish only when given one, so a run
without observers pays a single ``is not None`` test per would-be event.

:data:`EVENT_KINDS`, :data:`METRIC_NAMES` and :data:`QUANTITIES` are the
closed registries of everything the built-in instrumentation can emit;
see ``docs/observability.md`` for the schemas and worked examples.
"""

from repro.observability.budgets import (
    BUDGETS_SCHEMA,
    BudgetViolation,
    check_budgets,
    load_budgets,
    render_budget_report,
)
from repro.observability.calibration import (
    EstimatorCalibration,
    RegretSummary,
    calibrate,
    calibration_report,
    placement_regret,
)
from repro.observability.events import EVENT_KINDS, TraceEvent
from repro.observability.export import (
    BENCH_SCHEMA,
    SNAPSHOT_SCHEMA,
    diff_bench,
    diff_snapshots,
    export_snapshot,
    load_bench,
    load_snapshot,
    prometheus_text,
    render_bench_diff,
    render_diff,
)
from repro.observability.ledger import (
    QUANTITIES,
    PlacementOutcome,
    PredictionLedger,
    PredictionRecord,
)
from repro.observability.metrics import (
    METRIC_NAMES,
    Counter,
    EmaTimer,
    Gauge,
    MetricsRegistry,
    merge_worker_metrics,
)
from repro.observability.profiler import (
    PROFILE_SPANS,
    Profiler,
    SpanStat,
    merge_worker_profiles,
    render_hot_spans,
    render_profile,
    unregistered_spans,
)
from repro.observability.timeline import (
    decision_timeline,
    fault_timeline,
    occupancy_gantt,
)
from repro.observability.tracer import Tracer, read_jsonl

__all__ = [
    "BENCH_SCHEMA",
    "BUDGETS_SCHEMA",
    "BudgetViolation",
    "Counter",
    "EmaTimer",
    "EstimatorCalibration",
    "EVENT_KINDS",
    "Gauge",
    "METRIC_NAMES",
    "MetricsRegistry",
    "PlacementOutcome",
    "PredictionLedger",
    "PredictionRecord",
    "PROFILE_SPANS",
    "Profiler",
    "QUANTITIES",
    "RegretSummary",
    "SNAPSHOT_SCHEMA",
    "SpanStat",
    "TraceEvent",
    "Tracer",
    "calibrate",
    "calibration_report",
    "check_budgets",
    "decision_timeline",
    "diff_bench",
    "diff_snapshots",
    "export_snapshot",
    "fault_timeline",
    "load_bench",
    "load_budgets",
    "load_snapshot",
    "merge_worker_metrics",
    "merge_worker_profiles",
    "occupancy_gantt",
    "placement_regret",
    "prometheus_text",
    "read_jsonl",
    "render_bench_diff",
    "render_budget_report",
    "render_diff",
    "render_hot_spans",
    "render_profile",
    "unregistered_spans",
]
