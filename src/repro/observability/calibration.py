"""Calibration audit: is the cost model telling the truth?

Consumes a :class:`~repro.observability.ledger.PredictionLedger` and
answers, per estimator quantity:

- **bias** -- mean signed relative error (positive = the estimator
  over-predicts);
- **MAPE** -- mean absolute percentage error;
- **EMA convergence** -- the exponentially smoothed absolute error over
  the observation sequence, showing whether the EMA estimators actually
  converge onto the realized rates as the run feeds them observations;

plus the **counterfactual placement regret** over the scored decisions:
how many placements hindsight flips, and the summed seconds the wrong
calls cost (:class:`RegretSummary`).

Everything renders as plain text (:func:`calibration_report`) -- the
body of ``python -m repro audit``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.observability.ledger import QUANTITIES, PredictionLedger

__all__ = [
    "EstimatorCalibration",
    "RegretSummary",
    "calibrate",
    "calibration_report",
    "placement_regret",
]

#: Characters for the convergence strip, lowest error first.
_STRIP_LEVELS = " .:-=+*#%@"


@dataclass(frozen=True)
class EstimatorCalibration:
    """Prediction-error statistics for one estimator quantity.

    ``ema_curve`` is the EMA of the absolute percentage error in
    observation order -- a falling curve means the estimator converges
    onto reality as observations feed back; a flat high curve means the
    cost model is systematically lying.
    """

    quantity: str
    count: int
    pending: int
    skipped: int  # resolved records with realized <= 0 (no relative error)
    bias_pct: float
    mape_pct: float
    max_ape_pct: float
    ema_curve: tuple[float, ...]

    @property
    def final_ema_pct(self) -> float:
        """The convergence curve's endpoint (0 when no observations)."""
        return self.ema_curve[-1] if self.ema_curve else 0.0


@dataclass(frozen=True)
class RegretSummary:
    """Counterfactual placement regret over the scored decisions."""

    decisions: int  # placements recorded
    scored: int  # placements with both costs resolved
    flips: int  # hindsight strictly prefers the other placement
    total_regret_seconds: float
    worst_step: int | None
    worst_regret_seconds: float

    @property
    def flip_fraction(self) -> float:
        """Share of scored decisions hindsight flips."""
        if self.scored == 0:
            return 0.0
        return self.flips / self.scored


def calibrate(
    ledger: PredictionLedger, alpha: float = 0.3
) -> dict[str, EstimatorCalibration]:
    """Per-quantity calibration over every quantity the ledger saw.

    ``alpha`` is the smoothing of the convergence curve -- the same
    default the runtime's EMA estimators use, so the curve answers
    "what error would an EMA tracker of my own accuracy report?".
    """
    out: dict[str, EstimatorCalibration] = {}
    for quantity in sorted(ledger.quantities_seen()):
        records = ledger.records(quantity)
        pending = sum(1 for r in records if not r.resolved)
        errors: list[float] = []  # signed relative errors, observation order
        skipped = 0
        for record in records:
            if not record.resolved:
                continue
            rel = record.signed_relative_error
            if rel is None:
                skipped += 1
                continue
            errors.append(rel)
        curve: list[float] = []
        for rel in errors:
            ape = abs(rel) * 100.0
            if not curve:
                curve.append(ape)
            else:
                curve.append((1 - alpha) * curve[-1] + alpha * ape)
        out[quantity] = EstimatorCalibration(
            quantity=quantity,
            count=len(errors),
            pending=pending,
            skipped=skipped,
            bias_pct=(
                100.0 * sum(errors) / len(errors) if errors else 0.0
            ),
            mape_pct=(
                100.0 * sum(abs(e) for e in errors) / len(errors)
                if errors
                else 0.0
            ),
            max_ape_pct=(
                100.0 * max(abs(e) for e in errors) if errors else 0.0
            ),
            ema_curve=tuple(curve),
        )
    return out


def placement_regret(ledger: PredictionLedger) -> RegretSummary:
    """Summarize the ledger's scored placement outcomes.

    Call :meth:`PredictionLedger.finalize` first (the workflow driver
    does, at the end of every instrumented run); unscored placements
    (hybrid, post-process, or unfinalized) count toward ``decisions``
    but not ``scored``.
    """
    placements = ledger.placements
    scored = [p for p in placements if p.scored]
    flips = [p for p in scored if p.flipped]
    worst = max(scored, key=lambda p: p.regret, default=None)
    return RegretSummary(
        decisions=len(placements),
        scored=len(scored),
        flips=len(flips),
        total_regret_seconds=sum(p.regret for p in scored),
        worst_step=(
            worst.step if worst is not None and worst.regret > 0 else None
        ),
        worst_regret_seconds=worst.regret if worst is not None else 0.0,
    )


def _strip(curve: tuple[float, ...], width: int = 24) -> str:
    """Downsample the EMA curve to a fixed-width character strip."""
    if not curve:
        return "(no samples)"
    top = max(curve)
    if top < 0.05:
        # Below the table's 0.1% display resolution everything is float
        # residue; normalizing would amplify noise into a fake ramp.
        return _STRIP_LEVELS[0] * width
    cells: list[str] = []
    for i in range(width):
        # Nearest-sample downsampling keeps the curve's shape.
        j = min(len(curve) - 1, i * len(curve) // width)
        if top <= 0:
            cells.append(_STRIP_LEVELS[0])
        else:
            level = curve[j] / top
            index = min(
                len(_STRIP_LEVELS) - 1,
                int(level * (len(_STRIP_LEVELS) - 1) + 0.5),
            )
            cells.append(_STRIP_LEVELS[index])
    return "".join(cells)


def calibration_report(ledger: PredictionLedger, alpha: float = 0.3) -> str:
    """The audit rendering: calibration table + convergence + regret."""
    stats = calibrate(ledger, alpha=alpha)
    lines: list[str] = []
    if not stats:
        lines.append("(no predictions recorded)")
    else:
        headers = ["estimator", "n", "pending", "bias%", "MAPE%",
                   "maxAPE%", "EMA%", "convergence (worst=@)"]
        rows = []
        for quantity in sorted(stats):
            s = stats[quantity]
            rows.append([
                quantity,
                str(s.count),
                str(s.pending),
                f"{s.bias_pct:+.1f}",
                f"{s.mape_pct:.1f}",
                f"{s.max_ape_pct:.1f}",
                f"{s.final_ema_pct:.1f}",
                _strip(s.ema_curve),
            ])
        widths = [
            max(len(h), max(len(r[i]) for r in rows))
            for i, h in enumerate(headers)
        ]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        undocumented = sorted(set(stats) - set(QUANTITIES))
        if undocumented:  # pragma: no cover - predict() rejects these
            lines.append(f"(unregistered quantities: {undocumented})")
    if ledger.unmatched:
        lines.append(
            f"({ledger.unmatched} realized values arrived with no "
            "matching prediction -- off-sample steps reuse old decisions)"
        )

    regret = placement_regret(ledger)
    lines.append("")
    lines.append("placement regret (Eq. 8 audited with hindsight):")
    if regret.decisions == 0:
        lines.append("  (no placement decisions recorded)")
    else:
        lines.append(
            f"  decisions scored : {regret.scored}/{regret.decisions}"
            + (
                ""
                if regret.scored == regret.decisions
                else "  (hybrid/post-process steps are not scored)"
            )
        )
        lines.append(
            f"  hindsight flips  : {regret.flips} "
            f"({100.0 * regret.flip_fraction:.0f}% of scored)"
        )
        lines.append(
            f"  summed regret    : {regret.total_regret_seconds:.2f}s "
            "(marginal, per-step bound)"
        )
        if regret.worst_step is not None:
            worst = next(
                p for p in ledger.placements if p.step == regret.worst_step
            )
            lines.append(
                f"  worst call       : step {worst.step} chose "
                f"{worst.chosen} (cost {worst.chosen_cost:.2f}s); the "
                f"alternative would have cost {worst.alt_cost:.2f}s "
                f"(+{worst.regret:.2f}s regret)"
            )
    return "\n".join(lines)
