"""Hierarchical span profiler: *where* wall-clock time goes, per layer.

The third observability pillar.  The tracer answers *why* (a decision's
inputs), the metrics registry answers *how much* (counts and smoothed
rates); the :class:`Profiler` answers *where* -- which layer of the
stack the host process actually spent its wall-clock seconds in.  It is
the measurement surface ROADMAP item 4's event-kernel rewrite is gated
on: ``benchmarks/budgets.json`` declares per-span-path ceilings over the
profile this module collects, and the bench harness fails when a hot
path regresses past its ceiling.

Spans nest::

    profiler = Profiler()
    with profiler.span("workflow.run"):
        with profiler.span("engine.adapt"):
            ...

Each *span path* (slash-joined stack of names, e.g.
``workflow.run/sim.run/engine.adapt``) accumulates a call count, the
cumulative wall-clock seconds spent inside it, and its *self* seconds
(cumulative minus time attributed to child spans).  Wall-clock time is
read from ``time.perf_counter`` by default; an injected ``clock`` makes
tests deterministic.

The same injection discipline as ``tracer=``/``metrics=``/``ledger=``
applies: components accept ``profiler=None`` and instrument only when
one is injected, so the disabled path costs one ``is not None`` test per
span site, and -- because the profiler only ever *reads* the wall clock
-- simulated results are bit-identical with or without one.

Spans must enclose only synchronous sections: a span held across a
simulator ``yield`` would charge other processes' interleaved work to
the wrong path.  Every span name the built-in instrumentation opens is
registered in :data:`PROFILE_SPANS`; ``docs/profiling.md`` documents
each and the docs-consistency suite keeps them in sync.

:func:`merge_worker_profiles` mirrors
:func:`~repro.observability.metrics.merge_worker_metrics`: the parallel
sweep runner ships one :meth:`Profiler.dump` per completed grid point
back to the parent, which folds them in grid order so ``run-all --jobs
N`` yields one aggregated profile with deterministic structure and
counts.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ObservabilityError

__all__ = [
    "PROFILE_SPANS",
    "Profiler",
    "SpanStat",
    "merge_worker_profiles",
    "render_hot_spans",
    "render_profile",
    "unregistered_spans",
]


#: Every span name the built-in instrumentation opens, with its layer
#: and meaning.  Span *paths* are slash-joined stacks of these names;
#: ``docs/profiling.md`` documents each and ``TestProfilingDocs`` keeps
#: the registry, the docs and ``benchmarks/budgets.json`` in sync.
PROFILE_SPANS: dict[str, str] = {
    "workflow.setup": "workflow layer: constructing the CoupledWorkflow "
    "(machine, staging area, monitor, engine)",
    "workflow.run": "workflow layer: one coupled run end to end "
    "(setup excluded, drain included)",
    "sim.run": "resource layer: the discrete-event kernel draining its "
    "event heap",
    "workflow.decide": "workflow layer: one step's adaptation decision "
    "section (trigger, snapshot and engine nest inside)",
    "monitor.snapshot": "middleware layer: the Monitor assembling one "
    "OperationalState snapshot",
    "monitor.trigger": "middleware layer: one trigger-policy evaluation "
    "over a step's cheap indicators",
    "engine.adapt": "middleware layer: the Adaptation Engine running the "
    "plan against one snapshot",
    "staging.submit": "middleware layer: admitting one analysis job into "
    "staging (memory accounting + ingest kickoff)",
    "staging.drain": "middleware layer: one staging job's completion "
    "bookkeeping (memory release, callbacks)",
    "analysis.entropy": "application layer: the vectorized block-entropy "
    "kernel",
    "cache.lookup": "experiment layer: one ExperimentCache request "
    "(memory, disk and compute included)",
    "cache.compute": "experiment layer: a cache miss actually computing "
    "its artifact (nested under cache.lookup)",
    "sweep.point": "experiment layer: one sweep grid point computed by a "
    "worker",
    "workload.build": "application layer: synthesizing the workload "
    "trace the run replays",
    "kernel.dispatch": "engine layer: one batched event dispatch (a "
    "same-time, same-kind run handed to its handler in one call)",
}


class SpanStat:
    """Aggregate for one span path: calls, cumulative and self seconds."""

    __slots__ = ("count", "cum_seconds", "self_seconds")

    def __init__(self) -> None:
        self.count = 0
        self.cum_seconds = 0.0
        self.self_seconds = 0.0


class _Span:
    """One span handle; the context manager the profiler hands out.

    Enter/exit are the per-span hot path (the <5% overhead budget of
    ``bench_profile.py`` is spent here), so they do no aggregation at
    all: each appends a marker plus a clock reading to the profiler's
    flat event buffer -- the handle itself on enter, its name on exit
    -- and every read API replays the buffer into per-path aggregates
    first (:meth:`Profiler._flush`).  Measured in situ, the eager
    design's dict-and-stat updates were dominated by cache misses
    against the workload's own working set; the buffered design touches
    two cache lines (list tail and handle) per event.

    A handle is freely *reusable* -- hot instrumentation sites cache
    one at construction time (``self._span_x = profiler.span("x")``)
    and re-enter it per call, skipping the per-call ``span()`` lookup
    and allocation.  Nesting, recursion, and sharing one handle across
    overlapping sections are all well-defined: the buffer records
    enter/exit *order*, which is what attribution replays.
    """

    __slots__ = ("_profiler", "name", "_append", "_clock")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self.name = name
        # Bound references, so enter/exit skip the profiler indirection.
        self._append = profiler._events.append
        self._clock = profiler.clock

    def __enter__(self) -> "_Span":
        ap = self._append
        ap(self)
        ap(self._clock())
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        ap = self._append
        ap(self.name)
        ap(self._clock())
        return False


class Profiler:
    """Nested wall-clock span accounting, keyed by slash-joined path.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonic seconds.  Defaults to
        ``time.perf_counter`` -- *wall* clock, deliberately distinct
        from the tracer's simulated clock: the profiler measures what
        the host process costs, not what the simulated machine does.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        # Flat enter/exit event buffer: (marker, seconds) pairs, where a
        # _Span marker is an enter and a str marker (the name) an exit.
        # Never replaced, only .clear()ed: handles cache its bound
        # ``append`` (likewise ``clock`` -- swap neither after init).
        # Grows ~100 bytes per recorded span between reads; ``span()``
        # acquisitions and every read API drain it, and re-entered
        # cached handles keep enter/exit themselves check-free.
        self._events: list = []
        # Drain the buffer on ``span()`` once it holds this many entries.
        self._flush_at = 1 << 17
        # Replay stack of open-span frames, persisted across flushes:
        # [path, SpanStat, started, child_seconds, name].
        self._frames: list[list] = []
        self._stats: dict[str, SpanStat] = {}
        # parent path -> name -> (path, SpanStat): the replay fast path.
        self._resolve: dict[str, dict[str, tuple[str, SpanStat]]] = {}

    # -- recording ---------------------------------------------------------

    def span(self, name: str) -> _Span:
        """A context manager charging its wall time to ``name`` under the
        currently open span (if any).

        The handle may be cached and re-entered freely (see
        :class:`_Span`).
        """
        if not name or "/" in name:
            raise ObservabilityError(
                f"span name must be a non-empty path segment, got {name!r}"
            )
        if len(self._events) >= self._flush_at:
            self._flush()
        return _Span(self, name)

    def _flush(self) -> None:
        """Replay buffered enter/exit events into per-path aggregates.

        Safe to run with spans still open: their frames stay on the
        replay stack (start time included) until the matching exit
        arrives in a later flush.  Raises
        :class:`~repro.errors.ObservabilityError` on an exit that does
        not match the innermost open span -- a span was held across a
        simulator yield, or ``__exit__`` ran twice.
        """
        events = self._events
        if not events:
            return
        frames = self._frames
        resolve = self._resolve
        for i in range(0, len(events), 2):
            marker = events[i]
            seconds = events[i + 1]
            if marker.__class__ is str:
                # Exit: pop the innermost frame and attribute its time.
                if not frames or frames[-1][4] != marker:
                    open_path = frames[-1][0] if frames else "<none>"
                    raise ObservabilityError(
                        f"span {marker!r} closed out of order (innermost "
                        f"open span is {open_path!r}: a span was held "
                        "across a simulator yield, or __exit__ ran twice)"
                    )
                path, stat, started, child_seconds, _ = frames.pop()
                elapsed = seconds - started
                stat.count += 1
                stat.cum_seconds += elapsed
                stat.self_seconds += elapsed - child_seconds
                if frames:
                    frames[-1][3] += elapsed
            else:
                # Enter: resolve (path, stat) under the open frame.
                name = marker.name
                parent_path = frames[-1][0] if frames else ""
                try:
                    path, stat = resolve[parent_path][name]
                except KeyError:
                    path = f"{parent_path}/{name}" if parent_path else name
                    stat = self._stats.get(path)
                    if stat is None:
                        stat = self._stats[path] = SpanStat()
                    resolve.setdefault(parent_path, {})[name] = (path, stat)
                frames.append([path, stat, seconds, 0.0, name])
        events.clear()

    @property
    def current_path(self) -> str:
        """The open span path, or ``""`` outside any span."""
        self._flush()
        return self._frames[-1][0] if self._frames else ""

    def clear(self) -> None:
        """Zero every recorded aggregate (open spans keep recording).

        Buffered events are attributed first, then stats are reset in
        place rather than dropped: open-span frames and the replay
        cache hold direct references into them.
        """
        self._flush()
        for stat in self._stats.values():
            stat.count = 0
            stat.cum_seconds = 0.0
            stat.self_seconds = 0.0

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        self._flush()
        return sum(1 for stat in self._stats.values() if stat.count)

    def paths(self) -> list[str]:
        """Every recorded span path (at least one completed call), sorted."""
        self._flush()
        return sorted(
            path for path, stat in self._stats.items() if stat.count
        )

    def get(self, path: str) -> SpanStat | None:
        """The aggregate for ``path``, or ``None`` if never recorded."""
        self._flush()
        return self._stats.get(path)

    def total_seconds(self) -> float:
        """Cumulative seconds across root spans (the attributed total)."""
        self._flush()
        return sum(
            stat.cum_seconds
            for path, stat in self._stats.items()
            if "/" not in path
        )

    def dump(self) -> dict[str, dict[str, Any]]:
        """A picklable ``path -> {count, cum_seconds, self_seconds}`` map.

        The cross-process wire format: workers ship dumps back to the
        sweep parent (:func:`merge_worker_profiles`), exporters embed
        them (``BENCH_<rev>.json``'s ``profile`` section, the
        observability snapshot's ``profile`` key), and the renderers
        accept them interchangeably with a live profiler.
        """
        self._flush()
        return {
            path: {
                "count": stat.count,
                "cum_seconds": stat.cum_seconds,
                "self_seconds": stat.self_seconds,
            }
            for path, stat in sorted(self._stats.items())
            if stat.count
        }


def merge_worker_profiles(
    parent: Profiler,
    dumps: Iterable[Mapping[str, Mapping[str, Any]]],
) -> Profiler:
    """Fold worker :meth:`Profiler.dump` snapshots into ``parent``.

    Counts and seconds sum exactly per span path, so -- unlike the EMA
    timers of :func:`~repro.observability.metrics.merge_worker_metrics`
    -- the merged profile is independent of dump order; the sweep runner
    still folds in grid order for symmetry.  Returns ``parent``.
    """
    parent._flush()
    for dump in dumps:
        for path, snap in dump.items():
            if not path:
                raise ObservabilityError("worker profile dump has an empty span path")
            try:
                count = int(snap["count"])
                cum = float(snap["cum_seconds"])
                self_seconds = float(snap["self_seconds"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ObservabilityError(
                    f"worker profile dump for span {path!r} is malformed: {exc}"
                ) from exc
            stat = parent._stats.get(path)
            if stat is None:
                stat = parent._stats[path] = SpanStat()
            stat.count += count
            stat.cum_seconds += cum
            stat.self_seconds += self_seconds
    return parent


def _as_dump(source: Profiler | Mapping[str, Mapping[str, Any]]) -> dict:
    if isinstance(source, Profiler):
        return source.dump()
    return {
        path: {
            "count": int(snap["count"]),
            "cum_seconds": float(snap["cum_seconds"]),
            "self_seconds": float(snap["self_seconds"]),
        }
        for path, snap in dict(source).items()
    }


def unregistered_spans(
    source: Profiler | Mapping[str, Mapping[str, Any]],
) -> list[str]:
    """Span *names* in ``source`` that :data:`PROFILE_SPANS` does not
    register (the honesty check the docs-consistency suite runs)."""
    names = {path.rsplit("/", 1)[-1] for path in _as_dump(source)}
    return sorted(names - set(PROFILE_SPANS))


def render_profile(
    source: Profiler | Mapping[str, Mapping[str, Any]],
    total_seconds: float | None = None,
) -> str:
    """Top-down tree: one row per span path, children indented under
    their parent, ordered hottest (cumulative) first.

    ``total_seconds`` sets the denominator of the ``cum%`` column --
    pass the measured wall time of the profiled section to see how much
    of it the spans attribute; it defaults to the root spans' cumulative
    total (making the roots sum to 100%).
    """
    dump = _as_dump(source)
    if not dump:
        return "(no spans recorded)"
    roots = [p for p in dump if "/" not in p]
    if total_seconds is None:
        total_seconds = sum(dump[p]["cum_seconds"] for p in roots)
    children: dict[str, list[str]] = {}
    for path in dump:
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            children.setdefault(parent, []).append(path)

    rows: list[tuple[str, dict]] = []

    def walk(paths: list[str], depth: int) -> None:
        ordered = sorted(
            paths, key=lambda p: (-dump[p]["cum_seconds"], p)
        )
        for path in ordered:
            label = "  " * depth + path.rsplit("/", 1)[-1]
            rows.append((label, dump[path]))
            walk(children.get(path, []), depth + 1)

    walk(roots, 0)

    headers = ["span", "count", "cum (s)", "self (s)", "cum%"]
    cells = [
        [
            label,
            str(snap["count"]),
            f"{snap['cum_seconds']:.4f}",
            f"{snap['self_seconds']:.4f}",
            (
                f"{100.0 * snap['cum_seconds'] / total_seconds:.1f}"
                if total_seconds > 0
                else "-"
            ),
        ]
        for label, snap in rows
    ]
    widths = [
        max(len(h), max(len(row[i]) for row in cells))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(
            h.ljust(w) if i == 0 else h.rjust(w)
            for i, (h, w) in enumerate(zip(headers, widths))
        ),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(
                c.ljust(w) if i == 0 else c.rjust(w)
                for i, (c, w) in enumerate(zip(row, widths))
            )
        )
    return "\n".join(lines)


def render_hot_spans(
    source: Profiler | Mapping[str, Mapping[str, Any]],
    top: int = 10,
) -> str:
    """The top-N hot list: span paths ordered by *self* seconds.

    Self time is where optimization effort actually lands -- a parent
    whose cumulative time is all children is not itself hot.
    """
    dump = _as_dump(source)
    if not dump:
        return "(no spans recorded)"
    if top < 1:
        raise ObservabilityError(f"top must be >= 1, got {top}")
    total_self = sum(snap["self_seconds"] for snap in dump.values())
    ordered = sorted(
        dump.items(), key=lambda item: (-item[1]["self_seconds"], item[0])
    )[:top]
    headers = ["#", "self (s)", "self%", "count", "span path"]
    cells = [
        [
            str(rank),
            f"{snap['self_seconds']:.4f}",
            (
                f"{100.0 * snap['self_seconds'] / total_self:.1f}"
                if total_self > 0
                else "-"
            ),
            str(snap["count"]),
            path,
        ]
        for rank, (path, snap) in enumerate(ordered, start=1)
    ]
    widths = [
        max(len(h), max(len(row[i]) for row in cells))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) if i < 4 else h.ljust(w)
                  for i, (h, w) in enumerate(zip(headers, widths))),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(c.rjust(w) if i < 4 else c.ljust(w)
                      for i, (c, w) in enumerate(zip(row, widths)))
        )
    return "\n".join(lines)
