"""2-D isocontour extraction (marching triangles).

The 2-D analogue of :mod:`repro.analysis.isosurface`: each grid cell is
split into two triangles along a consistent diagonal and each triangle
crossing the isovalue contributes one segment.  Segment endpoints are
welded by grid-edge identity, so closed level sets come out as closed
polylines (every welded vertex has degree 2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PolicyError

__all__ = ["contour_length", "contour_stats", "extract_contours"]

# Two triangles per cell, diagonal v0-v2; corner order (x, y) offsets.
_CORNERS2 = np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=np.int64)
_TRIS2 = np.array([(0, 1, 2), (0, 2, 3)], dtype=np.int64)


def extract_contours(
    field: np.ndarray,
    isovalue: float,
    spacing: tuple[float, float] = (1.0, 1.0),
    origin: tuple[float, float] = (0.0, 0.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Extract the ``isovalue`` contour of a 2-D ``field``.

    Returns ``(vertices, segments)``: float ``(V, 2)`` positions and int
    ``(S, 2)`` indices into the vertex array.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 2:
        raise PolicyError(f"field must be 2-D, got shape {field.shape}")
    if any(s < 2 for s in field.shape):
        raise PolicyError(f"field too small for contouring: {field.shape}")
    nx, ny = field.shape
    flat = field.ravel()

    base = (np.arange(nx - 1)[:, None] * ny + np.arange(ny - 1)[None, :]).ravel()
    corner_offsets = _CORNERS2[:, 0] * ny + _CORNERS2[:, 1]
    cell_vals = flat[base[:, None] + corner_offsets[None, :]]
    finite = np.isfinite(cell_vals).all(axis=1)
    crossing = (
        (cell_vals > isovalue).any(axis=1)
        & (cell_vals <= isovalue).any(axis=1)
        & finite
    )
    base = base[crossing]
    if base.size == 0:
        return np.zeros((0, 2)), np.zeros((0, 2), dtype=np.int64)

    tri_gids = base[:, None, None] + corner_offsets[_TRIS2][None, :, :]
    tri_gids = tri_gids.reshape(-1, 3)
    tri_vals = flat[tri_gids]
    inside = tri_vals > isovalue
    n_in = inside.sum(axis=1)
    cut = (n_in == 1) | (n_in == 2)
    tri_gids = tri_gids[cut]
    inside = inside[cut]
    n_in = n_in[cut]
    if tri_gids.size == 0:
        return np.zeros((0, 2)), np.zeros((0, 2), dtype=np.int64)

    # The lone corner (inside for n_in==1, outside for n_in==2) defines the
    # two cut edges.
    lone_is_inside = n_in == 1
    lone_mask = np.where(lone_is_inside[:, None], inside, ~inside)
    lone_idx = np.argmax(lone_mask, axis=1)
    others = np.array([(1, 2), (0, 2), (0, 1)])[lone_idx]
    rows = np.arange(tri_gids.shape[0])
    a = tri_gids[rows, lone_idx]
    b1 = tri_gids[rows, others[:, 0]]
    b2 = tri_gids[rows, others[:, 1]]
    pairs = np.stack(
        [np.stack([a, b1], axis=-1), np.stack([a, b2], axis=-1)], axis=1
    )  # (n, 2, 2)

    def gid_to_xy(gids: np.ndarray) -> np.ndarray:
        return np.stack([gids // ny, gids % ny], axis=-1).astype(np.float64)

    va = flat[pairs[..., 0]]
    vb = flat[pairs[..., 1]]
    t = (isovalue - va) / (vb - va)
    pa = gid_to_xy(pairs[..., 0])
    pb = gid_to_xy(pairs[..., 1])
    pts = pa + t[..., None] * (pb - pa)

    keys = np.sort(pairs.reshape(-1, 2), axis=1)
    uniq, index = np.unique(keys, axis=0, return_inverse=True)
    verts = np.zeros((uniq.shape[0], 2))
    verts[index] = pts.reshape(-1, 2)
    segments = index.reshape(-1, 2)
    ok = segments[:, 0] != segments[:, 1]
    segments = segments[ok]

    verts = np.asarray(origin) + verts * np.asarray(spacing)
    return verts, segments


def contour_length(verts: np.ndarray, segments: np.ndarray) -> float:
    """Total polyline length of the contour set."""
    if len(segments) == 0:
        return 0.0
    d = verts[segments[:, 1]] - verts[segments[:, 0]]
    return float(np.linalg.norm(d, axis=1).sum())


def contour_stats(verts: np.ndarray, segments: np.ndarray) -> dict:
    """Degree histogram and closedness of the contour set."""
    if len(segments) == 0:
        return {"n_vertices": 0, "n_segments": 0, "closed": True, "length": 0.0}
    counts = np.bincount(segments.ravel(), minlength=len(verts))
    used = counts[counts > 0]
    return {
        "n_vertices": int((counts > 0).sum()),
        "n_segments": int(len(segments)),
        "closed": bool((used == 2).all()),
        "length": contour_length(verts, segments),
    }
