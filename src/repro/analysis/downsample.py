"""Spatial down-sampling operators and their memory-cost model.

These are the actuators of the application-layer adaptation (paper
Section 4.1): the policy picks a factor ``X`` and the simulation reduces
its output with ``downsample_stride`` (sample every X-th point, the
paper's "down-sampled at every 4th grid point") or ``downsample_mean``
(block averaging, an anti-aliased alternative).

``downsample_memory_cost`` is the paper's ``Mem_data_reduce(S_data, X)``:
performing the reduction needs the input buffer plus the reduced output
buffer resident simultaneously.
"""

from __future__ import annotations

import numpy as np

from repro.analysis._blocks import (
    block_counts,
    block_slice,
    validate_block_shape,
)
from repro.errors import PolicyError

__all__ = [
    "blockwise_stride_reconstruction",
    "downsample_mean",
    "downsample_memory_cost",
    "downsample_stride",
    "reduced_nbytes",
    "upsample_nearest",
]


def _check_factor(factor: int) -> None:
    if factor < 1:
        raise PolicyError(f"downsampling factor must be >= 1, got {factor}")


def downsample_stride(field: np.ndarray, factor: int) -> np.ndarray:
    """Keep every ``factor``-th sample along every axis (paper's method).

    Works for any dimensionality; a factor of 1 returns the input
    unchanged (same object: no copy is made for the identity case).
    """
    _check_factor(factor)
    if factor == 1:
        return field
    return field[tuple(slice(None, None, factor) for _ in range(field.ndim))]


def downsample_mean(field: np.ndarray, factor: int) -> np.ndarray:
    """Block-average ``factor``-cubes; trailing remainder cells are cropped."""
    _check_factor(factor)
    if factor == 1:
        return field
    trimmed = field[tuple(slice(0, (s // factor) * factor) for s in field.shape)]
    if trimmed.size == 0:
        raise PolicyError(
            f"field of shape {field.shape} too small for factor {factor}"
        )
    shape = []
    for s in trimmed.shape:
        shape.extend([s // factor, factor])
    reshaped = trimmed.reshape(shape)
    axes = tuple(1 + 2 * d for d in range(field.ndim))
    return reshaped.mean(axis=axes)


def upsample_nearest(field: np.ndarray, factor: int,
                     target_shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Invert a stride/mean downsample by nearest-neighbour replication.

    Used by the fidelity metrics to reconstruct a full-resolution proxy.
    ``target_shape`` crops/pads (edge-replicates) to the original shape.
    """
    _check_factor(factor)
    out = field
    for axis in range(field.ndim):
        out = np.repeat(out, factor, axis=axis)
    if target_shape is not None:
        if len(target_shape) != out.ndim:
            raise PolicyError("target_shape rank mismatch")
        pads = []
        slices = []
        for have, want in zip(out.shape, target_shape):
            pads.append((0, max(0, want - have)))
            slices.append(slice(0, want))
        out = np.pad(out, pads, mode="edge")[tuple(slices)]
    return out


def blockwise_stride_reconstruction(
    field: np.ndarray,
    block_shape: tuple[int, ...],
    factor: int,
    block_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Per-block ``downsample_stride`` -> ``upsample_nearest`` round trip.

    Equivalent to reconstructing every block of ``field`` independently
    (reduce by ``factor``, replicate back to the block's shape) but done
    as a single gather: the cell at offset ``l`` within its block reads
    the block's cell at ``(l // factor) * factor`` along every axis, so
    the whole reconstruction is one fancy-indexing expression producing
    exact element copies.  With ``block_mask`` (one bool per block, shape
    ``ceil(field.shape / block_shape)``), unmasked blocks keep their
    original values.  Bit-identical to
    :func:`_reference_blockwise_stride_reconstruction`.
    """
    _check_factor(factor)
    field = np.asarray(field)
    validate_block_shape(field, block_shape)
    src_axes = [
        (np.arange(s, dtype=np.intp) // b) * b
        + ((np.arange(s, dtype=np.intp) % b) // factor) * factor
        for s, b in zip(field.shape, block_shape)
    ]
    recon = field[np.ix_(*src_axes)]
    if block_mask is None:
        return recon
    counts = block_counts(field.shape, block_shape)
    block_mask = np.asarray(block_mask, dtype=bool)
    if block_mask.shape != counts:
        raise PolicyError(
            f"block_mask shape {block_mask.shape} != block grid {counts}"
        )
    id_axes = [
        np.arange(s, dtype=np.intp) // b for s, b in zip(field.shape, block_shape)
    ]
    cell_mask = block_mask[np.ix_(*id_axes)]
    return np.where(cell_mask, recon, field)


def _reference_blockwise_stride_reconstruction(
    field: np.ndarray,
    block_shape: tuple[int, ...],
    factor: int,
    block_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Scalar oracle: reduce and re-expand one block at a time."""
    _check_factor(factor)
    field = np.asarray(field)
    validate_block_shape(field, block_shape)
    out = field.copy()
    counts = block_counts(field.shape, block_shape)
    for idx in np.ndindex(*counts):
        if block_mask is not None and not block_mask[idx]:
            continue
        slc = block_slice(idx, field.shape, block_shape)
        block = field[slc]
        reduced = downsample_stride(block, factor)
        out[slc] = upsample_nearest(reduced, factor, target_shape=block.shape)
    return out


def reduced_nbytes(nbytes: float, factor: int, ndim: int) -> float:
    """Size of data after down-sampling by ``factor`` in ``ndim`` dimensions."""
    _check_factor(factor)
    if ndim < 1:
        raise PolicyError(f"ndim must be >= 1, got {ndim}")
    return float(nbytes) / float(factor**ndim)


# The reduced copy plus the analysis working buffer built from it.
_REDUCE_BUFFERS = 2.0


def downsample_memory_cost(nbytes: float, factor: int, ndim: int) -> float:
    """``Mem_data_reduce(S_data, X)``: *additional* bytes the reduction needs.

    The raw data is already resident as simulation state, so the extra
    footprint is the reduced output copy plus the analysis working buffer
    derived from it: ``2 * S_data / X^ndim``.  This is what makes the
    paper's Figure 5 curves differ by an order of magnitude between the
    minimum and maximum spatial resolutions.
    """
    return _REDUCE_BUFFERS * reduced_nbytes(nbytes, factor, ndim)
