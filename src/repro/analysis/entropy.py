"""Shannon entropy of data blocks (paper Eq. 11) and entropy-driven reduction.

The paper's automatic application-layer adaptation computes, for every
data block of the AMR dataset, the entropy

    H(X) = - sum_x p(x) log2 p(x)

of a histogram of the block's values, and down-samples blocks whose
entropy falls below user-specified thresholds ("the right region has its
entropy value (at 5.14) lower than the specified threshold and thus is
down-sampled at every 4th grid point").
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.analysis._blocks import (
    block_counts,
    block_ids,
    blockwise_histogram,
    validate_block_shape,
)
from repro.errors import PolicyError

__all__ = ["block_entropies", "entropy_downsample_factors", "shannon_entropy"]


def shannon_entropy(values: np.ndarray, bins: int = 256,
                    value_range: tuple[float, float] | None = None) -> float:
    """Histogram Shannon entropy of ``values`` in bits.

    NaNs are ignored.  A constant (or empty) block has zero entropy.  The
    maximum possible value is ``log2(bins)`` (8 bits for 256 bins).
    """
    if bins < 2:
        raise PolicyError(f"bins must be >= 2, got {bins}")
    flat = np.asarray(values, dtype=np.float64).ravel()
    flat = flat[np.isfinite(flat)]
    if flat.size == 0:
        return 0.0
    counts, _edges = np.histogram(flat, bins=bins, range=value_range)
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    # max() guards against -0.0 for single-bin (constant) blocks.
    return max(0.0, float(-(p * np.log2(p)).sum()))


def block_entropies(
    field: np.ndarray,
    block_shape: tuple[int, ...],
    bins: int = 256,
    global_range: bool = True,
    metrics=None,
    profiler=None,
) -> np.ndarray:
    """Entropy of each non-overlapping block of ``field``.

    Returns an array with one entry per block (shape =
    ``ceil(field.shape / block_shape)``); trailing partial blocks are
    included.  With ``global_range`` the histogram range is shared across
    blocks so entropies are comparable (the paper compares block
    entropies against common thresholds).

    Single-pass vectorized implementation: the whole field is routed to
    per-block histogram bins at once (``bincount`` over
    ``block_id * bins + bin``); only the O(blocks * bins) entropy
    reduction runs per block.  Bit-identical to
    :func:`_reference_block_entropies`, the per-block scalar oracle.
    When a :class:`~repro.observability.MetricsRegistry` is injected via
    ``metrics``, the kernel time is published as the
    ``analysis.entropy_kernel_seconds`` EMA timer; an injected
    :class:`~repro.observability.Profiler` wraps the kernel in an
    ``analysis.entropy`` span.
    """
    field = np.asarray(field)
    validate_block_shape(field, block_shape)
    if bins < 2:
        raise PolicyError(f"bins must be >= 2, got {bins}")
    start = time.perf_counter() if metrics is not None else 0.0
    if profiler is not None:
        with profiler.span("analysis.entropy"):
            out = _block_entropies_vectorized(
                field, block_shape, bins, global_range
            )
    else:
        out = _block_entropies_vectorized(field, block_shape, bins, global_range)
    if metrics is not None:
        timer = metrics.timer("analysis.entropy_kernel_seconds")
        timer.observe(time.perf_counter() - start)
    return out


def _block_entropies_vectorized(
    field: np.ndarray,
    block_shape: tuple[int, ...],
    bins: int,
    global_range: bool,
) -> np.ndarray:
    counts_shape = block_counts(field.shape, block_shape)
    nblocks = int(np.prod(counts_shape)) if counts_shape else 1
    out = np.zeros(counts_shape, dtype=np.float64)
    if field.size == 0 or nblocks == 0:
        return out
    flat = np.asarray(field, dtype=np.float64).ravel()
    bids = block_ids(field.shape, block_shape).ravel()
    finite = np.isfinite(flat)
    values = flat[finite]
    vbids = bids[finite]

    if global_range:
        if values.size == 0:
            return out
        lo, hi = float(values.min()), float(values.max())
        if lo == hi:
            hi = lo + 1.0
        lo_b = np.full(nblocks, lo)
        hi_b = np.full(nblocks, hi)
    else:
        # Per-block auto ranges, as np.histogram derives them: the finite
        # min/max, with a constant block widened to (v - 0.5, v + 0.5).
        lo_b = np.full(nblocks, np.inf)
        hi_b = np.full(nblocks, -np.inf)
        np.minimum.at(lo_b, vbids, values)
        np.maximum.at(hi_b, vbids, values)
        empty = ~np.isfinite(lo_b)
        constant = (lo_b == hi_b) & ~empty
        lo_b[constant] -= 0.5
        hi_b[constant] += 0.5
        lo_b[empty] = 0.0
        hi_b[empty] = 1.0  # placeholder; empty blocks contribute no samples

    hist = blockwise_histogram(values, vbids, nblocks, bins, lo_b, hi_b)
    totals = hist.sum(axis=1)
    flat_out = out.reshape(-1)
    # Per-block entropy from the count matrix: O(blocks * bins) work and
    # the same compaction + summation as the scalar oracle, so the result
    # matches bit for bit.
    for k in np.nonzero(totals)[0]:
        c = hist[k]
        c = c[c > 0]
        p = c / totals[k]
        flat_out[k] = max(0.0, float(-(p * np.log2(p)).sum()))
    return out


def _reference_block_entropies(
    field: np.ndarray,
    block_shape: tuple[int, ...],
    bins: int = 256,
    global_range: bool = True,
) -> np.ndarray:
    """Scalar oracle: one :func:`shannon_entropy` call per block.

    The pre-vectorization implementation, kept as the equivalence oracle
    for :func:`block_entropies` (the property tests assert exact
    agreement).
    """
    if len(block_shape) != field.ndim:
        raise PolicyError(
            f"block_shape rank {len(block_shape)} != field rank {field.ndim}"
        )
    if any(b < 1 for b in block_shape):
        raise PolicyError(f"block_shape entries must be >= 1: {block_shape}")
    finite = field[np.isfinite(field)]
    value_range = None
    if global_range and finite.size:
        lo, hi = float(finite.min()), float(finite.max())
        if lo == hi:
            hi = lo + 1.0
        value_range = (lo, hi)
    counts = tuple(-(-s // b) for s, b in zip(field.shape, block_shape))
    out = np.zeros(counts, dtype=np.float64)
    for idx in np.ndindex(*counts):
        slc = tuple(
            slice(i * b, min((i + 1) * b, s))
            for i, b, s in zip(idx, block_shape, field.shape)
        )
        out[idx] = shannon_entropy(field[slc], bins=bins, value_range=value_range)
    return out


def entropy_downsample_factors(
    entropies: np.ndarray,
    thresholds: Sequence[float],
    factors: Sequence[int],
) -> np.ndarray:
    """Map block entropies to per-block down-sampling factors.

    ``thresholds`` must be increasing; ``factors`` has one more entry than
    ``thresholds`` and must be decreasing (low entropy -> aggressive
    reduction).  A block with entropy below ``thresholds[0]`` gets
    ``factors[0]``; above ``thresholds[-1]`` it gets ``factors[-1]``
    (typically 1, i.e. full resolution).
    """
    thresholds = list(thresholds)
    factors = list(factors)
    if len(factors) != len(thresholds) + 1:
        raise PolicyError(
            f"need len(factors) == len(thresholds) + 1, got "
            f"{len(factors)} and {len(thresholds)}"
        )
    if any(t1 >= t2 for t1, t2 in zip(thresholds, thresholds[1:])):
        raise PolicyError(f"thresholds must be strictly increasing: {thresholds}")
    if any(f < 1 for f in factors):
        raise PolicyError(f"factors must be >= 1: {factors}")
    if any(f1 < f2 for f1, f2 in zip(factors, factors[1:])):
        raise PolicyError(f"factors must be non-increasing: {factors}")
    indices = np.searchsorted(np.asarray(thresholds), entropies, side="right")
    return np.asarray(factors)[indices]
