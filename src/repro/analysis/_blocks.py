"""Shared machinery for block-decomposed analysis kernels.

The paper's application-layer adaptation operates on non-overlapping
blocks of the AMR dataset (entropy, per-block reduction, per-block
statistics).  The vectorized kernels in :mod:`repro.analysis` all need
the same three ingredients, collected here:

- the block grid (:func:`block_counts`) and per-cell block ids
  (:func:`block_ids`), so one pass over the field can route every cell
  to its block with ``bincount``;
- an exact replica of NumPy's uniform-bin histogram indexing
  (:func:`blockwise_histogram`), so per-block histograms computed in a
  single pass match ``np.histogram`` bit for bit -- the index estimate
  is corrected against the actual bin edges, exactly as NumPy does;
- the aligned-interior/partial-edge split (:func:`full_block_counts`,
  :func:`block_rows`, :func:`iter_edge_blocks`): fully populated blocks
  are reshaped into contiguous rows whose NumPy reductions traverse the
  same element order (and therefore the same pairwise-summation tree) as
  a per-block loop, while trailing partial blocks take a scalar edge
  path.  This is what lets the vectorized kernels agree *exactly* with
  their ``_reference_*`` oracles instead of merely to rounding error.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import PolicyError

__all__ = [
    "block_counts",
    "block_ids",
    "block_rows",
    "block_slice",
    "blockwise_histogram",
    "full_block_counts",
    "iter_edge_blocks",
    "linspace_rows",
    "validate_block_shape",
]


def validate_block_shape(field: np.ndarray, block_shape: tuple[int, ...]) -> None:
    """The shared argument checks of every blockwise kernel."""
    if len(block_shape) != field.ndim:
        raise PolicyError(
            f"block_shape rank {len(block_shape)} != field rank {field.ndim}"
        )
    if any(b < 1 for b in block_shape):
        raise PolicyError(f"block_shape entries must be >= 1: {block_shape}")


def block_counts(shape: tuple[int, ...], block_shape: tuple[int, ...]
                 ) -> tuple[int, ...]:
    """Blocks per axis, counting trailing partial blocks."""
    return tuple(-(-s // b) for s, b in zip(shape, block_shape))


def full_block_counts(shape: tuple[int, ...], block_shape: tuple[int, ...]
                      ) -> tuple[int, ...]:
    """Fully populated blocks per axis (the aligned interior)."""
    return tuple(s // b for s, b in zip(shape, block_shape))


def block_ids(shape: tuple[int, ...], block_shape: tuple[int, ...]) -> np.ndarray:
    """Per-cell flat block index (C order over the block grid)."""
    counts = block_counts(shape, block_shape)
    strides = [1] * len(counts)
    for d in range(len(counts) - 2, -1, -1):
        strides[d] = strides[d + 1] * counts[d + 1]
    out = np.zeros(shape, dtype=np.intp)
    for d, (s, b) in enumerate(zip(shape, block_shape)):
        axis_ids = (np.arange(s, dtype=np.intp) // b) * strides[d]
        reshape = [1] * len(shape)
        reshape[d] = s
        out += axis_ids.reshape(reshape)
    return out


def block_slice(idx: tuple[int, ...], shape: tuple[int, ...],
                block_shape: tuple[int, ...]) -> tuple[slice, ...]:
    """The field slice of block ``idx`` (clipped at the field boundary)."""
    return tuple(
        slice(i * b, min((i + 1) * b, s))
        for i, b, s in zip(idx, block_shape, shape)
    )


def iter_edge_blocks(shape: tuple[int, ...], block_shape: tuple[int, ...]
                     ) -> Iterator[tuple[tuple[int, ...], tuple[slice, ...]]]:
    """Blocks with a trailing partial extent along at least one axis."""
    counts = block_counts(shape, block_shape)
    full = full_block_counts(shape, block_shape)
    for idx in np.ndindex(*counts):
        if all(i < f for i, f in zip(idx, full)):
            continue
        yield idx, block_slice(idx, shape, block_shape)


def block_rows(arr: np.ndarray, block_shape: tuple[int, ...]) -> np.ndarray:
    """Rearrange an aligned array into one contiguous row per block.

    ``arr``'s extents must be multiples of ``block_shape``.  Row ``k``
    holds block ``k`` (C order over the block grid) in the block's own C
    order, so reductions over ``axis=1`` see the same element sequence --
    and hence the same pairwise-summation grouping -- as the same
    reduction over the block extracted by slicing.
    """
    ndim = arr.ndim
    nblocks = []
    shape = []
    for s, b in zip(arr.shape, block_shape):
        nblocks.append(s // b)
        shape.extend([s // b, b])
    order = list(range(0, 2 * ndim, 2)) + list(range(1, 2 * ndim, 2))
    rows = arr.reshape(shape).transpose(order)
    return rows.reshape(int(np.prod(nblocks)) if nblocks else 1, -1)


def linspace_rows(lo: np.ndarray, hi: np.ndarray, num: int) -> np.ndarray:
    """Row ``k`` equals ``np.linspace(lo[k], hi[k], num)`` bit for bit.

    Replicates linspace's arithmetic (``arange * step + start``, endpoint
    overwritten with ``stop``) so histogram edge comparisons against
    these rows match ``np.histogram``'s own edges.
    """
    step = (hi - lo) / (num - 1)
    rows = np.arange(num, dtype=np.float64)[None, :] * step[:, None] + lo[:, None]
    rows[:, -1] = hi
    return rows


def blockwise_histogram(
    values: np.ndarray,
    bids: np.ndarray,
    nblocks: int,
    bins: int,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Per-block uniform-bin histograms, exactly as ``np.histogram``.

    ``values``/``bids`` are the (finite) samples and their flat block
    ids; ``lo``/``hi`` give each block's histogram range (out-of-range
    samples are dropped, the rightmost bin is closed).  Returns an
    ``(nblocks, bins)`` count matrix equal, row by row, to
    ``np.histogram(block_values, bins, range=(lo[k], hi[k]))[0]``.

    The bin index is estimated with NumPy's own scaling expression and
    then corrected against the actual edge values, so the result is
    determined by the edge predicates alone -- identical to NumPy's
    uniform-bin fast path.
    """
    denom = hi - lo
    keep = (values >= lo[bids]) & (values <= hi[bids])
    kv = values[keep]
    kb = bids[keep]
    f_idx = ((kv - lo[kb]) / denom[kb]) * bins
    idx = f_idx.astype(np.intp)
    idx[idx == bins] -= 1
    edges = linspace_rows(lo, hi, bins + 1)
    idx[kv < edges[kb, idx]] -= 1
    increment = (kv >= edges[kb, idx + 1]) & (idx != bins - 1)
    idx[increment] += 1
    flat = np.bincount(kb * bins + idx, minlength=nblocks * bins)
    return flat.reshape(nblocks, bins)
