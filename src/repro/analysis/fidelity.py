"""Quantitative fidelity metrics for adaptive down-sampling.

The paper's Figure 6 argues visually that entropy-guided down-sampling
preserves "fine structural information" in high-entropy regions while
low-entropy regions "can potentially be reduced aggressively without
losing much information".  With no renderer in scope we verify the same
claim quantitatively:

- :func:`reconstruction_error` -- normalized RMS error between a field
  and its downsample->upsample reconstruction (information lost by the
  reduction);
- :func:`isosurface_fidelity` -- relative change in isosurface area and
  triangle count between full-resolution and reduced data (structure
  lost as seen by the paper's own visualization kernel).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis._blocks import (
    block_counts,
    block_rows,
    block_slice,
    full_block_counts,
    iter_edge_blocks,
    validate_block_shape,
)
from repro.analysis.downsample import (
    blockwise_stride_reconstruction,
    downsample_stride,
    upsample_nearest,
)
from repro.analysis.isosurface import extract_isosurface, surface_area
from repro.errors import PolicyError

__all__ = [
    "IsosurfaceFidelity",
    "blockwise_reconstruction_errors",
    "isosurface_fidelity",
    "reconstruction_error",
]


def reconstruction_error(field: np.ndarray, factor: int) -> float:
    """Normalized RMS reconstruction error for stride down-sampling by ``factor``.

    Zero means lossless (e.g. a constant block); errors are normalized by
    the field's value range so blocks of different magnitude compare.
    """
    field = np.asarray(field, dtype=np.float64)
    if not np.isfinite(field).all():
        raise PolicyError("reconstruction_error requires finite data")
    if factor == 1:
        return 0.0
    reduced = downsample_stride(field, factor)
    recon = upsample_nearest(reduced, factor, target_shape=field.shape)
    span = float(field.max() - field.min())
    if span == 0.0:
        return 0.0
    rms = float(np.sqrt(np.mean((field - recon) ** 2)))
    return rms / span


def blockwise_reconstruction_errors(
    field: np.ndarray,
    block_shape: tuple[int, ...],
    factor: int,
) -> np.ndarray:
    """:func:`reconstruction_error` of every block, in one pass.

    Returns one error per block (shape ``ceil(field.shape /
    block_shape)``).  Fully populated blocks are evaluated vectorized:
    the reconstruction is a single gather, and the per-block RMS reduces
    contiguous rows whose element order matches the per-block slice, so
    the result is bit-identical to
    :func:`_reference_blockwise_reconstruction_errors`.  Trailing
    partial blocks fall back to the scalar path.
    """
    field = np.asarray(field, dtype=np.float64)
    validate_block_shape(field, block_shape)
    if not np.isfinite(field).all():
        raise PolicyError("reconstruction_error requires finite data")
    counts = block_counts(field.shape, block_shape)
    out = np.zeros(counts, dtype=np.float64)
    if factor == 1 or field.size == 0:
        return out
    full = full_block_counts(field.shape, block_shape)
    if all(f > 0 for f in full):
        interior = tuple(slice(0, f * b) for f, b in zip(full, block_shape))
        sub = field[interior]
        recon = blockwise_stride_reconstruction(sub, block_shape, factor)
        rows = block_rows(sub, block_shape)
        rows_d2 = block_rows((sub - recon) ** 2, block_shape)
        span = rows.max(axis=1) - rows.min(axis=1)
        rms = np.sqrt(rows_d2.mean(axis=1))
        safe = np.where(span == 0.0, 1.0, span)
        vals = np.where(span == 0.0, 0.0, rms / safe)
        out[tuple(slice(0, f) for f in full)] = vals.reshape(full)
    for idx, slc in iter_edge_blocks(field.shape, block_shape):
        out[idx] = reconstruction_error(field[slc], factor)
    return out


def _reference_blockwise_reconstruction_errors(
    field: np.ndarray,
    block_shape: tuple[int, ...],
    factor: int,
) -> np.ndarray:
    """Scalar oracle: one :func:`reconstruction_error` call per block."""
    field = np.asarray(field, dtype=np.float64)
    validate_block_shape(field, block_shape)
    counts = block_counts(field.shape, block_shape)
    out = np.zeros(counts, dtype=np.float64)
    for idx in np.ndindex(*counts):
        slc = block_slice(idx, field.shape, block_shape)
        out[idx] = reconstruction_error(field[slc], factor)
    return out


@dataclass(frozen=True)
class IsosurfaceFidelity:
    """Isosurface comparison between full and reduced data."""

    full_triangles: int
    reduced_triangles: int
    full_area: float
    reduced_area: float

    @property
    def area_ratio(self) -> float:
        """Reduced / full surface area (1.0 = structure preserved)."""
        if self.full_area == 0.0:
            return 1.0
        return self.reduced_area / self.full_area

    @property
    def triangle_ratio(self) -> float:
        """Reduced / full triangle count (mesh resolution retained)."""
        if self.full_triangles == 0:
            return 1.0
        return self.reduced_triangles / self.full_triangles


def isosurface_fidelity(
    field: np.ndarray,
    isovalue: float,
    factor: int,
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> IsosurfaceFidelity:
    """Compare isosurfaces of ``field`` at full resolution and after
    stride-downsampling by ``factor`` (with spacing scaled to match)."""
    if factor < 1:
        raise PolicyError(f"factor must be >= 1, got {factor}")
    verts_f, tris_f = extract_isosurface(field, isovalue, spacing=spacing)
    reduced = downsample_stride(np.asarray(field, dtype=np.float64), factor)
    red_spacing = tuple(s * factor for s in spacing)
    if any(s < 2 for s in reduced.shape):
        verts_r, tris_r = np.zeros((0, 3)), np.zeros((0, 3), dtype=np.int64)
    else:
        verts_r, tris_r = extract_isosurface(reduced, isovalue, spacing=red_spacing)
    return IsosurfaceFidelity(
        full_triangles=int(len(tris_f)),
        reduced_triangles=int(len(tris_r)),
        full_area=surface_area(verts_f, tris_f),
        reduced_area=surface_area(verts_r, tris_r),
    )
