"""Error-bounded compression: the application layer's second reduction type.

Section 3 lists "compression rate" alongside the down-sample factor among
the data-reduction parameters the application-layer mechanism may select.
This module provides a real codec in the spirit of ISABELA/SZ-class
HPC compressors, built from stdlib + NumPy:

1. uniform quantization to a user-specified absolute-error bound
   (``tolerance`` as a fraction of the data range), then
2. DEFLATE (zlib) over the small-integer codes.

Smooth, low-entropy fields compress by orders of magnitude at tight
bounds; noisy high-entropy fields approach the quantization floor --
exactly the structure the entropy-driven policy exploits.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import PolicyError

__all__ = ["CompressedField", "compress_field", "decompress_field",
           "compression_ratio", "select_tolerance"]


@dataclass(frozen=True)
class CompressedField:
    """A compressed block with everything needed to reconstruct it."""

    payload: bytes
    shape: tuple[int, ...]
    minimum: float
    step: float  # quantization step in data units (0 for constant fields)
    tolerance: float

    @property
    def nbytes(self) -> int:
        """Size of the compressed payload."""
        return len(self.payload)


def compress_field(field: np.ndarray, tolerance: float = 1e-3) -> CompressedField:
    """Compress ``field`` with a point-wise error bound.

    ``tolerance`` is relative to the field's value range: every
    reconstructed sample differs from the original by at most
    ``tolerance * (max - min)``.
    """
    if not (0 < tolerance < 1):
        raise PolicyError(f"tolerance must be in (0, 1), got {tolerance}")
    field = np.ascontiguousarray(field, dtype=np.float64)
    if field.size == 0:
        raise PolicyError("cannot compress an empty field")
    if not np.isfinite(field).all():
        raise PolicyError("compression requires finite data")
    lo = float(field.min())
    hi = float(field.max())
    span = hi - lo
    if span == 0.0:
        payload = zlib.compress(b"", level=6)
        return CompressedField(payload, field.shape, lo, 0.0, tolerance)
    # Quantization step 2*eps guarantees |x - round(x)| <= eps.
    step = 2.0 * tolerance * span
    if step == 0.0:
        # Subnormal span: the step underflowed to exactly 0.0, so the
        # quantizer would divide by zero.  The span itself is below any
        # representable error bound -- store the field as constant.
        payload = zlib.compress(b"", level=6)
        return CompressedField(payload, field.shape, lo, 0.0, tolerance)
    codes = np.round((field - lo) / step)
    max_code = int(codes.max())
    dtype = np.uint16 if max_code < 2**16 else np.uint32
    raw = codes.astype(dtype).tobytes()
    payload = zlib.compress(raw, level=6)
    return CompressedField(payload, field.shape, lo, step, tolerance)


def decompress_field(compressed: CompressedField) -> np.ndarray:
    """Reconstruct the field (within the error bound)."""
    if compressed.step == 0.0:
        return np.full(compressed.shape, compressed.minimum)
    raw = zlib.decompress(compressed.payload)
    n = int(np.prod(compressed.shape))
    itemsize = len(raw) // n
    dtype = {2: np.uint16, 4: np.uint32}.get(itemsize)
    if dtype is None:
        raise PolicyError(f"corrupt payload: {len(raw)} bytes for {n} samples")
    codes = np.frombuffer(raw, dtype=dtype).reshape(compressed.shape)
    return compressed.minimum + codes.astype(np.float64) * compressed.step


def compression_ratio(field: np.ndarray, tolerance: float = 1e-3) -> float:
    """Original bytes / compressed bytes at the given bound."""
    compressed = compress_field(field, tolerance)
    if compressed.nbytes == 0:
        return float("inf")
    return np.asarray(field).astype(np.float64).nbytes / compressed.nbytes


def select_tolerance(
    field: np.ndarray,
    tolerances: tuple[float, ...],
    budget_bytes: float,
) -> tuple[float, CompressedField]:
    """Eq. 1-3 with compression: tightest hinted bound fitting the budget.

    Mirrors the down-sampling policy: try tolerances from tightest
    (highest fidelity) to loosest and return the first whose compressed
    size fits ``budget_bytes``; the loosest is returned (flagged by being
    over budget) when nothing fits.
    """
    if not tolerances:
        raise PolicyError("need at least one tolerance")
    ordered = sorted(tolerances)
    last = None
    for tolerance in ordered:
        last = compress_field(field, tolerance)
        if last.nbytes <= budget_bytes:
            return tolerance, last
    return ordered[-1], last
