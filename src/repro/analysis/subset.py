"""Value-range data subsetting with a block min/max index.

The paper lists "data subsetting" among the communication-free analyses
its approach extends to, and cites in-situ index building (FastBit-style)
as related work.  This module provides both halves:

- :class:`BlockRangeIndex` -- a per-block min/max summary built in one
  pass over a field (the in-situ part: cheap, local, mergeable);
- :func:`query_range` -- range queries that prune whole blocks through
  the index before touching raw data (the in-transit/query part).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PolicyError

__all__ = ["BlockRangeIndex", "query_range"]


@dataclass(frozen=True)
class _BlockEntry:
    slices: tuple[slice, ...]
    minimum: float
    maximum: float


class BlockRangeIndex:
    """Per-block min/max index over a dense field."""

    def __init__(self, field: np.ndarray, block_shape: tuple[int, ...]):
        if len(block_shape) != field.ndim:
            raise PolicyError(
                f"block_shape rank {len(block_shape)} != field rank {field.ndim}"
            )
        if any(b < 1 for b in block_shape):
            raise PolicyError(f"block extents must be >= 1: {block_shape}")
        self.field_shape = field.shape
        self.block_shape = tuple(block_shape)
        self._entries: list[_BlockEntry] = []
        counts = tuple(-(-s // b) for s, b in zip(field.shape, block_shape))
        for idx in np.ndindex(*counts):
            slices = tuple(
                slice(i * b, min((i + 1) * b, s))
                for i, b, s in zip(idx, block_shape, field.shape)
            )
            block = field[slices]
            finite = block[np.isfinite(block)]
            if finite.size == 0:
                self._entries.append(_BlockEntry(slices, np.inf, -np.inf))
            else:
                self._entries.append(
                    _BlockEntry(slices, float(finite.min()), float(finite.max()))
                )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Approximate index size: two floats per block."""
        return 16 * len(self._entries)

    def candidate_blocks(self, lo: float, hi: float) -> list[tuple[slice, ...]]:
        """Blocks whose [min, max] intersects [lo, hi]."""
        if lo > hi:
            raise PolicyError(f"empty query range [{lo}, {hi}]")
        return [
            e.slices for e in self._entries
            if e.maximum >= lo and e.minimum <= hi
        ]

    def selectivity(self, lo: float, hi: float) -> float:
        """Fraction of blocks the query must actually scan."""
        if not self._entries:
            return 0.0
        return len(self.candidate_blocks(lo, hi)) / len(self._entries)


def query_range(
    field: np.ndarray,
    lo: float,
    hi: float,
    index: BlockRangeIndex | None = None,
) -> np.ndarray:
    """Coordinates (``(n, ndim)`` int array) of cells with ``lo <= v <= hi``.

    With an ``index``, whole blocks outside the range are pruned before
    their cells are inspected; results are identical either way.
    """
    if lo > hi:
        raise PolicyError(f"empty query range [{lo}, {hi}]")
    if index is None:
        mask = (field >= lo) & (field <= hi)
        return np.argwhere(mask)
    if index.field_shape != field.shape:
        raise PolicyError(
            f"index built for shape {index.field_shape}, field is {field.shape}"
        )
    hits: list[np.ndarray] = []
    for slices in index.candidate_blocks(lo, hi):
        block = field[slices]
        local = np.argwhere((block >= lo) & (block <= hi))
        if local.size:
            offset = np.array([s.start for s in slices], dtype=np.int64)
            hits.append(local + offset)
    if not hits:
        return np.zeros((0, field.ndim), dtype=np.int64)
    return np.concatenate(hits, axis=0)
