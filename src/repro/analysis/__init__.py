"""Analysis services: the workflow's in-situ/in-transit kernels.

- :mod:`repro.analysis.downsample` -- spatial down-sampling operators and
  their memory-cost model (the application-layer adaptation's actuator).
- :mod:`repro.analysis.entropy` -- Shannon block entropy (Eq. 11) and
  entropy-driven per-block down-sampling factors.
- :mod:`repro.analysis.isosurface` -- 3-D isosurface extraction by
  marching tetrahedra (the table-free variant of marching cubes; see
  DESIGN.md for the substitution note) with watertight vertex welding.
- :mod:`repro.analysis.marching_squares` -- 2-D isocontours.
- :mod:`repro.analysis.statistics` -- descriptive-statistics kernel
  (the paper's "other scalable analysis" example).
- :mod:`repro.analysis.fidelity` -- quantitative fidelity metrics
  replacing the paper's rendered-image comparison (Fig. 6).
"""

from repro.analysis.compression import (
    CompressedField,
    compress_field,
    compression_ratio,
    decompress_field,
    select_tolerance,
)
from repro.analysis.downsample import (
    downsample_mean,
    downsample_stride,
    downsample_memory_cost,
    reduced_nbytes,
    upsample_nearest,
)
from repro.analysis.entropy import (
    block_entropies,
    entropy_downsample_factors,
    shannon_entropy,
)
from repro.analysis.isosurface import extract_isosurface, surface_area, surface_stats
from repro.analysis.marching_squares import extract_contours, contour_length
from repro.analysis.statistics import descriptive_statistics, merge_statistics
from repro.analysis.fidelity import reconstruction_error, isosurface_fidelity
from repro.analysis.subset import BlockRangeIndex, query_range

__all__ = [
    "BlockRangeIndex",
    "CompressedField",
    "block_entropies",
    "query_range",
    "compress_field",
    "compression_ratio",
    "contour_length",
    "decompress_field",
    "select_tolerance",
    "descriptive_statistics",
    "merge_statistics",
    "downsample_mean",
    "downsample_memory_cost",
    "downsample_stride",
    "entropy_downsample_factors",
    "extract_contours",
    "extract_isosurface",
    "isosurface_fidelity",
    "reconstruction_error",
    "reduced_nbytes",
    "shannon_entropy",
    "surface_area",
    "surface_stats",
    "upsample_nearest",
]
