"""3-D isosurface extraction by marching tetrahedra.

The paper's visualization service runs marching cubes.  We implement the
tetrahedral variant: each grid cube is split into six tetrahedra sharing
the main diagonal, and every tetrahedron is polygonised against the
isovalue.  The variant preserves all the properties the paper's placement
arguments rely on -- strictly local per-cell work, no communication,
output proportional to intersected cells -- while its 16-case table can
be *derived* in code (see ``_tet_triangle_table``) instead of copied, so
correctness is testable: the suite verifies closed surfaces, Euler
characteristic 2 for spheres, and sphere areas within discretization
error.

Vertices are welded exactly by grid-edge identity, so the result is a
watertight indexed mesh.

``field`` holds vertex samples with shape ``(nx, ny, nz)``; cube corners
are adjacent vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PolicyError

__all__ = ["SurfaceStats", "extract_isosurface", "surface_area", "surface_stats"]

# Cube corner offsets, Chombo/Bourke numbering adapted to (x, y, z).
_CORNERS = np.array(
    [
        (0, 0, 0),  # v0
        (1, 0, 0),  # v1
        (1, 1, 0),  # v2
        (0, 1, 0),  # v3
        (0, 0, 1),  # v4
        (1, 0, 1),  # v5
        (1, 1, 1),  # v6
        (0, 1, 1),  # v7
    ],
    dtype=np.int64,
)

# Six tetrahedra sharing the v0-v6 diagonal.  Neighbouring cubes split
# their shared faces along matching diagonals, making the mesh watertight.
_TETS = np.array(
    [
        (0, 5, 1, 6),
        (0, 1, 2, 6),
        (0, 2, 3, 6),
        (0, 3, 7, 6),
        (0, 7, 4, 6),
        (0, 4, 5, 6),
    ],
    dtype=np.int64,
)


def _tet_triangle_table() -> dict[int, list[tuple[tuple[int, int], ...]]]:
    """Triangles (as triples of corner-pair edges) for each 4-bit inside mask.

    Bit ``i`` of the mask set means local corner ``i`` is inside
    (value > isovalue).  One inside corner yields one triangle; two yield
    a quad split into two triangles; complements mirror.
    """
    table: dict[int, list[tuple[tuple[int, int], ...]]] = {}
    for mask in range(16):
        inside = [i for i in range(4) if mask >> i & 1]
        outside = [i for i in range(4) if not mask >> i & 1]
        tris: list[tuple[tuple[int, int], ...]] = []
        if len(inside) == 1:
            i = inside[0]
            j, k, l = outside
            tris = [((i, j), (i, k), (i, l))]
        elif len(inside) == 3:
            o = outside[0]
            j, k, l = inside
            tris = [((j, o), (k, o), (l, o))]
        elif len(inside) == 2:
            i, j = inside
            k, l = outside
            quad = ((i, k), (i, l), (j, l), (j, k))
            tris = [(quad[0], quad[1], quad[2]), (quad[0], quad[2], quad[3])]
        table[mask] = tris
    return table


_TRIANGLE_TABLE = _tet_triangle_table()


@dataclass(frozen=True)
class SurfaceStats:
    """Topology/geometry summary of an extracted surface."""

    n_vertices: int
    n_edges: int
    n_triangles: int
    euler_characteristic: int
    closed: bool
    area: float


def extract_isosurface(
    field: np.ndarray,
    isovalue: float,
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Extract the ``isovalue`` surface of ``field``.

    Returns ``(vertices, triangles)``: float ``(V, 3)`` positions and int
    ``(T, 3)`` indices.  Triangles are oriented with normals pointing
    from the inside (``field > isovalue``) toward the outside.  Cells
    containing NaN samples are skipped.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 3:
        raise PolicyError(f"field must be 3-D, got shape {field.shape}")
    if any(s < 2 for s in field.shape):
        raise PolicyError(f"field too small for isosurfacing: {field.shape}")
    nx, ny, nz = field.shape

    flat = field.ravel()
    # Candidate cubes: those whose corner values straddle the isovalue.
    base = (
        np.arange(nx - 1)[:, None, None] * (ny * nz)
        + np.arange(ny - 1)[None, :, None] * nz
        + np.arange(nz - 1)[None, None, :]
    ).ravel()
    corner_offsets = _CORNERS[:, 0] * (ny * nz) + _CORNERS[:, 1] * nz + _CORNERS[:, 2]
    cube_vals = flat[base[:, None] + corner_offsets[None, :]]
    finite = np.isfinite(cube_vals).all(axis=1)
    crossing = (
        (cube_vals > isovalue).any(axis=1) & (cube_vals <= isovalue).any(axis=1) & finite
    )
    base = base[crossing]
    if base.size == 0:
        return np.zeros((0, 3)), np.zeros((0, 3), dtype=np.int64)

    # All tets of the crossing cubes: global vertex ids (T, 4).
    tet_gids = base[:, None, None] + corner_offsets[_TETS][None, :, :]
    tet_gids = tet_gids.reshape(-1, 4)
    tet_vals = flat[tet_gids]
    inside = tet_vals > isovalue
    case = (inside * (1, 2, 4, 8)).sum(axis=1)

    edge_keys: list[np.ndarray] = []  # (n, 2) sorted global-id pairs, per corner
    tri_edge_a: list[np.ndarray] = []
    tri_edge_b: list[np.ndarray] = []
    flip_ref: list[np.ndarray] = []

    spacing_arr = np.asarray(spacing, dtype=np.float64)
    origin_arr = np.asarray(origin, dtype=np.float64)

    def gid_to_xyz(gids: np.ndarray) -> np.ndarray:
        x = gids // (ny * nz)
        rem = gids % (ny * nz)
        y = rem // nz
        z = rem % nz
        return np.stack([x, y, z], axis=-1).astype(np.float64)

    all_pairs: list[np.ndarray] = []  # (n_tris, 3, 2) global-id edge pairs
    all_ref: list[np.ndarray] = []  # (n_tris, 3) reference direction

    for mask, templates in _TRIANGLE_TABLE.items():
        if not templates:
            continue
        sel = np.nonzero(case == mask)[0]
        if sel.size == 0:
            continue
        gids = tet_gids[sel]
        ins = [i for i in range(4) if mask >> i & 1]
        outs = [i for i in range(4) if not mask >> i & 1]
        pos = gid_to_xyz(gids)  # (n, 4, 3)
        ref = pos[:, outs].mean(axis=1) - pos[:, ins].mean(axis=1)
        for tri in templates:
            pairs = np.stack(
                [np.stack([gids[:, a], gids[:, b]], axis=-1) for a, b in tri],
                axis=1,
            )  # (n, 3, 2)
            all_pairs.append(pairs)
            all_ref.append(ref)

    pairs = np.concatenate(all_pairs, axis=0)  # (T, 3, 2)
    refs = np.concatenate(all_ref, axis=0)  # (T, 3)

    # Interpolated position per (triangle, corner).
    va = flat[pairs[..., 0]]
    vb = flat[pairs[..., 1]]
    t = (isovalue - va) / (vb - va)
    pa = gid_to_xyz(pairs[..., 0])
    pb = gid_to_xyz(pairs[..., 1])
    pts = pa + t[..., None] * (pb - pa)  # (T, 3, 3) in index space

    # Weld vertices by (sorted) global edge key.
    keys = np.sort(pairs.reshape(-1, 2), axis=1)
    uniq, index = np.unique(keys, axis=0, return_inverse=True)
    verts = np.zeros((uniq.shape[0], 3))
    verts[index] = pts.reshape(-1, 3)  # identical per key; last write wins
    tris = index.reshape(-1, 3)

    # Drop degenerate triangles (duplicate welded vertices).
    ok = (
        (tris[:, 0] != tris[:, 1])
        & (tris[:, 1] != tris[:, 2])
        & (tris[:, 0] != tris[:, 2])
    )
    tris = tris[ok]
    refs = refs[ok]

    # Orient: normal must point from inside to outside.
    p0, p1, p2 = verts[tris[:, 0]], verts[tris[:, 1]], verts[tris[:, 2]]
    normals = np.cross(p1 - p0, p2 - p0)
    flip = (normals * refs).sum(axis=1) < 0
    tris[flip] = tris[flip][:, [0, 2, 1]]

    verts = origin_arr + verts * spacing_arr
    return verts, tris


def surface_area(verts: np.ndarray, tris: np.ndarray) -> float:
    """Total area of the triangle mesh."""
    if len(tris) == 0:
        return 0.0
    p0 = verts[tris[:, 0]]
    p1 = verts[tris[:, 1]]
    p2 = verts[tris[:, 2]]
    return float(0.5 * np.linalg.norm(np.cross(p1 - p0, p2 - p0), axis=1).sum())


def surface_stats(verts: np.ndarray, tris: np.ndarray) -> SurfaceStats:
    """Vertex/edge/face counts, Euler characteristic and closedness."""
    if len(tris) == 0:
        return SurfaceStats(0, 0, 0, 0, True, 0.0)
    edges = np.concatenate([tris[:, [0, 1]], tris[:, [1, 2]], tris[:, [2, 0]]])
    edges = np.sort(edges, axis=1)
    uniq, counts = np.unique(edges, axis=0, return_counts=True)
    used_vertices = np.unique(tris)
    v = int(used_vertices.size)
    e = int(uniq.shape[0])
    f = int(tris.shape[0])
    return SurfaceStats(
        n_vertices=v,
        n_edges=e,
        n_triangles=f,
        euler_characteristic=v - e + f,
        closed=bool((counts == 2).all()),
        area=surface_area(verts, tris),
    )
