"""Descriptive-statistics analysis kernel.

The paper notes its approach "could be extensible to other scalable
analysis approaches with no/rare communications, such as descriptive
statistic analysis, data subsetting, etc."  This module provides that
kernel: single-pass moments, extrema, histogram -- with a partial-result
merge so the statistics can be computed per-block in-situ and combined
in-transit (exactly the communication pattern the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PolicyError

__all__ = ["FieldStatistics", "descriptive_statistics", "merge_statistics"]


@dataclass(frozen=True)
class FieldStatistics:
    """Single-field summary; mergeable across blocks."""

    count: int
    mean: float
    m2: float  # sum of squared deviations (Welford)
    minimum: float
    maximum: float
    histogram: np.ndarray
    bin_edges: np.ndarray

    @property
    def variance(self) -> float:
        """Population variance."""
        return self.m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return float(np.sqrt(self.variance))


def descriptive_statistics(
    field: np.ndarray,
    bins: int = 64,
    value_range: tuple[float, float] | None = None,
) -> FieldStatistics:
    """Summary statistics of the finite values of ``field``."""
    if bins < 1:
        raise PolicyError(f"bins must be >= 1, got {bins}")
    flat = np.asarray(field, dtype=np.float64).ravel()
    flat = flat[np.isfinite(flat)]
    if flat.size == 0:
        edges = np.linspace(0.0, 1.0, bins + 1)
        return FieldStatistics(0, 0.0, 0.0, np.nan, np.nan, np.zeros(bins, int), edges)
    if value_range is None:
        lo, hi = float(flat.min()), float(flat.max())
        if lo == hi:
            hi = lo + 1.0
        value_range = (lo, hi)
    hist, edges = np.histogram(flat, bins=bins, range=value_range)
    mean = float(flat.mean())
    m2 = float(((flat - mean) ** 2).sum())
    return FieldStatistics(
        count=int(flat.size),
        mean=mean,
        m2=m2,
        minimum=float(flat.min()),
        maximum=float(flat.max()),
        histogram=hist,
        bin_edges=edges,
    )


def merge_statistics(a: FieldStatistics, b: FieldStatistics) -> FieldStatistics:
    """Combine two partial summaries (Chan et al. parallel-variance merge).

    Histograms must share bin edges (compute blocks with a common
    ``value_range``), as they would in a real in-situ deployment.
    """
    if a.count == 0:
        return b
    if b.count == 0:
        return a
    if not np.array_equal(a.bin_edges, b.bin_edges):
        raise PolicyError("cannot merge statistics with different bin edges")
    n = a.count + b.count
    delta = b.mean - a.mean
    mean = a.mean + delta * b.count / n
    m2 = a.m2 + b.m2 + delta * delta * a.count * b.count / n
    return FieldStatistics(
        count=n,
        mean=mean,
        m2=m2,
        minimum=min(a.minimum, b.minimum),
        maximum=max(a.maximum, b.maximum),
        histogram=a.histogram + b.histogram,
        bin_edges=a.bin_edges,
    )
