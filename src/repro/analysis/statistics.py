"""Descriptive-statistics analysis kernel.

The paper notes its approach "could be extensible to other scalable
analysis approaches with no/rare communications, such as descriptive
statistic analysis, data subsetting, etc."  This module provides that
kernel: single-pass moments, extrema, histogram -- with a partial-result
merge so the statistics can be computed per-block in-situ and combined
in-transit (exactly the communication pattern the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis._blocks import (
    block_counts,
    block_ids,
    block_rows,
    block_slice,
    blockwise_histogram,
    full_block_counts,
    linspace_rows,
    validate_block_shape,
)
from repro.errors import PolicyError

__all__ = [
    "FieldStatistics",
    "blockwise_statistics",
    "descriptive_statistics",
    "merge_statistics",
]


@dataclass(frozen=True)
class FieldStatistics:
    """Single-field summary; mergeable across blocks."""

    count: int
    mean: float
    m2: float  # sum of squared deviations (Welford)
    minimum: float
    maximum: float
    histogram: np.ndarray
    bin_edges: np.ndarray

    @property
    def variance(self) -> float:
        """Population variance."""
        return self.m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return float(np.sqrt(self.variance))


def descriptive_statistics(
    field: np.ndarray,
    bins: int = 64,
    value_range: tuple[float, float] | None = None,
) -> FieldStatistics:
    """Summary statistics of the finite values of ``field``."""
    if bins < 1:
        raise PolicyError(f"bins must be >= 1, got {bins}")
    flat = np.asarray(field, dtype=np.float64).ravel()
    flat = flat[np.isfinite(flat)]
    if flat.size == 0:
        edges = np.linspace(0.0, 1.0, bins + 1)
        return FieldStatistics(0, 0.0, 0.0, np.nan, np.nan, np.zeros(bins, int), edges)
    if value_range is None:
        lo, hi = float(flat.min()), float(flat.max())
        if lo == hi:
            hi = lo + 1.0
        value_range = (lo, hi)
    hist, edges = np.histogram(flat, bins=bins, range=value_range)
    mean = float(flat.mean())
    m2 = float(((flat - mean) ** 2).sum())
    return FieldStatistics(
        count=int(flat.size),
        mean=mean,
        m2=m2,
        minimum=float(flat.min()),
        maximum=float(flat.max()),
        histogram=hist,
        bin_edges=edges,
    )


def blockwise_statistics(
    field: np.ndarray,
    block_shape: tuple[int, ...],
    bins: int = 64,
    value_range: tuple[float, float] | None = None,
) -> list[FieldStatistics]:
    """:func:`descriptive_statistics` of every block, in one pass.

    Returns one summary per block in C order over the block grid
    (``np.ndindex`` order).  Counts, extrema, and histograms come from a
    single routing pass over the field; means and second moments of
    fully populated all-finite blocks reduce contiguous rows in the same
    element order as the per-block slice, so the fast path matches
    :func:`_reference_blockwise_statistics` bit for bit.  Blocks with
    missing values (NaNs or trailing partial extents) fall back to the
    scalar path.
    """
    if bins < 1:
        raise PolicyError(f"bins must be >= 1, got {bins}")
    field = np.asarray(field, dtype=np.float64)
    validate_block_shape(field, block_shape)
    counts_shape = block_counts(field.shape, block_shape)
    nblocks = int(np.prod(counts_shape)) if counts_shape else 1
    if field.size == 0:
        return [
            descriptive_statistics(field[block_slice(idx, field.shape, block_shape)],
                                   bins=bins, value_range=value_range)
            for idx in np.ndindex(*counts_shape)
        ]
    flat = field.ravel()
    bids = block_ids(field.shape, block_shape).ravel()
    finite = np.isfinite(flat)
    values = flat[finite]
    vbids = bids[finite]
    fcounts = np.bincount(vbids, minlength=nblocks)
    mins = np.full(nblocks, np.inf)
    maxs = np.full(nblocks, -np.inf)
    np.minimum.at(mins, vbids, values)
    np.maximum.at(maxs, vbids, values)
    if value_range is not None:
        lo, hi = float(value_range[0]), float(value_range[1])
        if lo == hi:
            # np.histogram widens a degenerate explicit range to +-0.5.
            lo, hi = lo - 0.5, hi + 0.5
        lo_b = np.full(nblocks, lo)
        hi_b = np.full(nblocks, hi)
    else:
        lo_b = mins.copy()
        hi_b = maxs.copy()
        degenerate = (lo_b == hi_b) & (fcounts > 0)
        hi_b[degenerate] = lo_b[degenerate] + 1.0
        empty = fcounts == 0
        lo_b[empty] = 0.0
        hi_b[empty] = 1.0
    hist = blockwise_histogram(values, vbids, nblocks, bins, lo_b, hi_b)
    edges = linspace_rows(lo_b, hi_b, bins + 1)

    vol = int(np.prod(block_shape))
    means = np.zeros(nblocks)
    m2s = np.zeros(nblocks)
    fast = np.zeros(nblocks, dtype=bool)
    full = full_block_counts(field.shape, block_shape)
    if all(f > 0 for f in full):
        interior = tuple(slice(0, f * b) for f, b in zip(full, block_shape))
        rows = block_rows(field[interior], block_shape)
        grid = np.indices(full).reshape(len(full), -1)
        gids = np.ravel_multi_index(tuple(grid), counts_shape)
        ok = fcounts[gids] == vol
        if ok.any():
            sel = rows[ok]
            mu = sel.mean(axis=1)
            m2 = ((sel - mu[:, None]) ** 2).sum(axis=1)
            ids = gids[ok]
            means[ids] = mu
            m2s[ids] = m2
            fast[ids] = True

    stats: list[FieldStatistics] = []
    for k in range(nblocks):
        if fast[k]:
            stats.append(
                FieldStatistics(
                    count=vol,
                    mean=float(means[k]),
                    m2=float(m2s[k]),
                    minimum=float(mins[k]),
                    maximum=float(maxs[k]),
                    histogram=hist[k],
                    bin_edges=edges[k],
                )
            )
        else:
            idx = np.unravel_index(k, counts_shape)
            slc = block_slice(idx, field.shape, block_shape)
            stats.append(
                descriptive_statistics(field[slc], bins=bins, value_range=value_range)
            )
    return stats


def _reference_blockwise_statistics(
    field: np.ndarray,
    block_shape: tuple[int, ...],
    bins: int = 64,
    value_range: tuple[float, float] | None = None,
) -> list[FieldStatistics]:
    """Scalar oracle: one :func:`descriptive_statistics` call per block."""
    field = np.asarray(field, dtype=np.float64)
    validate_block_shape(field, block_shape)
    counts = block_counts(field.shape, block_shape)
    return [
        descriptive_statistics(field[block_slice(idx, field.shape, block_shape)],
                               bins=bins, value_range=value_range)
        for idx in np.ndindex(*counts)
    ]


def merge_statistics(a: FieldStatistics, b: FieldStatistics) -> FieldStatistics:
    """Combine two partial summaries (Chan et al. parallel-variance merge).

    Histograms must share bin edges (compute blocks with a common
    ``value_range``), as they would in a real in-situ deployment.
    """
    if a.count == 0:
        return b
    if b.count == 0:
        return a
    if not np.array_equal(a.bin_edges, b.bin_edges):
        raise PolicyError("cannot merge statistics with different bin edges")
    n = a.count + b.count
    delta = b.mean - a.mean
    mean = a.mean + delta * b.count / n
    m2 = a.m2 + b.m2 + delta * delta * a.count * b.count / n
    return FieldStatistics(
        count=n,
        mean=mean,
        m2=m2,
        minimum=min(a.minimum, b.minimum),
        maximum=max(a.maximum, b.maximum),
        histogram=a.histogram + b.histogram,
        bin_edges=a.bin_edges,
    )
