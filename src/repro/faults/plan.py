"""The fault model: typed, validated, seedable perturbation plans.

A :class:`FaultPlan` is an immutable description of *what goes wrong and
when* during one simulated run: staging cores dying and returning, network
links browning out, analysis service straggling, staged objects being
corrupted in flight or at rest.  The plan is pure data -- applying it is
the :class:`~repro.faults.injector.FaultInjector`'s job -- so a plan can
be hashed into experiment cache keys, serialized next to results, and
replayed bit-identically.

Determinism contract:

- a plan built from explicit faults is trivially deterministic;
- the scenario builders in :mod:`repro.faults.scenarios` derive every
  random choice from a caller-supplied integer seed via
  ``numpy.random.default_rng``, so (scenario, seed, horizon) is a pure
  function to a plan;
- injection itself introduces no randomness: timed faults fire at their
  ``at`` timestamps on the simulated clock (ties broken by arming order,
  exactly the event kernel's insertion-order rule) and per-step faults
  are consumed in attempt order.

:data:`FAULT_KINDS` is the closed registry of fault types, mirrored by
the table in ``docs/faults.md`` (the docs-consistency suite keeps the
two in sync, like ``EVENT_KINDS``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields as dataclass_fields
from typing import ClassVar, Iterable, Union

from repro.errors import FaultError

__all__ = [
    "FAULT_KINDS",
    "CoreLoss",
    "CoreRestore",
    "Fault",
    "FaultPlan",
    "LinkDegrade",
    "ObjectCorrupt",
    "ObjectDrop",
    "Straggler",
]

#: Every fault type the injector can apply, with a one-line meaning.
FAULT_KINDS: dict[str, str] = {
    "staging.core_loss": "kill staging cores at a simulated time (all dead "
    "= substrate unreachable)",
    "staging.core_restore": "return previously failed staging cores to the pool",
    "network.degrade": "scale a link's bandwidth/latency over a time window",
    "staging.straggler": "multiply staging service times over a time window",
    "staging.object_drop": "corrupt a step's staged object in flight; "
    "ingest retries with backoff",
    "staging.object_corrupt": "corrupt a step's staged object at rest; "
    "analysis re-runs from the staged copy",
}


@dataclass(frozen=True)
class CoreLoss:
    """Kill ``cores`` staging cores at simulated time ``at``."""

    kind: ClassVar[str] = "staging.core_loss"
    at: float
    cores: int

    def validate(self) -> None:
        if self.at < 0:
            raise FaultError(f"{self.kind}: time must be >= 0, got {self.at}")
        if self.cores < 1:
            raise FaultError(f"{self.kind}: cores must be >= 1, got {self.cores}")


@dataclass(frozen=True)
class CoreRestore:
    """Return ``cores`` previously failed staging cores at time ``at``."""

    kind: ClassVar[str] = "staging.core_restore"
    at: float
    cores: int

    def validate(self) -> None:
        if self.at < 0:
            raise FaultError(f"{self.kind}: time must be >= 0, got {self.at}")
        if self.cores < 1:
            raise FaultError(f"{self.kind}: cores must be >= 1, got {self.cores}")


@dataclass(frozen=True)
class LinkDegrade:
    """Scale one link's bandwidth/latency over ``[at, at + duration)``.

    ``bandwidth_factor`` multiplies capacity (0.1 = a 10x brownout);
    ``latency_factor`` multiplies propagation delay.  Overlapping windows
    on the same link compose multiplicatively and restore exactly.
    """

    kind: ClassVar[str] = "network.degrade"
    at: float
    duration: float
    src: str = "sim"
    dst: str = "staging"
    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0

    def validate(self) -> None:
        if self.at < 0:
            raise FaultError(f"{self.kind}: time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise FaultError(
                f"{self.kind}: duration must be positive, got {self.duration}"
            )
        if self.bandwidth_factor <= 0:
            raise FaultError(
                f"{self.kind}: bandwidth_factor must be positive, "
                f"got {self.bandwidth_factor}"
            )
        if self.latency_factor < 0:
            raise FaultError(
                f"{self.kind}: latency_factor must be >= 0, "
                f"got {self.latency_factor}"
            )


@dataclass(frozen=True)
class Straggler:
    """Multiply staging service times by ``factor`` over a window.

    The factor is sampled at service start: a job beginning inside
    ``[at, at + duration)`` runs ``factor`` times slower end to end.
    Overlapping windows compose multiplicatively.
    """

    kind: ClassVar[str] = "staging.straggler"
    at: float
    duration: float
    factor: float

    def validate(self) -> None:
        if self.at < 0:
            raise FaultError(f"{self.kind}: time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise FaultError(
                f"{self.kind}: duration must be positive, got {self.duration}"
            )
        if self.factor < 1.0:
            raise FaultError(
                f"{self.kind}: factor must be >= 1, got {self.factor}"
            )


@dataclass(frozen=True)
class ObjectDrop:
    """Corrupt the first ``count`` ingest attempts for ``step`` in flight.

    Each dropped attempt costs its full transfer time (the corruption is
    detected on arrival) and is retried under the staging area's
    :class:`~repro.staging.messaging.RetryPolicy`; exhausting the policy
    raises :class:`~repro.errors.StagingError`.
    """

    kind: ClassVar[str] = "staging.object_drop"
    step: int
    count: int = 1

    def validate(self) -> None:
        if self.step < 0:
            raise FaultError(f"{self.kind}: step must be >= 0, got {self.step}")
        if self.count < 1:
            raise FaultError(f"{self.kind}: count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class ObjectCorrupt:
    """Corrupt ``step``'s staged object at rest, ``repeats`` times.

    Detected when the analysis finishes; the job re-runs from the staged
    copy (analysis is idempotent), so each corruption costs one extra
    service pass.
    """

    kind: ClassVar[str] = "staging.object_corrupt"
    step: int
    repeats: int = 1

    def validate(self) -> None:
        if self.step < 0:
            raise FaultError(f"{self.kind}: step must be >= 0, got {self.step}")
        if self.repeats < 1:
            raise FaultError(
                f"{self.kind}: repeats must be >= 1, got {self.repeats}"
            )


Fault = Union[CoreLoss, CoreRestore, LinkDegrade, Straggler, ObjectDrop, ObjectCorrupt]

#: Fault types that fire at a scheduled simulated time (have an ``at``).
TIMED_KINDS = (CoreLoss, CoreRestore, LinkDegrade, Straggler)
#: Fault types consumed lazily when the staging area touches the step.
STEP_KINDS = (ObjectDrop, ObjectCorrupt)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated collection of faults for one run.

    Construct with explicit faults (``FaultPlan([CoreLoss(at=5.0,
    cores=32)])``) or via a scenario builder
    (:mod:`repro.faults.scenarios`).  Timed faults are kept sorted by
    ``(at, construction order)`` so arming is deterministic.
    """

    faults: tuple[Fault, ...] = ()

    def __init__(self, faults: Iterable[Fault] = ()):
        items = tuple(faults)
        for fault in items:
            if not isinstance(fault, TIMED_KINDS + STEP_KINDS):
                raise FaultError(f"not a fault: {fault!r}")
            fault.validate()
        # Stable sort: timed faults by firing time, step faults at the end
        # in construction order (they have no clock position).
        order = {id(f): i for i, f in enumerate(items)}
        items = tuple(
            sorted(
                items,
                key=lambda f: (getattr(f, "at", float("inf")), order[id(f)]),
            )
        )
        object.__setattr__(self, "faults", items)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan that perturbs nothing (injection becomes a no-op)."""
        return cls(())

    # -- views the injector consumes --------------------------------------

    def timed(self) -> tuple[Fault, ...]:
        """The faults that fire at a scheduled simulated time."""
        return tuple(f for f in self.faults if isinstance(f, TIMED_KINDS))

    def drops_by_step(self) -> dict[int, int]:
        """Total in-flight corruptions per step."""
        out: dict[int, int] = {}
        for fault in self.faults:
            if isinstance(fault, ObjectDrop):
                out[fault.step] = out.get(fault.step, 0) + fault.count
        return out

    def corrupts_by_step(self) -> dict[int, int]:
        """Total at-rest corruptions per step."""
        out: dict[int, int] = {}
        for fault in self.faults:
            if isinstance(fault, ObjectCorrupt):
                out[fault.step] = out.get(fault.step, 0) + fault.repeats
        return out

    # -- serialization / cache identity ------------------------------------

    def as_dicts(self) -> list[dict]:
        """JSON-ready representation, one dict per fault (kind + fields)."""
        out = []
        for fault in self.faults:
            payload = {"kind": fault.kind}
            for spec in dataclass_fields(fault):
                payload[spec.name] = getattr(fault, spec.name)
            out.append(payload)
        return out

    def cache_token(self) -> str:
        """A stable content hash of the plan.

        :meth:`repro.experiments.cache.ExperimentCache.key` folds this
        into the cache key for any parameter exposing ``cache_token()``,
        so artifacts computed under one fault plan are never served to
        another (see ``docs/performance.md``).
        """
        payload = json.dumps(self.as_dicts(), sort_keys=True)
        return "faultplan:" + hashlib.sha256(payload.encode()).hexdigest()[:16]

    def describe(self) -> str:
        """One line per fault, firing order, for reports and the CLI."""
        if not self.faults:
            return "(empty fault plan)"
        lines = []
        for fault in self.faults:
            detail = ", ".join(
                f"{spec.name}={getattr(fault, spec.name)}"
                for spec in dataclass_fields(fault)
            )
            lines.append(f"{fault.kind}({detail})")
        return "\n".join(lines)
