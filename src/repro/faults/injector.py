"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live simulation.

The injector is the only piece of the fault subsystem that touches
runtime objects.  It is wired in exactly like the tracer/ledger hooks:
components accept ``faults=None`` and every query the hot path makes
(:meth:`FaultInjector.may_drop`, :meth:`FaultInjector.service_multiplier`,
...) is guarded by an ``is not None`` test at the call site, so a run
without an injector executes byte-identical code.

Lifecycle::

    injector = FaultInjector(plan, tracer=tracer, metrics=metrics)
    sim = Simulator(faults=injector)          # attach_simulator
    area = StagingArea(..., faults=injector)  # attach_staging
    injector.attach_network(net)
    injector.arm()                            # schedules the timed faults

:class:`~repro.workflow.driver.CoupledWorkflow` performs all four steps
when given ``faults=``.  Timed faults fire at their planned simulated
times; per-step faults (drops/corruptions) are consumed when the staging
area touches that step.  Every application emits a ``fault.injected``
trace event and bumps the ``faults.injected`` counter; windowed faults
additionally emit ``fault.cleared`` when they end.
"""

from __future__ import annotations

from repro.errors import FaultError
from repro.faults.plan import (
    CoreLoss,
    CoreRestore,
    FaultPlan,
    LinkDegrade,
    ObjectCorrupt,
    ObjectDrop,
    Straggler,
)
from repro.observability.events import FAULT_CLEARED, FAULT_INJECTED

__all__ = ["FaultInjector"]


class _DegradedLink:
    """Exact-restore bookkeeping for one link under degrade windows.

    The link's pristine bandwidth/latency are recorded when the first
    window opens and written back verbatim when the last one closes, so
    overlapping windows compose multiplicatively without accumulating
    float drift.
    """

    __slots__ = ("base_bandwidth", "base_latency", "factors")

    def __init__(self, base_bandwidth: float, base_latency: float):
        self.base_bandwidth = base_bandwidth
        self.base_latency = base_latency
        self.factors: list[tuple[float, float]] = []

    def current(self) -> tuple[float, float]:
        bandwidth, latency = self.base_bandwidth, self.base_latency
        for bw_factor, lat_factor in self.factors:
            bandwidth *= bw_factor
            latency *= lat_factor
        return bandwidth, latency


class FaultInjector:
    """Schedules and serves one :class:`FaultPlan` against a live run."""

    def __init__(self, plan: FaultPlan, tracer=None, metrics=None):
        if not isinstance(plan, FaultPlan):
            raise FaultError(f"FaultInjector needs a FaultPlan, got {plan!r}")
        self.plan = plan
        self.tracer = tracer
        self.metrics = metrics
        self.sim = None
        self.network = None
        self.staging = None
        self.injected = 0
        self._armed = False
        self._drops = plan.drops_by_step()
        self._corrupts = plan.corrupts_by_step()
        self._stragglers = tuple(
            f for f in plan.timed() if isinstance(f, Straggler)
        )
        self._degraded: dict[object, _DegradedLink] = {}

    # -- wiring ------------------------------------------------------------

    def attach_simulator(self, sim) -> None:
        """Bind the event kernel (called by ``Simulator(faults=...)``)."""
        self.sim = sim

    def attach_network(self, network) -> None:
        """Bind the interconnect whose links degrade windows will scale."""
        self.network = network

    def attach_staging(self, staging) -> None:
        """Bind the staging area (called by ``StagingArea(faults=...)``)."""
        self.staging = staging

    def arm(self) -> None:
        """Validate the wiring and schedule every timed fault.

        Raises :class:`FaultError` if a fault in the plan targets a
        component that was never attached, or if called twice.
        """
        if self._armed:
            raise FaultError("fault injector already armed")
        timed = self.plan.timed()
        if (timed or self._drops or self._corrupts) and self.sim is None:
            raise FaultError("fault plan needs a simulator: pass "
                            "Simulator(faults=injector)")
        needs_staging = bool(
            self._drops
            or self._corrupts
            or any(isinstance(f, (CoreLoss, CoreRestore, Straggler)) for f in timed)
        )
        if needs_staging and self.staging is None:
            raise FaultError("fault plan targets staging but no StagingArea "
                            "was attached (pass StagingArea(..., faults=injector))")
        if any(isinstance(f, LinkDegrade) for f in timed) and self.network is None:
            raise FaultError("fault plan degrades links but no Network was "
                            "attached (call injector.attach_network(net))")
        self._armed = True
        for fault in timed:
            if isinstance(fault, CoreLoss):
                self.sim._schedule_at(fault.at, self._apply_core_loss, fault)
            elif isinstance(fault, CoreRestore):
                self.sim._schedule_at(fault.at, self._apply_core_restore, fault)
            elif isinstance(fault, LinkDegrade):
                self.sim._schedule_at(fault.at, self._open_degrade, fault)
                self.sim._schedule_at(
                    fault.at + fault.duration, self._close_degrade, fault
                )
            elif isinstance(fault, Straggler):
                self.sim._schedule_at(fault.at, self._open_straggler, fault)
                self.sim._schedule_at(
                    fault.at + fault.duration, self._close_straggler, fault
                )

    # -- emission helpers --------------------------------------------------

    def _record_injection(self, kind: str, **fields) -> None:
        self.injected += 1
        if self.metrics is not None:
            self.metrics.counter("faults.injected").inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(FAULT_INJECTED, fault=kind, **fields)

    def _record_clear(self, kind: str, **fields) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(FAULT_CLEARED, fault=kind, **fields)

    # -- timed fault callbacks ---------------------------------------------

    def _apply_core_loss(self, fault: CoreLoss) -> None:
        killed = self.staging.fail_cores(fault.cores)
        self._record_injection(
            fault.kind,
            cores=killed,
            healthy=self.staging.healthy_cores,
            reachable=self.staging.reachable,
        )

    def _apply_core_restore(self, fault: CoreRestore) -> None:
        revived = self.staging.restore_cores(fault.cores)
        self._record_injection(
            fault.kind,
            cores=revived,
            healthy=self.staging.healthy_cores,
            reachable=self.staging.reachable,
        )

    def _open_degrade(self, fault: LinkDegrade) -> None:
        link = self.network.link_between(fault.src, fault.dst)
        state = self._degraded.get(link)
        if state is None:
            state = _DegradedLink(link.bandwidth, link.latency)
            self._degraded[link] = state
        state.factors.append((fault.bandwidth_factor, fault.latency_factor))
        bandwidth, latency = state.current()
        self.network.update_link(fault.src, fault.dst, bandwidth, latency)
        self._record_injection(
            fault.kind,
            src=fault.src,
            dst=fault.dst,
            bandwidth_factor=fault.bandwidth_factor,
            latency_factor=fault.latency_factor,
            until=fault.at + fault.duration,
        )

    def _close_degrade(self, fault: LinkDegrade) -> None:
        link = self.network.link_between(fault.src, fault.dst)
        state = self._degraded[link]
        state.factors.remove((fault.bandwidth_factor, fault.latency_factor))
        if state.factors:
            bandwidth, latency = state.current()
        else:
            bandwidth, latency = state.base_bandwidth, state.base_latency
            del self._degraded[link]
        self.network.update_link(fault.src, fault.dst, bandwidth, latency)
        self._record_clear(fault.kind, src=fault.src, dst=fault.dst)

    def _open_straggler(self, fault: Straggler) -> None:
        self._record_injection(
            fault.kind, factor=fault.factor, until=fault.at + fault.duration
        )

    def _close_straggler(self, fault: Straggler) -> None:
        self._record_clear(fault.kind, factor=fault.factor)

    # -- hot-path queries (guarded by `faults is not None` at call sites) ----

    def service_multiplier(self, now: float) -> float:
        """Product of straggler factors whose window contains ``now``.

        Sampled once at service start: a job starting inside a window
        runs slower end to end, a job starting outside is unaffected.
        """
        factor = 1.0
        for straggler in self._stragglers:
            if straggler.at <= now < straggler.at + straggler.duration:
                factor *= straggler.factor
        return factor

    def may_drop(self, step: int) -> bool:
        """True if the plan still holds in-flight corruptions for ``step``."""
        return self._drops.get(step, 0) > 0

    def consume_drop(self, step: int) -> bool:
        """Consume one planned in-flight corruption for ``step``, if any."""
        remaining = self._drops.get(step, 0)
        if remaining <= 0:
            return False
        self._drops[step] = remaining - 1
        self._record_injection(ObjectDrop.kind, step=step)
        return True

    def consume_corrupt(self, step: int) -> bool:
        """Consume one planned at-rest corruption for ``step``, if any."""
        remaining = self._corrupts.get(step, 0)
        if remaining <= 0:
            return False
        self._corrupts[step] = remaining - 1
        self._record_injection(ObjectCorrupt.kind, step=step)
        return True
