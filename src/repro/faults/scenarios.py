"""Named, seedable fault scenarios for the CLI and tests.

Each builder maps ``(horizon, seed, staging_cores, steps)`` to a
:class:`~repro.faults.plan.FaultPlan` deterministically: all randomness
comes from ``numpy.random.default_rng(seed)``, and fault timings are
expressed as fractions of the fault-free run's end-to-end time
(``horizon``), so the same scenario stresses the same phase of any
workflow regardless of its absolute scale.

:data:`SCENARIOS` is the registry the ``python -m repro faults`` CLI
dispatches on; ``docs/faults.md`` documents every entry and the
docs-consistency suite keeps the two in sync.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import FaultError
from repro.faults.plan import (
    CoreLoss,
    CoreRestore,
    FaultPlan,
    LinkDegrade,
    ObjectCorrupt,
    ObjectDrop,
    Straggler,
)

__all__ = ["SCENARIOS", "build_scenario"]


def _core_loss(horizon, rng, staging_cores, steps):
    lost = max(1, staging_cores // 2)
    return FaultPlan([
        CoreLoss(at=0.3 * horizon, cores=lost),
        CoreRestore(at=0.7 * horizon, cores=lost),
    ])


def _blackout(horizon, rng, staging_cores, steps):
    return FaultPlan([
        CoreLoss(at=0.35 * horizon, cores=staging_cores),
        CoreRestore(at=0.65 * horizon, cores=staging_cores),
    ])


def _link_brownout(horizon, rng, staging_cores, steps):
    return FaultPlan([
        LinkDegrade(
            at=0.25 * horizon,
            duration=0.4 * horizon,
            bandwidth_factor=0.1,
            latency_factor=10.0,
        ),
    ])


def _stragglers(horizon, rng, staging_cores, steps):
    faults = []
    for _ in range(3):
        start = float(rng.uniform(0.1, 0.8)) * horizon
        length = float(rng.uniform(0.05, 0.2)) * horizon
        factor = float(rng.uniform(2.0, 6.0))
        faults.append(Straggler(at=start, duration=length, factor=factor))
    return FaultPlan(faults)


def _flaky_ingest(horizon, rng, staging_cores, steps):
    faults = []
    for step in range(steps):
        if rng.random() < 0.25:
            faults.append(ObjectDrop(step=step, count=int(rng.integers(1, 3))))
    if not faults:
        faults.append(ObjectDrop(step=0, count=1))
    return FaultPlan(faults)


def _cascade(horizon, rng, staging_cores, steps):
    lost = max(1, staging_cores // 2)
    corrupt_step = int(rng.integers(0, max(1, steps // 2)))
    return FaultPlan([
        LinkDegrade(
            at=0.15 * horizon,
            duration=0.25 * horizon,
            bandwidth_factor=0.2,
            latency_factor=4.0,
        ),
        CoreLoss(at=0.3 * horizon, cores=lost),
        Straggler(at=0.4 * horizon, duration=0.2 * horizon, factor=3.0),
        CoreRestore(at=0.75 * horizon, cores=lost),
        ObjectCorrupt(step=corrupt_step, repeats=1),
    ])


#: Registry: scenario name -> (one-line description, builder).
SCENARIOS: dict[str, tuple[str, Callable]] = {
    "core-loss": (
        "half the staging cores die mid-run and return later",
        _core_loss,
    ),
    "blackout": (
        "every staging core dies for the middle third of the run "
        "(forces the in-situ fallback)",
        _blackout,
    ),
    "link-brownout": (
        "the sim->staging link runs at 10% bandwidth and 10x latency "
        "for a window",
        _link_brownout,
    ),
    "stragglers": (
        "three random windows where staging service runs 2-6x slower",
        _stragglers,
    ),
    "flaky-ingest": (
        "~25% of steps have their ingest corrupted in flight and retried",
        _flaky_ingest,
    ),
    "cascade": (
        "brownout, then core loss, then stragglers, plus one at-rest "
        "corruption",
        _cascade,
    ),
}


def build_scenario(
    name: str,
    horizon: float,
    seed: int = 0,
    staging_cores: int = 64,
    steps: int = 20,
) -> FaultPlan:
    """Build the named scenario's plan for a run of ``horizon`` seconds."""
    if name not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        raise FaultError(f"unknown fault scenario {name!r}; known: {known}")
    if horizon <= 0:
        raise FaultError(f"horizon must be positive, got {horizon}")
    _description, builder = SCENARIOS[name]
    rng = np.random.default_rng(seed)
    return builder(horizon, rng, staging_cores, steps)
