"""Deterministic fault injection for the simulated machine and staging.

The paper's autonomic loop is only interesting if it keeps adapting when
the substrate misbehaves.  This package provides the perturbation layer:

- :mod:`repro.faults.plan` -- :class:`FaultPlan` and the typed fault
  records (:data:`FAULT_KINDS` is the closed registry);
- :mod:`repro.faults.injector` -- :class:`FaultInjector`, which schedules
  a plan against a live :class:`~repro.hpc.event.Simulator`,
  :class:`~repro.hpc.network.Network` and
  :class:`~repro.staging.area.StagingArea`;
- :mod:`repro.faults.scenarios` -- named seedable scenarios
  (:data:`SCENARIOS`) used by ``python -m repro faults``.

Everything is opt-in: components take ``faults=None`` and a run without
an injector is byte-identical to one built before this package existed.
See ``docs/faults.md`` for the fault model and recovery-policy matrix.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    CoreLoss,
    CoreRestore,
    Fault,
    FaultPlan,
    LinkDegrade,
    ObjectCorrupt,
    ObjectDrop,
    Straggler,
)
from repro.faults.scenarios import SCENARIOS, build_scenario

__all__ = [
    "FAULT_KINDS",
    "SCENARIOS",
    "CoreLoss",
    "CoreRestore",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "LinkDegrade",
    "ObjectCorrupt",
    "ObjectDrop",
    "Straggler",
    "build_scenario",
]
