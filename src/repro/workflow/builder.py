"""A declarative programming model for coupled adaptive workflows.

The paper's stated future work: "designing and formalizing corresponding
programming model for such cross-layer approach to release users'
programming complexity."  :class:`WorkflowBuilder` is that model: a
validating, fluent front-end over the machine/workload/adaptation knobs,
so a user writes what they want rather than wiring configs::

    result = (
        WorkflowBuilder()
        .on(titan(), sim_cores=2048, staging_ratio=16)
        .synthetic_workload(steps=30, base_cells=5e8, seed=7)
        .analysis(cost_per_cell=0.5)
        .objective("minimize_time_to_solution")
        .downsample_hints((1, (2, 4)), (16, (2, 4, 8, 16)))
        .adapt("global")
        .run()
    )
"""

from __future__ import annotations

from repro.core.mechanisms import Layer
from repro.core.preferences import Objective, UserHints, UserPreferences
from repro.errors import WorkflowError
from repro.hpc.systems import SystemSpec, titan
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import CoupledWorkflow
from repro.workflow.metrics import WorkflowResult
from repro.workload.synthetic import SyntheticAMRConfig, synthetic_amr_trace
from repro.workload.trace import WorkloadTrace

__all__ = ["WorkflowBuilder"]

_ADAPT_MODES = {
    "post_processing": Mode.POST_PROCESSING,
    "static_insitu": Mode.STATIC_INSITU,
    "static_intransit": Mode.STATIC_INTRANSIT,
    "application": Mode.ADAPTIVE_APPLICATION,
    "middleware": Mode.ADAPTIVE_MIDDLEWARE,
    "resource": Mode.ADAPTIVE_RESOURCE,
    "global": Mode.GLOBAL,
}


class WorkflowBuilder:
    """Fluent, validating construction of a coupled adaptive workflow."""

    def __init__(self):
        self._spec: SystemSpec | None = None
        self._sim_cores: int | None = None
        self._staging_cores: int | None = None
        self._trace: WorkloadTrace | None = None
        self._analysis_cost = 0.5
        self._reduce_cost = 0.02
        self._objective = Objective.MINIMIZE_TIME_TO_SOLUTION
        self._hints_kwargs: dict = {}
        self._mode: Mode | None = None
        self._hybrid = False
        self._estimator_bias = 1.0

    # -- machine ------------------------------------------------------------

    def on(
        self,
        spec: SystemSpec | None = None,
        sim_cores: int = 1024,
        staging_cores: int | None = None,
        staging_ratio: float | None = None,
    ) -> "WorkflowBuilder":
        """Choose the machine: a system preset plus the partition split.

        Give either ``staging_cores`` or ``staging_ratio`` (the paper uses
        a 16:1 ratio); the default is 16:1.
        """
        if staging_cores is not None and staging_ratio is not None:
            raise WorkflowError("give staging_cores or staging_ratio, not both")
        self._spec = spec or titan()
        self._sim_cores = int(sim_cores)
        if staging_cores is not None:
            self._staging_cores = int(staging_cores)
        else:
            ratio = staging_ratio if staging_ratio is not None else 16.0
            if ratio <= 0:
                raise WorkflowError(f"staging_ratio must be positive, got {ratio}")
            self._staging_cores = max(1, int(round(sim_cores / ratio)))
        return self

    # -- workload ------------------------------------------------------------

    def workload(self, trace: WorkloadTrace) -> "WorkflowBuilder":
        """Use an existing trace (captured or synthetic)."""
        self._trace = trace
        return self

    def synthetic_workload(self, steps: int, base_cells: float,
                           **kwargs) -> "WorkflowBuilder":
        """Generate a synthetic AMR workload; extra kwargs go to
        :class:`~repro.workload.synthetic.SyntheticAMRConfig`."""
        if self._sim_cores is None:
            raise WorkflowError("call .on(...) before .synthetic_workload(...)")
        kwargs.setdefault("nranks", self._sim_cores)
        config = SyntheticAMRConfig(steps=steps, base_cells=base_cells, **kwargs)
        self._trace = synthetic_amr_trace(config, name="builder-workload")
        return self

    # -- analysis & adaptation -----------------------------------------------

    def analysis(self, cost_per_cell: float,
                 reduce_cost_per_cell: float | None = None) -> "WorkflowBuilder":
        """Set the visualization/analysis cost model."""
        self._analysis_cost = float(cost_per_cell)
        if reduce_cost_per_cell is not None:
            self._reduce_cost = float(reduce_cost_per_cell)
        return self

    def objective(self, objective: str | Objective) -> "WorkflowBuilder":
        """The user preference (paper Fig. 2's 'user preferences' input)."""
        if isinstance(objective, str):
            try:
                objective = Objective(objective)
            except ValueError:
                valid = ", ".join(o.value for o in Objective)
                raise WorkflowError(
                    f"unknown objective {objective!r}; one of: {valid}"
                ) from None
        self._objective = objective
        return self

    def downsample_hints(self, *phases: tuple[int, tuple[int, ...]]
                         ) -> "WorkflowBuilder":
        """Acceptable down-sampling factor phases (paper Fig. 5's hints)."""
        self._hints_kwargs["downsample_phases"] = tuple(phases)
        return self

    def monitor_every(self, steps: int) -> "WorkflowBuilder":
        """The Monitor's sampling period in time steps."""
        self._hints_kwargs["monitor_interval"] = int(steps)
        return self

    def adapt(self, mode: str | Mode) -> "WorkflowBuilder":
        """Which adaptation runs: a layer name, 'global', or a static mode."""
        if isinstance(mode, Mode):
            self._mode = mode
        else:
            try:
                self._mode = _ADAPT_MODES[mode]
            except KeyError:
                valid = ", ".join(sorted(_ADAPT_MODES))
                raise WorkflowError(
                    f"unknown adaptation mode {mode!r}; one of: {valid}"
                ) from None
        return self

    def hybrid(self, enabled: bool = True) -> "WorkflowBuilder":
        """Enable hybrid (in-situ + in-transit) placement splitting."""
        self._hybrid = bool(enabled)
        return self

    def estimator_bias(self, bias: float) -> "WorkflowBuilder":
        """Inject systematic misestimation (robustness studies)."""
        self._estimator_bias = float(bias)
        return self

    # -- terminal operations --------------------------------------------------

    def build(self) -> tuple[WorkflowConfig, WorkloadTrace]:
        """Validate and produce the (config, trace) pair."""
        missing = []
        if self._spec is None or self._sim_cores is None:
            missing.append(".on(...)")
        if self._trace is None:
            missing.append(".workload(...) or .synthetic_workload(...)")
        if self._mode is None:
            missing.append(".adapt(...)")
        if missing:
            raise WorkflowError(
                "workflow underspecified; still needed: " + ", ".join(missing)
            )
        config = WorkflowConfig(
            mode=self._mode,
            sim_cores=self._sim_cores,
            staging_cores=self._staging_cores,
            spec=self._spec,
            analysis_cost_per_cell=self._analysis_cost,
            reduce_cost_per_cell=self._reduce_cost,
            hybrid_placement=self._hybrid,
            estimator_bias=self._estimator_bias,
            preferences=UserPreferences(objective=self._objective),
            hints=UserHints(**self._hints_kwargs),
        )
        return config, self._trace

    def run(self) -> WorkflowResult:
        """Build and execute the workflow."""
        config, trace = self.build()
        return CoupledWorkflow(config, trace).run()
