"""The coupled workflow driver: trace -> simulated machine -> metrics.

Replays a :class:`~repro.workload.trace.WorkloadTrace` as a coupled
simulation + visualization workflow on the simulated machine:

- the *simulation pipeline* computes each step (trace-derived duration),
  optionally reduces its output in-situ (application layer), then either
  analyses in-situ (serializing with the simulation) or hands the data to
  the staging area (asynchronous ingest + queued in-transit analysis);
- the *staging pipeline* drains analysis jobs on the active staging cores.

End-to-end time is when both pipelines finish (Eq. 6).  The simulation
stalls only when staging memory cannot hold another step (the behaviour
that makes static in-transit placement expensive under refinement bursts
-- Fig. 4's ts=30 scenario).

The Monitor samples the state each step (or per the hint interval) and
the Adaptation Engine applies whichever layers the mode enables.
"""

from __future__ import annotations

from repro.core.actions import Placement
from repro.core.engine import AdaptationDecision, AdaptationEngine
from repro.core.monitor import Monitor
from repro.errors import WorkflowError
from repro.faults import FaultInjector, FaultPlan
from repro.hpc.event import Simulator
from repro.hpc.filesystem import ParallelFileSystem
from repro.hpc.systems import build_workflow_machine
from repro.observability.events import (
    PLACEMENT_FALLBACK,
    RUN_END,
    RUN_START,
    SIM_STALL,
    STEP_END,
    STEP_START,
)
from repro.observability.ledger import PredictionLedger
from repro.observability.metrics import MetricsRegistry
from repro.observability.profiler import Profiler
from repro.observability.tracer import Tracer
from repro.staging.area import AnalysisJob, StagingArea
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.metrics import StepMetrics, WorkflowResult
from repro.workflow.triggers import (
    CalibrationFeedback,
    TriggerIndicators,
    TriggerPolicy,
)
from repro.workload.trace import WorkloadTrace

__all__ = ["CoupledWorkflow", "run_workflow"]


class CoupledWorkflow:
    """One workflow run; construct, then :meth:`run`.

    ``tracer``, ``metrics`` and ``ledger`` are optional observability
    hooks (:mod:`repro.observability`): when injected they are shared
    with the Monitor, the Adaptation Engine and the staging area, their
    clocks are bound to this run's simulator, and the driver itself
    emits ``run.*``/``step.*``/``sim.stall`` events, records every
    dispatch-time estimate against its realized value, and scores each
    in-situ/in-transit placement against its exact counterfactual.
    Left as ``None`` (the default), instrumentation reduces to
    ``is not None`` tests.

    ``faults`` accepts a :class:`~repro.faults.FaultPlan` (wrapped in an
    injector sharing this run's tracer/metrics) or a pre-built
    :class:`~repro.faults.FaultInjector`; the driver attaches it to the
    simulator, the network and the staging area and arms it.  Injected
    faults surface as ``fault.*`` trace events; the driver degrades
    staging placements to in-situ while staging is unreachable
    (``placement.fallback``) and re-runs the adaptation plan when the
    healthy core count changes, even off the sampling interval.

    ``trigger`` accepts a :class:`~repro.workflow.triggers.TriggerPolicy`;
    when injected, the Monitor's fixed sampling interval is replaced by
    the policy's verdict on each step's cheap streaming indicators
    (per-rank output volumes, skew, staging occupancy/queue depth), and
    -- when a ledger is also injected -- measured estimator bias/regret
    is fed back into the trigger's thresholds and the Monitor's
    estimate bias on the policy's ``recalibrate_every`` cadence.  Left
    ``None``, sampling is bit-identical to a build without triggers.

    ``profiler`` accepts a :class:`~repro.observability.Profiler`; when
    injected it is shared with the simulator, the Monitor, the
    Adaptation Engine and the staging area, and the driver wraps the
    whole run in a ``workflow.run`` span with each decision under
    ``workflow.decide`` (see :data:`~repro.observability.PROFILE_SPANS`
    for the catalog).  Unlike the tracer, the profiler measures *real*
    wall-clock seconds -- how long the host takes to replay simulated
    time -- so spans only ever enclose synchronous sections.

    ``sim``, ``machine``/``network``, ``staging`` and ``pfs`` let an external
    orchestrator -- the multi-tenant service (:mod:`repro.service`) --
    inject shared infrastructure instead of having the workflow build
    its own: the workflow then rides an existing simulator clock,
    contends on a shared network, and runs against a staging area whose
    core pool the orchestrator masks.  ``staging_resizer`` replaces the
    driver's direct ``set_active_cores`` actuation with a negotiation
    callback (the service clamps Eq. 9-10 grants by the shared pool's
    uncommitted capacity), and ``staging_ceiling`` replaces the healthy
    core count as the resource policy's sizing bound (the service
    advertises grant + uncommitted pool, the negotiable headroom).
    All default to ``None``; the default path is
    bit-identical to builds before these hooks existed.  ``faults``
    requires a dedicated simulator and cannot be combined with an
    injected ``sim``.
    """

    def __init__(
        self,
        config: WorkflowConfig,
        trace: WorkloadTrace,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        ledger: PredictionLedger | None = None,
        faults: FaultPlan | FaultInjector | None = None,
        trigger: TriggerPolicy | None = None,
        profiler: "Profiler | None" = None,
        sim: Simulator | None = None,
        machine=None,
        network=None,
        staging: StagingArea | None = None,
        staging_resizer=None,
        staging_ceiling=None,
        pfs: ParallelFileSystem | None = None,
    ):
        if not len(trace):
            raise WorkflowError("trace has no steps")
        self.config = config
        self.trace = trace
        self.trigger = trigger
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults, tracer=tracer, metrics=metrics)
        self.faults = faults
        if sim is None:
            sim = Simulator(faults=faults, profiler=profiler)
        elif faults is not None:
            raise WorkflowError(
                "per-workflow fault plans need a dedicated simulator; "
                "attach faults to the shared simulator instead"
            )
        self.sim = sim
        self.tracer = tracer
        self.metrics = metrics
        self.ledger = ledger
        self.profiler = profiler
        # Cached reusable handle: _decide runs every step, and a per-call
        # profiler.span() lookup is measurable there.
        self._decide_span = None if profiler is None else profiler.span("workflow.decide")
        if tracer is not None:
            tracer.bind_clock(lambda: self.sim.now)
        if ledger is not None:
            ledger.bind_clock(lambda: self.sim.now)
        if (machine is None) != (network is None):
            raise WorkflowError(
                "machine and network must be injected together"
            )
        if machine is None:
            self.machine, self.network = build_workflow_machine(
                self.sim, config.spec, config.sim_cores, config.staging_cores
            )
        else:
            self.machine, self.network = machine, network
        if staging is None:
            staging_partition = self.machine.partition("staging")
            self.staging = StagingArea(
                self.sim,
                self.network,
                core_rate=config.spec.core_rate,
                total_cores=config.staging_cores,
                active_cores=config.staging_cores,
                memory_bytes=staging_partition.total_memory,
                tracer=tracer,
                metrics=metrics,
                ledger=ledger,
                faults=faults,
                profiler=profiler,
            )
        else:
            self.staging = staging
        self._staging_resizer = staging_resizer
        self._staging_ceiling = staging_ceiling
        if faults is not None:
            faults.attach_network(self.network)
            faults.arm()
        if pfs is None:
            self.pfs = ParallelFileSystem(
                self.sim,
                self.network,
                write_bandwidth=config.spec.pfs_write_bandwidth,
                read_bandwidth=config.spec.pfs_read_bandwidth,
                latency=config.spec.pfs_latency,
            )
        else:
            # Shared storage injected by the service: all tenants' writes
            # and reads contend on the same PFS pipes, and the byte
            # accounting is fabric-wide rather than per tenant.
            self.pfs = pfs
        self.pfs.attach("sim")
        self.pfs.attach("staging")
        uplink = self.network.link_between("sim", "staging")
        self.monitor = Monitor(
            core_rate=config.spec.core_rate,
            network_bandwidth=uplink.bandwidth,
            network_latency=uplink.latency,
            interval=config.hints.monitor_interval,
            estimate_bias=config.estimator_bias,
            tracer=tracer,
            metrics=metrics,
            ledger=ledger,
            trigger=trigger,
            profiler=profiler,
        )
        layers = config.mode.adaptive_layers
        if layers is None:
            self.engine: AdaptationEngine | None = AdaptationEngine(
                preferences=config.preferences,
                hints=config.hints,
                hybrid_placement=config.hybrid_placement,
                tracer=tracer,
                metrics=metrics,
                ledger=ledger,
                trigger=trigger,
                profiler=profiler,
            )
        elif layers:
            self.engine = AdaptationEngine(
                preferences=config.preferences,
                hints=config.hints,
                layers=layers,
                hybrid_placement=config.hybrid_placement,
                tracer=tracer,
                metrics=metrics,
                ledger=ledger,
                trigger=trigger,
                profiler=profiler,
            )
        else:
            self.engine = None
        # Each trace rank owns one core's share of memory; when the trace
        # has fewer ranks than cores, a rank stands for a core group.
        self.rank_memory_capacity = (
            config.spec.memory_per_core * config.sim_cores / trace.nranks
        )
        self._metrics: list[StepMetrics] = []
        self._outstanding: list[AnalysisJob] = []
        self._total_sim_seconds = 0.0
        self._post_tasks: list[tuple[StepMetrics, float, float]] = []
        self._post_busy_core_seconds = 0.0
        self._last_healthy = self.staging.healthy_cores
        self._main = None
        self._started_at = 0.0
        self._result: WorkflowResult | None = None

    # -- public API ---------------------------------------------------------

    def run(self) -> WorkflowResult:
        """Execute the whole trace; returns validated aggregate metrics."""
        if self.profiler is not None:
            with self.profiler.span("workflow.run"):
                return self._run()
        return self._run()

    def _run(self) -> WorkflowResult:
        self.sim.run(self.start())
        return self.finalize()

    def start(self):
        """Emit ``run.start`` and launch the simulation pipeline process.

        Returns the main :class:`~repro.hpc.event.Process`.  The direct
        path (:meth:`run`) drives the simulator itself; the multi-tenant
        service instead starts each admitted tenant on the shared
        simulator and calls :meth:`finalize` from a completion watcher
        that runs at exactly the moment this process finishes, so every
        time integral closes at the tenant's own end time.
        """
        if self._main is not None:
            raise WorkflowError("workflow already started")
        self._started_at = self.sim.now
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                RUN_START,
                mode=self.config.mode.value,
                sim_cores=self.config.sim_cores,
                staging_cores=self.config.staging_cores,
                steps=len(self.trace),
                trace=self.trace.name,
            )
        self._main = self.sim.process(self._simulation(), name="simulation")
        return self._main

    def finalize(self) -> WorkflowResult:
        """Close the run out; returns validated aggregate metrics.

        Must be called with the simulator clock at the main process's
        completion time (true after :meth:`run`'s ``sim.run`` and inside
        the service's completion watcher).  Idempotent.
        """
        if self._main is None:
            raise WorkflowError("workflow never started")
        if not self._main.triggered:
            raise WorkflowError("simulation pipeline still running")
        if self._result is not None:
            return self._result
        elapsed = self.sim.now - self._started_at
        if self.metrics is not None:
            # The kernel's always-on tallies, published once per run so
            # dashboards see event traffic without polling the kernel.
            counters = self.sim.kernel.counters
            self.metrics.counter("kernel.events_processed").inc(
                counters.total_processed
            )
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                RUN_END,
                end_to_end_seconds=elapsed,
                total_sim_seconds=self._total_sim_seconds,
                data_moved_bytes=self.staging.bytes_ingested,
            )
        energy, breakdown = self._energy(elapsed)
        result = WorkflowResult(
            mode=self.config.mode.value,
            steps=self._metrics,
            end_to_end_seconds=elapsed,
            total_sim_seconds=self._total_sim_seconds,
            data_moved_bytes=self.staging.bytes_ingested,
            utilization_efficiency=self.staging.utilization_efficiency(),
            staging_idle_core_seconds=self.staging.idle_time(),
            staging_total_cores=self.config.staging_cores,
            pfs_bytes_written=self.pfs.bytes_written,
            pfs_bytes_read=self.pfs.bytes_read,
            energy_joules=energy,
            energy_breakdown=breakdown,
        )
        result.validate()
        self._result = result
        return result

    def _energy(self, elapsed: float) -> tuple[float, dict[str, float]]:
        """Energy model over the whole run (the paper's future-work topic).

        Cores draw ``core_power_active`` while computing and
        ``core_power_idle`` while allocated but idle; every byte through
        the fabric (staging ingest + PFS traffic) costs
        ``network_energy_per_byte``.  Under the multi-tenant service the
        ``data_movement`` term is fabric-wide (the network is shared
        infrastructure), not attributed per tenant.
        """
        spec = self.config.spec
        n = self.config.sim_cores
        sim_busy = n * (
            self._total_sim_seconds + sum(m.insitu_seconds for m in self._metrics)
        )
        sim_alloc = n * elapsed
        staging_busy = self.staging.busy_core_seconds() + self._post_busy_core_seconds
        staging_alloc = self.staging.allocated_core_seconds()
        breakdown = {
            "sim_compute": spec.core_power_active * sim_busy,
            "sim_idle": spec.core_power_idle * max(0.0, sim_alloc - sim_busy),
            "staging_compute": spec.core_power_active * staging_busy,
            "staging_idle": spec.core_power_idle
            * max(0.0, staging_alloc - staging_busy),
            "data_movement": spec.network_energy_per_byte
            * self.network.total_bytes_moved,
        }
        return sum(breakdown.values()), breakdown

    # -- pipeline ------------------------------------------------------------

    def _simulation(self):
        cfg = self.config
        rate = cfg.spec.core_rate
        n_cores = cfg.sim_cores
        last_decision: AdaptationDecision | None = None

        total_steps = len(self.trace)
        for index, record in enumerate(self.trace):
            sim_seconds = record.sim_work / (rate * n_cores)
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.emit(
                    STEP_START,
                    step=record.step,
                    sim_seconds=sim_seconds,
                    cells=record.cells,
                    data_bytes=record.data_bytes,
                )
            yield self.sim.timeout(sim_seconds, kind="compute")
            self.monitor.observe_sim_step(sim_seconds)
            self._total_sim_seconds += sim_seconds

            analysis_work = (
                record.cells * cfg.analysis_cost_per_cell * record.analysis_intensity
            )
            peak_share = float(record.rank_bytes.max() / record.rank_bytes.sum())
            rank_out_bytes = record.data_bytes * peak_share
            rank_available = max(
                0.0, self.rank_memory_capacity - record.peak_rank_bytes
            )
            insitu_ok = (
                rank_available >= rank_out_bytes * cfg.insitu_memory_factor
            )

            indicators = None
            if self.trigger is not None:
                indicators = TriggerIndicators(
                    step=record.step,
                    sim_seconds=sim_seconds,
                    data_bytes=record.data_bytes,
                    rank_bytes=record.rank_bytes,
                    imbalance=record.imbalance,
                    staging_occupancy=(
                        self.staging.memory_used / self.staging.memory_total
                        if self.staging.memory_total > 0
                        else 0.0
                    ),
                    staging_queue_depth=self.staging.queue_depth,
                )
            decision = self._decide(
                record.step,
                record.data_bytes,
                rank_out_bytes,
                rank_available,
                analysis_work,
                insitu_ok,
                last_decision,
                steps_remaining=total_steps - (index + 1),
                indicators=indicators,
            )
            last_decision = decision

            factor = decision.factor or 1
            shrink = 1.0 / factor**self.trace.ndim
            out_bytes = record.data_bytes * shrink
            out_work = analysis_work * shrink

            insitu_seconds = 0.0
            if factor > 1:
                reduce_seconds = record.cells * cfg.reduce_cost_per_cell / (
                    rate * n_cores
                )
                yield self.sim.timeout(reduce_seconds, kind="compute")
                insitu_seconds += reduce_seconds

            if decision.staging_cores is not None:
                requested = min(decision.staging_cores, self.staging.total_cores)
                if self._staging_resizer is not None:
                    # Multi-tenant service: rightsizing negotiates with the
                    # shared pool instead of resizing the area directly.
                    self._staging_resizer(requested)
                else:
                    self.staging.set_active_cores(requested)
                if self.ledger is not None and self.ledger.has_pending(
                    "staging_cores", record.step
                ):
                    self.ledger.resolve(
                        "staging_cores", record.step,
                        float(self.staging.active_cores),
                    )

            placement = decision.placement or Placement.IN_TRANSIT
            if (
                self.faults is not None
                and placement in (Placement.IN_TRANSIT, Placement.HYBRID)
                and not self.staging.reachable
            ):
                # Recovery: staging has no healthy cores, so a staged
                # placement cannot execute.  Degrade to in-situ.
                if self.metrics is not None:
                    self.metrics.counter("placement.fallbacks").inc()
                if self.tracer is not None and self.tracer.enabled:
                    self.tracer.emit(
                        PLACEMENT_FALLBACK,
                        step=record.step,
                        requested=placement.value,
                        placement=Placement.IN_SITU.value,
                        reason="staging unreachable",
                    )
                placement = Placement.IN_SITU
            metric = StepMetrics(
                step=record.step,
                sim_seconds=sim_seconds,
                factor=factor,
                placement=placement,
                staging_cores=self.staging.active_cores,
                data_bytes_full=record.data_bytes,
                data_bytes_out=out_bytes,
                insitu_seconds=insitu_seconds,
                block_seconds=0.0,
            )
            self._metrics.append(metric)

            if placement is Placement.HYBRID:
                fraction = decision.insitu_fraction
                insitu_work = out_work * fraction
                analysis_seconds = insitu_work / (rate * n_cores)
                if self.ledger is not None and insitu_work > 0:
                    self.ledger.predict(
                        "insitu_time", record.step,
                        self.monitor.estimate_insitu(insitu_work, n_cores),
                        mechanism="monitor",
                    )
                yield self.sim.timeout(analysis_seconds, kind="compute")
                metric.insitu_seconds += analysis_seconds
                if insitu_work > 0:
                    self.monitor.observe_insitu(insitu_work, n_cores,
                                                analysis_seconds)
                    if self.ledger is not None:
                        self.ledger.resolve(
                            "insitu_time", record.step, analysis_seconds
                        )
                ship_bytes = out_bytes * (1.0 - fraction)
                ship_work = out_work * (1.0 - fraction)
                blocked_from = self.sim.now
                while not self.staging.can_fit(ship_bytes):
                    pending = [j.done for j in self._outstanding
                               if not j.done.triggered]
                    if not pending:
                        raise WorkflowError(
                            f"step {record.step}: hybrid remainder exceeds "
                            "staging memory outright"
                        )
                    yield self.sim.any_of(pending)
                metric.block_seconds = self.sim.now - blocked_from
                self._note_stall(metric, "staging_memory")
                self._predict_shipment(record.step, ship_bytes, ship_work)
                job = self.staging.submit(record.step, ship_bytes, ship_work)
                self._outstanding.append(job)
                job.done.add_callback(
                    lambda _evt, job=job, metric=metric: self._on_job_done(job, metric)
                )
            elif placement is Placement.POST_PROCESS:
                # Traditional output: the collective write blocks the
                # simulation; analysis happens after the run ends.
                blocked_from = self.sim.now
                yield self.pfs.write("sim", out_bytes)
                metric.block_seconds = self.sim.now - blocked_from
                self._note_stall(metric, "pfs_write")
                self._post_tasks.append((metric, out_bytes, out_work))
            elif placement is Placement.IN_SITU:
                analysis_seconds = out_work / (rate * n_cores)
                if self.ledger is not None:
                    self.ledger.predict(
                        "insitu_time", record.step,
                        self.monitor.estimate_insitu(out_work, n_cores),
                        mechanism="monitor",
                    )
                    self._record_placement(record.step, "in_situ", out_work)
                yield self.sim.timeout(analysis_seconds, kind="compute")
                metric.insitu_seconds += analysis_seconds
                metric.analysis_done_at = self.sim.now
                self.monitor.observe_insitu(out_work, n_cores, analysis_seconds)
                if self.ledger is not None:
                    self.ledger.resolve(
                        "insitu_time", record.step, analysis_seconds
                    )
                    self.ledger.resolve_placement(
                        record.step, realized_insitu=analysis_seconds
                    )
            else:
                if self.ledger is not None:
                    self._record_placement(record.step, "in_transit", out_work)
                blocked_from = self.sim.now
                while not self.staging.can_fit(out_bytes):
                    pending = [j.done for j in self._outstanding if not j.done.triggered]
                    if not pending:
                        raise WorkflowError(
                            f"step {record.step}: {out_bytes:.0f} B exceed staging "
                            f"memory {self.staging.memory_total:.0f} B outright"
                        )
                    yield self.sim.any_of(pending)
                metric.block_seconds = self.sim.now - blocked_from
                self._note_stall(metric, "staging_memory")
                self._predict_shipment(record.step, out_bytes, out_work)
                job = self.staging.submit(record.step, out_bytes, out_work)
                self._outstanding.append(job)
                job.done.add_callback(
                    lambda _evt, job=job, metric=metric: self._on_job_done(job, metric)
                )

            if self.metrics is not None:
                self.metrics.counter("workflow.steps").inc()
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.emit(
                    STEP_END,
                    step=record.step,
                    placement=placement.value,
                    factor=factor,
                    data_bytes_out=out_bytes,
                    insitu_seconds=metric.insitu_seconds,
                    block_seconds=metric.block_seconds,
                )
            if (
                self.trigger is not None
                and self.ledger is not None
                and self.trigger.recalibrate_every
                and record.step % self.trigger.recalibrate_every == 0
            ):
                # Self-calibration: feed the ledger's measured estimator
                # bias and placement regret back into the trigger's
                # thresholds and the Monitor's estimate bias.
                self.monitor.recalibrate_trigger(
                    CalibrationFeedback.from_ledger(self.ledger, record.step)
                )

        # Drain: the run ends when the staging pipeline is empty too (Eq. 6).
        sim_pipeline_end = self.sim.now
        pending = [j.done for j in self._outstanding if not j.done.triggered]
        if pending:
            yield self.sim.all_of(pending)
        if self.ledger is not None:
            # Score placements now that every job's finish time is known;
            # the unhidden tail is measured against the simulation
            # pipeline's own end, not the drain's.
            self.ledger.finalize(sim_pipeline_end)

        # Post-processing phase: read everything back and analyse it on the
        # staging (analysis-cluster) cores, step by step.
        m_cores = self.staging.active_cores
        for metric, nbytes, work in self._post_tasks:
            yield self.pfs.read("staging", nbytes)
            analysis_seconds = work / (rate * m_cores)
            yield self.sim.timeout(analysis_seconds, kind="compute")
            self._post_busy_core_seconds += analysis_seconds * m_cores
            metric.analysis_done_at = self.sim.now

    def _decide(
        self,
        step: int,
        data_bytes: float,
        rank_out_bytes: float,
        rank_available: float,
        analysis_work: float,
        insitu_ok: bool,
        last: AdaptationDecision | None,
        steps_remaining: int,
        indicators: TriggerIndicators | None = None,
    ) -> AdaptationDecision:
        # The decision is fully synchronous (no simulator yields), so the
        # span cleanly bounds one pass through monitor + engine.
        span = self._decide_span
        if span is not None:
            with span:
                return self._decide_impl(
                    step, data_bytes, rank_out_bytes, rank_available,
                    analysis_work, insitu_ok, last, steps_remaining,
                    indicators,
                )
        return self._decide_impl(
            step, data_bytes, rank_out_bytes, rank_available,
            analysis_work, insitu_ok, last, steps_remaining, indicators,
        )

    def _decide_impl(
        self,
        step: int,
        data_bytes: float,
        rank_out_bytes: float,
        rank_available: float,
        analysis_work: float,
        insitu_ok: bool,
        last: AdaptationDecision | None,
        steps_remaining: int,
        indicators: TriggerIndicators | None = None,
    ) -> AdaptationDecision:
        mode = self.config.mode
        if mode is Mode.POST_PROCESSING:
            return AdaptationDecision(step=step, placement=Placement.POST_PROCESS)
        if mode is Mode.STATIC_INSITU:
            return AdaptationDecision(step=step, placement=Placement.IN_SITU)
        if mode is Mode.STATIC_INTRANSIT:
            return AdaptationDecision(step=step, placement=Placement.IN_TRANSIT)
        assert self.engine is not None
        healthy = self.staging.healthy_cores
        if self.trigger is not None:
            due = self.monitor.evaluate_trigger(indicators).fire
        else:
            due = self.monitor.should_sample(step)
        if not due and last is not None and healthy == self._last_healthy:
            # Off-sample steps keep the previous adaptation settings --
            # unless a fault changed the healthy core count, which forces
            # the plan (Eqs. 9-10 sizing included) to re-run immediately.
            return AdaptationDecision(
                step=step,
                factor=last.factor,
                placement=last.placement,
                insitu_fraction=last.insitu_fraction,
                staging_cores=last.staging_cores,
            )
        if not due and healthy != self._last_healthy:
            # Forced off-interval re-sample (post-restore re-sizing):
            # restart the fixed cadence here instead of re-sampling again
            # on the next modulo hit.
            self.monitor.note_forced_sample(step)
        self._last_healthy = healthy
        state = self.monitor.snapshot(
            step=step,
            ndim=self.trace.ndim,
            data_bytes=data_bytes,
            rank_data_bytes=rank_out_bytes,
            rank_memory_available=rank_available,
            analysis_work=analysis_work,
            sim_cores=self.config.sim_cores,
            # The resource layer sizes against what is physically usable:
            # after a core loss this is the surviving pool (healthy ==
            # total on the fault-free path).
            staging_active_cores=min(self.staging.active_cores, max(1, healthy)),
            staging_total_cores=(
                max(1, healthy)
                if self._staging_ceiling is None
                else max(1, int(self._staging_ceiling()))
            ),
            staging_memory_total=self.staging.memory_total,
            staging_memory_used=self.staging.memory_used,
            staging_busy=self.staging.busy,
            est_intransit_remaining=self.staging.estimated_remaining_time(),
            insitu_memory_ok=insitu_ok,
            core_rate=self.config.spec.core_rate,
            steps_remaining=steps_remaining,
            staging_reachable=self.staging.reachable,
        )
        decision = self.engine.adapt(state)
        # Layers the mode leaves unset fall back to static defaults.
        if decision.placement is None and self.config.mode in (
            Mode.ADAPTIVE_APPLICATION,
            Mode.ADAPTIVE_RESOURCE,
        ):
            decision.placement = Placement.IN_TRANSIT
        return decision

    def _record_placement(
        self, step: int, chosen: str, work_units: float
    ) -> None:
        """Ledger a placement's estimated and simulator-true costs.

        Called at dispatch time (before any memory stall), so the
        backlog is what the decision actually faced.  The true
        components come from the simulator's own rates -- exact
        hindsight, not another estimate.
        """
        assert self.ledger is not None
        rate = self.config.spec.core_rate
        n_cores = self.config.sim_cores
        backlog = self.staging.estimated_remaining_time()
        self.ledger.record_placement(
            step,
            chosen,
            est_insitu=self.monitor.estimate_insitu(work_units, n_cores),
            est_intransit=backlog + self.monitor.estimate_intransit(
                work_units, self.staging.active_cores
            ),
            insitu_true=work_units / (rate * n_cores),
            backlog_true=backlog,
            service_true=self.staging.service_time(work_units),
            dispatched_at=self.sim.now,
        )

    def _predict_shipment(
        self, step: int, nbytes: float, work_units: float
    ) -> None:
        """Ledger the service/transfer estimates for a staged shipment."""
        if self.ledger is None:
            return
        if work_units > 0:
            self.ledger.predict(
                "intransit_time", step,
                self.monitor.estimate_intransit(
                    work_units, self.staging.active_cores
                ),
                mechanism="monitor",
            )
        if nbytes > 0:
            self.ledger.predict(
                "transfer_time", step,
                self.monitor.estimate_send(nbytes),
                mechanism="monitor",
            )

    def _note_stall(self, metric: StepMetrics, cause: str) -> None:
        """Publish a simulation stall (no-op when nothing blocked)."""
        if metric.block_seconds <= 0:
            return
        if self.metrics is not None:
            self.metrics.counter("workflow.stall_seconds").inc(metric.block_seconds)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                SIM_STALL,
                step=metric.step,
                seconds=metric.block_seconds,
                cause=cause,
            )

    def _on_job_done(self, job: AnalysisJob, metric: StepMetrics) -> None:
        metric.analysis_done_at = job.finished_at
        duration = job.finished_at - job.started_at
        if duration > 0 and job.work_units > 0:
            self.monitor.observe_intransit(job.work_units, job.cores_used, duration)
            if self.ledger is not None:
                self.ledger.resolve("intransit_time", job.step, duration)
        transfer = job.ingest_done.value
        if transfer.elapsed and transfer.size > 0:
            self.monitor.observe_transfer(transfer.size, transfer.elapsed)
            if self.ledger is not None:
                self.ledger.resolve("transfer_time", job.step, transfer.elapsed)
        if self.ledger is not None:
            # No-op for hybrid steps (not recorded as scored placements).
            self.ledger.resolve_placement(
                job.step,
                block_seconds=metric.block_seconds,
                finished_at=job.finished_at,
            )


def run_workflow(
    config: WorkflowConfig,
    trace: WorkloadTrace,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    ledger: PredictionLedger | None = None,
    faults: FaultPlan | FaultInjector | None = None,
    trigger: TriggerPolicy | None = None,
    profiler: Profiler | None = None,
) -> WorkflowResult:
    """Convenience: build and run a workflow in one call."""
    return CoupledWorkflow(
        config, trace, tracer=tracer, metrics=metrics, ledger=ledger,
        faults=faults, trigger=trigger, profiler=profiler,
    ).run()
