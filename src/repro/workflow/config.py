"""Workflow execution configuration.

:class:`Mode` enumerates the paper's experimental configurations; a
:class:`WorkflowConfig` pins the machine, partition sizes, analysis cost
model and user inputs for one run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.mechanisms import Layer
from repro.core.preferences import UserHints, UserPreferences
from repro.errors import WorkflowError
from repro.hpc.systems import SystemSpec, titan

__all__ = ["Mode", "WorkflowConfig"]


class Mode(enum.Enum):
    """Execution configurations evaluated in the paper, plus the
    traditional post-processing baseline its introduction motivates
    against ("traditional post-processing data analysis approach based
    on disk I/O")."""

    POST_PROCESSING = "post_processing"  # write to PFS, analyze after the run
    STATIC_INSITU = "static_insitu"  # Fig. 7 "InSitu"
    STATIC_INTRANSIT = "static_intransit"  # Fig. 7 "InTransit"
    ADAPTIVE_APPLICATION = "adaptive_application"  # Section 5.2.1
    ADAPTIVE_MIDDLEWARE = "adaptive_middleware"  # Fig. 7 "Adapt" / "Local"
    ADAPTIVE_RESOURCE = "adaptive_resource"  # Fig. 9
    GLOBAL = "global"  # Fig. 10 "Global" (cross-layer)

    @property
    def adaptive_layers(self) -> set[Layer] | None:
        """Engine layer set for local modes; None for global; empty for static."""
        return {
            Mode.POST_PROCESSING: set(),
            Mode.STATIC_INSITU: set(),
            Mode.STATIC_INTRANSIT: set(),
            Mode.ADAPTIVE_APPLICATION: {Layer.APPLICATION},
            Mode.ADAPTIVE_MIDDLEWARE: {Layer.MIDDLEWARE},
            Mode.ADAPTIVE_RESOURCE: {Layer.RESOURCE},
            Mode.GLOBAL: None,
        }[self]


@dataclass(frozen=True)
class WorkflowConfig:
    """One workflow run's knobs.

    The cost model: simulation work comes from the trace; a step's
    analysis costs ``cells * analysis_cost_per_cell`` work units
    (marching cubes is a single sweep, far cheaper per cell than the
    multi-stage solver update); an in-situ reduction pass costs
    ``cells * reduce_cost_per_cell``.  ``insitu_memory_factor`` is the
    per-byte headroom in-situ analysis needs on the peak rank.
    """

    mode: Mode
    sim_cores: int
    staging_cores: int
    spec: SystemSpec = field(default_factory=titan)
    analysis_cost_per_cell: float = 0.5
    reduce_cost_per_cell: float = 0.02
    insitu_memory_factor: float = 1.0
    # Enable the paper's hybrid (in-situ + in-transit) placement option in
    # the middleware policy.
    hybrid_placement: bool = False
    # Systematic misestimation injector (1.0 = unbiased): multiplies every
    # analysis-time estimate the Monitor hands the policies.  Used by the
    # estimator-sensitivity ablation.
    estimator_bias: float = 1.0
    preferences: UserPreferences = field(default_factory=UserPreferences)
    hints: UserHints = field(default_factory=UserHints)

    def __post_init__(self) -> None:
        if self.sim_cores < 1 or self.staging_cores < 1:
            raise WorkflowError("core counts must be >= 1")
        if self.analysis_cost_per_cell < 0 or self.reduce_cost_per_cell < 0:
            raise WorkflowError("cost-per-cell values must be >= 0")
        if self.insitu_memory_factor < 0:
            raise WorkflowError("insitu_memory_factor must be >= 0")
        if self.estimator_bias <= 0:
            raise WorkflowError("estimator_bias must be positive")

    @property
    def staging_ratio(self) -> float:
        """Simulation-to-staging core ratio (the paper uses 16:1)."""
        return self.sim_cores / self.staging_cores
