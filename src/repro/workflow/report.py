"""Result export and comparison reporting.

Utilities a downstream user needs to consume workflow results outside
Python: JSON serialization of a :class:`~repro.workflow.metrics.
WorkflowResult` (round-trippable, optionally carrying the run's
observability trace), and a comparison report across modes in the style
the paper's evaluation uses ("X% reduction vs Y").
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.actions import Placement
from repro.errors import WorkflowError
from repro.observability.tracer import Tracer
from repro.workflow.metrics import StepMetrics, WorkflowResult

__all__ = ["compare", "result_from_json", "result_to_json"]


def result_to_json(
    result: WorkflowResult,
    path: str | Path | None = None,
    *,
    tracer: Tracer | None = None,
) -> str:
    """Serialize a result (optionally writing it to ``path``).

    ``analysis_done_at`` serializes as JSON ``null`` when the analysis
    never completed and round-trips back to ``None``; ``placement``
    round-trips through the :class:`Placement` enum's value.  When a
    ``tracer`` is given, its retained events are embedded under
    ``trace_events`` (ignored by :func:`result_from_json`, readable with
    :class:`~repro.observability.TraceEvent`.from_dict).
    """
    payload = {
        "mode": result.mode,
        "end_to_end_seconds": result.end_to_end_seconds,
        "total_sim_seconds": result.total_sim_seconds,
        "data_moved_bytes": result.data_moved_bytes,
        "utilization_efficiency": result.utilization_efficiency,
        "staging_idle_core_seconds": result.staging_idle_core_seconds,
        "staging_total_cores": result.staging_total_cores,
        "pfs_bytes_written": result.pfs_bytes_written,
        "pfs_bytes_read": result.pfs_bytes_read,
        "energy_joules": result.energy_joules,
        "energy_breakdown": dict(result.energy_breakdown),
        "steps": [
            {
                "step": m.step,
                "sim_seconds": m.sim_seconds,
                "factor": m.factor,
                "placement": m.placement.value,
                "staging_cores": m.staging_cores,
                "data_bytes_full": m.data_bytes_full,
                "data_bytes_out": m.data_bytes_out,
                "insitu_seconds": m.insitu_seconds,
                "block_seconds": m.block_seconds,
                "analysis_done_at": m.analysis_done_at,
            }
            for m in result.steps
        ],
    }
    if tracer is not None:
        payload["trace_events"] = [e.as_dict() for e in tracer.events()]
    text = json.dumps(payload, indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text


def result_from_json(source: str | Path) -> WorkflowResult:
    """Rebuild a result from :func:`result_to_json` output (text or file)."""
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith(".json")
    ):
        text = Path(source).read_text()
    else:
        text = str(source)
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkflowError(f"not a workflow result: {exc}") from exc
    try:
        steps = [
            StepMetrics(
                step=s["step"],
                sim_seconds=s["sim_seconds"],
                factor=s["factor"],
                placement=Placement(s["placement"]),
                staging_cores=s["staging_cores"],
                data_bytes_full=s["data_bytes_full"],
                data_bytes_out=s["data_bytes_out"],
                insitu_seconds=s["insitu_seconds"],
                block_seconds=s["block_seconds"],
                # Absent and null both mean "never completed".
                analysis_done_at=s.get("analysis_done_at"),
            )
            for s in payload["steps"]
        ]
        return WorkflowResult(
            mode=payload["mode"],
            steps=steps,
            end_to_end_seconds=payload["end_to_end_seconds"],
            total_sim_seconds=payload["total_sim_seconds"],
            data_moved_bytes=payload["data_moved_bytes"],
            utilization_efficiency=payload["utilization_efficiency"],
            staging_idle_core_seconds=payload["staging_idle_core_seconds"],
            staging_total_cores=payload["staging_total_cores"],
            pfs_bytes_written=payload.get("pfs_bytes_written", 0.0),
            pfs_bytes_read=payload.get("pfs_bytes_read", 0.0),
            energy_joules=payload.get("energy_joules", 0.0),
            energy_breakdown=payload.get("energy_breakdown", {}),
        )
    except KeyError as exc:
        raise WorkflowError(f"workflow result missing field {exc}") from exc
    except ValueError as exc:
        raise WorkflowError(f"workflow result malformed: {exc}") from exc


def compare(baseline: WorkflowResult, candidate: WorkflowResult) -> dict[str, float]:
    """Percentage improvements of ``candidate`` over ``baseline``.

    Positive numbers mean the candidate is better (lower time/overhead/
    movement/energy, higher utilization) -- the paper's reporting style.
    """

    def cut(base: float, cand: float) -> float:
        if base <= 0:
            return 0.0
        return 100.0 * (1.0 - cand / base)

    return {
        "end_to_end_cut_pct": cut(
            baseline.end_to_end_seconds, candidate.end_to_end_seconds
        ),
        "overhead_cut_pct": cut(
            baseline.overhead_seconds, candidate.overhead_seconds
        ),
        "data_movement_cut_pct": cut(
            baseline.data_moved_bytes, candidate.data_moved_bytes
        ),
        "energy_cut_pct": cut(baseline.energy_joules, candidate.energy_joules),
        "utilization_gain_pts": 100.0
        * (candidate.utilization_efficiency - baseline.utilization_efficiency),
    }
