"""Trigger-detection adaptation policies with online self-calibration.

The paper's Monitor samples the operational state every ``k`` steps
(:class:`~repro.core.monitor.Monitor`'s interval), paying the full
snapshot cost whether or not anything changed.  The Sandia
trigger-detection papers (percentile-sampling trigger detection,
arXiv:1506.08258 and arXiv:1508.04731) show the alternative: watch a
*cheap streaming indicator*, estimate a percentile of its distribution
from a bounded random sample, and run the expensive machinery only when
the indicator says "now is the moment to adapt".  The key sampling
result is population-size independent: the ``p``-th percentile of an
indicator population can be estimated to within ``±eps`` (as a fraction
of the population) with confidence ``1 - delta`` from

    s  =  ceil( ln(2/delta) / (2 * eps^2) )

samples (:func:`percentile_sample_size`) -- 185 probes for
``eps=0.1, delta=0.05`` whether the simulation runs on 1 024 ranks or a
million.

This module provides that trigger family behind one protocol:

- :class:`TriggerPolicy` -- ``should_adapt(indicators) ->``
  :class:`TriggerDecision`, plus ``note_adapted`` (reference reset after
  an adaptation actually ran) and ``recalibrate`` (closed-loop threshold
  adjustment from measured estimator bias/regret);
- :class:`FixedInterval` -- the paper's every-``k``-steps baseline,
  expressed as a trigger;
- :class:`EntropyPercentile` -- percentile sampling over the per-rank
  output-volume distribution (the streaming stand-in for Chombo's
  per-block entropy), with the bounded budget above;
- :class:`Imbalance` -- per-rank compute/data skew (max/mean);
- :class:`StagingPressure` -- staging-area memory occupancy and queue
  depth, edge-triggered;
- :class:`CalibrationFeedback` -- the self-calibration input, built from
  a :class:`~repro.observability.ledger.PredictionLedger`'s measured
  estimator bias and counterfactual placement regret.

The hook is injected (``CoupledWorkflow(..., trigger=...)``) and follows
the observability discipline: with ``trigger=None`` every output is
bit-identical to a build without this module.  See ``docs/triggers.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.errors import PolicyError
from repro.observability.calibration import calibrate, placement_regret
from repro.observability.ledger import PredictionLedger

__all__ = [
    "CalibrationFeedback",
    "EntropyPercentile",
    "FixedInterval",
    "Imbalance",
    "StagingPressure",
    "TRIGGER_POLICIES",
    "TriggerDecision",
    "TriggerIndicators",
    "TriggerPolicy",
    "build_trigger",
    "percentile_sample_size",
]


def percentile_sample_size(eps: float = 0.1, delta: float = 0.05) -> int:
    """Samples needed to estimate any percentile within ``±eps`` at
    confidence ``1 - delta`` (Hoeffding bound; population-independent).

    The percentile-sampling papers' central result: ``s = ceil(ln(2/delta)
    / (2 eps^2))``.  The defaults give 185 -- the budget a trigger pays
    per step instead of a full ``nranks``-wide snapshot.
    """
    if not 0.0 < eps < 1.0:
        raise PolicyError(f"eps must be in (0, 1), got {eps}")
    if not 0.0 < delta < 1.0:
        raise PolicyError(f"delta must be in (0, 1), got {delta}")
    return int(math.ceil(math.log(2.0 / delta) / (2.0 * eps * eps)))


@dataclass(frozen=True, eq=False)
class TriggerIndicators:
    """The cheap streaming indicators a trigger decides on, one per step.

    Everything here is already in the driver's hands when the step's
    data lands -- no extra collection happens to build it.  Policies
    that probe ``rank_bytes`` account for what they touched via
    :attr:`TriggerDecision.budget_spent`.
    """

    step: int
    sim_seconds: float
    data_bytes: float
    rank_bytes: np.ndarray  # per-rank output volume (len = nranks)
    imbalance: float  # max/mean of rank_bytes (compute-skew proxy)
    staging_occupancy: float  # staging memory_used / memory_total
    staging_queue_depth: int  # jobs waiting behind the one in service


@dataclass(frozen=True)
class TriggerDecision:
    """One trigger evaluation's verdict (fire = run the full adaptation)."""

    fire: bool
    step: int
    policy: str
    reason: str
    value: float = 0.0  # the indicator value the verdict was based on
    budget_spent: int = 0  # rank probes consumed by this evaluation


@dataclass(frozen=True)
class CalibrationFeedback:
    """Measured truth the self-calibration loop feeds back into triggers.

    Built on a cadence (``recalibrate_every``) from the run's own
    :class:`~repro.observability.ledger.PredictionLedger`: per-quantity
    signed estimator bias / MAPE (:func:`~repro.observability.calibrate`)
    and the counterfactual placement regret scored so far
    (:func:`~repro.observability.placement_regret`).
    """

    step: int
    bias_pct: Mapping[str, float]  # per-quantity mean signed bias (%)
    mape_pct: Mapping[str, float]  # per-quantity mean absolute error (%)
    regret_seconds: float  # summed Eq.-6 seconds lost to wrong placements
    flip_fraction: float  # share of scored placements hindsight flips
    scored: int  # placements with both costs resolved so far

    @classmethod
    def from_ledger(cls, ledger: PredictionLedger, step: int) -> "CalibrationFeedback":
        """Snapshot the ledger's calibration state at ``step``."""
        stats = calibrate(ledger)
        regret = placement_regret(ledger)
        return cls(
            step=step,
            bias_pct={q: s.bias_pct for q, s in stats.items()},
            mape_pct={q: s.mape_pct for q, s in stats.items()},
            regret_seconds=regret.total_regret_seconds,
            flip_fraction=regret.flip_fraction,
            scored=regret.scored,
        )

    def estimator_bias_pct(self, *quantities: str) -> float:
        """Mean signed bias over ``quantities`` the ledger has seen."""
        seen = [self.bias_pct[q] for q in quantities if q in self.bias_pct]
        return sum(seen) / len(seen) if seen else 0.0


class TriggerPolicy:
    """Base trigger: subclasses implement :meth:`should_adapt`.

    ``recalibrate_every`` is the self-calibration cadence in steps (0 =
    off): every that-many steps the driver hands the policy a
    :class:`CalibrationFeedback` via :meth:`recalibrate`, which returns
    the ``{attribute: (old, new)}`` threshold changes it applied (or
    ``None``); the Monitor emits them as a ``trigger.recalibrated``
    event.  ``note_adapted`` is called after an adaptation actually ran
    (fired, bootstrap, or fault-forced) so policies can reset their
    change references.
    """

    name = "?"

    def __init__(self, recalibrate_every: int = 0):
        if recalibrate_every < 0:
            raise PolicyError(
                f"recalibrate_every must be >= 0, got {recalibrate_every}"
            )
        self.recalibrate_every = int(recalibrate_every)
        self.evaluations = 0
        self.fires = 0

    def should_adapt(self, indicators: TriggerIndicators) -> TriggerDecision:
        """Decide whether ``indicators`` warrant a full adaptation."""
        raise NotImplementedError

    def note_adapted(self, step: int, decision) -> None:
        """An adaptation ran at ``step``; reset change references."""

    def recalibrate(
        self, feedback: CalibrationFeedback
    ) -> dict[str, tuple[float, float]] | None:
        """Adjust thresholds from measured bias/regret; report changes."""
        return None

    # -- helpers for subclasses ----------------------------------------------

    def _verdict(
        self,
        indicators: TriggerIndicators,
        fire: bool,
        reason: str,
        value: float = 0.0,
        budget: int = 0,
    ) -> TriggerDecision:
        self.evaluations += 1
        if fire:
            self.fires += 1
        return TriggerDecision(
            fire=fire,
            step=indicators.step,
            policy=self.name,
            reason=reason,
            value=value,
            budget_spent=budget,
        )

    def _nudge(
        self, attr: str, factor: float, lo: float, hi: float
    ) -> tuple[float, float] | None:
        """Scale ``attr`` by ``factor`` within ``[lo, hi]``; report change."""
        old = getattr(self, attr)
        new = min(hi, max(lo, old * factor))
        if new == old:
            return None
        setattr(self, attr, new)
        return (old, new)


class FixedInterval(TriggerPolicy):
    """The paper's baseline, as a trigger: fire every ``interval`` steps.

    Equivalent to running without a trigger at
    ``UserHints.monitor_interval = interval``; exists so sweeps compare
    detection policies against the fixed cadence under one protocol.
    """

    name = "fixed-interval"

    def __init__(self, interval: int = 1, recalibrate_every: int = 0):
        super().__init__(recalibrate_every=recalibrate_every)
        if interval < 1:
            raise PolicyError(f"interval must be >= 1, got {interval}")
        self.interval = int(interval)

    def should_adapt(self, indicators: TriggerIndicators) -> TriggerDecision:
        fire = indicators.step % self.interval == 0
        reason = (
            f"step {indicators.step} on the {self.interval}-step cadence"
            if fire
            else f"step {indicators.step} off the {self.interval}-step cadence"
        )
        return self._verdict(indicators, fire, reason,
                             value=float(indicators.step % self.interval))


class EntropyPercentile(TriggerPolicy):
    """Percentile sampling over the per-rank output-volume distribution.

    Per step, draw ``s = percentile_sample_size(eps, delta)`` ranks
    (seeded, without replacement), take the ``percentile``-th percentile
    of their output volumes -- the streaming stand-in for per-block
    entropy -- and fire when it drifted by more than ``threshold``
    (relative) from the value at the last adaptation.  The budget is the
    papers' bound: independent of rank count, so the per-step cost stays
    ``s`` probes instead of a full ``nranks``-wide snapshot.

    ``max_interval`` bounds staleness (0 = unbounded): if that many
    steps pass without any adaptation, the trigger fires regardless of
    drift -- the papers' guard against an indicator that goes quiet
    exactly when the regime shifts.

    ``recalibrate`` closes the loop: a high hindsight flip fraction
    means stale decisions are costing real seconds, so the threshold
    tightens (more eager); zero flips with well-calibrated estimators
    loosens it (cheaper).
    """

    name = "entropy-percentile"

    def __init__(
        self,
        percentile: float = 90.0,
        threshold: float = 0.12,
        eps: float = 0.15,
        delta: float = 0.05,
        min_interval: int = 1,
        max_interval: int = 6,
        seed: int = 0,
        recalibrate_every: int = 0,
    ):
        super().__init__(recalibrate_every=recalibrate_every)
        if not 0.0 < percentile < 100.0:
            raise PolicyError(f"percentile must be in (0, 100), got {percentile}")
        if threshold <= 0:
            raise PolicyError(f"threshold must be positive, got {threshold}")
        if min_interval < 1:
            raise PolicyError(f"min_interval must be >= 1, got {min_interval}")
        if max_interval < 0:
            raise PolicyError(f"max_interval must be >= 0, got {max_interval}")
        if max_interval and max_interval < min_interval:
            raise PolicyError(
                f"max_interval {max_interval} must be >= min_interval "
                f"{min_interval}"
            )
        self.percentile = float(percentile)
        self.threshold = float(threshold)
        self.sample_size = percentile_sample_size(eps, delta)
        self.min_interval = int(min_interval)
        self.max_interval = int(max_interval)
        self.seed = int(seed)
        self._reference: float | None = None
        self._last_value: float | None = None
        self._last_adapted: int | None = None

    def _sample_percentile(self, indicators: TriggerIndicators) -> tuple[float, int]:
        ranks = indicators.rank_bytes
        budget = min(int(ranks.size), self.sample_size)
        if budget == ranks.size:
            sample = ranks
        else:
            # Seeded per step (not per call) so replays are bit-identical
            # regardless of how many times the step is evaluated.
            rng = np.random.default_rng(self.seed * 1_000_003 + indicators.step)
            sample = ranks[rng.choice(ranks.size, size=budget, replace=False)]
        return float(np.percentile(sample, self.percentile)), budget

    def should_adapt(self, indicators: TriggerIndicators) -> TriggerDecision:
        value, budget = self._sample_percentile(indicators)
        self._last_value = value
        if self._reference is None:
            return self._verdict(
                indicators, True, "no reference yet", value=value, budget=budget
            )
        if (
            self._last_adapted is not None
            and indicators.step - self._last_adapted < self.min_interval
        ):
            return self._verdict(
                indicators, False,
                f"within min-interval {self.min_interval}",
                value=value, budget=budget,
            )
        if self._reference > 0:
            drift = abs(value - self._reference) / self._reference
        else:
            drift = math.inf if value > 0 else 0.0
        fire = drift >= self.threshold
        reason = (
            f"p{self.percentile:g} drifted {drift * 100.0:.1f}% "
            f"{'≥' if fire else '<'} {self.threshold * 100.0:.1f}%"
        )
        if (
            not fire
            and self.max_interval
            and self._last_adapted is not None
            and indicators.step - self._last_adapted >= self.max_interval
        ):
            fire = True
            reason = (
                f"staleness bound: no adaptation for {self.max_interval} steps"
            )
        return self._verdict(indicators, fire, reason, value=value, budget=budget)

    def note_adapted(self, step: int, decision) -> None:
        if self._last_value is not None:
            self._reference = self._last_value
        self._last_adapted = step

    def recalibrate(self, feedback):
        if feedback.flip_fraction > 0.10:
            change = self._nudge("threshold", 0.8, 0.05, 0.60)
        elif (
            feedback.scored > 0
            and feedback.flip_fraction == 0.0
            and abs(feedback.estimator_bias_pct("insitu_time", "intransit_time"))
            < 10.0
        ):
            change = self._nudge("threshold", 1.1, 0.05, 0.60)
        else:
            change = None
        return {"threshold": change} if change else None


class Imbalance(TriggerPolicy):
    """Per-rank skew trigger: fire when max/mean load crosses or drifts.

    The indicator (``rank_bytes.max() / rank_bytes.mean()``) is already
    computed by the driver for its memory-feasibility check, so this
    policy spends zero sampling budget.  Fires when the skew crosses
    ``threshold`` in either direction, or drifts by more than ``drift``
    (relative) from the value at the last adaptation.
    """

    name = "imbalance"

    def __init__(
        self,
        threshold: float = 1.5,
        drift: float = 0.25,
        recalibrate_every: int = 0,
    ):
        super().__init__(recalibrate_every=recalibrate_every)
        if threshold < 1.0:
            raise PolicyError(f"threshold must be >= 1 (max/mean), got {threshold}")
        if drift <= 0:
            raise PolicyError(f"drift must be positive, got {drift}")
        self.threshold = float(threshold)
        self.drift = float(drift)
        self._reference: float | None = None
        self._last_value: float | None = None

    def should_adapt(self, indicators: TriggerIndicators) -> TriggerDecision:
        value = float(indicators.imbalance)
        self._last_value = value
        if self._reference is None:
            return self._verdict(indicators, True, "no reference yet", value=value)
        crossed = (value >= self.threshold) != (self._reference >= self.threshold)
        rel = (
            abs(value - self._reference) / self._reference
            if self._reference > 0
            else math.inf
        )
        fire = crossed or rel >= self.drift
        if crossed:
            reason = f"skew crossed threshold {self.threshold:g}"
        else:
            reason = (
                f"skew drifted {rel * 100.0:.1f}% "
                f"{'≥' if fire else '<'} {self.drift * 100.0:.1f}%"
            )
        return self._verdict(indicators, fire, reason, value=value)

    def note_adapted(self, step: int, decision) -> None:
        if self._last_value is not None:
            self._reference = self._last_value

    def recalibrate(self, feedback):
        if feedback.flip_fraction > 0.10:
            change = self._nudge("drift", 0.8, 0.05, 1.0)
        elif feedback.scored > 0 and feedback.flip_fraction == 0.0:
            change = self._nudge("drift", 1.1, 0.05, 1.0)
        else:
            change = None
        return {"drift": change} if change else None


class StagingPressure(TriggerPolicy):
    """Staging occupancy/queue-depth trigger, edge-triggered.

    Fires when the staging area *becomes* pressured (memory occupancy
    reaches ``occupancy`` or the queue reaches ``queue_depth`` jobs) and
    again when the pressure releases, so the engine both reacts to a
    filling substrate and relaxes once it drains.  Zero sampling budget:
    both indicators are staging-area bookkeeping the driver already has.
    """

    name = "staging-pressure"

    def __init__(
        self,
        occupancy: float = 0.75,
        queue_depth: int = 4,
        recalibrate_every: int = 0,
    ):
        super().__init__(recalibrate_every=recalibrate_every)
        if not 0.0 < occupancy <= 1.0:
            raise PolicyError(f"occupancy must be in (0, 1], got {occupancy}")
        if queue_depth < 1:
            raise PolicyError(f"queue_depth must be >= 1, got {queue_depth}")
        self.occupancy = float(occupancy)
        self.queue_depth = int(queue_depth)
        self._last_pressured: bool | None = None

    def should_adapt(self, indicators: TriggerIndicators) -> TriggerDecision:
        pressured = (
            indicators.staging_occupancy >= self.occupancy
            or indicators.staging_queue_depth >= self.queue_depth
        )
        fire = self._last_pressured is None or pressured != self._last_pressured
        self._last_pressured = pressured
        if fire and pressured:
            reason = (
                f"staging pressured (occupancy "
                f"{indicators.staging_occupancy * 100.0:.0f}%, queue "
                f"{indicators.staging_queue_depth})"
            )
        elif fire:
            reason = "staging pressure released"
        else:
            reason = "pressure state unchanged"
        return self._verdict(
            indicators, fire, reason, value=float(indicators.staging_occupancy)
        )

    def recalibrate(self, feedback):
        if feedback.flip_fraction > 0.10:
            change = self._nudge("occupancy", 0.9, 0.30, 0.95)
        elif feedback.scored > 0 and feedback.flip_fraction == 0.0:
            change = self._nudge("occupancy", 1.05, 0.30, 0.95)
        else:
            change = None
        return {"occupancy": change} if change else None


#: The closed trigger-policy registry: name -> (description, factory).
#: ``docs/triggers.md`` catalogs each; the docs-consistency suite keeps
#: the two in sync (like ``SCENARIOS`` and ``FAULT_KINDS``).
TRIGGER_POLICIES: dict[str, tuple[str, Callable[..., TriggerPolicy]]] = {
    FixedInterval.name: (
        "the paper's every-k-steps cadence, as a trigger (baseline)",
        FixedInterval,
    ),
    EntropyPercentile.name: (
        "percentile sampling over per-rank output volumes with a "
        "bounded, rank-count-independent budget",
        EntropyPercentile,
    ),
    Imbalance.name: (
        "per-rank compute/data skew (max/mean) crossing or drifting",
        Imbalance,
    ),
    StagingPressure.name: (
        "staging memory occupancy / queue depth, edge-triggered",
        StagingPressure,
    ),
}


def build_trigger(name: str, **kwargs) -> TriggerPolicy:
    """Instantiate a registered trigger policy by name."""
    entry = TRIGGER_POLICIES.get(name)
    if entry is None:
        known = ", ".join(sorted(TRIGGER_POLICIES))
        raise PolicyError(f"unknown trigger policy {name!r} (known: {known})")
    return entry[1](**kwargs)
