"""The coupled simulation + analysis workflow driver and its metrics.

:class:`~repro.workflow.driver.CoupledWorkflow` replays a workload trace
through the simulated machine under one of six execution modes (static
in-situ, static in-transit, per-layer local adaptation, or global
cross-layer adaptation) and produces a
:class:`~repro.workflow.metrics.WorkflowResult` with the quantities the
paper's evaluation reports: end-to-end time, end-to-end overhead, total
data movement, staging utilization efficiency (Eq. 12) and per-step core
usage (Table 2).
"""

from repro.workflow.builder import WorkflowBuilder
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import CoupledWorkflow, run_workflow
from repro.workflow.metrics import StepMetrics, WorkflowResult, core_usage_histogram
from repro.workflow.report import compare, result_from_json, result_to_json
from repro.workflow.triggers import (
    TRIGGER_POLICIES,
    CalibrationFeedback,
    EntropyPercentile,
    FixedInterval,
    Imbalance,
    StagingPressure,
    TriggerDecision,
    TriggerIndicators,
    TriggerPolicy,
    build_trigger,
    percentile_sample_size,
)

__all__ = [
    "CalibrationFeedback",
    "CoupledWorkflow",
    "EntropyPercentile",
    "FixedInterval",
    "Imbalance",
    "Mode",
    "StagingPressure",
    "StepMetrics",
    "TRIGGER_POLICIES",
    "TriggerDecision",
    "TriggerIndicators",
    "TriggerPolicy",
    "WorkflowBuilder",
    "WorkflowConfig",
    "WorkflowResult",
    "build_trigger",
    "compare",
    "core_usage_histogram",
    "percentile_sample_size",
    "result_from_json",
    "result_to_json",
    "run_workflow",
]
