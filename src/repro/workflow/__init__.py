"""The coupled simulation + analysis workflow driver and its metrics.

:class:`~repro.workflow.driver.CoupledWorkflow` replays a workload trace
through the simulated machine under one of six execution modes (static
in-situ, static in-transit, per-layer local adaptation, or global
cross-layer adaptation) and produces a
:class:`~repro.workflow.metrics.WorkflowResult` with the quantities the
paper's evaluation reports: end-to-end time, end-to-end overhead, total
data movement, staging utilization efficiency (Eq. 12) and per-step core
usage (Table 2).
"""

from repro.workflow.builder import WorkflowBuilder
from repro.workflow.config import Mode, WorkflowConfig
from repro.workflow.driver import CoupledWorkflow, run_workflow
from repro.workflow.metrics import StepMetrics, WorkflowResult, core_usage_histogram
from repro.workflow.report import compare, result_from_json, result_to_json

__all__ = [
    "CoupledWorkflow",
    "Mode",
    "StepMetrics",
    "WorkflowBuilder",
    "WorkflowConfig",
    "WorkflowResult",
    "compare",
    "core_usage_histogram",
    "result_from_json",
    "result_to_json",
    "run_workflow",
]
