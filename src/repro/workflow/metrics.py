"""Workflow metrics: the quantities the paper's evaluation reports."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.actions import Placement
from repro.errors import WorkflowError

__all__ = ["StepMetrics", "WorkflowResult", "core_usage_histogram"]


@dataclass
class StepMetrics:
    """Per-step record of what the workflow did."""

    step: int
    sim_seconds: float
    factor: int
    placement: Placement
    staging_cores: int
    data_bytes_full: float
    data_bytes_out: float  # after reduction
    insitu_seconds: float  # analysis + reduction time serialized with the sim
    block_seconds: float  # sim stalled waiting for staging memory
    analysis_done_at: float | None = None


@dataclass
class WorkflowResult:
    """One run's aggregate outcome.

    - ``end_to_end_seconds`` -- time until both the simulation loop and
      every analysis finished (Eq. 6's max over pipelines);
    - ``total_sim_seconds`` -- pure simulation compute (Fig. 7's
      "End-to-end Simulation Time" component);
    - ``overhead_seconds`` -- everything else on the critical path
      (Fig. 7's "End-to-end Overhead");
    - ``data_moved_bytes`` -- aggregated in-situ -> in-transit transfers
      (Figs. 8 and 11);
    - ``utilization_efficiency`` -- Eq. 12;
    - ``staging_idle_core_seconds`` -- allocated-but-idle waste.
    """

    mode: str
    steps: list[StepMetrics] = field(default_factory=list)
    end_to_end_seconds: float = 0.0
    total_sim_seconds: float = 0.0
    data_moved_bytes: float = 0.0
    utilization_efficiency: float = 0.0
    staging_idle_core_seconds: float = 0.0
    staging_total_cores: int = 0
    pfs_bytes_written: float = 0.0
    pfs_bytes_read: float = 0.0
    energy_joules: float = 0.0
    energy_breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def overhead_seconds(self) -> float:
        """End-to-end time minus pure simulation time."""
        return self.end_to_end_seconds - self.total_sim_seconds

    @property
    def overhead_fraction(self) -> float:
        """Overhead as a fraction of pure simulation time."""
        if self.total_sim_seconds == 0:
            return 0.0
        return self.overhead_seconds / self.total_sim_seconds

    def placement_counts(self) -> dict[Placement, int]:
        """Steps analysed per placement kind."""
        counts = {placement: 0 for placement in Placement}
        for metric in self.steps:
            counts[metric.placement] += 1
        return counts

    def factors_used(self) -> list[int]:
        """Per-step down-sampling factors."""
        return [metric.factor for metric in self.steps]

    def staging_cores_series(self) -> np.ndarray:
        """Per-step active staging core counts (Fig. 9's series)."""
        return np.array([metric.staging_cores for metric in self.steps])

    def validate(self) -> None:
        """Invariants every run must satisfy."""
        if self.end_to_end_seconds + 1e-9 < self.total_sim_seconds:
            raise WorkflowError("end-to-end time below pure simulation time")
        for metric in self.steps:
            if metric.analysis_done_at is None:
                raise WorkflowError(f"step {metric.step} analysis never completed")
            if metric.data_bytes_out > metric.data_bytes_full * (1 + 1e-9):
                raise WorkflowError(f"step {metric.step} grew data under reduction")


def core_usage_histogram(
    result: WorkflowResult, preallocated: int | None = None
) -> dict[str, int]:
    """Table 2's bucketing: steps using 100% / 75% / 50% / <50% of cores.

    A step falls in the highest bucket whose threshold its active-core
    fraction reaches.
    """
    total = preallocated if preallocated is not None else result.staging_total_cores
    if total < 1:
        raise WorkflowError("preallocated core count must be >= 1")
    buckets = {"100%": 0, "75%": 0, "50%": 0, "<50%": 0}
    intransit_steps = [
        m for m in result.steps if m.placement is Placement.IN_TRANSIT
    ]
    for metric in intransit_steps:
        fraction = metric.staging_cores / total
        if fraction >= 1.0 - 1e-9:
            buckets["100%"] += 1
        elif fraction >= 0.75:
            buckets["75%"] += 1
        elif fraction >= 0.50:
            buckets["50%"] += 1
        else:
            buckets["<50%"] += 1
    return buckets
