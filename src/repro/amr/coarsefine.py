"""Coarse-fine interlevel operators on dense arrays.

- :func:`restrict` conservatively averages ``ratio**ndim`` fine cells into
  each coarse cell.
- :func:`prolong` interpolates coarse data onto a refined grid, either
  piecewise-constant (order 0) or with limited linear slopes (order 1,
  conservative per coarse cell: the average of the fine values it produces
  equals the coarse value).

Arrays carry a leading component axis: shape ``(ncomp, *spatial)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError

__all__ = ["prolong", "restrict"]


def restrict(fine: np.ndarray, ratio: int) -> np.ndarray:
    """Average ``ratio``-blocks of fine cells down to coarse cells.

    ``fine`` has shape ``(ncomp, *spatial)`` with every spatial extent a
    multiple of ``ratio``.
    """
    if ratio < 1:
        raise GeometryError(f"ratio must be >= 1, got {ratio}")
    fine = np.asarray(fine)
    spatial = fine.shape[1:]
    if any(s % ratio for s in spatial):
        raise GeometryError(f"fine shape {spatial} not divisible by ratio {ratio}")
    out = fine
    # Reshape trick: split each spatial axis into (coarse, ratio) and mean
    # over the ratio sub-axes.
    new_shape = [fine.shape[0]]
    for s in spatial:
        new_shape.extend([s // ratio, ratio])
    reshaped = fine.reshape(new_shape)
    mean_axes = tuple(2 + 2 * d for d in range(len(spatial)))
    out = reshaped.mean(axis=mean_axes)
    return out


def prolong(coarse: np.ndarray, ratio: int, order: int = 1) -> np.ndarray:
    """Interpolate coarse data onto a grid refined by ``ratio``.

    ``order=0`` is piecewise-constant injection.  ``order=1`` adds
    van-Leer-limited central slopes per direction; the interpolation is
    conservative (fine averages reproduce the coarse values) because the
    per-cell offsets are symmetric around zero.
    """
    if ratio < 1:
        raise GeometryError(f"ratio must be >= 1, got {ratio}")
    if order not in (0, 1):
        raise GeometryError(f"order must be 0 or 1, got {order}")
    coarse = np.asarray(coarse, dtype=np.float64)
    ndim = coarse.ndim - 1
    out = coarse
    for axis in range(1, ndim + 1):
        out = np.repeat(out, ratio, axis=axis)
    if order == 0 or ratio == 1:
        return out

    # Fractional offsets of fine-cell centres within a coarse cell,
    # in units of the coarse spacing: (k + 0.5)/ratio - 0.5.
    offsets = (np.arange(ratio) + 0.5) / ratio - 0.5
    for axis in range(1, ndim + 1):
        slope = _limited_slope(coarse, axis)
        slope_rep = slope
        for a in range(1, ndim + 1):
            slope_rep = np.repeat(slope_rep, ratio, axis=a)
        # Tile the per-fine-cell offset along this axis.
        shape = [1] * out.ndim
        shape[axis] = out.shape[axis]
        tiled = np.tile(offsets, out.shape[axis] // ratio).reshape(shape)
        out = out + slope_rep * tiled
    return out


def _limited_slope(coarse: np.ndarray, axis: int) -> np.ndarray:
    """Van-Leer-limited central slope along ``axis`` (one-sided at edges)."""
    fwd = np.zeros_like(coarse)
    bwd = np.zeros_like(coarse)
    n = coarse.shape[axis]
    if n == 1:
        return np.zeros_like(coarse)

    def sl(a, b):
        idx = [slice(None)] * coarse.ndim
        idx[axis] = slice(a, b)
        return tuple(idx)

    diff = np.diff(coarse, axis=axis)
    fwd[sl(0, n - 1)] = diff
    fwd[sl(n - 1, n)] = diff[sl(n - 2, n - 1)]
    bwd[sl(1, n)] = diff
    bwd[sl(0, 1)] = diff[sl(0, 1)]

    central = 0.5 * (fwd + bwd)
    # Van Leer: zero at extrema, else min(|central|, 2|fwd|, 2|bwd|) w/ sign.
    same_sign = (fwd * bwd) > 0
    mag = np.minimum(np.abs(central), 2 * np.minimum(np.abs(fwd), np.abs(bwd)))
    return np.where(same_sign, np.sign(central) * mag, 0.0)
