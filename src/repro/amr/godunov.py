"""Polytropic gas (Euler) solver with an unsplit Godunov scheme.

The paper's second, memory- and compute-intensive Chombo application:
``AMRGodunov PolytropicGas`` integrates the Euler equations of gas
dynamics with a gamma-law equation of state.  This module implements an
unsplit finite-volume update with MUSCL (minmod-limited) reconstruction
and HLL fluxes -- per-box, fully vectorized over cells, in 1/2/3-D.

Conserved state layout (component axis first):

====== ======================
index  quantity
====== ======================
0      density ``rho``
1..d   momentum ``rho * v_k``
d+1    total energy ``E``
====== ======================

Initial condition: a dense, hot spherical region (a blast/explosion
problem).  As the blast expands, the shock surface grows, and with it the
refined region -- reproducing the erratic memory growth of the paper's
Figure 1.
"""

from __future__ import annotations

import numpy as np

from repro.amr.hierarchy import AMRHierarchy
from repro.amr.tagging import tag_undivided_difference
from repro.errors import GeometryError

__all__ = ["PolytropicGasSolver"]

_RHO_FLOOR = 1e-10
_P_FLOOR = 1e-12


def _shape_groups(arrays) -> list[list[int]]:
    """Indices of ``arrays`` grouped by shape, preserving first-seen order."""
    groups: dict[tuple[int, ...], list[int]] = {}
    for i, arr in enumerate(arrays):
        groups.setdefault(arr.shape, []).append(i)
    return list(groups.values())


# Spatial cells per batched solver call.  Stacking a whole level into one
# array makes every temporary tens of MB and pushes the update out of
# cache; chunks of ~1e5 cells keep the working set resident (measured ~6x
# on a 340-box level) while still amortizing NumPy dispatch overhead.
_BATCH_CELLS = 1 << 17


def _batches(indices: list[int], cells_per_box: int) -> list[list[int]]:
    """Split one same-shape group into cache-sized chunks."""
    per = max(1, _BATCH_CELLS // max(1, cells_per_box))
    return [indices[k : k + per] for k in range(0, len(indices), per)]


class PolytropicGasSolver:
    """Euler equations with gamma-law EOS; unsplit MUSCL-HLL Godunov update.

    Parameters
    ----------
    gamma:
        Ratio of specific heats (1.4 for air, Chombo's default).
    cfl:
        Courant number (shared across the unsplit update).
    order:
        1 = piecewise-constant Godunov, 2 = MUSCL minmod reconstruction.
    tag_threshold:
        Relative undivided density difference that triggers refinement.
    blast_pressure_jump, blast_density_jump, blast_radius:
        Initial condition parameters (relative to ambient ``rho=1, p=1``).
    """

    nghost = 2

    def __init__(
        self,
        gamma: float = 1.4,
        cfl: float = 0.4,
        order: int = 2,
        tag_threshold: float = 0.08,
        blast_pressure_jump: float = 10.0,
        blast_density_jump: float = 3.0,
        blast_radius: float = 0.15,
    ):
        if gamma <= 1.0:
            raise GeometryError(f"gamma must exceed 1, got {gamma}")
        if not (0 < cfl <= 1):
            raise GeometryError(f"cfl must be in (0, 1], got {cfl}")
        if order not in (1, 2):
            raise GeometryError(f"order must be 1 or 2, got {order}")
        self.gamma = float(gamma)
        self.cfl = float(cfl)
        self.order = int(order)
        self.tag_threshold = float(tag_threshold)
        self.blast_pressure_jump = float(blast_pressure_jump)
        self.blast_density_jump = float(blast_density_jump)
        self.blast_radius = float(blast_radius)
        self._ndim: int | None = None

    # -- state helpers ---------------------------------------------------------

    @property
    def ncomp(self) -> int:
        """Components for the bound dimension (set at :meth:`initialize`)."""
        if self._ndim is None:
            raise GeometryError("solver not initialized; ncomp depends on dimension")
        return self._ndim + 2

    def ncomp_for(self, ndim: int) -> int:
        """Conserved components for an ``ndim``-dimensional problem."""
        return ndim + 2

    def primitives(self, U: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rho, velocities, pressure)`` from conserved state ``U``."""
        ndim = U.shape[0] - 2
        rho = np.maximum(U[0], _RHO_FLOOR)
        vel = U[1 : 1 + ndim] / rho
        kinetic = 0.5 * rho * np.sum(vel * vel, axis=0)
        p = (self.gamma - 1.0) * (U[-1] - kinetic)
        return rho, vel, np.maximum(p, _P_FLOOR)

    def sound_speed(self, U: np.ndarray) -> np.ndarray:
        """Adiabatic sound speed per cell."""
        rho, _vel, p = self.primitives(U)
        return np.sqrt(self.gamma * p / rho)

    # -- protocol ------------------------------------------------------------

    def initialize(self, hierarchy: AMRHierarchy) -> None:
        """Set the spherical blast initial condition on every level."""
        ndim = hierarchy.domain.ndim
        self._ndim = ndim
        if hierarchy.ncomp != self.ncomp_for(ndim):
            raise GeometryError(
                f"hierarchy has ncomp={hierarchy.ncomp}, solver needs "
                f"{self.ncomp_for(ndim)} for {ndim}-D"
            )
        extent = [s * hierarchy.dx0 for s in hierarchy.domain.shape]
        center = tuple(0.5 * e for e in extent)
        radius = self.blast_radius * min(extent)

        def blast(*coords: np.ndarray) -> np.ndarray:
            r = np.sqrt(sum((c - c0) ** 2 for c, c0 in zip(coords, center)))
            inside = r < radius
            rho = np.where(inside, self.blast_density_jump, 1.0)
            p = np.where(inside, self.blast_pressure_jump, 1.0)
            out = np.zeros((ndim + 2, *r.shape))
            out[0] = rho
            out[-1] = p / (self.gamma - 1.0)  # zero initial velocity
            return out

        for level, spec in enumerate(hierarchy.levels):
            spec.data.set_from_function(blast, dx=hierarchy.dx(level))

    def stable_dt_level(self, spec, dx: float, ndim: int) -> float:
        """Unsplit CFL limit for one level: ``cfl * dx / sum_d max(|v_d|+c)``."""
        del ndim
        dt = np.inf
        for wave in self._level_waves(spec):
            if wave > 0:
                dt = min(dt, self.cfl * dx / wave)
        return float(dt)

    def _level_waves(self, spec) -> list[float]:
        """Per-box ``sum_d max(|v_d|+c)``, batched over same-shape boxes.

        Stacking same-shape boxes turns hundreds of small reductions into
        a handful of large ones; ``max`` is exact, so the result is
        bit-identical to the per-box loop.
        """
        nboxes = len(spec.layout)
        waves = [0.0] * nboxes
        groups = _shape_groups(spec.data.valid_view(i) for i in range(nboxes))
        chunks = [
            chunk
            for group in groups
            for chunk in _batches(group, spec.layout.boxes[group[0]].size)
        ]
        for indices in chunks:
            if len(indices) == 1:
                U = spec.data.valid_view(indices[0])
            else:
                # (ncomp, k, *spatial): the box axis rides along like an
                # extra spatial axis, the component axis stays first.
                U = np.stack([spec.data.valid_view(i) for i in indices], axis=1)
            rho, vel, p = self.primitives(U)
            c = np.sqrt(self.gamma * p / rho)
            for d in range(vel.shape[0]):
                speeds = np.abs(vel[d]) + c
                if len(indices) == 1:
                    waves[indices[0]] += float(np.max(speeds))
                else:
                    axes = tuple(range(1, speeds.ndim))
                    per_box = np.max(speeds, axis=axes)
                    for slot, i in enumerate(indices):
                        waves[i] += float(per_box[slot])
        return waves

    def stable_dt(self, hierarchy: AMRHierarchy) -> float:
        """Global (non-subcycled) CFL limit over all levels."""
        ndim = hierarchy.domain.ndim
        dt = min(
            self.stable_dt_level(spec, hierarchy.dx(level), ndim)
            for level, spec in enumerate(hierarchy.levels)
        )
        if not np.isfinite(dt):
            raise GeometryError("no finite CFL limit; state may be uninitialized")
        return float(dt)

    def compute_fluxes(self, arr: np.ndarray, dx: float) -> list[np.ndarray]:
        """HLL face fluxes per axis over the ``n_d + 1`` interior faces.

        ``dx`` is unused (the Riemann flux is resolution-independent) but
        kept for the shared flux-provider signature.
        """
        del dx
        return self._compute_fluxes_nd(arr, arr.ndim - 1)

    def _compute_fluxes_nd(self, arr: np.ndarray, ndim: int) -> list[np.ndarray]:
        """Fluxes with an explicit spatial dimension (batched arrays carry
        an extra box axis between the component and spatial axes)."""
        g = self.nghost
        fluxes: list[np.ndarray] = []
        for axis in range(ndim):
            UL, UR = self._face_states(arr, axis, g, ndim)
            fluxes.append(self._hll_flux(UL, UR, axis))
        return fluxes

    def advance(self, arr: np.ndarray, dx: float, dt: float) -> None:
        """One unsplit conservative update of a ghosted box array (in place)."""
        self._advance_nd(arr, arr.ndim - 1, dx, dt)

    def advance_boxes(self, arrays: list[np.ndarray], dx: float, dt: float) -> None:
        """Advance a whole level's boxes, batching same-shape arrays.

        Every numerical op is elementwise (or reduces over the fixed
        component axis), so stacking boxes along an extra axis produces
        bit-identical updates while amortizing NumPy call overhead over
        the level instead of paying it per box.
        """
        for group in _shape_groups(arrays):
            for indices in _batches(group, arrays[group[0]][0].size):
                if len(indices) == 1:
                    self.advance(arrays[indices[0]], dx, dt)
                    continue
                stacked = np.stack([arrays[i] for i in indices], axis=1)
                self._advance_nd(stacked, stacked.ndim - 2, dx, dt)
                for slot, i in enumerate(indices):
                    arrays[i][...] = stacked[:, slot]

    def _advance_nd(self, arr: np.ndarray, ndim: int, dx: float, dt: float) -> None:
        self.advance_with_fluxes(arr, dx, dt, self._compute_fluxes_nd(arr, ndim),
                                 ndim=ndim)

    def advance_with_fluxes(
        self,
        arr: np.ndarray,
        dx: float,
        dt: float,
        fluxes: list[np.ndarray],
        ndim: int | None = None,
    ) -> None:
        """Apply the divergence of precomputed fluxes, then physical floors."""
        g = self.nghost
        if ndim is None:
            ndim = arr.ndim - 1
        lead = arr.ndim - ndim
        U = arr
        interior_idx = (slice(None),) * lead + self._interior(ndim, g)
        flux_div = np.zeros_like(U[interior_idx])
        for axis, F in enumerate(fluxes):
            # F has one more entry along `axis` than the interior; difference it.
            hi = [slice(None)] * F.ndim
            lo = [slice(None)] * F.ndim
            hi[lead + axis] = slice(1, None)
            lo[lead + axis] = slice(None, -1)
            flux_div += (F[tuple(hi)] - F[tuple(lo)]) / dx
        U[interior_idx] -= dt * flux_div
        # Floors guard against negative density/pressure from strong shocks.
        interior = U[interior_idx]
        interior[0] = np.maximum(interior[0], _RHO_FLOOR)
        rho, vel, p = self.primitives(interior)
        kinetic = 0.5 * rho * np.sum(vel * vel, axis=0)
        interior[-1] = np.maximum(interior[-1], kinetic + _P_FLOOR / (self.gamma - 1.0))

    def tag_cells(self, dense: np.ndarray, level: int, dx: float) -> np.ndarray:
        """Refine on relative undivided density differences (shock tracking)."""
        rho = dense[0]
        scale = np.nanmean(np.abs(rho))
        if not np.isfinite(scale) or scale == 0:
            scale = 1.0
        return tag_undivided_difference(rho / scale, self.tag_threshold)

    def work_per_cell(self) -> float:
        """Relative cost of one cell update; Euler is ~8x the scalar tracer."""
        return 8.0

    # -- numerics ------------------------------------------------------------

    @staticmethod
    def _interior(ndim: int, g: int) -> tuple[slice, ...]:
        return tuple(slice(g, -g) for _ in range(ndim))

    def _face_states(
        self, U: np.ndarray, axis: int, g: int, ndim: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Left/right states at the ``n_interior + 1`` faces along ``axis``.

        Other axes are restricted to the interior.  With ``order == 2`` a
        minmod-limited linear reconstruction is used.  ``ndim`` counts the
        trailing spatial axes (leading component/batch axes pass through).
        """
        if ndim is None:
            ndim = U.ndim - 1
        lead = U.ndim - ndim

        def band(offset_lo: int, offset_hi: int) -> np.ndarray:
            """Slice: interior on other axes, [g+offset_lo, -g+offset_hi) on axis."""
            slc: list[slice] = [slice(None)] * lead
            for d in range(ndim):
                if d == axis:
                    stop = -g + offset_hi
                    slc.append(slice(g + offset_lo, stop if stop != 0 else None))
                else:
                    slc.append(slice(g, -g))
            return U[tuple(slc)]

        # Cells i = -1 .. n (one beyond the interior each way along `axis`).
        center = band(-1, 1)
        if self.order == 1:
            UL = center[self._axis_slice(lead, ndim, axis, slice(None, -1))]
            UR = center[self._axis_slice(lead, ndim, axis, slice(1, None))]
            return UL, UR
        left = band(-2, 0)
        right = band(0, 2)
        dl = center - left
        dr = right - center
        slope = self._minmod(dl, dr)
        recon_l = center + 0.5 * slope  # right face of each cell
        recon_r = center - 0.5 * slope  # left face of each cell
        UL = recon_l[self._axis_slice(lead, ndim, axis, slice(None, -1))]
        UR = recon_r[self._axis_slice(lead, ndim, axis, slice(1, None))]
        return UL, UR

    @staticmethod
    def _axis_slice(lead: int, ndim: int, axis: int, sl: slice) -> tuple[slice, ...]:
        out: list[slice] = [slice(None)] * lead
        for d in range(ndim):
            out.append(sl if d == axis else slice(None))
        return tuple(out)

    @staticmethod
    def _minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        same = (a * b) > 0
        return np.where(same, np.where(np.abs(a) < np.abs(b), a, b), 0.0)

    def _physical_flux(
        self,
        U: np.ndarray,
        axis: int,
        prims: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        rho, vel, p = self.primitives(U) if prims is None else prims
        vd = vel[axis]
        F = np.empty_like(U)
        F[0] = rho * vd
        for k in range(vel.shape[0]):
            F[1 + k] = rho * vel[k] * vd
        F[1 + axis] += p
        F[-1] = (U[-1] + p) * vd
        return F

    def _hll_flux(self, UL: np.ndarray, UR: np.ndarray, axis: int) -> np.ndarray:
        rhoL, velL, pL = self.primitives(UL)
        rhoR, velR, pR = self.primitives(UR)
        cL = np.sqrt(self.gamma * pL / rhoL)
        cR = np.sqrt(self.gamma * pR / rhoR)
        sL = np.minimum(velL[axis] - cL, velR[axis] - cR)
        sR = np.maximum(velL[axis] + cL, velR[axis] + cR)
        # Reuse the primitives already computed for the wave speeds.
        FL = self._physical_flux(UL, axis, (rhoL, velL, pL))
        FR = self._physical_flux(UR, axis, (rhoR, velR, pR))
        denom = sR - sL
        denom = np.where(np.abs(denom) < 1e-14, 1e-14, denom)
        F_star = (sR * FL - sL * FR + (sL * sR) * (UR - UL)) / denom
        F = np.where(sL >= 0, FL, np.where(sR <= 0, FR, F_star))
        return F
