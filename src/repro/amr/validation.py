"""Convergence-study utilities for the solvers.

Production solver suites measure observed order of accuracy by running
the same problem at several resolutions against a reference solution.
:func:`convergence_order` does the bookkeeping; the test suite uses it to
pin the advection solver's first-order (upwind) behaviour and the
Godunov solver's resolution improvement on smooth data.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError

__all__ = ["ConvergenceStudy", "convergence_order", "l1_error", "l2_error"]


def l1_error(numerical: np.ndarray, exact: np.ndarray) -> float:
    """Mean absolute error between fields of equal shape."""
    numerical = np.asarray(numerical)
    exact = np.asarray(exact)
    if numerical.shape != exact.shape:
        raise GeometryError(
            f"shape mismatch: {numerical.shape} vs {exact.shape}"
        )
    return float(np.abs(numerical - exact).mean())


def l2_error(numerical: np.ndarray, exact: np.ndarray) -> float:
    """Root-mean-square error between fields of equal shape."""
    numerical = np.asarray(numerical)
    exact = np.asarray(exact)
    if numerical.shape != exact.shape:
        raise GeometryError(
            f"shape mismatch: {numerical.shape} vs {exact.shape}"
        )
    return float(np.sqrt(np.mean((numerical - exact) ** 2)))


@dataclass(frozen=True)
class ConvergenceStudy:
    """Resolutions, errors and the fitted observed order."""

    resolutions: tuple[int, ...]
    errors: tuple[float, ...]
    order: float

    def pairwise_orders(self) -> list[float]:
        """Order estimates from consecutive resolution pairs."""
        out = []
        for (n1, e1), (n2, e2) in zip(
            zip(self.resolutions, self.errors),
            zip(self.resolutions[1:], self.errors[1:]),
        ):
            if e1 <= 0 or e2 <= 0:
                out.append(float("inf"))
            else:
                out.append(float(np.log(e1 / e2) / np.log(n2 / n1)))
        return out


def convergence_order(
    run: Callable[[int], float],
    resolutions: Sequence[int],
) -> ConvergenceStudy:
    """Run ``run(n) -> error`` at each resolution and fit the order.

    The order is the least-squares slope of ``log(error)`` against
    ``log(1/n)``; errors must be positive and resolutions increasing.
    """
    resolutions = tuple(int(n) for n in resolutions)
    if len(resolutions) < 2:
        raise GeometryError("need at least two resolutions")
    if any(a >= b for a, b in zip(resolutions, resolutions[1:])):
        raise GeometryError(f"resolutions must increase: {resolutions}")
    errors = tuple(float(run(n)) for n in resolutions)
    if any(e <= 0 for e in errors):
        raise GeometryError(f"errors must be positive: {errors}")
    slope, _intercept = np.polyfit(
        np.log(1.0 / np.asarray(resolutions, dtype=float)),
        np.log(np.asarray(errors)),
        deg=1,
    )
    return ConvergenceStudy(resolutions, errors, float(slope))
