"""Berger-Oliger subcycled time stepping.

Chombo advances each level with its own time step: the coarse level takes
one step of ``dt``, then each finer level takes ``ref_ratio`` steps of
``dt / ref_ratio``, recursively.  Compared to the non-subcycled
:class:`~repro.amr.stepper.AMRStepper` this removes the global CFL
penalty -- a deeply refined hierarchy no longer forces tiny steps on the
coarse grid.

Implementation notes:

- Fine-level ghost cells at substep ``k`` are interpolated *in time*
  between the coarse solution at the start and end of the coarse step
  (linear interpolation, Chombo's default).
- Flux registers accumulate the coarse flux once (weight ``dt``) and the
  fine fluxes per substep (weight ``dt / r``); the correction is applied
  after the fine sweeps, then the fine solution is averaged down.
- Regridding happens between coarse steps.
"""

from __future__ import annotations

import numpy as np

from repro.amr.fluxregister import FluxRegister, assemble_dense_fluxes
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.stepper import AMRApplication, AMRStepper, StepStats
from repro.errors import HierarchyError

__all__ = ["SubcycledStepper"]


class SubcycledStepper(AMRStepper):
    """Recursive Berger-Oliger stepper; one :meth:`step` = one coarse step."""

    def __init__(
        self,
        hierarchy: AMRHierarchy,
        app: AMRApplication,
        regrid_interval: int = 4,
        initialize: bool = True,
        reflux: bool = True,
    ):
        super().__init__(
            hierarchy,
            app,
            regrid_interval=regrid_interval,
            initialize=initialize,
            reflux=reflux,
        )
        self._halo_bytes = 0
        self._work = 0.0
        # Coarse solution at the start of the current coarse step, per
        # level, for the time interpolation of fine ghosts.
        self._old_state: dict[int, list[np.ndarray]] = {}

    # -- time step selection ------------------------------------------------

    def coarse_dt(self) -> float:
        """Largest level-0 step stable for every level under subcycling.

        Level ``l`` runs at ``dt0 / r^l``, so each level's own CFL limit,
        scaled back to level 0, must hold.
        """
        h = self.hierarchy
        ndim = h.domain.ndim
        dt = np.inf
        for level, spec in enumerate(h.levels):
            level_dt = self.app.stable_dt_level(spec, h.dx(level), ndim)  # type: ignore[attr-defined]
            dt = min(dt, level_dt * h.ref_ratio**level)
        if not np.isfinite(dt):
            raise HierarchyError("no finite CFL limit for subcycled step")
        return float(dt)

    # -- stepping ------------------------------------------------------------

    def step(self) -> StepStats:
        """Advance the hierarchy by one coarse step (fine levels subcycle)."""
        h = self.hierarchy
        dt = self.coarse_dt()
        self._halo_bytes = 0
        self._work = 0.0
        self.last_reflux_delta = 0.0
        self._advance_level(0, dt, theta=None)
        self.step_count += 1
        self.time += dt

        regridded = False
        if self.regrid_interval and self.step_count % self.regrid_interval == 0:
            regridded = self._do_regrid()

        stats = self._collect(dt, self._halo_bytes, regridded, self._work)
        self.history.append(stats)
        return stats

    def _advance_level(self, level: int, dt: float, theta: float | None) -> None:
        h = self.hierarchy
        spec = h.levels[level]
        dx = h.dx(level)

        self._fill_ghosts_interp(level, theta)
        has_finer = level < h.finest_level
        if has_finer:
            # Save the pre-step state for fine ghost time interpolation.
            self._old_state[level] = [arr.copy() for arr in spec.data.data]

        if self.reflux:
            box_fluxes = []
            for arr in spec.data.data:
                fluxes = self.app.compute_fluxes(arr, dx)  # type: ignore[attr-defined]
                self.app.advance_with_fluxes(arr, dx, dt, fluxes)  # type: ignore[attr-defined]
                box_fluxes.append(fluxes)
            dense = assemble_dense_fluxes(spec.data, box_fluxes, h.level_domain(level))
        else:
            for arr in spec.data.data:
                self.app.advance(arr, dx, dt)
            dense = None
        self._work += spec.layout.total_cells * self.app.work_per_cell()

        register = None
        if self.reflux and has_finer:
            register = self._register_for(level)
            register.reset()
            for axis in range(h.domain.ndim):
                register.add_coarse(axis, dense[axis], dt)
        if self.reflux and level > 0:
            # This level's fluxes are the fine side of the parent's register.
            parent_key = (level - 1, id(spec.layout))
            parent_register = self._registers.get(parent_key)
            if parent_register is not None:
                for axis in range(h.domain.ndim):
                    parent_register.add_fine(axis, dense[axis], dt)

        if has_finer:
            r = h.ref_ratio
            for k in range(r):
                # Fine ghosts at substep k live at t + (k/r) * dt.
                self._advance_level(level + 1, dt / r, theta=k / r)
            h.average_down_pair(level + 1)
            if register is not None:
                self.last_reflux_delta = max(
                    self.last_reflux_delta,
                    register.apply(spec.data, dx),
                )

    def _register_for(self, level: int) -> FluxRegister:
        h = self.hierarchy
        fine_layout = h.levels[level + 1].layout
        key = (level, id(fine_layout))
        register = self._registers.get(key)
        if register is None:
            self._registers = {
                k: v for k, v in self._registers.items() if k[0] != level
            }
            register = FluxRegister(
                h.level_domain(level),
                [b.coarsen(h.ref_ratio) for b in fine_layout],
                ncomp=h.ncomp,
                ref_ratio=h.ref_ratio,
                periodic=h.periodic,
            )
            self._registers[key] = register
        return register

    def _fill_ghosts_interp(self, level: int, theta: float | None) -> None:
        """Ghost fill with linear time interpolation of the coarse data."""
        h = self.hierarchy
        if level == 0 or theta is None or (level - 1) not in self._old_state:
            self._halo_bytes += h.fill_ghosts(level)
            return
        coarse = h.levels[level - 1].data
        old = self._old_state[level - 1]
        if len(old) != len(coarse.data):
            # Layout changed mid-step (cannot happen in a well-formed run,
            # but never interpolate across different layouts).
            self._halo_bytes += h.fill_ghosts(level)
            return
        current = [arr.copy() for arr in coarse.data]
        # The ghost substep needs coarse data at t + theta*dt_coarse; the
        # arrays currently hold t + dt_coarse.
        for arr, old_arr in zip(coarse.data, old):
            arr[...] = (1.0 - theta) * old_arr + theta * arr
        try:
            self._halo_bytes += h.fill_ghosts(level)
        finally:
            for arr, cur in zip(coarse.data, current):
                arr[...] = cur

