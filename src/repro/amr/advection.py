"""Adaptive advection-diffusion solver (the paper's first Chombo application).

Solves ``u_t + a . grad(u) = nu * lap(u)`` with first-order upwinding for
the advective term and explicit central differences for diffusion, on every
level of an :class:`~repro.amr.hierarchy.AMRHierarchy`.  The scheme is the
conservative transport solver of the Chombo ``AMRGodunov`` example family,
simplified to a scalar tracer.

The solver implements the :class:`~repro.amr.stepper.AMRApplication`
protocol; it is driven by :class:`~repro.amr.stepper.AMRStepper`.
"""

from __future__ import annotations

import numpy as np

from repro.amr.hierarchy import AMRHierarchy
from repro.amr.tagging import tag_undivided_difference
from repro.errors import GeometryError

__all__ = ["AdvectionDiffusionSolver"]


class AdvectionDiffusionSolver:
    """Scalar advection-diffusion with upwind fluxes.

    Parameters
    ----------
    velocity:
        Constant advection velocity, one component per dimension.
    nu:
        Diffusion coefficient (>= 0).
    cfl:
        Courant number for the advective limit.
    tag_threshold:
        Undivided-difference threshold for refinement tagging.
    blob_center, blob_radius:
        Initial condition: a compact Gaussian blob (plus a background of
        zero), the standard smoke test for adaptive transport.
    """

    ncomp = 1
    nghost = 2

    def __init__(
        self,
        velocity: tuple[float, ...],
        nu: float = 0.0,
        cfl: float = 0.5,
        tag_threshold: float = 0.02,
        blob_center: tuple[float, ...] | None = None,
        blob_radius: float = 0.1,
    ):
        if nu < 0:
            raise GeometryError(f"nu must be >= 0, got {nu}")
        if not (0 < cfl <= 1):
            raise GeometryError(f"cfl must be in (0, 1], got {cfl}")
        self.velocity = tuple(float(v) for v in velocity)
        self.nu = float(nu)
        self.cfl = float(cfl)
        self.tag_threshold = float(tag_threshold)
        self.blob_center = blob_center
        self.blob_radius = float(blob_radius)

    # -- protocol ------------------------------------------------------------

    def initialize(self, hierarchy: AMRHierarchy) -> None:
        """Set the Gaussian blob on every level."""
        ndim = hierarchy.domain.ndim
        if len(self.velocity) != ndim:
            raise GeometryError(
                f"velocity has {len(self.velocity)} components for a {ndim}-D domain"
            )
        extent = [s * hierarchy.dx0 for s in hierarchy.domain.shape]
        center = self.blob_center or tuple(0.35 * e for e in extent)
        radius = self.blob_radius * min(extent)

        def blob(*coords: np.ndarray) -> np.ndarray:
            r2 = sum((c - c0) ** 2 for c, c0 in zip(coords, center))
            return np.exp(-r2 / (2 * radius**2))

        for level, spec in enumerate(hierarchy.levels):
            spec.data.set_from_function(blob, dx=hierarchy.dx(level))

    def stable_dt_level(self, spec, dx: float, ndim: int) -> float:
        """CFL limit for one level at spacing ``dx`` (data-independent here)."""
        del spec
        speed = sum(abs(v) for v in self.velocity)
        dt = np.inf
        if speed > 0:
            dt = min(dt, self.cfl * dx / speed)
        if self.nu > 0:
            dt = min(dt, 0.4 * dx * dx / (2 * ndim * self.nu))
        if not np.isfinite(dt):
            raise GeometryError("zero velocity and zero diffusion: dt unbounded")
        return float(dt)

    def stable_dt(self, hierarchy: AMRHierarchy) -> float:
        """Global (non-subcycled) CFL limit: the finest level binds."""
        ndim = hierarchy.domain.ndim
        return min(
            self.stable_dt_level(spec, hierarchy.dx(level), ndim)
            for level, spec in enumerate(hierarchy.levels)
        )

    def compute_fluxes(self, arr: np.ndarray, dx: float) -> list[np.ndarray]:
        """Face fluxes per axis: upwind advective plus central diffusive.

        The returned array for axis ``d`` covers the ``n_d + 1`` interior
        faces (other axes restricted to the interior) with shape
        ``(ncomp, ..., n_d + 1, ...)``.  ``advance`` differences exactly
        these fluxes, so the update is conservative and the flux register
        can consume them for coarse-fine refluxing.
        """
        g = self.nghost
        u = arr[0]
        ndim = u.ndim
        fluxes: list[np.ndarray] = []
        for axis in range(ndim):
            # Cells i = -1 .. n along `axis`, interior on other axes.
            band = self._band(u, axis, g)
            left = band[self._axis_slice(ndim, axis, slice(None, -1))]
            right = band[self._axis_slice(ndim, axis, slice(1, None))]
            v = self.velocity[axis]
            advective = v * (left if v > 0 else right)
            diffusive = -self.nu * (right - left) / dx if self.nu > 0 else 0.0
            fluxes.append((advective + diffusive)[None, ...])
        return fluxes

    def advance(self, arr: np.ndarray, dx: float, dt: float) -> None:
        """One conservative explicit update of the ghosted array (in place).

        ``arr`` has shape ``(1, *padded)`` with ``nghost`` ghost cells per
        side; only interior cells are updated.
        """
        self.advance_with_fluxes(arr, dx, dt, self.compute_fluxes(arr, dx))

    def advance_with_fluxes(
        self, arr: np.ndarray, dx: float, dt: float, fluxes: list[np.ndarray]
    ) -> None:
        """Apply the flux divergence of precomputed ``fluxes``."""
        g = self.nghost
        ndim = arr.ndim - 1
        interior = (slice(None), *self._interior(ndim, g))
        for axis, F in enumerate(fluxes):
            hi = [slice(None)] * F.ndim
            lo = [slice(None)] * F.ndim
            hi[1 + axis] = slice(1, None)
            lo[1 + axis] = slice(None, -1)
            arr[interior] -= dt / dx * (F[tuple(hi)] - F[tuple(lo)])

    @staticmethod
    def _band(u: np.ndarray, axis: int, g: int) -> np.ndarray:
        """Cells -1..n along ``axis``, interior on the other axes."""
        slc: list[slice] = []
        for d in range(u.ndim):
            if d == axis:
                stop = -g + 1
                slc.append(slice(g - 1, stop if stop != 0 else None))
            else:
                slc.append(slice(g, -g))
        return u[tuple(slc)]

    @staticmethod
    def _axis_slice(ndim: int, axis: int, sl: slice) -> tuple[slice, ...]:
        return tuple(sl if d == axis else slice(None) for d in range(ndim))

    def tag_cells(self, dense: np.ndarray, level: int, dx: float) -> np.ndarray:
        """Refine where the tracer's undivided difference is large."""
        return tag_undivided_difference(dense[0], self.tag_threshold)

    def work_per_cell(self) -> float:
        """Relative cost of one cell update (calibration for the cost model)."""
        return 1.0

    # -- slicing helpers -----------------------------------------------------

    @staticmethod
    def _interior(ndim: int, g: int) -> tuple[slice, ...]:
        return tuple(slice(g, -g) for _ in range(ndim))
