"""Cell tagging for refinement.

Chombo's applications tag cells where the *undivided difference* (or a
gradient magnitude) of a tracked quantity exceeds a threshold; tagged
cells are then clustered into boxes by :mod:`repro.amr.clustering`.

Taggers operate on dense per-level arrays (as produced by
``LevelData.to_dense``) and return boolean masks of the same shape; the
hierarchy maps masks back to index space.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError

__all__ = ["tag_gradient", "tag_undivided_difference", "buffer_tags"]


def tag_undivided_difference(field: np.ndarray, threshold: float) -> np.ndarray:
    """Tag cells where the max one-sided undivided difference exceeds ``threshold``.

    The undivided difference along axis ``d`` at cell ``i`` is
    ``max(|u[i+1]-u[i]|, |u[i]-u[i-1]|)`` (one-sided at boundaries).  This
    is the standard Chombo refinement criterion for shock-type features.
    """
    if threshold < 0:
        raise GeometryError(f"threshold must be >= 0, got {threshold}")
    field = np.asarray(field, dtype=np.float64)
    tags = np.zeros(field.shape, dtype=bool)
    for axis in range(field.ndim):
        diff = np.abs(np.diff(field, axis=axis))
        # diff[i] = |u[i+1] - u[i]| touches cells i and i+1.
        lo_pad = [(0, 0)] * field.ndim
        lo_pad[axis] = (0, 1)
        hi_pad = [(0, 0)] * field.ndim
        hi_pad[axis] = (1, 0)
        tags |= np.pad(diff, lo_pad) > threshold
        tags |= np.pad(diff, hi_pad) > threshold
    return tags


def tag_gradient(field: np.ndarray, threshold: float, dx: float = 1.0) -> np.ndarray:
    """Tag cells where the central-difference gradient magnitude exceeds ``threshold``."""
    if dx <= 0:
        raise GeometryError(f"dx must be positive, got {dx}")
    field = np.asarray(field, dtype=np.float64)
    sq = np.zeros(field.shape, dtype=np.float64)
    for axis in range(field.ndim):
        grad = np.gradient(field, dx, axis=axis)
        sq += grad * grad
    return np.sqrt(sq) > threshold


def buffer_tags(tags: np.ndarray, buffer_cells: int) -> np.ndarray:
    """Dilate a tag mask by ``buffer_cells`` in every direction.

    Chombo buffers tags so features stay inside refined regions between
    regrids.  Implemented as a separable boolean dilation (no SciPy
    dependency on ndimage keeps this allocation-light).
    """
    if buffer_cells < 0:
        raise GeometryError(f"buffer_cells must be >= 0, got {buffer_cells}")
    out = tags.astype(bool).copy()
    for _ in range(buffer_cells):
        grown = out.copy()
        for axis in range(out.ndim):
            shifted = np.zeros_like(out)
            src = [slice(None)] * out.ndim
            dst = [slice(None)] * out.ndim
            src[axis] = slice(1, None)
            dst[axis] = slice(None, -1)
            shifted[tuple(dst)] = out[tuple(src)]
            grown |= shifted
            shifted = np.zeros_like(out)
            src[axis] = slice(None, -1)
            dst[axis] = slice(1, None)
            shifted[tuple(dst)] = out[tuple(src)]
            grown |= shifted
        out = grown
    return out
