"""AMR time stepping: couples an application kernel to the hierarchy.

:class:`AMRStepper` drives one of the application solvers
(:class:`~repro.amr.advection.AdvectionDiffusionSolver` or
:class:`~repro.amr.godunov.PolytropicGasSolver`) through the Chombo step
cycle -- ghost fill, per-box advance, average-down, periodic regrid -- and
records per-step :class:`StepStats` consumed by the workload-capture layer.

Simplification vs Chombo (documented in DESIGN.md): all levels advance
with the same time step (no subcycling) and no flux-register refluxing is
applied at coarse-fine boundaries; :meth:`AMRHierarchy.average_down`
re-imposes coarse-fine consistency each step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.amr.fluxregister import assemble_dense_fluxes
from repro.amr.hierarchy import AMRHierarchy
from repro.errors import HierarchyError

__all__ = ["AMRApplication", "AMRStepper", "StepStats"]

# Solver scratch arrays (reconstruction, fluxes) roughly double the live
# state during an update; used by the memory estimate.
_TEMPORARY_FACTOR = 1.0


class AMRApplication(Protocol):
    """What a solver must provide to be driven by :class:`AMRStepper`."""

    nghost: int

    def initialize(self, hierarchy: AMRHierarchy) -> None: ...

    def stable_dt(self, hierarchy: AMRHierarchy) -> float: ...

    def advance(self, arr: np.ndarray, dx: float, dt: float) -> None: ...

    def tag_cells(self, dense: np.ndarray, level: int, dx: float) -> np.ndarray: ...

    def work_per_cell(self) -> float: ...


@dataclass
class StepStats:
    """Everything the monitor/workload layers need from one time step."""

    step: int
    time: float
    dt: float
    cells_per_level: tuple[int, ...]
    total_cells: int
    state_bytes: int
    memory_bytes: int  # state + solver temporaries estimate
    rank_bytes: np.ndarray  # per virtual rank, state only
    halo_bytes: int
    regridded: bool
    work_units: float  # cells * relative per-cell cost
    boxes_per_level: tuple[int, ...] = field(default=())

    @property
    def peak_rank_bytes(self) -> int:
        """Largest per-rank state footprint this step (Figure 1's metric)."""
        return int(self.rank_bytes.max())


class AMRStepper:
    """Runs an application on a hierarchy, one step at a time.

    Parameters
    ----------
    hierarchy:
        The grid hierarchy; its ``ncomp``/``nghost`` must match the solver.
    app:
        The application kernel.
    regrid_interval:
        Steps between regrids (Chombo's ``regrid_interval``); 0 disables.
    initialize:
        Call ``app.initialize`` and do an initial regrid immediately.
    """

    def __init__(
        self,
        hierarchy: AMRHierarchy,
        app: AMRApplication,
        regrid_interval: int = 4,
        initialize: bool = True,
        reflux: bool = False,
    ):
        if regrid_interval < 0:
            raise HierarchyError(f"regrid_interval must be >= 0, got {regrid_interval}")
        if reflux and not hasattr(app, "compute_fluxes"):
            raise HierarchyError(
                f"{type(app).__name__} does not expose compute_fluxes; "
                "refluxing needs a flux-form solver"
            )
        self.hierarchy = hierarchy
        self.app = app
        self.regrid_interval = int(regrid_interval)
        self.reflux = bool(reflux)
        self._registers: dict[tuple[int, int], object] = {}
        self.last_reflux_delta = 0.0
        self.step_count = 0
        self.time = 0.0
        self.history: list[StepStats] = []
        if initialize:
            app.initialize(hierarchy)
            if self.regrid_interval and hierarchy.max_levels > 1:
                # Initial grids: iterate so fine levels appear one at a time.
                for _ in range(hierarchy.max_levels - 1):
                    if not self._do_regrid():
                        break
            # Make covered coarse data consistent with the fine solution, so
            # composite functionals (mass, energy) are well-defined from
            # step 0 onward.
            hierarchy.average_down()

    # -- stepping ---------------------------------------------------------

    def step(self) -> StepStats:
        """Advance the whole hierarchy by one (global) time step."""
        h = self.hierarchy
        dt = self.app.stable_dt(h)
        halo = 0
        for level in range(len(h.levels)):
            halo += h.fill_ghosts(level)
        work = 0.0
        dense_fluxes: dict[int, list[np.ndarray]] = {}
        for level, spec in enumerate(h.levels):
            dx = h.dx(level)
            if self.reflux:
                box_fluxes = []
                for arr in spec.data.data:
                    fluxes = self.app.compute_fluxes(arr, dx)  # type: ignore[attr-defined]
                    self.app.advance_with_fluxes(arr, dx, dt, fluxes)  # type: ignore[attr-defined]
                    box_fluxes.append(fluxes)
                dense_fluxes[level] = assemble_dense_fluxes(
                    spec.data, box_fluxes, h.level_domain(level)
                )
            else:
                # Solvers that support it advance all same-shape boxes in
                # one batched (bit-identical) call instead of per box.
                advance_boxes = getattr(self.app, "advance_boxes", None)
                if advance_boxes is not None:
                    advance_boxes(spec.data.data, dx, dt)
                else:
                    for arr in spec.data.data:
                        self.app.advance(arr, dx, dt)
            work += spec.layout.total_cells * self.app.work_per_cell()
        if self.reflux:
            self.last_reflux_delta = self._apply_reflux(dense_fluxes, dt)
        h.average_down()
        self.step_count += 1
        self.time += dt

        regridded = False
        if self.regrid_interval and self.step_count % self.regrid_interval == 0:
            regridded = self._do_regrid()

        stats = self._collect(dt, halo, regridded, work)
        self.history.append(stats)
        return stats

    def run(self, nsteps: int) -> list[StepStats]:
        """Advance ``nsteps`` steps; returns their stats."""
        return [self.step() for _ in range(nsteps)]

    # -- internals ----------------------------------------------------------

    def _apply_reflux(self, dense_fluxes: dict[int, list[np.ndarray]], dt: float
                      ) -> float:
        """Correct each coarse level against its finer level's fluxes."""
        from repro.amr.fluxregister import FluxRegister

        h = self.hierarchy
        max_delta = 0.0
        for level in range(h.finest_level):
            fine_layout = h.levels[level + 1].layout
            key = (level, id(fine_layout))
            register = self._registers.get(key)
            if register is None:
                self._registers = {
                    k: v for k, v in self._registers.items() if k[0] != level
                }
                register = FluxRegister(
                    h.level_domain(level),
                    [b.coarsen(h.ref_ratio) for b in fine_layout],
                    ncomp=h.ncomp,
                    ref_ratio=h.ref_ratio,
                    periodic=h.periodic,
                )
                self._registers[key] = register
            register.reset()
            for axis in range(h.domain.ndim):
                register.add_coarse(axis, dense_fluxes[level][axis], dt)
                register.add_fine(axis, dense_fluxes[level + 1][axis], dt)
            max_delta = max(
                max_delta, register.apply(h.levels[level].data, h.dx(level))
            )
        return max_delta

    def _do_regrid(self) -> bool:
        h = self.hierarchy
        masks: dict[int, np.ndarray] = {}
        for level in range(min(len(h.levels), h.max_levels - 1)):
            domain = h.level_domain(level)
            dense = h.levels[level].data.to_dense(domain, fill=np.nan)
            masks[level] = self.app.tag_cells(dense, level, h.dx(level))
        return h.regrid(masks)

    def _collect(self, dt: float, halo: int, regridded: bool, work: float) -> StepStats:
        h = self.hierarchy
        cells = tuple(spec.layout.total_cells for spec in h.levels)
        state_bytes = h.total_bytes()
        return StepStats(
            step=self.step_count,
            time=self.time,
            dt=dt,
            cells_per_level=cells,
            total_cells=sum(cells),
            state_bytes=state_bytes,
            memory_bytes=int(state_bytes * (1 + _TEMPORARY_FACTOR)),
            rank_bytes=h.rank_bytes(),
            halo_bytes=halo,
            regridded=regridded,
            work_units=work,
            boxes_per_level=tuple(len(spec.layout) for spec in h.levels),
        )
