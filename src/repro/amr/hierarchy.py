"""The multi-level AMR hierarchy: levels, regridding and interlevel data motion.

An :class:`AMRHierarchy` owns a stack of :class:`LevelSpec` objects, level 0
covering the whole problem domain and each finer level refined by
``ref_ratio``.  The hierarchy implements the Chombo workflow used by the
paper's applications:

- :meth:`fill_ghosts` -- prolong coarse data under fine ghost regions,
  exchange same-level ghosts, apply physical boundary conditions;
- :meth:`average_down` -- conservative restriction keeping coarse data
  consistent with the finest covering level;
- :meth:`regrid` -- Berger-Rigoutsos clustering of buffered tags with
  proper nesting, preserving data on regions that stay refined.

The hierarchy is solver-agnostic; :mod:`repro.amr.stepper` couples it to
the advection-diffusion and polytropic-gas kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.box import Box
from repro.amr.clustering import cluster_tags
from repro.amr.coarsefine import prolong, restrict
from repro.amr.layout import BoxLayout
from repro.amr.level import LevelData
from repro.amr.tagging import buffer_tags
from repro.errors import HierarchyError

__all__ = ["AMRHierarchy", "LevelSpec"]


@dataclass
class LevelSpec:
    """One level of the hierarchy: a layout and its data."""

    layout: BoxLayout
    data: LevelData


class AMRHierarchy:
    """A block-structured AMR grid hierarchy.

    Parameters
    ----------
    domain:
        Level-0 problem domain (cell-indexed box starting anywhere).
    ncomp, nghost:
        Components and ghost width of the state data on every level.
    ref_ratio:
        Refinement ratio between consecutive levels (Chombo default 2).
    max_levels:
        Total number of levels allowed (1 = no refinement).
    nranks:
        Virtual MPI ranks for load balancing.
    max_box_size, fill_ratio, tag_buffer:
        Grid-generation parameters (Berger-Rigoutsos).
    dx0:
        Level-0 mesh spacing.
    periodic:
        Apply periodic boundary conditions on the domain.
    """

    def __init__(
        self,
        domain: Box,
        ncomp: int = 1,
        nghost: int = 2,
        ref_ratio: int = 2,
        max_levels: int = 2,
        nranks: int = 1,
        max_box_size: int = 32,
        fill_ratio: float = 0.7,
        tag_buffer: int = 2,
        dx0: float = 1.0,
        periodic: bool = True,
        dtype: np.dtype | type = np.float64,
    ):
        if max_levels < 1:
            raise HierarchyError(f"max_levels must be >= 1, got {max_levels}")
        if ref_ratio < 2:
            raise HierarchyError(f"ref_ratio must be >= 2, got {ref_ratio}")
        self.domain = domain
        self.ncomp = ncomp
        self.nghost = nghost
        self.ref_ratio = ref_ratio
        self.max_levels = max_levels
        self.nranks = nranks
        self.max_box_size = max_box_size
        self.fill_ratio = fill_ratio
        self.tag_buffer = tag_buffer
        self.dx0 = float(dx0)
        self.periodic = periodic
        self.dtype = dtype

        base_layout = BoxLayout(domain.chop(max_box_size), nranks=nranks)
        base = LevelSpec(base_layout, LevelData(base_layout, ncomp, nghost, dtype))
        self.levels: list[LevelSpec] = [base]

    # -- geometry ------------------------------------------------------------

    @property
    def finest_level(self) -> int:
        """Index of the finest active level."""
        return len(self.levels) - 1

    def level_domain(self, level: int) -> Box:
        """The problem domain refined to ``level``'s index space."""
        return self.domain.refine(self.ref_ratio**level)

    def dx(self, level: int) -> float:
        """Mesh spacing at ``level``."""
        return self.dx0 / (self.ref_ratio**level)

    def total_cells(self) -> int:
        """Valid cells summed over all levels."""
        return sum(spec.layout.total_cells for spec in self.levels)

    def total_bytes(self) -> int:
        """State bytes (ghosts included) summed over all levels."""
        return sum(spec.data.nbytes for spec in self.levels)

    def rank_bytes(self) -> np.ndarray:
        """State bytes per virtual rank summed over levels."""
        out = np.zeros(self.nranks, dtype=np.int64)
        for spec in self.levels:
            out += spec.data.rank_bytes()
        return out

    # -- interlevel data motion ----------------------------------------------

    def fill_ghosts(self, level: int) -> int:
        """Fill ghost cells of ``level``: coarse interpolation, exchange, physical BCs.

        Returns bytes moved in the same-level exchange (halo traffic).
        """
        spec = self.levels[level]
        if level > 0:
            self._fill_from_coarser(level)
        domain = self.level_domain(level)
        moved = spec.data.exchange(periodic_domain=domain if self.periodic else None)
        if not self.periodic:
            spec.data.fill_physical(domain, mode="edge")
        return moved

    def _fill_from_coarser(self, level: int, include_interior: bool = False) -> None:
        """Prolong coarse data over each fine box's grown region.

        With ``include_interior`` (used when regridding creates new fine
        boxes) the interpolation covers the valid cells too; during
        ordinary ghost fills the interior is preserved.
        """
        fine = self.levels[level]
        coarse = self.levels[level - 1]
        r = self.ref_ratio
        g = fine.data.nghost
        level_domain = self.level_domain(level)
        del coarse
        for i, box in enumerate(fine.layout):
            grown = box.grow(g)
            # Work in coarse index space, padded one cell for slopes.
            coarse_region = grown.coarsen(r).grow(1)
            dense = self._dense_coarse(level - 1, coarse_region)
            interp = prolong(dense, r, order=1)
            fine_region = coarse_region.refine(r)
            # Copy the part overlapping the grown fine box -- ghosts only:
            # the box's own valid interior must never be clobbered by
            # interpolated coarse data (same-level exchange later refreshes
            # ghosts that other fine boxes cover with their valid data).
            interior = None if include_interior else fine.data.valid_view(i).copy()
            target = grown if self.periodic else grown.intersect(level_domain)
            copy_region = target.intersect(fine_region)
            src_slc = copy_region.slices(origin=fine_region)
            dst_slc = copy_region.slices(origin=grown)
            fine.data.data[i][(slice(None), *dst_slc)] = interp[(slice(None), *src_slc)]
            if interior is not None:
                fine.data.valid_view(i)[...] = interior

    def _dense_coarse(self, level: int, region: Box) -> np.ndarray:
        """Dense data of ``level`` over ``region``.

        Cells outside the level's domain are filled by periodic wrapping
        (periodic hierarchies) or edge extension (non-periodic), so slope
        computation in :func:`prolong` never sees garbage.
        """
        coarse = self.levels[level]
        domain = self.level_domain(level)
        if domain.contains_box(region):
            return coarse.data.to_dense(region, fill=0.0)
        if self.periodic:
            # Assemble from shifted images of the domain.
            out = np.zeros((self.ncomp, *region.shape))
            extents = domain.shape
            offsets = [(-e, 0, e) for e in extents]
            grid = np.stack(np.meshgrid(*offsets, indexing="ij"), -1).reshape(-1, len(extents))
            for shift in grid:
                shift = tuple(int(v) for v in shift)
                image = domain.shift(shift)
                overlap = region.intersect(image)
                if overlap.is_empty():
                    continue
                src = coarse.data.to_dense(
                    overlap.shift(tuple(-s for s in shift)), fill=0.0
                )
                out[(slice(None), *overlap.slices(origin=region))] = src
            return out
        # Non-periodic: dense over the clipped region, edge-padded outward.
        clipped = region.intersect(domain)
        inner = coarse.data.to_dense(clipped, fill=0.0)
        pad = [(0, 0)]
        for d in range(len(region.shape)):
            pad.append((clipped.lo[d] - region.lo[d], region.hi[d] - clipped.hi[d]))
        return np.pad(inner, pad, mode="edge")

    def average_down(self) -> None:
        """Restrict every fine level onto the coarser one beneath it."""
        for level in range(self.finest_level, 0, -1):
            self.average_down_pair(level)

    def average_down_pair(self, fine_level: int) -> None:
        """Restrict level ``fine_level`` onto level ``fine_level - 1``."""
        if not (1 <= fine_level <= self.finest_level):
            raise HierarchyError(
                f"no level pair ({fine_level - 1}, {fine_level}) to restrict"
            )
        r = self.ref_ratio
        fine = self.levels[fine_level]
        coarse = self.levels[fine_level - 1]
        for i, fbox in enumerate(fine.layout):
            cbox = fbox.coarsen(r)
            fine_view = fine.data.valid_view(i)
            averaged = restrict(fine_view, r)
            # Scatter into the coarse boxes it overlaps.
            for j, cb in enumerate(coarse.layout):
                overlap = cbox.intersect(cb)
                if overlap.is_empty():
                    continue
                dst_slc = overlap.slices(origin=coarse.data.grown_box(j))
                src_slc = overlap.slices(origin=cbox)
                coarse.data.data[j][(slice(None), *dst_slc)] = averaged[
                    (slice(None), *src_slc)
                ]

    # -- regridding ------------------------------------------------------------

    def regrid(self, tag_masks: dict[int, np.ndarray]) -> bool:
        """Rebuild levels 1..max from tag masks; returns True if grids changed.

        ``tag_masks[l]`` is a boolean array over the full ``level_domain(l)``
        shape marking cells of level ``l`` that need refinement.  Levels
        whose parent produces no tags are dropped.  Data on surviving
        regions is preserved; newly refined regions are interpolated from
        the (new) coarser level.
        """
        new_boxes: dict[int, list[Box]] = {}
        # Finest possible parent first so nesting tags propagate downward.
        for parent in range(self.max_levels - 2, -1, -1):
            if parent > self.finest_level:
                continue
            mask = tag_masks.get(parent)
            domain = self.level_domain(parent)
            if mask is None:
                mask = np.zeros(domain.shape, dtype=bool)
            else:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape != domain.shape:
                    raise HierarchyError(
                        f"tag mask for level {parent} has shape {mask.shape}, "
                        f"expected {domain.shape}"
                    )
                mask = mask.copy()
            mask = buffer_tags(mask, self.tag_buffer)
            # Proper nesting: the new level parent+2 must sit inside the new
            # level parent+1, so project its boxes (grown by one coarse cell)
            # into the parent's tags.
            zero_domain = domain.shift(tuple(-l for l in domain.lo))
            for gbox in new_boxes.get(parent + 2, []):
                proj = gbox.coarsen(self.ref_ratio**2).grow(1).intersect(domain)
                if not proj.is_empty():
                    proj0 = proj.shift(tuple(-l for l in domain.lo))
                    mask[proj0.slices(origin=zero_domain)] = True
            clusters = cluster_tags(
                mask,
                fill_ratio=self.fill_ratio,
                max_box_size=max(2, self.max_box_size // self.ref_ratio),
                origin=domain.lo,
            )
            fine = []
            for cbox in clusters:
                fine.extend(cbox.refine(self.ref_ratio).chop(self.max_box_size))
            if fine:
                new_boxes[parent + 1] = fine

        return self._apply_regrid(new_boxes)

    def _apply_regrid(self, new_boxes: dict[int, list[Box]]) -> bool:
        old_levels = self.levels
        changed = False
        rebuilt: list[LevelSpec] = [old_levels[0]]
        for level in range(1, self.max_levels):
            boxes = new_boxes.get(level)
            if not boxes:
                changed = changed or level <= len(old_levels) - 1
                break
            layout = BoxLayout(boxes, nranks=self.nranks)
            if (level <= len(old_levels) - 1
                    and set(layout.boxes) == set(old_levels[level].layout.boxes)):
                rebuilt.append(old_levels[level])
                continue
            changed = True
            data = LevelData(layout, self.ncomp, self.nghost, self.dtype)
            spec = LevelSpec(layout, data)
            rebuilt.append(spec)
            # Interpolate from the (already rebuilt) coarser level, then
            # keep old fine data where regions survived.
            self.levels = rebuilt  # so _fill_from_coarser sees new stack
            self._fill_from_coarser(level, include_interior=True)
            if level <= len(old_levels) - 1:
                data.copy_overlap_from(old_levels[level].data)
        self.levels = rebuilt
        return changed
