"""The multi-level AMR hierarchy: levels, regridding and interlevel data motion.

An :class:`AMRHierarchy` owns a stack of :class:`LevelSpec` objects, level 0
covering the whole problem domain and each finer level refined by
``ref_ratio``.  The hierarchy implements the Chombo workflow used by the
paper's applications:

- :meth:`fill_ghosts` -- prolong coarse data under fine ghost regions,
  exchange same-level ghosts, apply physical boundary conditions;
- :meth:`average_down` -- conservative restriction keeping coarse data
  consistent with the finest covering level;
- :meth:`regrid` -- Berger-Rigoutsos clustering of buffered tags with
  proper nesting, preserving data on regions that stay refined.

The hierarchy is solver-agnostic; :mod:`repro.amr.stepper` couples it to
the advection-diffusion and polytropic-gas kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.box import Box
from repro.amr.clustering import cluster_tags
from repro.amr.coarsefine import restrict
from repro.amr.layout import BoxLayout
from repro.amr.level import LevelData
from repro.amr.tagging import buffer_tags
from repro.errors import HierarchyError

__all__ = ["AMRHierarchy", "LevelSpec"]


def _flat_strides(shape: tuple[int, ...]) -> list[int]:
    """Row-major flat-index strides of a spatial ``shape``."""
    strides = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    return strides


def _restrict_batched(stacked: np.ndarray, ratio: int) -> np.ndarray:
    """:func:`~repro.amr.coarsefine.restrict` over a ``(nbox, ncomp, ...)`` stack."""
    new_shape = list(stacked.shape[:2])
    for s in stacked.shape[2:]:
        new_shape.extend([s // ratio, ratio])
    reshaped = stacked.reshape(new_shape)
    mean_axes = tuple(3 + 2 * d for d in range(stacked.ndim - 2))
    return reshaped.mean(axis=mean_axes)


@dataclass
class LevelSpec:
    """One level of the hierarchy: a layout and its data."""

    layout: BoxLayout
    data: LevelData


class AMRHierarchy:
    """A block-structured AMR grid hierarchy.

    Parameters
    ----------
    domain:
        Level-0 problem domain (cell-indexed box starting anywhere).
    ncomp, nghost:
        Components and ghost width of the state data on every level.
    ref_ratio:
        Refinement ratio between consecutive levels (Chombo default 2).
    max_levels:
        Total number of levels allowed (1 = no refinement).
    nranks:
        Virtual MPI ranks for load balancing.
    max_box_size, fill_ratio, tag_buffer:
        Grid-generation parameters (Berger-Rigoutsos).
    dx0:
        Level-0 mesh spacing.
    periodic:
        Apply periodic boundary conditions on the domain.
    """

    def __init__(
        self,
        domain: Box,
        ncomp: int = 1,
        nghost: int = 2,
        ref_ratio: int = 2,
        max_levels: int = 2,
        nranks: int = 1,
        max_box_size: int = 32,
        fill_ratio: float = 0.7,
        tag_buffer: int = 2,
        dx0: float = 1.0,
        periodic: bool = True,
        dtype: np.dtype | type = np.float64,
    ):
        if max_levels < 1:
            raise HierarchyError(f"max_levels must be >= 1, got {max_levels}")
        if ref_ratio < 2:
            raise HierarchyError(f"ref_ratio must be >= 2, got {ref_ratio}")
        self.domain = domain
        self.ncomp = ncomp
        self.nghost = nghost
        self.ref_ratio = ref_ratio
        self.max_levels = max_levels
        self.nranks = nranks
        self.max_box_size = max_box_size
        self.fill_ratio = fill_ratio
        self.tag_buffer = tag_buffer
        self.dx0 = float(dx0)
        self.periodic = periodic
        self.dtype = dtype

        base_layout = BoxLayout(domain.chop(max_box_size), nranks=nranks)
        base = LevelSpec(base_layout, LevelData(base_layout, ncomp, nghost, dtype))
        self.levels: list[LevelSpec] = [base]

    # -- geometry ------------------------------------------------------------

    @property
    def finest_level(self) -> int:
        """Index of the finest active level."""
        return len(self.levels) - 1

    def level_domain(self, level: int) -> Box:
        """The problem domain refined to ``level``'s index space."""
        return self.domain.refine(self.ref_ratio**level)

    def dx(self, level: int) -> float:
        """Mesh spacing at ``level``."""
        return self.dx0 / (self.ref_ratio**level)

    def total_cells(self) -> int:
        """Valid cells summed over all levels."""
        return sum(spec.layout.total_cells for spec in self.levels)

    def total_bytes(self) -> int:
        """State bytes (ghosts included) summed over all levels."""
        return sum(spec.data.nbytes for spec in self.levels)

    def rank_bytes(self) -> np.ndarray:
        """State bytes per virtual rank summed over levels."""
        out = np.zeros(self.nranks, dtype=np.int64)
        for spec in self.levels:
            out += spec.data.rank_bytes()
        return out

    # -- interlevel data motion ----------------------------------------------

    def fill_ghosts(self, level: int) -> int:
        """Fill ghost cells of ``level``: coarse interpolation, exchange, physical BCs.

        Returns bytes moved in the same-level exchange (halo traffic).
        """
        spec = self.levels[level]
        if level > 0:
            self._fill_from_coarser(level)
        domain = self.level_domain(level)
        moved = spec.data.exchange(periodic_domain=domain if self.periodic else None)
        if not self.periodic:
            spec.data.fill_physical(domain, mode="edge")
        return moved

    def _fill_from_coarser(self, level: int, include_interior: bool = False) -> None:
        """Interpolate coarse data onto fine ghost (and optionally valid) cells.

        Ordinary ghost fills only need the coarse-fine boundary cells:
        ghosts covered by another fine box's valid data are refreshed by
        the same-level exchange that always follows, and the valid
        interior is never touched.  Those surviving cells are gathered in
        one vectorized pass from a single dense coarse array per call,
        with van-Leer slopes evaluated only at their parent cells --
        bit-identical to prolonging each box's whole grown region because
        the limited slopes are local (one coarse neighbour per side).

        When regridding creates new boxes (``include_interior``) the same
        gather covers the valid cells instead; ghost cells are left as
        they are, since every consumer of ghost data sits behind the
        :meth:`fill_ghosts` that opens the next step.
        """
        fine = self.levels[level]
        coarse = self.levels[level - 1]
        r = self.ref_ratio
        g = fine.data.nghost
        cdomain = self.level_domain(level - 1)
        ndim = cdomain.ndim
        # Parents of any fine ghost cell lie within ceil(g/r) coarse cells
        # of the domain; one more ring supplies their slope neighbours.
        pad = -(-g // r) + 1

        plan = self._ghost_fill_plan(level, pad, interior=include_interior)
        if plan is None:
            return

        dense = coarse.data.to_dense(cdomain, fill=0.0)
        # Out-of-domain coarse values: periodic wrap or edge extension,
        # exactly what the per-region assembly used to produce.
        mode = "wrap" if self.periodic else "edge"
        padded = np.pad(dense, [(0, 0)] + [(pad, pad)] * ndim, mode=mode)

        parent, offsets, scatter = plan
        flat = padded.reshape(self.ncomp, -1)
        strides = _flat_strides(padded.shape[1:])
        cur = flat[:, parent]
        vals = cur
        for axis in range(ndim):
            st = strides[axis]
            nxt = flat[:, parent + st]
            prv = flat[:, parent - st]
            # Van-Leer limited central slope, replicating _limited_slope's
            # arithmetic op for op so the gathered values match prolong's.
            fwd = nxt - cur
            bwd = cur - prv
            central = 0.5 * (fwd + bwd)
            same_sign = (fwd * bwd) > 0
            mag = np.minimum(np.abs(central), 2 * np.minimum(np.abs(fwd), np.abs(bwd)))
            slope = np.where(same_sign, np.sign(central) * mag, 0.0)
            vals = vals + slope * offsets[axis]
        for i, dst, start, stop in scatter:
            fine.data.data[i].reshape(self.ncomp, -1)[:, dst] = vals[:, start:stop]

    def _ghost_fill_plan(
        self, level: int, pad: int, interior: bool = False
    ) -> tuple[np.ndarray, list[np.ndarray], list] | None:
        """Gather/scatter plan for the coarse-fine ghost fill of ``level``.

        For every fine box, the plan lists the ghost cells *not* covered by
        any same-level neighbour (those are the cells whose interpolated
        values survive the subsequent exchange), their parent cell's flat
        index in the padded dense coarse array, and the per-axis fractional
        offsets of the fine centres inside the parent cell.  With
        ``interior`` the plan instead covers each box's valid cells (the
        regrid fill).  Layouts are immutable, so the plan is cached on the
        fine layout.  Returns ``None`` when no cell needs interpolation.
        """
        fine = self.levels[level]
        layout = fine.layout
        g = fine.data.nghost
        r = self.ref_ratio
        cdomain = self.level_domain(level - 1)
        key = (g, r, self.periodic, cdomain, interior)
        cache = getattr(layout, "_coarse_fill_plans", None)
        if cache is None:
            cache = {}
            layout._coarse_fill_plans = cache
        if key in cache:
            return cache[key]
        ndim = cdomain.ndim
        level_domain = self.level_domain(level)
        domain_arg = level_domain if self.periodic else None
        pshape = tuple(s + 2 * pad for s in cdomain.shape)
        strides = _flat_strides(pshape)
        # Same table prolong uses: (k + 0.5)/ratio - 0.5 per fine sub-cell.
        offs_table = (np.arange(r) + 0.5) / r - 0.5
        parent_parts: list[np.ndarray] = []
        offset_parts: list[list[np.ndarray]] = [[] for _ in range(ndim)]
        scatter: list[tuple[int, np.ndarray, int, int]] = []
        total = 0
        for i, box in enumerate(layout):
            grown = box.grow(g)
            if interior:
                mask = np.zeros(grown.shape, dtype=bool)
                mask[box.slices(origin=grown)] = True
            else:
                mask = np.ones(grown.shape, dtype=bool)
                mask[box.slices(origin=grown)] = False
                if not self.periodic:
                    # Ghosts past the physical boundary belong to fill_physical.
                    keep = np.zeros(grown.shape, dtype=bool)
                    inside = grown.intersect(level_domain)
                    if not inside.is_empty():
                        keep[inside.slices(origin=grown)] = True
                    mask &= keep
                for j, shift in layout.neighbors(i, radius=g, periodic_domain=domain_arg):
                    covered = grown.intersect(layout.boxes[j].shift(shift))
                    if covered.is_empty():
                        continue
                    mask[covered.slices(origin=grown)] = False
            idx = np.nonzero(mask.ravel())[0]
            if idx.size == 0:
                continue
            coords = np.unravel_index(idx, grown.shape)
            pidx = np.zeros(idx.size, dtype=np.int64)
            for axis in range(ndim):
                gx = coords[axis].astype(np.int64) + grown.lo[axis]
                pc = gx // r
                offset_parts[axis].append(offs_table[gx - pc * r])
                pidx += (pc - (cdomain.lo[axis] - pad)) * strides[axis]
            parent_parts.append(pidx)
            scatter.append((i, idx, total, total + idx.size))
            total += idx.size
        if total == 0:
            plan = None
        else:
            parent = np.concatenate(parent_parts)
            offsets = [np.concatenate(parts) for parts in offset_parts]
            plan = (parent, offsets, scatter)
        cache[key] = plan
        return plan

    def average_down(self) -> None:
        """Restrict every fine level onto the coarser one beneath it."""
        for level in range(self.finest_level, 0, -1):
            self.average_down_pair(level)

    def average_down_pair(self, fine_level: int) -> None:
        """Restrict level ``fine_level`` onto level ``fine_level - 1``."""
        if not (1 <= fine_level <= self.finest_level):
            raise HierarchyError(
                f"no level pair ({fine_level - 1}, {fine_level}) to restrict"
            )
        r = self.ref_ratio
        fine = self.levels[fine_level]
        coarse = self.levels[fine_level - 1]
        # Restrict same-shape fine boxes in one stacked call: the blockwise
        # mean reduces over the same trailing sub-axes either way, so the
        # batched result is bit-identical to per-box restriction.
        averaged: list[np.ndarray | None] = [None] * len(fine.layout)
        groups: dict[tuple[int, ...], list[int]] = {}
        for i, fbox in enumerate(fine.layout):
            groups.setdefault(fbox.shape, []).append(i)
        for indices in groups.values():
            if len(indices) == 1:
                i = indices[0]
                averaged[i] = restrict(fine.data.valid_view(i), r)
            else:
                stacked = np.stack([fine.data.valid_view(i) for i in indices], axis=0)
                res = _restrict_batched(stacked, r)
                for slot, i in enumerate(indices):
                    averaged[i] = res[slot]
        # Scatter into the coarse boxes each restriction overlaps, using
        # the cached (fine layout, coarse layout) overlap plan.
        for i, entries in self._avgdown_plan(fine, coarse):
            arr = averaged[i]
            for j, dst_idx, src_idx in entries:
                coarse.data.data[j][dst_idx] = arr[src_idx]

    def _avgdown_plan(self, fine: LevelSpec, coarse: LevelSpec) -> list:
        """Cached overlap plan ``[(fine_i, [(coarse_j, dst_idx, src_idx)])]``.

        Pair finding is vectorized over the corner arrays of both layouts;
        the plan is cached on the fine layout and rebuilt when the coarse
        layout object changes (the stored reference also keeps it alive,
        so an ``is`` check can never alias a recycled object).
        """
        r = self.ref_ratio
        key = (r, coarse.data.nghost)
        cache = getattr(fine.layout, "_avgdown_plans", None)
        if cache is not None:
            entry = cache.get(key)
            if entry is not None and entry[0] is coarse.layout:
                return entry[1]
        flos, fhis = fine.layout._corner_arrays()
        clos, chis = coarse.layout._corner_arrays()
        cf_lo = flos // r  # floor division, matching Box.coarsen
        cf_hi = fhis // r
        overlap = (
            (cf_lo[:, None, :] <= chis[None, :, :])
            & (clos[None, :, :] <= cf_hi[:, None, :])
        ).all(axis=2)
        plan = []
        for i in range(len(fine.layout)):
            cbox = fine.layout.boxes[i].coarsen(r)
            entries = []
            for j in np.nonzero(overlap[i])[0]:
                region = cbox.intersect(coarse.layout.boxes[j])
                dst_idx = (slice(None), *region.slices(origin=coarse.data.grown_box(j)))
                src_idx = (slice(None), *region.slices(origin=cbox))
                entries.append((int(j), dst_idx, src_idx))
            if entries:
                plan.append((i, entries))
        if cache is None:
            cache = {}
            fine.layout._avgdown_plans = cache
        cache[key] = (coarse.layout, plan)
        return plan

    # -- regridding ------------------------------------------------------------

    def regrid(self, tag_masks: dict[int, np.ndarray]) -> bool:
        """Rebuild levels 1..max from tag masks; returns True if grids changed.

        ``tag_masks[l]`` is a boolean array over the full ``level_domain(l)``
        shape marking cells of level ``l`` that need refinement.  Levels
        whose parent produces no tags are dropped.  Data on surviving
        regions is preserved; newly refined regions are interpolated from
        the (new) coarser level.
        """
        new_boxes: dict[int, list[Box]] = {}
        # Finest possible parent first so nesting tags propagate downward.
        for parent in range(self.max_levels - 2, -1, -1):
            if parent > self.finest_level:
                continue
            mask = tag_masks.get(parent)
            domain = self.level_domain(parent)
            if mask is None:
                mask = np.zeros(domain.shape, dtype=bool)
            else:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape != domain.shape:
                    raise HierarchyError(
                        f"tag mask for level {parent} has shape {mask.shape}, "
                        f"expected {domain.shape}"
                    )
                mask = mask.copy()
            mask = buffer_tags(mask, self.tag_buffer)
            # Proper nesting: the new level parent+2 must sit inside the new
            # level parent+1, so project its boxes (grown by one coarse cell)
            # into the parent's tags.
            zero_domain = domain.shift(tuple(-l for l in domain.lo))
            for gbox in new_boxes.get(parent + 2, []):
                proj = gbox.coarsen(self.ref_ratio**2).grow(1).intersect(domain)
                if not proj.is_empty():
                    proj0 = proj.shift(tuple(-l for l in domain.lo))
                    mask[proj0.slices(origin=zero_domain)] = True
            clusters = cluster_tags(
                mask,
                fill_ratio=self.fill_ratio,
                max_box_size=max(2, self.max_box_size // self.ref_ratio),
                origin=domain.lo,
            )
            fine = []
            for cbox in clusters:
                fine.extend(cbox.refine(self.ref_ratio).chop(self.max_box_size))
            if fine:
                new_boxes[parent + 1] = fine

        return self._apply_regrid(new_boxes)

    def _apply_regrid(self, new_boxes: dict[int, list[Box]]) -> bool:
        old_levels = self.levels
        changed = False
        rebuilt: list[LevelSpec] = [old_levels[0]]
        for level in range(1, self.max_levels):
            boxes = new_boxes.get(level)
            if not boxes:
                changed = changed or level <= len(old_levels) - 1
                break
            layout = BoxLayout(boxes, nranks=self.nranks)
            if (level <= len(old_levels) - 1
                    and set(layout.boxes) == set(old_levels[level].layout.boxes)):
                rebuilt.append(old_levels[level])
                continue
            changed = True
            data = LevelData(layout, self.ncomp, self.nghost, self.dtype)
            spec = LevelSpec(layout, data)
            rebuilt.append(spec)
            # Interpolate from the (already rebuilt) coarser level, then
            # keep old fine data where regions survived.
            self.levels = rebuilt  # so _fill_from_coarser sees new stack
            self._fill_from_coarser(level, include_interior=True)
            if level <= len(old_levels) - 1:
                data.copy_overlap_from(old_levels[level].data)
        self.levels = rebuilt
        return changed
