"""Chombo-like block-structured AMR library.

Implements the substrate the paper's applications are built on: integer
box geometry (:mod:`repro.amr.box`), distributed box layouts
(:mod:`repro.amr.layout`), level data containers with ghost exchange
(:mod:`repro.amr.level`), cell tagging (:mod:`repro.amr.tagging`),
Berger-Rigoutsos-style grid generation (:mod:`repro.amr.clustering`), the
multi-level hierarchy with regridding (:mod:`repro.amr.hierarchy`) and two
real applications matching the paper's workloads: an adaptive
advection-diffusion solver (:mod:`repro.amr.advection`) and a
polytropic-gas Euler solver using an unsplit Godunov scheme
(:mod:`repro.amr.godunov`).

All data lives in NumPy arrays; solvers are fully vectorized.  Dimensions
2 and 3 are supported throughout.
"""

from repro.amr.box import Box
from repro.amr.layout import BoxLayout
from repro.amr.level import LevelData
from repro.amr.hierarchy import AMRHierarchy, LevelSpec
from repro.amr.tagging import tag_gradient, tag_undivided_difference
from repro.amr.clustering import cluster_tags
from repro.amr.advection import AdvectionDiffusionSolver
from repro.amr.godunov import PolytropicGasSolver
from repro.amr.stepper import AMRStepper, StepStats
from repro.amr.subcycle import SubcycledStepper
from repro.amr.fluxregister import FluxRegister
from repro.amr.io import read_checkpoint, write_checkpoint

__all__ = [
    "AMRHierarchy",
    "AMRStepper",
    "AdvectionDiffusionSolver",
    "Box",
    "BoxLayout",
    "FluxRegister",
    "LevelData",
    "LevelSpec",
    "PolytropicGasSolver",
    "StepStats",
    "SubcycledStepper",
    "cluster_tags",
    "read_checkpoint",
    "tag_gradient",
    "tag_undivided_difference",
    "write_checkpoint",
]
