"""Exact Riemann solver for the 1-D Euler equations (validation reference).

Used by the test suite to validate the Godunov gas solver against the
analytic solution of shock-tube problems (Toro, "Riemann Solvers and
Numerical Methods for Fluid Dynamics", Ch. 4): Newton iteration for the
star-region pressure, then full wave-structure sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError

__all__ = ["RiemannState", "exact_riemann", "sample_riemann"]


@dataclass(frozen=True)
class RiemannState:
    """Primitive state on one side of the discontinuity."""

    rho: float
    u: float
    p: float

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.p <= 0:
            raise GeometryError(f"need positive rho and p, got {self}")

    def sound_speed(self, gamma: float) -> float:
        return float(np.sqrt(gamma * self.p / self.rho))


def _pressure_function(p: float, state: RiemannState, gamma: float
                       ) -> tuple[float, float]:
    """Toro's f_K(p) and its derivative for one side."""
    a = state.sound_speed(gamma)
    if p > state.p:
        # Shock branch.
        A = 2.0 / ((gamma + 1.0) * state.rho)
        B = (gamma - 1.0) / (gamma + 1.0) * state.p
        sqrt_term = np.sqrt(A / (p + B))
        f = (p - state.p) * sqrt_term
        df = sqrt_term * (1.0 - (p - state.p) / (2.0 * (p + B)))
    else:
        # Rarefaction branch.
        exponent = (gamma - 1.0) / (2.0 * gamma)
        f = (2.0 * a / (gamma - 1.0)) * ((p / state.p) ** exponent - 1.0)
        df = (1.0 / (state.rho * a)) * (p / state.p) ** (-(gamma + 1.0) / (2.0 * gamma))
    return float(f), float(df)


def exact_riemann(left: RiemannState, right: RiemannState, gamma: float = 1.4,
                  tol: float = 1e-12, max_iter: int = 100
                  ) -> tuple[float, float]:
    """Star-region pressure and velocity ``(p*, u*)`` by Newton iteration."""
    if gamma <= 1.0:
        raise GeometryError(f"gamma must exceed 1, got {gamma}")
    du = right.u - left.u
    # Vacuum check (Toro 4.40).
    a_l, a_r = left.sound_speed(gamma), right.sound_speed(gamma)
    if 2.0 * (a_l + a_r) / (gamma - 1.0) <= du:
        raise GeometryError("initial states generate vacuum")
    # Initial guess: two-rarefaction approximation, floored.
    p = max(
        0.5 * (left.p + right.p) - 0.125 * du * (left.rho + right.rho) * (a_l + a_r),
        1e-8 * min(left.p, right.p),
    )
    for _ in range(max_iter):
        f_l, df_l = _pressure_function(p, left, gamma)
        f_r, df_r = _pressure_function(p, right, gamma)
        delta = (f_l + f_r + du) / (df_l + df_r)
        p_new = max(p - delta, 1e-14)
        if abs(p_new - p) <= tol * max(p, p_new):
            p = p_new
            break
        p = p_new
    f_l, _ = _pressure_function(p, left, gamma)
    f_r, _ = _pressure_function(p, right, gamma)
    u = 0.5 * (left.u + right.u) + 0.5 * (f_r - f_l)
    return float(p), float(u)


def sample_riemann(
    left: RiemannState,
    right: RiemannState,
    xi: np.ndarray,
    gamma: float = 1.4,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample the self-similar solution at speeds ``xi = x / t``.

    Returns ``(rho, u, p)`` arrays; wave structure per Toro Section 4.5.
    """
    xi = np.asarray(xi, dtype=np.float64)
    p_star, u_star = exact_riemann(left, right, gamma)
    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)

    g1 = (gamma - 1.0) / (gamma + 1.0)
    g2 = 2.0 / (gamma + 1.0)

    for i, s in enumerate(xi):
        if s <= u_star:
            # Left of the contact.
            state, sign = left, 1.0
        else:
            state, sign = right, -1.0
        a = state.sound_speed(gamma)
        if p_star > state.p:
            # Shock on this side: S = u_K -/+ a_K * sqrt(...) (left shock
            # runs left of the data, right shock right of it).
            ratio = p_star / state.p
            shock_speed = state.u - sign * a * np.sqrt(
                (gamma + 1.0) / (2.0 * gamma) * ratio
                + (gamma - 1.0) / (2.0 * gamma)
            )
            behind = (s > shock_speed) if sign > 0 else (s < shock_speed)
            if behind:
                rho[i] = state.rho * (ratio + g1) / (g1 * ratio + 1.0)
                u[i] = u_star
                p[i] = p_star
            else:
                rho[i], u[i], p[i] = state.rho, state.u, state.p
        else:
            # Rarefaction on this side.
            a_star = a * (p_star / state.p) ** ((gamma - 1.0) / (2.0 * gamma))
            head = state.u - sign * a
            tail = u_star - sign * a_star
            before_head = (s < head) if sign > 0 else (s > head)
            after_tail = (s > tail) if sign > 0 else (s < tail)
            if before_head:
                rho[i], u[i], p[i] = state.rho, state.u, state.p
            elif after_tail:
                rho[i] = state.rho * (p_star / state.p) ** (1.0 / gamma)
                u[i] = u_star
                p[i] = p_star
            else:
                # Inside the fan.
                u[i] = g2 * (sign * a + (gamma - 1.0) / 2.0 * state.u + s)
                a_local = sign * (u[i] - s)
                rho[i] = state.rho * (a_local / a) ** (2.0 / (gamma - 1.0))
                p[i] = state.p * (a_local / a) ** (2.0 * gamma / (gamma - 1.0))
    return rho, u, p
