"""Berger-Rigoutsos grid generation.

Turns a boolean tag mask into a set of boxes covering every tagged cell
with at least a given fill efficiency.  This is the classic
Berger-Rigoutsos (1991) algorithm used by Chombo's ``BRMeshRefine``:

1. Take the minimal bounding box of the tags.
2. If its fill ratio (tagged / total cells) is acceptable and it is small
   enough, accept it.
3. Otherwise find a cut plane: prefer a *hole* (zero of the tag
   signature), else the strongest *inflection* of the signature's second
   difference, else the midpoint; recurse on both halves.
"""

from __future__ import annotations

import numpy as np

from repro.amr.box import Box
from repro.errors import GeometryError

__all__ = ["cluster_tags"]


def cluster_tags(
    tags: np.ndarray,
    fill_ratio: float = 0.7,
    max_box_size: int = 32,
    origin: tuple[int, ...] | None = None,
) -> list[Box]:
    """Cover all True cells of ``tags`` with boxes.

    Parameters
    ----------
    tags:
        Boolean mask in level index space.
    fill_ratio:
        Minimum fraction of tagged cells a produced box must contain.
    max_box_size:
        Maximum extent of any produced box in any direction.
    origin:
        Index-space coordinate of ``tags[0, 0, ...]``; defaults to zeros.

    Returns an empty list when nothing is tagged.  Produced boxes are
    pairwise disjoint and jointly cover every tagged cell.
    """
    if not (0.0 < fill_ratio <= 1.0):
        raise GeometryError(f"fill_ratio must be in (0, 1], got {fill_ratio}")
    if max_box_size < 1:
        raise GeometryError(f"max_box_size must be >= 1, got {max_box_size}")
    tags = np.asarray(tags, dtype=bool)
    if origin is None:
        origin = tuple(0 for _ in range(tags.ndim))
    if len(origin) != tags.ndim:
        raise GeometryError(f"origin rank {len(origin)} != tags rank {tags.ndim}")
    if not tags.any():
        return []

    bound = _bounding_box(tags)
    accepted: list[Box] = []
    _recurse(tags, bound, fill_ratio, max_box_size, accepted)
    return [box.shift(origin) for box in accepted]


def _bounding_box(tags: np.ndarray) -> Box:
    """Minimal box (in local array coordinates) containing all True cells."""
    coords = np.nonzero(tags)
    lo = tuple(int(c.min()) for c in coords)
    hi = tuple(int(c.max()) for c in coords)
    return Box(lo, hi)


def _abs_slices(region: Box) -> tuple[slice, ...]:
    """Slices of ``region`` in an array whose index 0 is coordinate 0."""
    return tuple(slice(l, h + 1) for l, h in zip(region.lo, region.hi))


def _recurse(
    tags: np.ndarray,
    region: Box,
    fill_ratio: float,
    max_box_size: int,
    accepted: list[Box],
) -> None:
    sub = tags[_abs_slices(region)]
    count = int(sub.sum())
    if count == 0:
        return
    # Shrink to the tight bounding box inside this region first.
    tight = _bounding_box(sub).shift(region.lo)
    if tight != region:
        _recurse(tags, tight, fill_ratio, max_box_size, accepted)
        return
    ratio = count / region.size
    if ratio >= fill_ratio and max(region.shape) <= max_box_size:
        accepted.append(region)
        return
    axis, cut = _find_cut(sub, region)
    if cut is None:
        # Cannot split (all extents are 1): accept regardless of ratio.
        accepted.append(region)
        return
    low, high = region.split_axis(axis, cut)
    _recurse(tags, low, fill_ratio, max_box_size, accepted)
    _recurse(tags, high, fill_ratio, max_box_size, accepted)


def _find_cut(sub: np.ndarray, region: Box) -> tuple[int, int | None]:
    """Choose a cut plane: holes first, then inflections, then midpoint.

    Returns ``(axis, absolute_cut_index)`` with the cut strictly inside the
    region; ``(0, None)`` when no axis can be split.
    """
    splittable = [d for d in range(sub.ndim) if region.shape[d] >= 2]
    if not splittable:
        return 0, None
    # Prefer splitting the longest axis when quality ties.
    splittable.sort(key=lambda d: -region.shape[d])

    # 1. Look for holes in the signature (Berger-Rigoutsos "Phi = 0").
    for axis in splittable:
        signature = _signature(sub, axis)
        zeros = np.nonzero(signature == 0)[0]
        if zeros.size:
            # Cut at the hole nearest the centre for balanced halves.
            centre = (len(signature) - 1) / 2
            hole = int(zeros[np.argmin(np.abs(zeros - centre))])
            cut_local = hole + 1 if hole + 1 < len(signature) else hole
            if 0 < cut_local < len(signature):
                return axis, region.lo[axis] + cut_local

    # 2. Strongest inflection in the Laplacian of the signature.
    best: tuple[float, int, int] | None = None
    for axis in splittable:
        signature = _signature(sub, axis)
        if len(signature) < 4:
            continue
        lap = signature[:-2] - 2 * signature[1:-1] + signature[2:]
        jump = np.abs(np.diff(lap))
        if jump.size == 0:
            continue
        k = int(np.argmax(jump))
        strength = float(jump[k])
        cut_local = k + 2  # between lap[k] and lap[k+1], in cell coordinates
        if 0 < cut_local < len(signature) and strength > 0:
            if best is None or strength > best[0]:
                best = (strength, axis, region.lo[axis] + cut_local)
    if best is not None:
        return best[1], best[2]

    # 3. Fall back to the midpoint of the longest splittable axis.
    axis = splittable[0]
    return axis, region.lo[axis] + region.shape[axis] // 2


def _signature(sub: np.ndarray, axis: int) -> np.ndarray:
    """Tag counts per plane perpendicular to ``axis``."""
    other = tuple(d for d in range(sub.ndim) if d != axis)
    return sub.sum(axis=other).astype(np.int64)
