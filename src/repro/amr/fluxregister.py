"""Coarse-fine flux correction (Chombo's ``LevelFluxRegister``).

Without correction, a coarse cell adjacent to a refined region is updated
with the *coarse* flux through the coarse-fine interface while the fine
cells on the other side use *fine* fluxes -- the mismatch silently
creates or destroys conserved quantity at the interface.  Refluxing
replaces the coarse flux with the (area-averaged) fine flux on every
boundary face:

    dU_outside = s * dt/dx_c * (F_coarse - <F_fine>)

with ``s = +1`` when the uncovered cell sits on the low side of the face
and ``-1`` on the high side.

This implementation keeps dense face-centered accumulators over the
coarse domain -- simple and exact; a production code would store only the
boundary faces.  :func:`assemble_dense_fluxes` gathers per-box solver
fluxes into the dense layout (shared faces are written consistently
because neighbouring boxes see identical ghost data).
"""

from __future__ import annotations

import numpy as np

from repro.amr.box import Box
from repro.amr.level import LevelData
from repro.errors import HierarchyError

__all__ = ["FluxRegister", "assemble_dense_fluxes"]


def assemble_dense_fluxes(
    data: LevelData,
    box_fluxes: list[list[np.ndarray]],
    domain: Box,
) -> list[np.ndarray]:
    """Gather per-box face fluxes into dense per-axis arrays over ``domain``.

    ``box_fluxes[i][axis]`` is the flux array ``compute_fluxes`` returned
    for box ``i``: shape ``(ncomp, ...)`` with ``n_axis + 1`` faces along
    ``axis`` and interior extents elsewhere.  The dense array for axis
    ``d`` has ``domain.shape[d] + 1`` entries along ``d``.
    """
    ndim = domain.ndim
    ncomp = data.ncomp
    dense: list[np.ndarray] = []
    for axis in range(ndim):
        shape = list(domain.shape)
        shape[axis] += 1
        dense.append(np.zeros((ncomp, *shape)))
    for i, box in enumerate(data.layout):
        for axis in range(ndim):
            F = box_fluxes[i][axis]
            slc: list[slice] = [slice(None)]
            for d in range(ndim):
                lo = box.lo[d] - domain.lo[d]
                hi = box.hi[d] - domain.lo[d]
                if d == axis:
                    slc.append(slice(lo, hi + 2))
                else:
                    slc.append(slice(lo, hi + 1))
            dense[axis][tuple(slc)] = F
    return dense


class FluxRegister:
    """Accumulates coarse/fine flux differences on the coarse-fine boundary.

    Parameters
    ----------
    coarse_domain:
        The coarse level's problem domain.
    fine_boxes_coarsened:
        The fine level's boxes, coarsened to coarse index space.
    ncomp:
        Conserved components.
    ref_ratio:
        Refinement ratio between the two levels.
    periodic:
        Treat faces wrapping the domain boundary as interior (so a fine
        region touching the boundary still refluxes across the wrap).
    """

    def __init__(
        self,
        coarse_domain: Box,
        fine_boxes_coarsened: list[Box],
        ncomp: int,
        ref_ratio: int,
        periodic: bool = True,
    ):
        if ref_ratio < 2:
            raise HierarchyError(f"ref_ratio must be >= 2, got {ref_ratio}")
        self.domain = coarse_domain
        self.ncomp = ncomp
        self.ref_ratio = ref_ratio
        self.ndim = coarse_domain.ndim
        self.periodic = periodic

        # Mask of coarse cells covered by the fine level.
        mask = np.zeros(coarse_domain.shape, dtype=bool)
        origin = coarse_domain.lo
        for cbox in fine_boxes_coarsened:
            clipped = cbox.intersect(coarse_domain)
            if clipped.is_empty():
                raise HierarchyError(f"fine box {cbox} outside coarse domain")
            slc = tuple(
                slice(l - o, h - o + 1)
                for l, h, o in zip(clipped.lo, clipped.hi, origin)
            )
            mask[slc] = True
        self.mask = mask

        # Per axis: boolean boundary-face masks and the outside-cell side.
        # Interior faces along axis d are indexed 1..n-1 in a (n+1)-face
        # array; face f sits between cells f-1 and f.
        self._boundary: list[np.ndarray] = []
        self._low_outside: list[np.ndarray] = []
        self._acc: list[np.ndarray] = []
        for axis in range(self.ndim):
            n_faces = coarse_domain.shape[axis] + 1
            shape = list(coarse_domain.shape)
            shape[axis] = n_faces
            boundary = np.zeros(shape, dtype=bool)
            low_outside = np.zeros(shape, dtype=bool)

            lo_cells = self._axis_slice(slice(None, -1), axis, mask.ndim)
            hi_cells = self._axis_slice(slice(1, None), axis, mask.ndim)
            inner = self._axis_slice(slice(1, -1), axis, boundary.ndim)
            differs = mask[lo_cells] != mask[hi_cells]
            boundary[inner] = differs
            low_outside[inner] = differs & ~mask[lo_cells]

            if periodic:
                # Wrap face between the last and first cell: registered at
                # face index 0 only (face n is the same physical face; the
                # flux accessors fold its value in).
                first = self._axis_slice(slice(0, 1), axis, mask.ndim)
                last = self._axis_slice(slice(-1, None), axis, mask.ndim)
                wrap_differs = mask[last] != mask[first]
                face_first = self._axis_slice(slice(0, 1), axis, boundary.ndim)
                boundary[face_first] = wrap_differs
                # For the wrap face, the "low" cell is the last cell.
                low_outside[face_first] = wrap_differs & ~mask[last]

            self._boundary.append(boundary)
            self._low_outside.append(low_outside)
            self._acc.append(np.zeros((ncomp, *shape)))

    @staticmethod
    def _axis_slice(sl: slice, axis: int, ndim: int) -> tuple[slice, ...]:
        return tuple(sl if d == axis else slice(None) for d in range(ndim))

    @property
    def boundary_face_count(self) -> int:
        """Total coarse-fine boundary faces over all axes."""
        return sum(int(boundary.sum()) for boundary in self._boundary)

    def reset(self) -> None:
        """Zero the accumulators (call at the start of every coarse step)."""
        for acc in self._acc:
            acc[...] = 0.0

    def add_coarse(self, axis: int, dense_flux: np.ndarray, dt: float) -> None:
        """Accumulate ``+dt * F_coarse`` on the boundary faces of ``axis``."""
        acc = self._acc[axis]
        sel = self._boundary[axis]
        acc[:, sel] += dt * dense_flux[:, sel]

    def add_fine(self, axis: int, dense_fine_flux: np.ndarray, dt: float) -> None:
        """Accumulate ``-dt * <F_fine>`` (transverse average) on the boundary.

        ``dense_fine_flux`` covers the *fine* domain's faces; the fine
        faces aligned with coarse face index ``I`` start at ``r * I`` and
        span ``r`` faces in each transverse direction.  On periodic
        domains the last face's values are folded into face 0 (same
        physical face; exactly one of the two carries the fine flux).
        """
        r = self.ref_ratio
        restricted = self._restrict_faces(dense_fine_flux, axis, r)
        if self.periodic:
            first = self._axis_slice(slice(0, 1), axis, self.ndim)
            last = self._axis_slice(slice(-1, None), axis, self.ndim)
            restricted[(slice(None), *first)] += restricted[(slice(None), *last)]
        acc = self._acc[axis]
        sel = self._boundary[axis]
        acc[:, sel] -= dt * restricted[:, sel]

    def _restrict_faces(self, fine: np.ndarray, axis: int, r: int) -> np.ndarray:
        """Average fine face fluxes onto coarse faces."""
        out = fine
        # Along the face axis: take every r-th face (aligned faces).
        slc = [slice(None)] * out.ndim
        slc[1 + axis] = slice(None, None, r)
        out = out[tuple(slc)]
        # Transverse axes: block-average r fine faces per coarse face.
        for d in range(self.ndim):
            if d == axis:
                continue
            shape = list(out.shape)
            n = shape[1 + d] // r
            new_shape = shape[:1 + d] + [n, r] + shape[2 + d:]
            out = out.reshape(new_shape).mean(axis=2 + d)
        return out

    def apply(self, coarse: LevelData, dx: float) -> float:
        """Scatter the corrections into uncovered coarse cells.

        Returns the largest absolute correction applied (diagnostic).
        """
        ndim = self.ndim
        origin = self.domain.lo
        max_delta = 0.0
        # Build a dense correction field, then copy into the box arrays.
        correction = np.zeros((self.ncomp, *self.domain.shape))
        for axis in range(ndim):
            acc = self._acc[axis]  # dt * (F_c - <F_f>) on boundary faces
            low = self._low_outside[axis]
            high = self._boundary[axis] & ~low
            n = self.domain.shape[axis]
            # Low-side outside cell of face f is cell f-1 (wraps for f=0).
            faces = np.argwhere(low)
            for face in faces:
                cell = list(face)
                cell[axis] = (face[axis] - 1) % n
                correction[(slice(None), *cell)] += acc[(slice(None), *face)] / dx
            faces = np.argwhere(high)
            for face in faces:
                cell = list(face)
                cell[axis] = face[axis] % n
                correction[(slice(None), *cell)] -= acc[(slice(None), *face)] / dx
        if correction.any():
            max_delta = float(np.abs(correction).max())
            for i, box in enumerate(coarse.layout):
                view = coarse.valid_view(i)
                slc = tuple(
                    slice(l - o, h - o + 1)
                    for l, h, o in zip(box.lo, box.hi, origin)
                )
                view += correction[(slice(None), *slc)]
        return max_delta
