"""Integer box geometry (Chombo's ``Box``/``IntVect``).

A :class:`Box` is an axis-aligned region of index space with *inclusive*
lower and upper corners, matching Chombo's convention.  Boxes are
immutable; every operation returns a new box.  Dimension is inferred from
the corner tuples and may be 1, 2 or 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import GeometryError

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """An axis-aligned integer box with inclusive corners ``lo`` and ``hi``.

    ``Box((0, 0), (7, 7))`` is an 8x8 patch of cells.  An *empty* box is
    one with ``hi < lo`` in some direction; use :meth:`is_empty` rather
    than constructing them deliberately.
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise GeometryError(f"corner ranks differ: {self.lo} vs {self.hi}")
        if not self.lo:
            raise GeometryError("box needs at least one dimension")
        object.__setattr__(self, "lo", tuple(int(x) for x in self.lo))
        object.__setattr__(self, "hi", tuple(int(x) for x in self.hi))

    # -- basic queries ----------------------------------------------------

    @property
    def ndim(self) -> int:
        """Spatial dimension of the box."""
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        """Cell counts per direction (all zero if empty)."""
        return tuple(max(0, h - l + 1) for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        """Total number of cells (0 if empty)."""
        n = 1
        for extent in self.shape:
            n *= extent
        return n

    def is_empty(self) -> bool:
        """True when any direction has ``hi < lo``."""
        return any(h < l for l, h in zip(self.lo, self.hi))

    def contains_point(self, point: tuple[int, ...]) -> bool:
        """True when ``point`` lies inside the box."""
        if len(point) != self.ndim:
            raise GeometryError(f"point rank {len(point)} != box rank {self.ndim}")
        return all(l <= p <= h for l, p, h in zip(self.lo, point, self.hi))

    def contains_box(self, other: "Box") -> bool:
        """True when ``other`` lies entirely inside this box."""
        self._check_rank(other)
        if other.is_empty():
            return True
        return all(sl <= ol and oh <= sh
                   for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi))

    def _check_rank(self, other: "Box") -> None:
        if other.ndim != self.ndim:
            raise GeometryError(f"mixed box ranks: {self.ndim} vs {other.ndim}")

    # -- constructive operations -------------------------------------------

    def shift(self, offset: tuple[int, ...]) -> "Box":
        """Translate by ``offset``."""
        if len(offset) != self.ndim:
            raise GeometryError(f"offset rank {len(offset)} != box rank {self.ndim}")
        return Box(
            tuple(l + o for l, o in zip(self.lo, offset)),
            tuple(h + o for h, o in zip(self.hi, offset)),
        )

    def grow(self, radius: int) -> "Box":
        """Expand (or shrink for negative ``radius``) by ``radius`` cells per side."""
        return Box(
            tuple(l - radius for l in self.lo),
            tuple(h + radius for h in self.hi),
        )

    def intersect(self, other: "Box") -> "Box":
        """The overlap region (possibly empty)."""
        self._check_rank(other)
        return Box(
            tuple(max(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(min(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def intersects(self, other: "Box") -> bool:
        """True when the boxes overlap in at least one cell."""
        return not self.intersect(other).is_empty()

    def refine(self, ratio: int) -> "Box":
        """Index-space refinement: each cell becomes ``ratio**ndim`` cells."""
        if ratio < 1:
            raise GeometryError(f"refine ratio must be >= 1, got {ratio}")
        return Box(
            tuple(l * ratio for l in self.lo),
            tuple((h + 1) * ratio - 1 for h in self.hi),
        )

    def coarsen(self, ratio: int) -> "Box":
        """Index-space coarsening (floor division, Chombo semantics)."""
        if ratio < 1:
            raise GeometryError(f"coarsen ratio must be >= 1, got {ratio}")
        return Box(
            tuple(l // ratio for l in self.lo),
            tuple(h // ratio for h in self.hi),
        )

    # -- array bridging ---------------------------------------------------

    def slices(self, origin: "Box | None" = None) -> tuple[slice, ...]:
        """NumPy index slices for this box inside an array covering ``origin``.

        ``origin`` defaults to the box itself (a dense array exactly covering
        it).  Raises when this box is not contained in ``origin``.
        """
        base = origin if origin is not None else self
        if origin is not None and not origin.contains_box(self):
            raise GeometryError(f"{self} not contained in {origin}")
        return tuple(
            slice(l - bl, h - bl + 1)
            for l, h, bl in zip(self.lo, self.hi, base.lo)
        )

    def coordinates(self) -> Iterator[tuple[int, ...]]:
        """Iterate all integer cell coordinates in the box (row-major)."""
        if self.is_empty():
            return
        ranges = [range(l, h + 1) for l, h in zip(self.lo, self.hi)]
        grids = np.meshgrid(*ranges, indexing="ij")
        for idx in zip(*(g.ravel() for g in grids)):
            yield tuple(int(v) for v in idx)

    # -- splitting ----------------------------------------------------------

    def split_axis(self, axis: int, at: int) -> tuple["Box", "Box"]:
        """Cut perpendicular to ``axis`` so the low part ends at index ``at - 1``.

        ``at`` must lie strictly inside ``(lo[axis], hi[axis]]`` so both
        halves are non-empty.
        """
        if not (self.lo[axis] < at <= self.hi[axis]):
            raise GeometryError(
                f"cut position {at} outside interior of axis {axis} of {self}"
            )
        lo_hi = list(self.hi)
        lo_hi[axis] = at - 1
        hi_lo = list(self.lo)
        hi_lo[axis] = at
        return Box(self.lo, tuple(lo_hi)), Box(tuple(hi_lo), self.hi)

    def chop(self, max_size: int) -> list["Box"]:
        """Recursively split until every extent is at most ``max_size``."""
        if max_size < 1:
            raise GeometryError(f"max_size must be >= 1, got {max_size}")
        if self.is_empty():
            return []
        worst = int(np.argmax(self.shape))
        if self.shape[worst] <= max_size:
            return [self]
        cut = self.lo[worst] + self.shape[worst] // 2
        low, high = self.split_axis(worst, cut)
        return low.chop(max_size) + high.chop(max_size)

    def __repr__(self) -> str:
        return f"Box({self.lo}, {self.hi})"
