"""Distributed box layouts (Chombo's ``DisjointBoxLayout``).

A :class:`BoxLayout` is an ordered collection of pairwise-disjoint boxes on
one AMR level together with a rank assignment.  The default assignment is
Chombo's load-balancing heuristic: boxes sorted by descending cell count
are placed greedily on the least-loaded rank, which keeps per-rank load
within one max-box of optimal.

The *rank* here is a virtual MPI rank: the workload-capture layer
(:mod:`repro.workload.capture`) uses it to record per-rank data volumes
and memory for the staging experiments.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Sequence

import numpy as np

from repro.amr.box import Box
from repro.errors import GeometryError

__all__ = ["BoxLayout", "load_balance"]


def load_balance(boxes: Sequence[Box], nranks: int) -> list[int]:
    """Greedy longest-processing-time assignment of boxes to ranks.

    Returns ``rank[i]`` for each box, minimizing (approximately) the
    maximum per-rank cell count.  Deterministic: ties broken by rank id.
    """
    if nranks < 1:
        raise GeometryError(f"need at least one rank, got {nranks}")
    assignment = [0] * len(boxes)
    # Heap of (load, rank); heapq tie-breaks on rank id, giving determinism.
    heap: list[tuple[int, int]] = [(0, r) for r in range(nranks)]
    heapq.heapify(heap)
    order = sorted(range(len(boxes)), key=lambda i: (-boxes[i].size, i))
    for i in order:
        load, rank = heapq.heappop(heap)
        assignment[i] = rank
        heapq.heappush(heap, (load + boxes[i].size, rank))
    return assignment


class BoxLayout:
    """Pairwise-disjoint boxes plus their rank assignment.

    Parameters
    ----------
    boxes:
        The level's patches.  Disjointness is verified (O(n^2) with a
        cheap bounding-box prefilter; layouts are typically small).
    nranks:
        Number of virtual ranks to balance over.
    ranks:
        Explicit assignment overriding the load balancer (for tests).
    """

    def __init__(
        self,
        boxes: Sequence[Box],
        nranks: int = 1,
        ranks: Sequence[int] | None = None,
    ):
        self.boxes: tuple[Box, ...] = tuple(boxes)
        if not self.boxes:
            raise GeometryError("layout needs at least one box")
        ndim = self.boxes[0].ndim
        for box in self.boxes:
            if box.ndim != ndim:
                raise GeometryError("mixed dimensions in layout")
            if box.is_empty():
                raise GeometryError(f"empty box in layout: {box}")
        self._verify_disjoint()
        self.nranks = int(nranks)
        if ranks is not None:
            if len(ranks) != len(self.boxes):
                raise GeometryError("ranks length must match boxes length")
            if any(not (0 <= r < nranks) for r in ranks):
                raise GeometryError("rank assignment out of range")
            self.ranks = tuple(int(r) for r in ranks)
        else:
            self.ranks = tuple(load_balance(self.boxes, nranks))

    def _corner_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached (n, ndim) arrays of box corners for vectorized queries."""
        los = getattr(self, "_los", None)
        if los is None:
            self._los = np.array([b.lo for b in self.boxes], dtype=np.int64)
            self._his = np.array([b.hi for b in self.boxes], dtype=np.int64)
        return self._los, self._his

    def _verify_disjoint(self) -> None:
        los, his = self._corner_arrays()
        # Pairwise overlap test, vectorized: boxes i, j overlap iff
        # lo_i <= hi_j and lo_j <= hi_i in every direction.
        overlap = (
            (los[:, None, :] <= his[None, :, :])
            & (los[None, :, :] <= his[:, None, :])
        ).all(axis=2)
        np.fill_diagonal(overlap, False)
        if overlap.any():
            i, j = np.argwhere(overlap)[0]
            raise GeometryError(
                f"layout boxes overlap: {self.boxes[i]} and {self.boxes[j]}"
            )

    # -- queries ------------------------------------------------------------

    @property
    def ndim(self) -> int:
        """Spatial dimension of the layout."""
        return self.boxes[0].ndim

    def __len__(self) -> int:
        return len(self.boxes)

    def __iter__(self) -> Iterator[Box]:
        return iter(self.boxes)

    @property
    def total_cells(self) -> int:
        """Sum of cells across all boxes."""
        return sum(box.size for box in self.boxes)

    def cells_per_rank(self) -> np.ndarray:
        """Cell count owned by each rank (length ``nranks``)."""
        counts = np.zeros(self.nranks, dtype=np.int64)
        for box, rank in zip(self.boxes, self.ranks):
            counts[rank] += box.size
        return counts

    def boxes_on_rank(self, rank: int) -> list[int]:
        """Indices of boxes assigned to ``rank``."""
        return [i for i, r in enumerate(self.ranks) if r == rank]

    def imbalance(self) -> float:
        """max/mean per-rank cell load (1.0 = perfectly balanced)."""
        counts = self.cells_per_rank()
        mean = counts.mean()
        if mean == 0:
            return 1.0
        return float(counts.max() / mean)

    def covering_box(self) -> Box:
        """The smallest box containing every layout box."""
        lo = tuple(min(b.lo[d] for b in self.boxes) for d in range(self.ndim))
        hi = tuple(max(b.hi[d] for b in self.boxes) for d in range(self.ndim))
        return Box(lo, hi)

    def neighbors(self, index: int, radius: int = 1, periodic_domain: Box | None = None
                  ) -> list[tuple[int, tuple[int, ...]]]:
        """Boxes whose data a ghost region of ``radius`` around box ``index`` needs.

        Returns ``(other_index, shift)`` pairs where ``shift`` is the
        periodic image offset (all zeros for a direct neighbour).  With a
        ``periodic_domain``, images shifted by full domain extents are
        considered in every direction.

        Layouts are immutable, so results are cached: ghost exchange runs
        every time step but the neighbour graph only changes at regrids.
        """
        cache_key = (index, radius, periodic_domain)
        cache = getattr(self, "_neighbor_cache", None)
        if cache is None:
            cache = {}
            self._neighbor_cache = cache
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
        me = self.boxes[index].grow(radius)
        me_lo = np.array(me.lo, dtype=np.int64)
        me_hi = np.array(me.hi, dtype=np.int64)
        zero = tuple(0 for _ in range(self.ndim))
        shifts: list[tuple[int, ...]] = [zero]
        if periodic_domain is not None and not periodic_domain.contains_box(me):
            # Wrap-around images only matter when the grown box spills
            # past the domain boundary.
            extents = periodic_domain.shape
            offsets: list[Sequence[int]] = [(-e, 0, e) for e in extents]
            grid = np.stack(np.meshgrid(*offsets, indexing="ij"), -1)
            shifts = [tuple(int(v) for v in s) for s in grid.reshape(-1, self.ndim)]
        los, his = self._corner_arrays()
        results: list[tuple[int, tuple[int, ...]]] = []
        for shift in shifts:
            offset = np.array(shift, dtype=np.int64)
            mask = (
                ((los + offset) <= me_hi) & ((his + offset) >= me_lo)
            ).all(axis=1)
            for j in np.nonzero(mask)[0]:
                if j == index and shift == zero:
                    continue
                results.append((int(j), shift))
        cache[cache_key] = results
        return results
