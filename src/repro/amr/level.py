"""Level data containers with ghost cells (Chombo's ``LevelData<FArrayBox>``).

A :class:`LevelData` owns one NumPy array per layout box, each padded with
``nghost`` ghost cells per side.  Arrays have shape ``(ncomp, *padded)``.
:meth:`exchange` fills ghost cells from neighbouring boxes (including
periodic images); ghost cells on the physical boundary are handled by
:meth:`fill_physical`, and ghosts hanging over a coarse-fine boundary are
interpolated by the hierarchy.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.amr.box import Box
from repro.amr.layout import BoxLayout
from repro.errors import GeometryError

__all__ = ["LevelData"]


class LevelData:
    """Per-box arrays over a :class:`~repro.amr.layout.BoxLayout`."""

    def __init__(
        self,
        layout: BoxLayout,
        ncomp: int = 1,
        nghost: int = 0,
        dtype: np.dtype | type = np.float64,
    ):
        if ncomp < 1:
            raise GeometryError(f"ncomp must be >= 1, got {ncomp}")
        if nghost < 0:
            raise GeometryError(f"nghost must be >= 0, got {nghost}")
        self.layout = layout
        self.ncomp = int(ncomp)
        self.nghost = int(nghost)
        self.dtype = np.dtype(dtype)
        self.data: list[np.ndarray] = [
            np.zeros((ncomp, *box.grow(nghost).shape), dtype=self.dtype)
            for box in layout
        ]

    # -- geometry helpers --------------------------------------------------

    def grown_box(self, index: int) -> Box:
        """The padded (ghosted) box for array ``index``."""
        return self.layout.boxes[index].grow(self.nghost)

    def valid_view(self, index: int) -> np.ndarray:
        """View of the interior (non-ghost) cells of box ``index``."""
        box = self.layout.boxes[index]
        slc = box.slices(origin=self.grown_box(index))
        return self.data[index][(slice(None), *slc)]

    @property
    def nbytes(self) -> int:
        """Total bytes across all box arrays (ghosts included)."""
        return sum(arr.nbytes for arr in self.data)

    @property
    def valid_cells(self) -> int:
        """Total interior cells across the level."""
        return self.layout.total_cells

    # -- initialization ----------------------------------------------------

    def fill(self, value: float, comp: int | None = None) -> None:
        """Set every cell (ghosts included) to ``value``."""
        for arr in self.data:
            if comp is None:
                arr[...] = value
            else:
                arr[comp] = value

    def set_from_function(self, fn: Callable[..., np.ndarray], dx: float = 1.0) -> None:
        """Initialize interior cells from ``fn(*cell_center_coords) -> (ncomp, ...)``.

        Cell centers are ``(i + 0.5) * dx`` per direction.  ``fn`` receives
        one meshgrid array per dimension and must return an array whose
        leading axis is the component axis (or a plain array if
        ``ncomp == 1``).
        """
        for i, box in enumerate(self.layout):
            axes = [
                (np.arange(l, h + 1, dtype=np.float64) + 0.5) * dx
                for l, h in zip(box.lo, box.hi)
            ]
            mesh = np.meshgrid(*axes, indexing="ij")
            values = np.asarray(fn(*mesh), dtype=self.dtype)
            view = self.valid_view(i)
            if values.shape == view.shape:
                view[...] = values
            elif self.ncomp == 1 and values.shape == view.shape[1:]:
                view[0] = values
            else:
                raise GeometryError(
                    f"function returned shape {values.shape}, expected {view.shape}"
                )

    # -- ghost communication -------------------------------------------------

    def exchange(self, periodic_domain: Box | None = None) -> int:
        """Fill ghost cells from neighbouring boxes on the same level.

        With ``periodic_domain`` given, periodic images across the domain
        are included.  Returns the number of bytes copied (the workload
        capture uses this as the level's halo traffic).
        """
        if self.nghost == 0:
            return 0
        cells_moved = 0
        data = self.data
        for i, j, dst_idx, src_idx, cells in self._exchange_plan(periodic_domain):
            data[i][dst_idx] = data[j][src_idx]
            cells_moved += cells
        return cells_moved * self.ncomp * self.dtype.itemsize

    def _exchange_plan(
        self, periodic_domain: Box | None
    ) -> list[tuple[int, int, tuple, tuple, int]]:
        """Copy plan ``(dst, src, dst_idx, src_idx, cells)`` for :meth:`exchange`.

        The layout is immutable and the box geometry fixed, so the plan is
        computed once per (nghost, domain) and cached on the layout; the
        per-step exchange then reduces to slice assignments.
        """
        key = (self.nghost, periodic_domain)
        cache = getattr(self.layout, "_exchange_plans", None)
        if cache is None:
            cache = {}
            self.layout._exchange_plans = cache
        plan = cache.get(key)
        if plan is not None:
            return plan
        plan = []
        for i in range(len(self.layout)):
            dst_origin = self.grown_box(i)
            for j, shift in self.layout.neighbors(
                i, radius=self.nghost, periodic_domain=periodic_domain
            ):
                src_box = self.layout.boxes[j].shift(shift)
                region = dst_origin.intersect(src_box)
                if region.is_empty():
                    continue
                src_origin = self.grown_box(j).shift(shift)
                dst_idx = (slice(None), *region.slices(origin=dst_origin))
                src_idx = (slice(None), *region.slices(origin=src_origin))
                plan.append((i, j, dst_idx, src_idx, region.size))
        cache[key] = plan
        return plan

    def fill_physical(self, domain: Box, mode: str = "edge", value: float = 0.0) -> None:
        """Fill ghost cells outside the physical ``domain``.

        ``mode="edge"`` copies the nearest interior cell (outflow/Neumann);
        ``mode="constant"`` writes ``value`` (Dirichlet).
        """
        if self.nghost == 0:
            return
        if mode not in ("edge", "constant"):
            raise GeometryError(f"unknown fill mode {mode!r}")
        g = self.nghost
        for i, box in enumerate(self.layout):
            arr = self.data[i]
            for axis in range(self.layout.ndim):
                # Low side: box face on the domain's low face.
                if box.lo[axis] == domain.lo[axis]:
                    sl = [slice(None)] * arr.ndim
                    sl[1 + axis] = slice(0, g)
                    if mode == "constant":
                        arr[tuple(sl)] = value
                    else:
                        edge = [slice(None)] * arr.ndim
                        edge[1 + axis] = slice(g, g + 1)
                        arr[tuple(sl)] = arr[tuple(edge)]
                if box.hi[axis] == domain.hi[axis]:
                    sl = [slice(None)] * arr.ndim
                    sl[1 + axis] = slice(-g, None)
                    if mode == "constant":
                        arr[tuple(sl)] = value
                    else:
                        edge = [slice(None)] * arr.ndim
                        edge[1 + axis] = slice(-g - 1, -g)
                        arr[tuple(sl)] = arr[tuple(edge)]

    # -- data movement -----------------------------------------------------

    def copy_overlap_from(self, other: "LevelData") -> None:
        """Copy interior data from ``other`` wherever layouts overlap.

        Used during regridding to preserve data on regions kept refined.
        """
        if other.ncomp != self.ncomp:
            raise GeometryError("component count mismatch in copy_overlap_from")
        if self.layout.ndim != other.layout.ndim:
            raise GeometryError("dimension mismatch in copy_overlap_from")
        # Vectorized pair finding: boxes i, j overlap iff lo_i <= hi_j and
        # lo_j <= hi_i per direction.  argwhere returns row-major order,
        # matching the nested loop this replaces.
        dlos, dhis = self.layout._corner_arrays()
        slos, shis = other.layout._corner_arrays()
        overlap = (
            (dlos[:, None, :] <= shis[None, :, :])
            & (slos[None, :, :] <= dhis[:, None, :])
        ).all(axis=2)
        for i, j in np.argwhere(overlap):
            region = self.layout.boxes[i].intersect(other.layout.boxes[j])
            dst_slc = region.slices(origin=self.grown_box(i))
            src_slc = region.slices(origin=other.grown_box(j))
            self.data[i][(slice(None), *dst_slc)] = other.data[j][(slice(None), *src_slc)]

    def to_dense(self, region: Box | None = None, fill: float = np.nan) -> np.ndarray:
        """Assemble a dense ``(ncomp, *region.shape)`` array of interior data.

        Cells of ``region`` not covered by any box are set to ``fill``.
        ``region`` defaults to the layout's covering box.
        """
        target = region if region is not None else self.layout.covering_box()
        out = np.full((self.ncomp, *target.shape), fill, dtype=self.dtype)
        for i, box in enumerate(self.layout):
            overlap = box.intersect(target)
            if overlap.is_empty():
                continue
            dst_slc = overlap.slices(origin=target)
            src_slc = overlap.slices(origin=self.grown_box(i))
            out[(slice(None), *dst_slc)] = self.data[i][(slice(None), *src_slc)]
        return out

    def rank_bytes(self) -> np.ndarray:
        """Bytes held by each virtual rank (ghosts included)."""
        out = np.zeros(self.layout.nranks, dtype=np.int64)
        for arr, rank in zip(self.data, self.layout.ranks):
            out[rank] += arr.nbytes
        return out
