"""Checkpoint/restart and plotfile I/O for AMR hierarchies.

Chombo applications periodically write HDF5 plotfiles and checkpoints;
the paper's workflows intercept exactly that data stream.  This module
provides the equivalent persistence for :class:`~repro.amr.hierarchy.
AMRHierarchy` using NumPy's ``.npz`` container: every level's layout,
rank assignment and box data, plus the hierarchy's geometry parameters --
enough to restart a run bit-exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.amr.box import Box
from repro.amr.hierarchy import AMRHierarchy, LevelSpec
from repro.amr.layout import BoxLayout
from repro.amr.level import LevelData
from repro.errors import HierarchyError

__all__ = ["read_checkpoint", "write_checkpoint"]

_FORMAT_VERSION = 1


def write_checkpoint(hierarchy: AMRHierarchy, path: str | Path,
                     time: float = 0.0, step: int = 0) -> None:
    """Write the full hierarchy state to ``path`` (``.npz``)."""
    path = Path(path)
    meta = {
        "format": _FORMAT_VERSION,
        "time": time,
        "step": step,
        "ndim": hierarchy.domain.ndim,
        "domain_lo": list(hierarchy.domain.lo),
        "domain_hi": list(hierarchy.domain.hi),
        "ncomp": hierarchy.ncomp,
        "nghost": hierarchy.nghost,
        "ref_ratio": hierarchy.ref_ratio,
        "max_levels": hierarchy.max_levels,
        "nranks": hierarchy.nranks,
        "max_box_size": hierarchy.max_box_size,
        "fill_ratio": hierarchy.fill_ratio,
        "tag_buffer": hierarchy.tag_buffer,
        "dx0": hierarchy.dx0,
        "periodic": hierarchy.periodic,
        "n_levels": len(hierarchy.levels),
    }
    arrays: dict[str, np.ndarray] = {
        "_meta": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    }
    for level, spec in enumerate(hierarchy.levels):
        arrays[f"level{level}_lo"] = np.array(
            [box.lo for box in spec.layout.boxes], dtype=np.int64
        )
        arrays[f"level{level}_hi"] = np.array(
            [box.hi for box in spec.layout.boxes], dtype=np.int64
        )
        arrays[f"level{level}_ranks"] = np.array(spec.layout.ranks, dtype=np.int64)
        for i, arr in enumerate(spec.data.data):
            arrays[f"level{level}_box{i}"] = arr
    np.savez_compressed(path, **arrays)


def read_checkpoint(path: str | Path) -> tuple[AMRHierarchy, float, int]:
    """Rebuild a hierarchy from a checkpoint; returns ``(hierarchy, time, step)``."""
    path = Path(path)
    with np.load(path) as data:
        try:
            meta = json.loads(bytes(data["_meta"]).decode())
        except KeyError:
            raise HierarchyError(f"{path} is not a repro checkpoint") from None
        if meta.get("format") != _FORMAT_VERSION:
            raise HierarchyError(
                f"unsupported checkpoint format {meta.get('format')!r}"
            )
        hierarchy = AMRHierarchy(
            Box(tuple(meta["domain_lo"]), tuple(meta["domain_hi"])),
            ncomp=meta["ncomp"],
            nghost=meta["nghost"],
            ref_ratio=meta["ref_ratio"],
            max_levels=meta["max_levels"],
            nranks=meta["nranks"],
            max_box_size=meta["max_box_size"],
            fill_ratio=meta["fill_ratio"],
            tag_buffer=meta["tag_buffer"],
            dx0=meta["dx0"],
            periodic=meta["periodic"],
        )
        levels: list[LevelSpec] = []
        for level in range(meta["n_levels"]):
            los = data[f"level{level}_lo"]
            his = data[f"level{level}_hi"]
            ranks = data[f"level{level}_ranks"]
            boxes = [Box(tuple(lo), tuple(hi)) for lo, hi in zip(los, his)]
            layout = BoxLayout(boxes, nranks=meta["nranks"], ranks=list(ranks))
            level_data = LevelData(layout, meta["ncomp"], meta["nghost"])
            for i in range(len(boxes)):
                stored = data[f"level{level}_box{i}"]
                if stored.shape != level_data.data[i].shape:
                    raise HierarchyError(
                        f"checkpoint array shape mismatch at level {level} box {i}"
                    )
                level_data.data[i][...] = stored
            levels.append(LevelSpec(layout, level_data))
        hierarchy.levels = levels
    return hierarchy, float(meta["time"]), int(meta["step"])
