"""Exception hierarchy shared across the package.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch package failures with a single handler while still being
able to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised for invalid discrete-event simulation operations."""


class ResourceError(ReproError):
    """Raised when a simulated resource request cannot be satisfied."""


class GeometryError(ReproError):
    """Raised for invalid AMR box/layout geometry."""


class HierarchyError(ReproError):
    """Raised for inconsistent AMR hierarchy operations (nesting, ratios)."""


class StagingError(ReproError):
    """Raised by the DataSpaces-like staging substrate."""


class PolicyError(ReproError):
    """Raised when an adaptation policy receives inconsistent inputs."""


class WorkflowError(ReproError):
    """Raised by the coupled workflow driver."""


class TraceError(ReproError):
    """Raised for malformed or inconsistent workload traces."""


class ObservabilityError(ReproError):
    """Raised by the tracing and metrics subsystem."""


class FaultError(ReproError):
    """Raised for invalid fault plans or mis-wired fault injection."""


class ExperimentError(ReproError):
    """Raised by the experiment sweep runner (unknown ids, bad grids)."""


class ServiceError(ReproError):
    """Raised by the multi-tenant workflow service (admission, grants)."""
