"""The operational state the Monitor hands to the Adaptation Engine.

One :class:`OperationalState` snapshot per adaptation opportunity,
carrying exactly the quantities referenced by the paper's policy
formulations (Table 1): data sizes, per-rank memory availability,
estimated execution/transfer times, staging occupancy, and core counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import PolicyError

__all__ = ["OperationalState"]


@dataclass(frozen=True)
class OperationalState:
    """Snapshot of the workflow at one time step.

    Attributes map onto Table 1 of the paper:

    - ``data_bytes`` -- S_data (full-resolution output of this step);
    - ``rank_data_bytes`` -- S_data share on the most loaded rank (the
      binding constraint for in-situ reduction);
    - ``rank_memory_available`` -- Mem_available on that rank;
    - ``analysis_work`` -- work units to analyse this step at full
      resolution (scales T_insitu and T_intransit);
    - ``est_insitu_time`` -- T_insitu(N, S_data);
    - ``est_intransit_time`` -- T_intransit(M, S_data);
    - ``est_intransit_remaining`` -- T_intransit_remaining (queued+running);
    - ``est_send_time`` -- T_sd(S_data);
    - ``est_next_sim_time`` -- T_{i+1}_sim(N);
    - ``sim_cores``/``staging_active_cores``/``staging_total_cores`` --
      N, M, and the static staging preallocation;
    - ``staging_memory_total``/``staging_memory_used`` -- Eq. 10's
      constraint inputs;
    - ``insitu_memory_ok``/``intransit_memory_ok`` -- Eq. 8's resource
      feasibility bits;
    - ``staging_busy`` -- whether in-transit cores are occupied (Fig. 4);
    - ``staging_reachable`` -- False during a total staging blackout
      (every core failed); the engine then degrades to in-situ placement.
    """

    step: int
    ndim: int
    core_rate: float

    # Application layer
    data_bytes: float
    rank_data_bytes: float
    rank_memory_available: float
    analysis_work: float

    # Middleware layer
    sim_cores: int
    staging_active_cores: int
    est_insitu_time: float
    est_intransit_time: float
    est_intransit_remaining: float
    staging_busy: bool
    insitu_memory_ok: bool
    intransit_memory_ok: bool

    # Resource layer
    staging_total_cores: int
    staging_memory_total: float
    staging_memory_used: float
    est_next_sim_time: float
    est_send_time: float
    # Estimated simulation compute still ahead of us (steps remaining x
    # expected step time).  Eq. 6 minimizes the max over the two pipelines:
    # in-transit work beyond this horizon cannot be hidden and extends the
    # end-to-end time directly.
    est_remaining_sim_time: float = float("inf")
    # False only while fault injection has killed every staging core.
    staging_reachable: bool = True

    def __post_init__(self) -> None:
        if self.ndim not in (1, 2, 3):
            raise PolicyError(f"ndim must be 1, 2 or 3, got {self.ndim}")
        if self.core_rate <= 0:
            raise PolicyError(f"core_rate must be positive, got {self.core_rate}")
        if self.sim_cores < 1 or self.staging_active_cores < 1:
            raise PolicyError("core counts must be >= 1")
        if self.staging_active_cores > self.staging_total_cores:
            raise PolicyError(
                f"active staging cores {self.staging_active_cores} exceed "
                f"total {self.staging_total_cores}"
            )
        for attr in (
            "data_bytes",
            "rank_data_bytes",
            "rank_memory_available",
            "analysis_work",
            "est_insitu_time",
            "est_intransit_time",
            "est_intransit_remaining",
            "staging_memory_total",
            "staging_memory_used",
            "est_next_sim_time",
            "est_send_time",
            "est_remaining_sim_time",
        ):
            if getattr(self, attr) < 0:
                raise PolicyError(f"{attr} must be non-negative")

    def with_reduction(self, factor: int) -> "OperationalState":
        """The state as seen after down-sampling by ``factor``.

        The cross-layer execution order (application first) means the
        resource and middleware mechanisms must observe the *reduced*
        data size and analysis cost.  Times estimated proportionally.
        """
        if factor < 1:
            raise PolicyError(f"factor must be >= 1, got {factor}")
        if factor == 1:
            return self
        shrink = 1.0 / factor**self.ndim
        return replace(
            self,
            data_bytes=self.data_bytes * shrink,
            rank_data_bytes=self.rank_data_bytes * shrink,
            analysis_work=self.analysis_work * shrink,
            est_insitu_time=self.est_insitu_time * shrink,
            est_intransit_time=self.est_intransit_time * shrink,
            est_send_time=self.est_send_time * shrink,
        )
