"""The Adaptation Engine: selects and executes adaptation mechanisms.

"The Adaptation Engine is responsible for selecting and executing
appropriate adaptations based on user preference and hints, operational
state provided by the monitor, and the adaptation policies."

The engine supports the paper's experimental configurations:

- *local* adaptation -- a single layer's policy runs (Sections 5.2.1,
  5.2.2, 5.2.3 each evaluate one layer);
- *global* (cross-layer) adaptation -- Section 4.4's root-leaf plan is
  computed from the user objective, then executed leaves-to-root with the
  intermediate state updated between mechanisms (the application layer's
  chosen factor shrinks the S_data the resource and middleware layers
  see).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.actions import (
    AdaptationAction,
    PlaceAnalysis,
    Placement,
    SetDownsampleFactor,
    SetStagingCores,
)
from repro.core.mechanisms import Layer
from repro.core.policies.application import ApplicationLayerPolicy
from repro.core.policies.crosslayer import CrossLayerPolicy
from repro.core.policies.middleware import MiddlewarePolicy
from repro.core.policies.resource import ResourcePolicy
from repro.core.preferences import UserHints, UserPreferences
from repro.core.state import OperationalState
from repro.errors import PolicyError
from repro.observability.events import ADAPT_ACTION, ADAPT_DECISION
from repro.observability.ledger import PredictionLedger
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer

__all__ = ["AdaptationDecision", "AdaptationEngine"]


@dataclass
class AdaptationDecision:
    """Everything the engine decided for one step.

    Unset aspects (layer not in the plan) are ``None``; the host applies
    only what is set.
    """

    step: int
    factor: int | None = None
    placement: Placement | None = None
    insitu_fraction: float = 0.0  # meaningful when placement is HYBRID
    staging_cores: int | None = None
    actions: list[AdaptationAction] = field(default_factory=list)


class AdaptationEngine:
    """Runs the adaptation plan against operational-state snapshots.

    Parameters
    ----------
    preferences, hints:
        The user inputs of the conceptual architecture.
    layers:
        Explicit layer set for *local* adaptation (e.g.
        ``{Layer.MIDDLEWARE}``).  ``None`` selects *global* mode: the
        cross-layer root-leaf plan derived from ``preferences.objective``.
    tracer, metrics, ledger:
        Optional observability hooks.  When injected, every call to
        :meth:`adapt` emits an ``adapt.decision`` event carrying the
        inputs the plan ran on (estimated backlog, in-situ/in-transit
        times) plus one ``adapt.action`` event per layer with the
        policy's own reasoning; the ledger additionally records the
        resource layer's staging-core choice and the middleware layer's
        implied staging-memory demand as predictions the host later
        resolves against realized values.
    trigger:
        Optional :class:`~repro.workflow.triggers.TriggerPolicy`; when
        injected, every committed decision is reported back via
        ``note_adapted`` so change-detecting policies can reset their
        references to the state they just adapted to.
    profiler:
        Optional :class:`~repro.observability.Profiler`; when injected,
        every :meth:`adapt` call runs under an ``engine.adapt`` span
        measuring the real wall-clock cost of one pass through the plan.
    """

    def __init__(
        self,
        preferences: UserPreferences | None = None,
        hints: UserHints | None = None,
        layers: set[Layer] | None = None,
        hybrid_placement: bool = False,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        ledger: PredictionLedger | None = None,
        trigger=None,
        profiler=None,
    ):
        self.preferences = preferences or UserPreferences()
        self.hints = hints or UserHints()
        self.application = ApplicationLayerPolicy(
            self.hints, objective=self.preferences.objective
        )
        self.middleware = MiddlewarePolicy(
            hybrid=hybrid_placement, objective=self.preferences.objective
        )
        self.resource = ResourcePolicy()
        self.crosslayer = CrossLayerPolicy()
        if layers is None:
            self.plan = self.crosslayer.plan_layers(self.preferences.objective)
            self.mode = "global"
        else:
            if not layers:
                raise PolicyError("local adaptation needs at least one layer")
            # Local plans keep the canonical order: application first,
            # then resource, then middleware (data dependencies).
            order = [Layer.APPLICATION, Layer.RESOURCE, Layer.MIDDLEWARE]
            self.plan = [layer for layer in order if layer in layers]
            self.mode = "local"
        self.tracer = tracer
        self.metrics = metrics
        self.ledger = ledger
        self.trigger = trigger
        self.profiler = profiler
        # Cached reusable handle: adapt() runs every sampled step, and a
        # per-call profiler.span() lookup is measurable there.
        self._profile_span = None if profiler is None else profiler.span("engine.adapt")
        self.decisions: list[AdaptationDecision] = []

    def adapt(self, state: OperationalState) -> AdaptationDecision:
        """Execute the plan on ``state``; returns the combined decision.

        Between mechanisms the working state is updated so downstream
        mechanisms observe upstream effects: the application layer's
        reduction shrinks data/analysis estimates, the resource layer's
        allocation changes M and T_intransit.
        """
        span = self._profile_span
        if span is not None:
            with span:
                return self._adapt(state)
        return self._adapt(state)

    def _adapt(self, state: OperationalState) -> AdaptationDecision:
        decision = AdaptationDecision(step=state.step)
        working = state
        degraded = not state.staging_reachable
        for layer in self.plan:
            if layer is Layer.APPLICATION:
                action = self.application.decide(working)
                decision.factor = action.factor
                decision.actions.append(action)
                working = working.with_reduction(action.factor)
            elif layer is Layer.RESOURCE:
                if degraded:
                    # Every staging core is dead; there is nothing to size
                    # until the substrate comes back.
                    continue
                action = self.resource.decide(working)
                decision.staging_cores = action.cores
                decision.actions.append(action)
                working = replace(
                    working,
                    staging_active_cores=action.cores,
                    est_intransit_time=working.analysis_work
                    / (working.core_rate * action.cores),
                )
            elif layer is Layer.MIDDLEWARE:
                if degraded:
                    # Graceful degradation: with staging unreachable the
                    # only feasible placement is in-situ.
                    action = PlaceAnalysis(
                        step=working.step,
                        placement=Placement.IN_SITU,
                        insitu_fraction=1.0,
                        reason="staging unreachable; degrading to in-situ",
                    )
                else:
                    action = self.middleware.decide(working)
                decision.placement = action.placement
                decision.insitu_fraction = action.insitu_fraction
                decision.actions.append(action)
            else:  # pragma: no cover - enum is closed
                raise PolicyError(f"unknown layer {layer}")
        self.decisions.append(decision)
        if self.trigger is not None:
            self.trigger.note_adapted(state.step, decision)
        if self.ledger is not None:
            if decision.staging_cores is not None:
                self.ledger.predict(
                    "staging_cores", state.step, float(decision.staging_cores),
                    mechanism="resource",
                )
            if decision.placement is Placement.IN_TRANSIT:
                self.ledger.predict(
                    "memory_demand", state.step, working.data_bytes,
                    mechanism="middleware",
                )
            elif decision.placement is Placement.HYBRID:
                self.ledger.predict(
                    "memory_demand", state.step,
                    (1.0 - decision.insitu_fraction) * working.data_bytes,
                    mechanism="middleware",
                )
        if self.metrics is not None:
            self.metrics.counter("engine.decisions").inc()
        if self.tracer is not None and self.tracer.enabled:
            # `degraded` is only present on degraded decisions so that
            # fault-free traces stay byte-identical to pre-fault builds.
            extra = {"degraded": True} if degraded else {}
            self.tracer.emit(
                ADAPT_DECISION,
                step=state.step,
                mode=self.mode,
                plan=[layer.value for layer in self.plan],
                **extra,
                factor=decision.factor,
                placement=(
                    decision.placement.value if decision.placement else None
                ),
                insitu_fraction=decision.insitu_fraction,
                staging_cores=decision.staging_cores,
                # The inputs the plan ran on (pre-propagation snapshot).
                data_bytes=state.data_bytes,
                analysis_work=state.analysis_work,
                est_insitu_time=state.est_insitu_time,
                est_intransit_time=state.est_intransit_time,
                est_intransit_remaining=state.est_intransit_remaining,
                est_next_sim_time=state.est_next_sim_time,
                staging_busy=state.staging_busy,
                insitu_memory_ok=state.insitu_memory_ok,
                intransit_memory_ok=state.intransit_memory_ok,
            )
            for layer, action in zip(self.plan, decision.actions):
                self.tracer.emit(
                    ADAPT_ACTION,
                    step=state.step,
                    layer=layer.value,
                    action=type(action).__name__,
                    reason=action.reason,
                )
        return decision
