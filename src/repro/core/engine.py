"""The Adaptation Engine: selects and executes adaptation mechanisms.

"The Adaptation Engine is responsible for selecting and executing
appropriate adaptations based on user preference and hints, operational
state provided by the monitor, and the adaptation policies."

The engine supports the paper's experimental configurations:

- *local* adaptation -- a single layer's policy runs (Sections 5.2.1,
  5.2.2, 5.2.3 each evaluate one layer);
- *global* (cross-layer) adaptation -- Section 4.4's root-leaf plan is
  computed from the user objective, then executed leaves-to-root with the
  intermediate state updated between mechanisms (the application layer's
  chosen factor shrinks the S_data the resource and middleware layers
  see).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.actions import (
    AdaptationAction,
    PlaceAnalysis,
    Placement,
    SetDownsampleFactor,
    SetStagingCores,
)
from repro.core.mechanisms import Layer
from repro.core.policies.application import ApplicationLayerPolicy
from repro.core.policies.crosslayer import CrossLayerPolicy
from repro.core.policies.middleware import MiddlewarePolicy
from repro.core.policies.resource import ResourcePolicy
from repro.core.preferences import UserHints, UserPreferences
from repro.core.state import OperationalState
from repro.errors import PolicyError

__all__ = ["AdaptationDecision", "AdaptationEngine"]


@dataclass
class AdaptationDecision:
    """Everything the engine decided for one step.

    Unset aspects (layer not in the plan) are ``None``; the host applies
    only what is set.
    """

    step: int
    factor: int | None = None
    placement: Placement | None = None
    insitu_fraction: float = 0.0  # meaningful when placement is HYBRID
    staging_cores: int | None = None
    actions: list[AdaptationAction] = field(default_factory=list)


class AdaptationEngine:
    """Runs the adaptation plan against operational-state snapshots.

    Parameters
    ----------
    preferences, hints:
        The user inputs of the conceptual architecture.
    layers:
        Explicit layer set for *local* adaptation (e.g.
        ``{Layer.MIDDLEWARE}``).  ``None`` selects *global* mode: the
        cross-layer root-leaf plan derived from ``preferences.objective``.
    """

    def __init__(
        self,
        preferences: UserPreferences | None = None,
        hints: UserHints | None = None,
        layers: set[Layer] | None = None,
        hybrid_placement: bool = False,
    ):
        self.preferences = preferences or UserPreferences()
        self.hints = hints or UserHints()
        self.application = ApplicationLayerPolicy(
            self.hints, objective=self.preferences.objective
        )
        self.middleware = MiddlewarePolicy(
            hybrid=hybrid_placement, objective=self.preferences.objective
        )
        self.resource = ResourcePolicy()
        self.crosslayer = CrossLayerPolicy()
        if layers is None:
            self.plan = self.crosslayer.plan_layers(self.preferences.objective)
            self.mode = "global"
        else:
            if not layers:
                raise PolicyError("local adaptation needs at least one layer")
            # Local plans keep the canonical order: application first,
            # then resource, then middleware (data dependencies).
            order = [Layer.APPLICATION, Layer.RESOURCE, Layer.MIDDLEWARE]
            self.plan = [layer for layer in order if layer in layers]
            self.mode = "local"
        self.decisions: list[AdaptationDecision] = []

    def adapt(self, state: OperationalState) -> AdaptationDecision:
        """Execute the plan on ``state``; returns the combined decision.

        Between mechanisms the working state is updated so downstream
        mechanisms observe upstream effects: the application layer's
        reduction shrinks data/analysis estimates, the resource layer's
        allocation changes M and T_intransit.
        """
        decision = AdaptationDecision(step=state.step)
        working = state
        for layer in self.plan:
            if layer is Layer.APPLICATION:
                action = self.application.decide(working)
                decision.factor = action.factor
                decision.actions.append(action)
                working = working.with_reduction(action.factor)
            elif layer is Layer.RESOURCE:
                action = self.resource.decide(working)
                decision.staging_cores = action.cores
                decision.actions.append(action)
                working = replace(
                    working,
                    staging_active_cores=action.cores,
                    est_intransit_time=working.analysis_work
                    / (working.core_rate * action.cores),
                )
            elif layer is Layer.MIDDLEWARE:
                action = self.middleware.decide(working)
                decision.placement = action.placement
                decision.insitu_fraction = action.insitu_fraction
                decision.actions.append(action)
            else:  # pragma: no cover - enum is closed
                raise PolicyError(f"unknown layer {layer}")
        self.decisions.append(decision)
        return decision
