"""Runtime estimators used by the Monitor.

The policies need predicted execution and transfer times (Table 1's
``T_insitu``, ``T_intransit``, ``T_sd`` ...).  Rather than assuming an
oracle, the Monitor learns rates from observations with exponential
moving averages, seeded from the machine's calibration constants -- the
same information Chombo's embedded performance tools give the paper's
Monitor.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.observability.metrics import Counter

__all__ = ["RateEstimator", "TransferEstimator"]


class RateEstimator:
    """EMA estimate of a per-core processing rate (work units / second).

    ``estimate(work, cores)`` predicts wall time for a data-parallel job.
    """

    def __init__(self, initial_rate: float, alpha: float = 0.3):
        if initial_rate <= 0:
            raise PolicyError(f"initial_rate must be positive, got {initial_rate}")
        if not (0 < alpha <= 1):
            raise PolicyError(f"alpha must be in (0, 1], got {alpha}")
        self.rate = float(initial_rate)
        self.alpha = float(alpha)
        self.observations = 0

    def observe(self, work_units: float, cores: int, seconds: float) -> None:
        """Fold in one completed job's measured rate."""
        if seconds <= 0 or cores < 1 or work_units < 0:
            raise PolicyError("invalid observation")
        if work_units == 0:
            return
        measured = work_units / (seconds * cores)
        self.rate = (1 - self.alpha) * self.rate + self.alpha * measured
        self.observations += 1

    def estimate(self, work_units: float, cores: int) -> float:
        """Predicted seconds for ``work_units`` spread over ``cores``."""
        if cores < 1:
            raise PolicyError(f"cores must be >= 1, got {cores}")
        return work_units / (self.rate * cores)


class TransferEstimator:
    """EMA estimate of effective transfer bandwidth plus fixed latency.

    Transfers whose measured time does not exceed the latency floor
    carry no bandwidth information; they are *discarded* rather than
    folded in.  :attr:`discards` counts them, because a link saturated
    at its latency floor otherwise freezes the bandwidth EMA at its
    seed value without any visible symptom.
    """

    def __init__(self, initial_bandwidth: float, latency: float = 0.0,
                 alpha: float = 0.3):
        if initial_bandwidth <= 0:
            raise PolicyError(
                f"initial_bandwidth must be positive, got {initial_bandwidth}"
            )
        if latency < 0:
            raise PolicyError(f"latency must be >= 0, got {latency}")
        if not (0 < alpha <= 1):
            raise PolicyError(f"alpha must be in (0, 1], got {alpha}")
        self.bandwidth = float(initial_bandwidth)
        self.latency = float(latency)
        self.alpha = float(alpha)
        self.observations = 0
        #: Latency-saturated observations dropped without updating the EMA.
        self.discards = Counter()

    def observe(self, nbytes: float, seconds: float) -> bool:
        """Fold in one completed transfer; False when it was discarded."""
        if seconds <= 0 or nbytes < 0:
            raise PolicyError("invalid observation")
        if nbytes == 0:
            return False
        effective = seconds - self.latency
        if effective <= 0:
            self.discards.inc()
            return False
        measured = nbytes / effective
        self.bandwidth = (1 - self.alpha) * self.bandwidth + self.alpha * measured
        self.observations += 1
        return True

    def estimate(self, nbytes: float) -> float:
        """Predicted seconds to move ``nbytes``."""
        if nbytes < 0:
            raise PolicyError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.bandwidth
