"""Mechanism descriptors for the cross-layer coordinator.

Section 4.4's root-leaf policy reasons over *mechanisms*: each has a
layer, its own optimization objective, and declared data inputs/outputs.
The coordinator marks mechanisms whose objective matches the user's as
*roots*, walks output->input edges to find *leaves*, and executes leaves
before roots in dependency order.

The three canonical mechanisms (Table/Section 4) are provided by
:func:`standard_mechanisms`:

========== ============================== ================= ==============
layer      objective                      inputs            outputs
========== ============================== ================= ==============
application MAXIMIZE_DATA_RESOLUTION     memory_available   S_data
middleware  MINIMIZE_TIME_TO_SOLUTION    S_data, M          placement
resource    MAXIMIZE_RESOURCE_UTILIZATION S_data            M
========== ============================== ================= ==============
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.preferences import Objective
from repro.errors import PolicyError

__all__ = ["Layer", "Mechanism", "standard_mechanisms"]


class Layer(enum.Enum):
    """The three adaptation layers of the paper."""

    APPLICATION = "application"
    MIDDLEWARE = "middleware"
    RESOURCE = "resource"


@dataclass(frozen=True)
class Mechanism:
    """One adaptation mechanism's metadata for coordination.

    ``objective`` is the mechanism's primary goal; ``secondary_objectives``
    are user objectives the mechanism also directly serves (the paper's
    "minimizing data movement" preference is served by the reduction and
    placement mechanisms even though neither names it as primary).
    """

    name: str
    layer: Layer
    objective: Objective
    inputs: frozenset[str] = field(default_factory=frozenset)
    outputs: frozenset[str] = field(default_factory=frozenset)
    secondary_objectives: frozenset[Objective] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("mechanism needs a name")
        object.__setattr__(self, "inputs", frozenset(self.inputs))
        object.__setattr__(self, "outputs", frozenset(self.outputs))
        object.__setattr__(
            self, "secondary_objectives", frozenset(self.secondary_objectives)
        )

    def serves(self, objective: Objective) -> bool:
        """True when this mechanism's primary or secondary goals match."""
        return objective is self.objective or objective in self.secondary_objectives

    def feeds(self, other: "Mechanism") -> bool:
        """True when this mechanism's outputs intersect ``other``'s inputs."""
        return bool(self.outputs & other.inputs)


def standard_mechanisms() -> dict[Layer, Mechanism]:
    """The paper's three mechanisms with their data dependencies."""
    return {
        Layer.APPLICATION: Mechanism(
            name="data-resolution",
            layer=Layer.APPLICATION,
            objective=Objective.MAXIMIZE_DATA_RESOLUTION,
            inputs=frozenset({"memory_available"}),
            outputs=frozenset({"S_data"}),
            # Reducing the resolution reduces every byte later moved.
            secondary_objectives=frozenset({Objective.MINIMIZE_DATA_MOVEMENT}),
        ),
        Layer.MIDDLEWARE: Mechanism(
            name="analysis-placement",
            layer=Layer.MIDDLEWARE,
            objective=Objective.MINIMIZE_TIME_TO_SOLUTION,
            inputs=frozenset({"S_data", "M"}),
            outputs=frozenset({"placement"}),
            # In-situ placement moves nothing at all.
            secondary_objectives=frozenset({Objective.MINIMIZE_DATA_MOVEMENT}),
        ),
        Layer.RESOURCE: Mechanism(
            name="intransit-allocation",
            layer=Layer.RESOURCE,
            objective=Objective.MAXIMIZE_RESOURCE_UTILIZATION,
            inputs=frozenset({"S_data"}),
            outputs=frozenset({"M"}),
        ),
    }
