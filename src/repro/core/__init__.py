"""The paper's contribution: cross-layer adaptation for coupled workflows.

The conceptual architecture (paper Fig. 2) has three components, all here:

- the **Monitor** (:mod:`repro.core.monitor`) samples runtime status at the
  application, middleware and resource layers and maintains the runtime
  estimators;
- **Adaptation Policies** (:mod:`repro.core.policies`) decide, per layer,
  what to change: data resolution (Eqs. 1-3), analysis placement
  (Eqs. 4-8), staging core count (Eqs. 9-10), plus the combined
  root-leaf cross-layer policy (Section 4.4);
- the **Adaptation Engine** (:mod:`repro.core.engine`) selects and
  executes policies based on user preferences/hints and the operational
  state.
"""

from repro.core.actions import (
    AdaptationAction,
    PlaceAnalysis,
    Placement,
    SetDownsampleFactor,
    SetStagingCores,
)
from repro.core.engine import AdaptationEngine
from repro.core.estimators import RateEstimator, TransferEstimator
from repro.core.mechanisms import Layer, Mechanism
from repro.core.monitor import Monitor
from repro.core.preferences import Objective, UserHints, UserPreferences
from repro.core.state import OperationalState
from repro.core.policies.application import ApplicationLayerPolicy
from repro.core.policies.middleware import MiddlewarePolicy
from repro.core.policies.resource import ResourcePolicy
from repro.core.policies.crosslayer import CrossLayerPolicy

__all__ = [
    "AdaptationAction",
    "AdaptationEngine",
    "ApplicationLayerPolicy",
    "CrossLayerPolicy",
    "Layer",
    "Mechanism",
    "MiddlewarePolicy",
    "Monitor",
    "Objective",
    "OperationalState",
    "PlaceAnalysis",
    "Placement",
    "RateEstimator",
    "ResourcePolicy",
    "SetDownsampleFactor",
    "SetStagingCores",
    "TransferEstimator",
    "UserHints",
    "UserPreferences",
]
