"""Adaptation actions: the typed outputs of the policies.

Each policy returns one action; the workflow driver (or any other host)
applies it through the corresponding mechanism.  Actions are frozen value
objects so policy decisions can be logged and replayed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PolicyError

__all__ = ["AdaptationAction", "PlaceAnalysis", "Placement", "SetDownsampleFactor",
           "SetStagingCores"]


class Placement(enum.Enum):
    """Where a step's analysis executes (the middleware decision D_i).

    ``HYBRID`` is the paper's third placement option ("in-situ, in-transit
    or hybrid (in-situ + in-transit)"): a fraction of the step's analysis
    runs in-situ and the remainder ships to staging.  ``POST_PROCESS`` is
    not a middleware decision -- it marks the traditional
    write-to-disk-and-analyze-later baseline the paper's introduction
    argues against.
    """

    IN_SITU = "in_situ"
    IN_TRANSIT = "in_transit"
    HYBRID = "hybrid"
    POST_PROCESS = "post_process"


@dataclass(frozen=True)
class AdaptationAction:
    """Base class; ``reason`` is a human-readable decision explanation."""

    step: int
    reason: str = ""


@dataclass(frozen=True)
class SetDownsampleFactor(AdaptationAction):
    """Application layer: down-sample this step's output by ``factor``."""

    factor: int = 1

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise PolicyError(f"factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class PlaceAnalysis(AdaptationAction):
    """Middleware layer: run this step's analysis at ``placement``.

    ``insitu_fraction`` is meaningful for ``HYBRID``: the share of the
    step's analysis work (and data) processed in-situ; the remainder is
    transferred and processed in-transit.  It is 1.0 for ``IN_SITU`` and
    0.0 for ``IN_TRANSIT`` by construction.
    """

    placement: Placement = Placement.IN_TRANSIT
    insitu_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.insitu_fraction <= 1.0):
            raise PolicyError(
                f"insitu_fraction must be in [0, 1], got {self.insitu_fraction}"
            )


@dataclass(frozen=True)
class SetStagingCores(AdaptationAction):
    """Resource layer: set the active in-transit core count to ``cores``."""

    cores: int = 1

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise PolicyError(f"cores must be >= 1, got {self.cores}")
