"""Per-layer adaptation policies and the cross-layer coordinator."""

from repro.core.policies.application import ApplicationLayerPolicy
from repro.core.policies.middleware import MiddlewarePolicy
from repro.core.policies.resource import ResourcePolicy
from repro.core.policies.crosslayer import CrossLayerPolicy

__all__ = [
    "ApplicationLayerPolicy",
    "CrossLayerPolicy",
    "MiddlewarePolicy",
    "ResourcePolicy",
]
