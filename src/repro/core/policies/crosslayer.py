"""Combined cross-layer policy: root-leaf coordination (paper Section 4.4).

The three steps of the paper's procedure, implemented over a mechanism
dependency digraph (networkx):

1. **Look up root mechanisms** -- mechanisms whose own objective equals
   the user-defined objective.
2. **Look up leaf mechanisms** -- mechanisms whose outputs (transitively)
   feed a root's inputs ("goes through the formulation of root mechanisms
   and looks for their data dependencies with other layers' mechanisms").
3. **Execute** -- leaves before roots, leaves without dependencies first
   (topological order of the induced subgraph).

For ``MINIMIZE_TIME_TO_SOLUTION`` this yields
``application -> resource -> middleware`` (S_data feeds both M and the
placement decision); for ``MAXIMIZE_RESOURCE_UTILIZATION`` it yields
``application -> resource`` with middleware excluded -- exactly the two
worked examples in the paper.
"""

from __future__ import annotations

import networkx as nx

from repro.core.mechanisms import Layer, Mechanism, standard_mechanisms
from repro.core.preferences import Objective
from repro.errors import PolicyError

__all__ = ["CrossLayerPolicy"]


class CrossLayerPolicy:
    """Computes the mechanism execution plan for a user objective."""

    def __init__(self, mechanisms: dict[Layer, Mechanism] | None = None):
        self.mechanisms = mechanisms or standard_mechanisms()
        self.graph = self._build_graph()

    def _build_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        mechs = list(self.mechanisms.values())
        graph.add_nodes_from(mechs)
        for producer in mechs:
            for consumer in mechs:
                if producer is consumer:
                    continue
                if producer.feeds(consumer):
                    graph.add_edge(producer, consumer)
        if not nx.is_directed_acyclic_graph(graph):
            raise PolicyError("mechanism dependency graph has a cycle")
        return graph

    def roots(self, objective: Objective) -> list[Mechanism]:
        """Step 1: mechanisms sharing (serving) the user's objective."""
        return [m for m in self.mechanisms.values() if m.serves(objective)]

    def leaves(self, roots: list[Mechanism]) -> list[Mechanism]:
        """Step 2: mechanisms transitively feeding any root's inputs."""
        selected: set[Mechanism] = set()
        for root in roots:
            selected |= nx.ancestors(self.graph, root)
        return [m for m in self.mechanisms.values()
                if m in selected and m not in roots]

    def execution_plan(self, objective: Objective) -> list[Mechanism]:
        """Step 3: leaves then roots, in dependency (topological) order.

        Raises :class:`PolicyError` when no mechanism matches the
        objective (the paper's procedure has nothing to anchor on).
        """
        roots = self.roots(objective)
        if not roots:
            raise PolicyError(
                f"no mechanism has objective {objective.value!r}; "
                "cannot select a root"
            )
        chosen = set(roots) | set(self.leaves(roots))
        sub = self.graph.subgraph(chosen)
        order = list(nx.topological_sort(sub))
        # Deterministic tie-breaks: topological generations sorted by name.
        ordered: list[Mechanism] = []
        for generation in nx.topological_generations(sub):
            ordered.extend(sorted(generation, key=lambda m: m.name))
        return ordered if len(ordered) == len(order) else order

    def plan_layers(self, objective: Objective) -> list[Layer]:
        """Convenience: the execution plan as layer names."""
        return [m.layer for m in self.execution_plan(objective)]
