"""Resource-layer policy: adaptive in-transit allocation (paper Section 4.3).

Minimizes the number of staging cores M subject to:

- *pipeline balance* (Eq. 9): in-transit analysis of step ``i`` should
  finish by the time step ``i+1``'s data arrives, i.e.
  ``T_intransit(M, S_data) <= T_sim_{i+1}(N) + T_sd``;
- *memory* (Eq. 10): staging memory behind the chosen cores must hold the
  step's data.

The "initially determine the minimal number of in-transit cores based on
the size of produced simulation data" step is the memory bound; "if the
in-transit processing is estimated to cost more time than the simulation,
more in-transit cores will be assigned" is the balance bound.  M is
clamped to the physical preallocation.
"""

from __future__ import annotations

import math

from repro.core.actions import SetStagingCores
from repro.core.state import OperationalState
from repro.errors import PolicyError

__all__ = ["ResourcePolicy"]


class ResourcePolicy:
    """Chooses the active staging core count M per step."""

    def __init__(self, min_cores: int = 1):
        if min_cores < 1:
            raise PolicyError(f"min_cores must be >= 1, got {min_cores}")
        self.min_cores = min_cores

    def decide(self, state: OperationalState) -> SetStagingCores:
        """Minimal M meeting Eq. 9 and Eq. 10."""
        memory_per_core = state.staging_memory_total / state.staging_total_cores
        if memory_per_core <= 0:
            raise PolicyError("staging memory per core must be positive")

        # Eq. 10: enough cores that their memory share holds S_data.
        m_memory = math.ceil(state.data_bytes / memory_per_core)

        # Eq. 9: T_intransit(M) <= T_sim_{i+1} + T_sd.  The ideal
        # time-to-solution requires *all* pending in-transit work -- the
        # current backlog plus this step's analysis -- to drain before the
        # next step's data arrives, so the backlog (measured in seconds at
        # the current allocation) is converted back to work units and
        # included.
        backlog_work = (
            state.est_intransit_remaining * state.core_rate * state.staging_active_cores
        )
        budget = state.est_next_sim_time + state.est_send_time
        if budget > 0:
            m_balance = math.ceil(
                (state.analysis_work + backlog_work) / (state.core_rate * budget)
            )
        else:
            m_balance = state.staging_total_cores

        m = max(self.min_cores, m_memory, m_balance)
        clamped = min(m, state.staging_total_cores)
        reason = (
            f"memory bound {m_memory}, balance bound {m_balance} "
            f"(budget {budget:.2f}s)"
        )
        if clamped < m:
            reason += f"; clamped from {m} to physical {clamped}"
        return SetStagingCores(step=state.step, cores=clamped, reason=reason)
