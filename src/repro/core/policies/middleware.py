"""Middleware-layer policy: adaptive analysis placement (paper Section 4.2).

Minimizes end-to-end time by deciding, per step, whether analysis runs
in-situ (on the simulation cores, serializing with the simulation) or
in-transit (on staging cores, overlapping the simulation).  The decision
procedure follows the paper's three cases verbatim:

1. memory available at only one location -> place there;
2. memory at both and in-transit cores idle -> in-transit (it overlaps
   the simulation);
3. in-transit cores busy -> compare the *estimated remaining* in-transit
   backlog against the estimated in-situ time (Eq. 7): if in-situ is
   faster, run in-situ; otherwise transfer asynchronously and queue.
"""

from __future__ import annotations

from repro.core.actions import PlaceAnalysis, Placement
from repro.core.preferences import Objective
from repro.core.state import OperationalState

__all__ = ["MiddlewarePolicy"]


class MiddlewarePolicy:
    """Chooses D_i per step: in-situ, in-transit, or (optionally) hybrid.

    With ``hybrid=True`` the policy uses the paper's third placement
    option: when the in-transit pipeline cannot hide the whole step, it
    ships only the share that fits in the hidden window and processes the
    remainder in-situ, instead of the all-or-nothing decision.
    """

    def __init__(self, hybrid: bool = False,
                 objective: Objective = Objective.MINIMIZE_TIME_TO_SOLUTION):
        self.hybrid = bool(hybrid)
        self.objective = objective

    def decide(self, state: OperationalState) -> PlaceAnalysis:
        """Apply the three-case procedure of Section 4.2 / Figure 4."""
        step = state.step
        # Under the minimize-data-movement preference, in-situ placement is
        # chosen whenever it is feasible: it moves nothing at all.
        if (self.objective is Objective.MINIMIZE_DATA_MOVEMENT
                and state.insitu_memory_ok):
            return PlaceAnalysis(
                step=step,
                placement=Placement.IN_SITU,
                insitu_fraction=1.0,
                reason="minimize-data-movement preference: in-situ moves no bytes",
            )
        # Case 1: memory feasibility dominates (Eq. 8).
        if state.insitu_memory_ok and not state.intransit_memory_ok:
            return PlaceAnalysis(
                step=step,
                placement=Placement.IN_SITU,
                insitu_fraction=1.0,
                reason="staging memory cannot hold the step's data",
            )
        if state.intransit_memory_ok and not state.insitu_memory_ok:
            return PlaceAnalysis(
                step=step,
                placement=Placement.IN_TRANSIT,
                reason="insufficient in-situ memory for the analysis",
            )
        if not state.insitu_memory_ok and not state.intransit_memory_ok:
            # Neither fits: the application layer should have reduced the
            # data; process in place (no extra copy is the least-bad option).
            return PlaceAnalysis(
                step=step,
                placement=Placement.IN_SITU,
                insitu_fraction=1.0,
                reason="no memory headroom anywhere; processing in place",
            )
        # Eq. 6 tail condition: the workflow minimizes the max over the two
        # pipelines, so in-transit work that would outlive the remaining
        # simulation (it cannot be hidden behind future steps) extends the
        # end-to-end time by more than an in-situ run would.
        intransit_finish = state.est_intransit_remaining + state.est_intransit_time
        if intransit_finish > state.est_remaining_sim_time + state.est_insitu_time:
            if self.hybrid and state.est_intransit_time > 0:
                fraction = self._hidden_window_fraction(state)
                if 0.0 < fraction < 1.0:
                    return PlaceAnalysis(
                        step=step,
                        placement=Placement.HYBRID,
                        insitu_fraction=fraction,
                        reason=(
                            f"hybrid split: {fraction:.0%} in-situ; the rest "
                            f"fits the hidden window "
                            f"({state.est_remaining_sim_time:.2f}s of simulation left)"
                        ),
                    )
            return PlaceAnalysis(
                step=step,
                placement=Placement.IN_SITU,
                insitu_fraction=1.0,
                reason=(
                    f"in-transit completion ({intransit_finish:.2f}s) outlives the "
                    f"remaining simulation ({state.est_remaining_sim_time:.2f}s); "
                    "cannot be hidden (Eq. 6)"
                ),
            )
        # Case 2: staging idle -> overlap with simulation for free.
        if not state.staging_busy:
            return PlaceAnalysis(
                step=step,
                placement=Placement.IN_TRANSIT,
                reason="in-transit cores idle; analysis overlaps the simulation",
            )
        # Case 3: staging busy -> Eq. 7 estimate comparison.
        if state.est_intransit_remaining < state.est_insitu_time:
            return PlaceAnalysis(
                step=step,
                placement=Placement.IN_TRANSIT,
                reason=(
                    f"backlog {state.est_intransit_remaining:.2f}s clears before "
                    f"in-situ run ({state.est_insitu_time:.2f}s) would finish; "
                    "sending asynchronously"
                ),
            )
        # Note: no hybrid split here.  When the backlog alone exceeds the
        # in-situ time, shipping *any* fraction finishes after a pure
        # in-situ run would, so the balanced split always degenerates to
        # f = 1; hybrid's value lives entirely in the hidden-window case
        # above.
        return PlaceAnalysis(
            step=step,
            placement=Placement.IN_SITU,
            insitu_fraction=1.0,
            reason=(
                f"in-situ ({state.est_insitu_time:.2f}s) beats waiting out the "
                f"in-transit backlog ({state.est_intransit_remaining:.2f}s)"
            ),
        )

    @staticmethod
    def _hidden_window_fraction(state: OperationalState) -> float:
        """Smallest in-situ share whose shipped remainder stays hidden.

        Requires ``backlog + (1 - f) * T_intransit <= remaining sim time``;
        solving for the minimal ``f`` keeps as much work overlapped as the
        hidden window allows.
        """
        window = state.est_remaining_sim_time - state.est_intransit_remaining
        fraction = 1.0 - window / state.est_intransit_time
        return min(1.0, max(0.0, fraction))
