"""Application-layer policy: adaptive data resolution (paper Section 4.1).

Chooses the down-sampling factor ``X`` for the step's output:

    maximize  S_data - f_data_reduce(S_data, X)        (Eq. 1) [*]
    s.t.      Mem_data_reduce(S_data, X) <= Mem_available  (Eq. 2)
              X in {X_1 ... X_n}                        (Eq. 3)

[*] Eq. 1 as printed maximizes the *reduction*; the surrounding text and
Figure 5 make clear the intent is the opposite -- "the adaptive mechanism
correctly selected the minimum down-sampling factor, which produced a
larger data volume at a higher spatial resolution".  We implement the
text's semantics: the smallest feasible factor, i.e. the highest
resolution that fits in memory.

The memory constraint is evaluated on the most loaded rank (reduction is
performed in-situ where the data lives, so the peak rank binds).
"""

from __future__ import annotations

from repro.analysis.downsample import downsample_memory_cost
from repro.core.actions import SetDownsampleFactor
from repro.core.preferences import Objective, UserHints
from repro.core.state import OperationalState
from repro.errors import PolicyError

__all__ = ["ApplicationLayerPolicy"]


class ApplicationLayerPolicy:
    """Selects the down-sampling factor from the hinted set.

    Under the default (resolution-maximizing) objective the smallest
    feasible factor wins; under the minimize-data-movement preference the
    largest acceptable factor wins -- the hint set bounds how much
    resolution the user tolerates losing either way.
    """

    def __init__(self, hints: UserHints,
                 objective: Objective = Objective.MAXIMIZE_DATA_RESOLUTION):
        self.hints = hints
        self.objective = objective

    def decide(self, state: OperationalState) -> SetDownsampleFactor:
        """Pick X for this step given current per-rank memory availability.

        If even the largest acceptable factor does not fit, that largest
        factor is returned (flagged in ``reason``): the reduction must
        still happen with whatever memory headroom exists -- exactly
        Figure 5's step 40, where "the adaptive resolution reaches the
        minimal value".
        """
        factors = sorted(set(self.hints.factors_for_step(state.step)))
        if not factors:
            raise PolicyError(f"no acceptable factors for step {state.step}")
        if self.objective is Objective.MINIMIZE_DATA_MOVEMENT:
            # Largest acceptable factor: its reduce cost is the smallest of
            # the set, so feasibility follows from any factor's feasibility.
            factor = factors[-1]
            return SetDownsampleFactor(
                step=state.step,
                factor=factor,
                reason=(
                    "minimize-data-movement preference: largest acceptable "
                    f"factor {factor}"
                ),
            )
        for factor in factors:
            cost = downsample_memory_cost(state.rank_data_bytes, factor, state.ndim)
            if cost <= state.rank_memory_available:
                return SetDownsampleFactor(
                    step=state.step,
                    factor=factor,
                    reason=(
                        f"smallest feasible factor: reduce cost "
                        f"{cost:.0f} B <= available {state.rank_memory_available:.0f} B"
                    ),
                )
        fallback = factors[-1]
        return SetDownsampleFactor(
            step=state.step,
            factor=fallback,
            reason=(
                f"no hinted factor fits in "
                f"{state.rank_memory_available:.0f} B; forced to max factor "
                f"{fallback}"
            ),
        )

    def memory_required(self, state: OperationalState, factor: int) -> float:
        """Eq. 2's left-hand side for a candidate factor (for diagnostics)."""
        return downsample_memory_cost(state.rank_data_bytes, factor, state.ndim)
