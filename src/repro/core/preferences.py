"""User inputs to the adaptation engine: preferences and hints.

The paper distinguishes *user preferences* ("the objectives that users
expect to achieve, such as minimizing time-to-solution, minimizing data
movement, using highest available data resolution") from *user hints*
("additional information ... toleration to data downsampling, nature of
regions of interest, possible adaptation phases and/or patterns").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PolicyError

__all__ = ["Objective", "UserHints", "UserPreferences"]


class Objective(enum.Enum):
    """The user-selectable optimization objectives."""

    MINIMIZE_TIME_TO_SOLUTION = "minimize_time_to_solution"
    MINIMIZE_DATA_MOVEMENT = "minimize_data_movement"
    MAXIMIZE_RESOURCE_UTILIZATION = "maximize_resource_utilization"
    MAXIMIZE_DATA_RESOLUTION = "maximize_data_resolution"


@dataclass(frozen=True)
class UserPreferences:
    """The user-defined objective driving root selection in Section 4.4."""

    objective: Objective = Objective.MINIMIZE_TIME_TO_SOLUTION


@dataclass(frozen=True)
class UserHints:
    """Hints consumed by the policies.

    ``downsample_phases`` encodes the paper's phase pattern hint: a list
    of ``(first_step, acceptable_factors)`` pairs; the entry with the
    largest ``first_step <= step`` applies.  Section 5.2.1 uses
    ``[(1, (2, 4)), (21, (2, 4, 8, 16))]`` -- {2,4} for the first half of
    a 40-step run, {2,4,8,16} for the second.

    ``entropy_thresholds``/``entropy_factors`` configure the automatic
    (information-theoretic) variant; ``monitor_interval`` is the paper's
    "every specified number of simulation time steps".
    """

    downsample_phases: tuple[tuple[int, tuple[int, ...]], ...] = ((1, (1,)),)
    entropy_thresholds: tuple[float, ...] = ()
    entropy_factors: tuple[int, ...] = ()
    monitor_interval: int = 1

    def __post_init__(self) -> None:
        if not self.downsample_phases:
            raise PolicyError("downsample_phases must not be empty")
        starts = [start for start, _factors in self.downsample_phases]
        if starts != sorted(starts):
            raise PolicyError(f"phase start steps must be sorted: {starts}")
        for start, factors in self.downsample_phases:
            if not factors:
                raise PolicyError(f"phase at step {start} has no factors")
            if any(f < 1 for f in factors):
                raise PolicyError(f"factors must be >= 1: {factors}")
        if self.entropy_thresholds and (
            len(self.entropy_factors) != len(self.entropy_thresholds) + 1
        ):
            raise PolicyError(
                "entropy_factors must have one more entry than entropy_thresholds"
            )
        if self.monitor_interval < 1:
            raise PolicyError(
                f"monitor_interval must be >= 1, got {self.monitor_interval}"
            )

    def factors_for_step(self, step: int) -> tuple[int, ...]:
        """The acceptable down-sampling factor set at ``step``."""
        chosen = self.downsample_phases[0][1]
        for start, factors in self.downsample_phases:
            if step >= start:
                chosen = factors
            else:
                break
        return chosen
