"""The Monitor: runtime status capture across the three layers.

"The Monitor captures runtime status information at the different layers
(application, middleware, and resource) and uses it to characterize the
current operational state of the system and application."  Concretely it

- learns processing/transfer rates from completed work (EMA estimators,
  seeded from machine calibration -- the role Chombo's embedded
  performance tools play in the paper);
- tracks recent simulation step times for the T_{i+1}_sim estimate;
- assembles :class:`~repro.core.state.OperationalState` snapshots on its
  sampling interval ("periodically (e.g., after every specified number of
  simulation time steps) sampled").
"""

from __future__ import annotations

import math

from repro.core.estimators import RateEstimator, TransferEstimator
from repro.core.state import OperationalState
from repro.errors import PolicyError
from repro.observability.events import (
    MONITOR_SAMPLE,
    TRIGGER_FIRED,
    TRIGGER_RECALIBRATED,
    TRIGGER_SUPPRESSED,
)
from repro.observability.ledger import PredictionLedger
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer

__all__ = ["Monitor"]


class Monitor:
    """Collects observations and produces operational-state snapshots.

    ``tracer``, ``metrics`` and ``ledger`` are optional observability
    hooks: when injected, every snapshot emits a ``monitor.sample``
    event, the observation intake publishes counters/timers, and each
    next-step-time forecast lands in the prediction ledger to be paired
    with the step duration actually observed; when left ``None`` (the
    default) instrumentation costs one ``is not None`` test.

    ``trigger`` is an optional
    :class:`~repro.workflow.triggers.TriggerPolicy`: when injected, the
    host asks :meth:`evaluate_trigger` instead of the fixed
    :meth:`should_sample` cadence, trigger verdicts surface as
    ``trigger.fired``/``trigger.suppressed`` events, and
    :meth:`recalibrate_trigger` closes the self-calibration loop
    (threshold + estimator-bias adjustment from ledger feedback,
    emitted as ``trigger.recalibrated``).  Left ``None``, sampling is
    bit-identical to a build without the trigger subsystem.

    ``profiler`` is an optional :class:`~repro.observability.Profiler`:
    when injected, every :meth:`snapshot` runs under a
    ``monitor.snapshot`` span and every :meth:`evaluate_trigger` under
    ``monitor.trigger`` -- real wall-clock cost, not simulated time.
    """

    def __init__(
        self,
        core_rate: float,
        network_bandwidth: float,
        network_latency: float = 0.0,
        interval: int = 1,
        analysis_rate_hint: float | None = None,
        estimate_bias: float = 1.0,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        ledger: PredictionLedger | None = None,
        trigger=None,
        profiler=None,
    ):
        if interval < 1:
            raise PolicyError(f"interval must be >= 1, got {interval}")
        if estimate_bias <= 0:
            raise PolicyError(f"estimate_bias must be positive, got {estimate_bias}")
        self.interval = int(interval)
        rate = analysis_rate_hint if analysis_rate_hint is not None else core_rate
        self.insitu_rate = RateEstimator(rate)
        self.intransit_rate = RateEstimator(rate)
        self.transfer = TransferEstimator(network_bandwidth, network_latency)
        self._sim_time_ema: float | None = None
        self._alpha = 0.3
        # Systematic misestimation injector for robustness studies: every
        # analysis-time estimate handed to the policies is multiplied by
        # this factor (1.0 = unbiased).
        self.estimate_bias = float(estimate_bias)
        self.tracer = tracer
        self.metrics = metrics
        self.ledger = ledger
        self.trigger = trigger
        self.profiler = profiler
        # Cached reusable handles: snapshot/trigger run every sampled step,
        # and a per-call profiler.span() lookup is measurable there.
        if profiler is None:
            self._snapshot_span = self._trigger_span = None
        else:
            self._snapshot_span = profiler.span("monitor.snapshot")
            self._trigger_span = profiler.span("monitor.trigger")
        # Step whose next-sim-time forecast is awaiting its realization.
        self._sim_pred_step: int | None = None
        # Most recent off-interval sample the host forced (fault recovery);
        # the fixed cadence restarts from it rather than double-sampling.
        self._forced_at: int | None = None
        self.history: list[OperationalState] = []

    # -- sampling cadence -----------------------------------------------------

    def should_sample(self, step: int) -> bool:
        """True when the adaptation engine should run at ``step``."""
        if step % self.interval != 0:
            return False
        if self._forced_at is not None and step - self._forced_at < self.interval:
            # A forced off-interval sample (post-restore re-sizing) already
            # refreshed the state inside this window; re-sampling on the
            # very next modulo hit would double-pay the snapshot.
            return False
        return True

    def note_forced_sample(self, step: int) -> None:
        """The host sampled off-interval (fault recovery); restart the
        cadence from ``step`` so the next modulo hit is not a duplicate."""
        self._forced_at = int(step)

    def evaluate_trigger(self, indicators):
        """Ask the injected trigger whether ``indicators`` warrant a full
        adaptation; publishes the verdict as events and metrics."""
        span = self._trigger_span
        if span is not None:
            with span:
                return self._evaluate_trigger(indicators)
        return self._evaluate_trigger(indicators)

    def _evaluate_trigger(self, indicators):
        decision = self.trigger.should_adapt(indicators)
        if self.metrics is not None:
            if decision.budget_spent:
                self.metrics.counter("monitor.sampling_budget_used").inc(
                    decision.budget_spent
                )
            if decision.fire:
                self.metrics.counter("monitor.trigger_fires").inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                TRIGGER_FIRED if decision.fire else TRIGGER_SUPPRESSED,
                step=indicators.step,
                policy=decision.policy,
                reason=decision.reason,
                value=decision.value,
                budget_spent=decision.budget_spent,
            )
        return decision

    def recalibrate_trigger(self, feedback) -> dict[str, tuple[float, float]]:
        """Close the self-calibration loop at ``feedback.step``.

        Feeds measured estimator bias/regret back into the trigger's
        thresholds (:meth:`TriggerPolicy.recalibrate`) and this
        Monitor's systematic ``estimate_bias`` correction; applied
        changes are returned and emitted as one ``trigger.recalibrated``
        event.  No-op (empty dict) when nothing needed adjusting.
        """
        changes: dict[str, tuple[float, float]] = {}
        if self.trigger is not None:
            changes.update(self.trigger.recalibrate(feedback) or {})
        adjusted = self._recalibrate_estimate_bias(feedback)
        if adjusted is not None:
            changes["estimate_bias"] = adjusted
        if not changes:
            return {}
        if self.tracer is not None and self.tracer.enabled:
            fields = {}
            for key, (old, new) in sorted(changes.items()):
                fields[f"{key}_old"] = old
                fields[f"{key}_new"] = new
            self.tracer.emit(
                TRIGGER_RECALIBRATED,
                step=feedback.step,
                policy=getattr(self.trigger, "name", None),
                flip_fraction=feedback.flip_fraction,
                regret_seconds=feedback.regret_seconds,
                **fields,
            )
        return changes

    def _recalibrate_estimate_bias(self, feedback) -> tuple[float, float] | None:
        """Walk ``estimate_bias`` toward cancelling the measured bias.

        A positive ledger bias means the analysis-time estimators
        over-predict; half a multiplicative step toward the exact
        correction keeps the loop stable against noisy early feedback.
        """
        bias_pct = feedback.estimator_bias_pct("insitu_time", "intransit_time")
        if abs(bias_pct) < 2.0:
            return None
        fraction = min(9.0, max(-0.9, bias_pct / 100.0))
        correction = 1.0 / (1.0 + fraction)
        old = self.estimate_bias
        new = min(4.0, max(0.25, old * math.sqrt(correction)))
        if new == old:
            return None
        self.estimate_bias = new
        return (old, new)

    # -- observations ----------------------------------------------------------

    def observe_sim_step(self, seconds: float) -> None:
        """Record a completed simulation step's duration."""
        if seconds <= 0:
            raise PolicyError(f"step duration must be positive, got {seconds}")
        if self.ledger is not None and self._sim_pred_step is not None:
            self.ledger.resolve("sim_step_time", self._sim_pred_step, seconds)
            self._sim_pred_step = None
        if self._sim_time_ema is None:
            self._sim_time_ema = seconds
        else:
            self._sim_time_ema = (
                (1 - self._alpha) * self._sim_time_ema + self._alpha * seconds
            )
        if self.metrics is not None:
            self.metrics.timer("monitor.sim_step_seconds").observe(seconds)

    def observe_insitu(self, work_units: float, cores: int, seconds: float) -> None:
        """Record a completed in-situ analysis."""
        self.insitu_rate.observe(work_units, cores, seconds)
        if self.metrics is not None:
            self.metrics.counter("monitor.insitu_observations").inc()

    def observe_intransit(self, work_units: float, cores: int, seconds: float) -> None:
        """Record a completed in-transit analysis."""
        self.intransit_rate.observe(work_units, cores, seconds)
        if self.metrics is not None:
            self.metrics.counter("monitor.intransit_observations").inc()

    def observe_transfer(self, nbytes: float, seconds: float) -> None:
        """Record a completed staging transfer."""
        accepted = self.transfer.observe(nbytes, seconds)
        if self.metrics is not None:
            self.metrics.counter("monitor.transfer_observations").inc()
            if not accepted and nbytes > 0:
                self.metrics.counter("monitor.transfer_discards").inc()

    # -- estimates -------------------------------------------------------------

    @property
    def expected_sim_step_time(self) -> float:
        """EMA of recent step times (T_{i+1}_sim); 0 before any observation."""
        return self._sim_time_ema or 0.0

    def estimate_insitu(self, work_units: float, cores: int) -> float:
        """T_insitu(N, S_data)."""
        return self.estimate_bias * self.insitu_rate.estimate(work_units, cores)

    def estimate_intransit(self, work_units: float, cores: int) -> float:
        """T_intransit(M, S_data)."""
        return self.estimate_bias * self.intransit_rate.estimate(work_units, cores)

    def estimate_send(self, nbytes: float) -> float:
        """T_sd(S_data)."""
        return self.transfer.estimate(nbytes)

    # -- snapshot assembly --------------------------------------------------------

    def snapshot(
        self,
        step: int,
        ndim: int,
        data_bytes: float,
        rank_data_bytes: float,
        rank_memory_available: float,
        analysis_work: float,
        sim_cores: int,
        staging_active_cores: int,
        staging_total_cores: int,
        staging_memory_total: float,
        staging_memory_used: float,
        staging_busy: bool,
        est_intransit_remaining: float,
        insitu_memory_ok: bool,
        core_rate: float,
        steps_remaining: int | None = None,
        staging_reachable: bool = True,
    ) -> OperationalState:
        """Build (and record) the operational state for ``step``."""
        kwargs = dict(
            step=step,
            ndim=ndim,
            data_bytes=data_bytes,
            rank_data_bytes=rank_data_bytes,
            rank_memory_available=rank_memory_available,
            analysis_work=analysis_work,
            sim_cores=sim_cores,
            staging_active_cores=staging_active_cores,
            staging_total_cores=staging_total_cores,
            staging_memory_total=staging_memory_total,
            staging_memory_used=staging_memory_used,
            staging_busy=staging_busy,
            est_intransit_remaining=est_intransit_remaining,
            insitu_memory_ok=insitu_memory_ok,
            core_rate=core_rate,
            steps_remaining=steps_remaining,
            staging_reachable=staging_reachable,
        )
        span = self._snapshot_span
        if span is not None:
            with span:
                return self._snapshot(**kwargs)
        return self._snapshot(**kwargs)

    def _snapshot(
        self,
        step: int,
        ndim: int,
        data_bytes: float,
        rank_data_bytes: float,
        rank_memory_available: float,
        analysis_work: float,
        sim_cores: int,
        staging_active_cores: int,
        staging_total_cores: int,
        staging_memory_total: float,
        staging_memory_used: float,
        staging_busy: bool,
        est_intransit_remaining: float,
        insitu_memory_ok: bool,
        core_rate: float,
        steps_remaining: int | None = None,
        staging_reachable: bool = True,
    ) -> OperationalState:
        intransit_memory_ok = (
            staging_memory_used + data_bytes
            <= staging_memory_total * (1 + 1e-9)
        )
        state = OperationalState(
            step=step,
            ndim=ndim,
            core_rate=core_rate,
            data_bytes=data_bytes,
            rank_data_bytes=rank_data_bytes,
            rank_memory_available=rank_memory_available,
            analysis_work=analysis_work,
            sim_cores=sim_cores,
            staging_active_cores=staging_active_cores,
            est_insitu_time=self.estimate_insitu(analysis_work, sim_cores),
            est_intransit_time=self.estimate_intransit(
                analysis_work, staging_active_cores
            ),
            est_intransit_remaining=est_intransit_remaining,
            staging_busy=staging_busy,
            insitu_memory_ok=insitu_memory_ok,
            intransit_memory_ok=intransit_memory_ok,
            staging_total_cores=staging_total_cores,
            staging_memory_total=staging_memory_total,
            staging_memory_used=staging_memory_used,
            est_next_sim_time=self.expected_sim_step_time,
            est_send_time=self.estimate_send(data_bytes),
            est_remaining_sim_time=(
                float("inf")
                if steps_remaining is None
                else steps_remaining * self.expected_sim_step_time
            ),
            staging_reachable=staging_reachable,
        )
        self.history.append(state)
        if self.ledger is not None and state.est_next_sim_time > 0:
            # Forecast the *next* step's duration; the next observed step
            # resolves it.  An unresolved older forecast (off-sample gap)
            # stays pending rather than being paired with the wrong step.
            if self._sim_pred_step is None:
                self.ledger.predict(
                    "sim_step_time", step, state.est_next_sim_time,
                    mechanism="monitor",
                )
                self._sim_pred_step = step
        if self.metrics is not None:
            self.metrics.counter("monitor.samples").inc()
            if self.trigger is not None:
                self.metrics.counter("monitor.samples_taken").inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                MONITOR_SAMPLE,
                step=step,
                data_bytes=data_bytes,
                analysis_work=analysis_work,
                staging_active_cores=staging_active_cores,
                staging_busy=staging_busy,
                est_insitu_time=state.est_insitu_time,
                est_intransit_time=state.est_intransit_time,
                est_intransit_remaining=est_intransit_remaining,
                est_next_sim_time=state.est_next_sim_time,
                est_send_time=state.est_send_time,
                insitu_memory_ok=insitu_memory_ok,
                intransit_memory_ok=intransit_memory_ok,
            )
        return state
