"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro fig7
    python -m repro table2
    python -m repro ablations
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

__all__ = ["main"]


def _fig1() -> str:
    from repro.experiments import fig1_memory

    return fig1_memory.render(fig1_memory.run_fig1())


def _fig4() -> str:
    from repro.experiments import fig4_timeline

    return fig4_timeline.render(fig4_timeline.run_fig4())


def _fig5() -> str:
    from repro.experiments import fig5_app_layer

    return fig5_app_layer.render(fig5_app_layer.run_fig5())


def _fig6() -> str:
    from repro.experiments import fig6_entropy

    return fig6_entropy.render(fig6_entropy.run_fig6())


def _fig7() -> str:
    from repro.experiments import fig7_placement

    return fig7_placement.render(fig7_placement.run_fig7())


def _fig8() -> str:
    from repro.experiments import fig8_data_movement

    return fig8_data_movement.render(fig8_data_movement.run_fig8())


def _fig9() -> str:
    from repro.experiments import fig9_resource

    return fig9_resource.render(fig9_resource.run_fig9())


def _fig10() -> str:
    from repro.experiments import fig10_global

    return fig10_global.render(fig10_global.run_fig10())


def _fig11() -> str:
    from repro.experiments import fig11_global_movement

    return fig11_global_movement.render(fig11_global_movement.run_fig11())


def _table2() -> str:
    from repro.experiments import table2_utilization

    return table2_utilization.render(table2_utilization.run_table2())


def _ablations() -> str:
    from repro.experiments import ablations

    return ablations.render_all()


def _objectives() -> str:
    from repro.experiments import objectives

    return objectives.render(objectives.run_objectives())


EXPERIMENTS: dict[str, tuple[str, Callable[[], str]]] = {
    "fig1": ("peak-memory distribution, Polytropic Gas", _fig1),
    "fig4": ("placement decision timeline", _fig4),
    "fig5": ("adaptive spatial resolution vs memory", _fig5),
    "fig6": ("entropy-based down-sampling fidelity", _fig6),
    "fig7": ("end-to-end time: static vs adaptive placement", _fig7),
    "fig8": ("data movement: in-transit vs adaptive", _fig8),
    "fig9": ("adaptive staging allocation + Eq. 12", _fig9),
    "fig10": ("global cross-layer vs local adaptation", _fig10),
    "fig11": ("data movement: global vs local", _fig11),
    "table2": ("staging core usage histogram", _table2),
    "ablations": ("design-choice sweeps", _ablations),
    "objectives": ("user-preference trade-off comparison", _objectives),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the experiments of Jin et al., SC'13.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', or 'list'",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _fn) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    if args.experiment == "all":
        for name, (_description, fn) in EXPERIMENTS.items():
            print(f"\n### {name} " + "#" * max(0, 66 - len(name)))
            print(fn())
        return 0

    entry = EXPERIMENTS.get(args.experiment)
    if entry is None:
        print(f"unknown experiment {args.experiment!r}; try 'list'",
              file=sys.stderr)
        return 2
    print(entry[1]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
