"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro fig7
    python -m repro table2
    python -m repro ablations
    python -m repro all
    python -m repro run-all --jobs 4
    python -m repro run-all --jobs 2 --only fig6,fig9
    python -m repro trace --steps 20 --jsonl trace.jsonl
    python -m repro audit --steps 20 --export run.json
    python -m repro audit --diff a.json b.json
    python -m repro bench-diff benchmarks/BENCH_old.json benchmarks/BENCH_new.json
    python -m repro faults --list
    python -m repro faults blackout --steps 20
    python -m repro triggers --list
    python -m repro triggers --steps 20 --scenario blackout
    python -m repro profile --steps 20
    python -m repro profile --budgets benchmarks/budgets.json
    python -m repro tenants --list
    python -m repro tenants --policy smallest --tenants 4
    python -m repro tenants --smoke

``run-all`` regenerates experiments through the parallel sweep runner
(:mod:`repro.experiments.parallel`): each experiment's parameter grid is
fanned over ``--jobs`` worker processes sharing the disk cache, and the
grid-index-ordered merge makes the output bit-identical to ``--jobs 1``
(and to the serial ``all`` command's per-experiment sections).  See
``docs/performance.md``.

``trace`` is the observability workflow: it replays the quickstart
workload with a :class:`~repro.observability.Tracer` and
:class:`~repro.observability.MetricsRegistry` injected, prints the
per-step decision timeline and the sim-vs-staging occupancy Gantt, and
optionally writes the full event stream as JSON Lines.

``audit`` replays the same workload with a
:class:`~repro.observability.PredictionLedger` injected and prints the
calibration report: per-estimator bias/MAPE/convergence plus the
counterfactual placement regret.  ``--export`` writes a versioned JSON
snapshot, ``--prometheus`` writes the text exposition format, and
``--diff A B`` compares two exported snapshots (estimate-error drift,
regret delta, decision flips) without running anything.

``bench-diff`` compares two benchmark wall-time snapshots
(``benchmarks/BENCH_<rev>.json``, written at the end of a ``pytest
benchmarks`` session) and prints the per-benchmark drift, slowest
first, plus the aggregate speedup.

``faults`` runs a named fault scenario (:data:`repro.faults.SCENARIOS`)
against the quickstart workload: it first replays the workload
fault-free to measure the baseline end-to-end time (which also scales
the scenario's fault timings), then replays it with the seeded
:class:`~repro.faults.FaultPlan` injected, and prints the
time-to-solution and data-movement deltas plus the fault/recovery
timeline.  See ``docs/faults.md``.

``triggers`` compares every registered trigger-detection policy
(:data:`repro.workflow.triggers.TRIGGER_POLICIES`) on one workload --
fault-free or under a named fault scenario -- and prints the
monitoring-overhead vs adaptation-lag table (the interactive face of
the ``fig_triggers`` sweep).  See ``docs/triggers.md``.

``tenants`` admits several coupled workflows onto ONE shared simulated
machine through the multi-tenant service (:mod:`repro.service`) and
prints the fleet SLO table: per-policy time-to-solution degradation vs
the solo baseline, queue waits, starvations and Jain fairness (the
interactive face of the ``fig_tenants`` sweep).  ``--smoke`` runs the
short two-tenant point the CI ``tenant-smoke`` job checks.  See
``docs/service.md``.

``profile`` replays the quickstart workload with a
:class:`~repro.observability.Profiler` injected and prints the span
tree (call counts, cumulative and self wall-clock seconds per span
path), the top-N hot list by self time, and the fraction of measured
wall time the named spans attribute.  ``--budgets`` additionally
checks the collected profile against a ``benchmarks/budgets.json``
manifest and exits non-zero on any ceiling violation (the CI
``profile-smoke`` job's check).  See ``docs/profiling.md``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable
from pathlib import Path

__all__ = ["SUBCOMMANDS", "main"]

#: Non-experiment subcommands (the docs-consistency test keys off this).
SUBCOMMANDS = ("list", "all", "run-all", "trace", "audit", "bench-diff",
               "faults", "triggers", "profile", "tenants")


def _fig1() -> str:
    from repro.experiments import fig1_memory

    return fig1_memory.render(fig1_memory.run_fig1())


def _fig4() -> str:
    from repro.experiments import fig4_timeline

    return fig4_timeline.render(fig4_timeline.run_fig4())


def _fig5() -> str:
    from repro.experiments import fig5_app_layer

    return fig5_app_layer.render(fig5_app_layer.run_fig5())


def _fig6() -> str:
    from repro.experiments import fig6_entropy

    return fig6_entropy.render(fig6_entropy.run_fig6())


def _fig7() -> str:
    from repro.experiments import fig7_placement

    return fig7_placement.render(fig7_placement.run_fig7())


def _fig8() -> str:
    from repro.experiments import fig8_data_movement

    return fig8_data_movement.render(fig8_data_movement.run_fig8())


def _fig9() -> str:
    from repro.experiments import fig9_resource

    return fig9_resource.render(fig9_resource.run_fig9())


def _fig10() -> str:
    from repro.experiments import fig10_global

    return fig10_global.render(fig10_global.run_fig10())


def _fig11() -> str:
    from repro.experiments import fig11_global_movement

    return fig11_global_movement.render(fig11_global_movement.run_fig11())


def _table2() -> str:
    from repro.experiments import table2_utilization

    return table2_utilization.render(table2_utilization.run_table2())


def _ablations() -> str:
    from repro.experiments import ablations

    return ablations.render_all()


def _objectives() -> str:
    from repro.experiments import objectives

    return objectives.render(objectives.run_objectives())


def _fig_triggers() -> str:
    from repro.experiments import fig_triggers

    return fig_triggers.render(fig_triggers.run_fig_triggers())


def _fig_tenants() -> str:
    from repro.experiments import fig_tenants

    return fig_tenants.render(fig_tenants.run_fig_tenants())


EXPERIMENTS: dict[str, tuple[str, Callable[[], str]]] = {
    "fig1": ("peak-memory distribution, Polytropic Gas", _fig1),
    "fig4": ("placement decision timeline", _fig4),
    "fig5": ("adaptive spatial resolution vs memory", _fig5),
    "fig6": ("entropy-based down-sampling fidelity", _fig6),
    "fig7": ("end-to-end time: static vs adaptive placement", _fig7),
    "fig8": ("data movement: in-transit vs adaptive", _fig8),
    "fig9": ("adaptive staging allocation + Eq. 12", _fig9),
    "fig10": ("global cross-layer vs local adaptation", _fig10),
    "fig11": ("data movement: global vs local", _fig11),
    "table2": ("staging core usage histogram", _table2),
    "ablations": ("design-choice sweeps", _ablations),
    "objectives": ("user-preference trade-off comparison", _objectives),
    "fig_triggers": ("monitoring overhead vs adaptation lag across "
                     "trigger policies", _fig_triggers),
    "fig_tenants": ("multi-tenant contention across admission policies",
                    _fig_tenants),
}


def _quickstart(mode: str, steps: int, seed: int, estimator_bias: float = 1.0):
    """The quickstart workload + config shared by ``trace`` and ``audit``."""
    from repro.hpc.systems import titan
    from repro.workflow import Mode, WorkflowConfig
    from repro.workload import SyntheticAMRConfig, synthetic_amr_trace

    trace = synthetic_amr_trace(
        SyntheticAMRConfig(
            steps=steps,
            nranks=1024,
            base_cells=5e7,
            sim_cost_per_cell=8.0,
            growth=2.0,
            analysis_growth_exponent=0.5,
            seed=seed,
        ),
        name="trace-quickstart",
    )
    config = WorkflowConfig(
        mode=Mode(mode),
        sim_cores=1024,
        staging_cores=64,
        spec=titan(),
        analysis_cost_per_cell=0.45,
        estimator_bias=estimator_bias,
    )
    return config, trace


def _run_all_command(argv: list[str]) -> int:
    """The ``repro run-all`` subcommand: the parallel sweep runner."""
    parser = argparse.ArgumentParser(
        prog="python -m repro run-all",
        description="Regenerate experiments through the parallel sweep "
        "runner: parameter grids fan out over --jobs worker processes "
        "sharing the disk cache, and results merge in grid order so the "
        "output is bit-identical to --jobs 1.",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default: 1 = in-process)")
    parser.add_argument("--only", default=None, metavar="IDS",
                        help="comma-separated experiment ids to run "
                        "(default: all; see 'list')")
    args = parser.parse_args(argv)

    from repro.errors import ExperimentError
    from repro.experiments.parallel import run_all
    from repro.observability import MetricsRegistry

    only = None
    if args.only is not None:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        if not only:
            parser.error("--only needs at least one experiment id")

    metrics = MetricsRegistry()
    try:
        outcomes = run_all(only, jobs=args.jobs, metrics=metrics)
    except ExperimentError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    for outcome in outcomes:
        print(f"\n### {outcome.name} " + "#" * max(0, 66 - len(outcome.name)))
        print(outcome.text)

    total_points = sum(outcome.points for outcome in outcomes)
    total_seconds = sum(outcome.seconds for outcome in outcomes)
    print(f"\nran {len(outcomes)} experiment(s), {total_points} grid "
          f"point(s) with jobs={args.jobs} "
          f"(compute time {total_seconds:.2f}s)")
    print("\n## Cache metrics " + "#" * 54)
    print(metrics.render())
    return 0


def _trace_command(argv: list[str]) -> int:
    """The ``repro trace`` subcommand: an instrumented quickstart replay."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Replay the quickstart workload with cross-layer "
        "tracing enabled and render the decision timeline.",
    )
    parser.add_argument("--mode", default="global",
                        choices=[m.value for m in _trace_modes()],
                        help="execution mode (default: global)")
    parser.add_argument("--steps", type=int, default=20,
                        help="workload length in steps (default: 20)")
    parser.add_argument("--seed", type=int, default=42,
                        help="synthetic workload seed (default: 42)")
    parser.add_argument("--jsonl", metavar="PATH", default=None,
                        help="also write the raw event stream as JSON Lines")
    parser.add_argument("--width", type=int, default=72,
                        help="Gantt width in columns (default: 72)")
    args = parser.parse_args(argv)

    from repro.observability import (
        MetricsRegistry,
        Tracer,
        decision_timeline,
        occupancy_gantt,
    )
    from repro.workflow import run_workflow

    config, trace = _quickstart(args.mode, args.steps, args.seed)
    tracer = Tracer()
    metrics = MetricsRegistry()
    result = run_workflow(config, trace, tracer=tracer, metrics=metrics)

    print(f"mode={config.mode.value}  steps={len(trace)}  "
          f"end-to-end={result.end_to_end_seconds:.2f}s  "
          f"overhead={result.overhead_seconds:.2f}s")
    print("\n## Decision timeline " + "#" * 50)
    print(decision_timeline(tracer))
    print("\n## Occupancy (sim vs in-transit) " + "#" * 38)
    print(occupancy_gantt(tracer, width=args.width))
    print("\n## Metrics " + "#" * 60)
    print(metrics.render())
    if args.jsonl is not None:
        Path(args.jsonl).parent.mkdir(parents=True, exist_ok=True)
        tracer.to_jsonl(args.jsonl)
        print(f"\nwrote {len(tracer)} events to {args.jsonl}")
    return 0


def _audit_command(argv: list[str]) -> int:
    """The ``repro audit`` subcommand: calibration + regret report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro audit",
        description="Replay the quickstart workload with a prediction "
        "ledger injected and print the calibration report (per-estimator "
        "bias/MAPE, EMA convergence, counterfactual placement regret); "
        "or, with --diff, compare two exported snapshots.",
    )
    parser.add_argument("--mode", default="global",
                        choices=[m.value for m in _trace_modes()],
                        help="execution mode (default: global)")
    parser.add_argument("--steps", type=int, default=20,
                        help="workload length in steps (default: 20)")
    parser.add_argument("--seed", type=int, default=42,
                        help="synthetic workload seed (default: 42)")
    parser.add_argument("--bias", type=float, default=1.0,
                        help="multiply every analysis-time estimate by "
                        "this factor (default: 1.0 = unbiased)")
    parser.add_argument("--export", metavar="PATH", default=None,
                        help="write a versioned JSON snapshot of the run")
    parser.add_argument("--prometheus", metavar="PATH", default=None,
                        help="write the metrics + ledger series in "
                        "Prometheus text exposition format")
    parser.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                        help="compare two exported snapshots instead of "
                        "running the workload")
    args = parser.parse_args(argv)

    from repro.observability import (
        MetricsRegistry,
        PredictionLedger,
        calibration_report,
        diff_snapshots,
        export_snapshot,
        load_snapshot,
        prometheus_text,
        render_diff,
    )

    if args.diff is not None:
        a, b = (load_snapshot(p) for p in args.diff)
        print(render_diff(diff_snapshots(a, b)))
        return 0

    from repro.workflow import run_workflow

    config, trace = _quickstart(args.mode, args.steps, args.seed,
                                estimator_bias=args.bias)
    ledger = PredictionLedger()
    metrics = MetricsRegistry()
    result = run_workflow(config, trace, metrics=metrics, ledger=ledger)

    print(f"mode={config.mode.value}  steps={len(trace)}  "
          f"bias={args.bias:g}  "
          f"end-to-end={result.end_to_end_seconds:.2f}s")
    print("\n## Calibration " + "#" * 56)
    print(calibration_report(ledger))
    label = f"{config.mode.value} steps={len(trace)} seed={args.seed} " \
            f"bias={args.bias:g}"
    if args.export is not None:
        export_snapshot(metrics=metrics, ledger=ledger, label=label,
                        path=args.export)
        print(f"\nwrote snapshot to {args.export}")
    if args.prometheus is not None:
        path = Path(args.prometheus)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(prometheus_text(metrics=metrics, ledger=ledger))
        print(f"wrote Prometheus exposition to {args.prometheus}")
    return 0


def _bench_diff_command(argv: list[str]) -> int:
    """The ``repro bench-diff`` subcommand: compare two perf snapshots."""
    parser = argparse.ArgumentParser(
        prog="python -m repro bench-diff",
        description="Compare two benchmark wall-time snapshots "
        "(benchmarks/BENCH_<rev>.json, written by a `pytest benchmarks` "
        "session) and print per-benchmark drift, slowest first.",
    )
    parser.add_argument("snapshot_a", help="baseline snapshot path")
    parser.add_argument("snapshot_b", help="comparison snapshot path")
    args = parser.parse_args(argv)

    from repro.observability import diff_bench, render_bench_diff

    print(render_bench_diff(diff_bench(args.snapshot_a, args.snapshot_b)))
    return 0


def _faults_command(argv: list[str]) -> int:
    """The ``repro faults`` subcommand: fault-scenario replay + deltas."""
    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Run a named fault scenario against the quickstart "
        "workload and report the time-to-solution delta against the "
        "fault-free baseline, plus the fault/recovery timeline.",
    )
    parser.add_argument("scenario", nargs="?", default=None,
                        help="scenario name (see --list)")
    parser.add_argument("--list", action="store_true", dest="list_scenarios",
                        help="list the available scenarios and exit")
    parser.add_argument("--mode", default="global",
                        choices=[m.value for m in _trace_modes()],
                        help="execution mode (default: global)")
    parser.add_argument("--steps", type=int, default=20,
                        help="workload length in steps (default: 20)")
    parser.add_argument("--seed", type=int, default=42,
                        help="synthetic workload seed (default: 42)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="fault scenario seed (default: 0)")
    parser.add_argument("--jsonl", metavar="PATH", default=None,
                        help="also write the faulted run's event stream "
                        "as JSON Lines")
    args = parser.parse_args(argv)

    from repro.faults import SCENARIOS, build_scenario

    if args.list_scenarios:
        width = max(len(name) for name in SCENARIOS)
        for name, (description, _builder) in sorted(SCENARIOS.items()):
            print(f"{name.ljust(width)}  {description}")
        return 0
    if args.scenario is None:
        parser.error("a scenario name is required (or use --list)")

    from repro.observability import MetricsRegistry, Tracer, fault_timeline
    from repro.workflow import run_workflow

    # Fault-free baseline: measures the deltas AND provides the horizon
    # the scenario's relative fault timings are scaled by.
    config, trace = _quickstart(args.mode, args.steps, args.seed)
    baseline = run_workflow(config, trace)
    plan = build_scenario(
        args.scenario,
        horizon=baseline.end_to_end_seconds,
        seed=args.fault_seed,
        staging_cores=config.staging_cores,
        steps=len(trace),
    )

    config, trace = _quickstart(args.mode, args.steps, args.seed)
    tracer = Tracer()
    metrics = MetricsRegistry()
    result = run_workflow(config, trace, tracer=tracer, metrics=metrics,
                          faults=plan)

    delta_t = result.end_to_end_seconds - baseline.end_to_end_seconds
    delta_pct = (
        100.0 * delta_t / baseline.end_to_end_seconds
        if baseline.end_to_end_seconds > 0 else 0.0
    )
    delta_bytes = result.data_moved_bytes - baseline.data_moved_bytes
    print(f"scenario={args.scenario}  mode={config.mode.value}  "
          f"steps={len(trace)}  fault-seed={args.fault_seed}")
    print("\n## Fault plan " + "#" * 57)
    print(plan.describe())
    print("\n## Time to solution " + "#" * 51)
    print(f"fault-free : {baseline.end_to_end_seconds:12.2f} s")
    print(f"faulted    : {result.end_to_end_seconds:12.2f} s")
    print(f"delta      : {delta_t:+12.2f} s ({delta_pct:+.1f}%)")
    print("\n## Data movement " + "#" * 54)
    print(f"fault-free : {baseline.data_moved_bytes:15.0f} B")
    print(f"faulted    : {result.data_moved_bytes:15.0f} B")
    print(f"delta      : {delta_bytes:+15.0f} B")
    print("\n## Fault/recovery timeline " + "#" * 44)
    print(fault_timeline(tracer))
    print("\n## Metrics " + "#" * 60)
    print(metrics.render())
    if args.jsonl is not None:
        Path(args.jsonl).parent.mkdir(parents=True, exist_ok=True)
        tracer.to_jsonl(args.jsonl)
        print(f"\nwrote {len(tracer)} events to {args.jsonl}")
    return 0


def _triggers_command(argv: list[str]) -> int:
    """The ``repro triggers`` subcommand: one-scenario policy comparison."""
    parser = argparse.ArgumentParser(
        prog="python -m repro triggers",
        description="Compare every registered trigger-detection policy "
        "(fixed-interval baseline, entropy-percentile sampling, imbalance, "
        "staging pressure) on the trigger-sweep workload and print the "
        "monitoring-overhead vs adaptation-lag table.",
    )
    parser.add_argument("--list", action="store_true", dest="list_policies",
                        help="list the registered trigger policies and exit")
    parser.add_argument("--steps", type=int, default=20,
                        help="workload length in steps (default: 20)")
    parser.add_argument("--scenario", default="none",
                        help="fault scenario to inject, or 'none' "
                        "(default: none; see 'faults --list')")
    args = parser.parse_args(argv)

    from repro.workflow.triggers import TRIGGER_POLICIES

    if args.list_policies:
        width = max(len(name) for name in TRIGGER_POLICIES)
        for name, (description, _factory) in TRIGGER_POLICIES.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    from repro.experiments import fig_triggers

    if args.scenario != "none":
        from repro.faults import SCENARIOS

        if args.scenario not in SCENARIOS:
            known = ", ".join(sorted(SCENARIOS))
            parser.error(f"unknown scenario {args.scenario!r} "
                         f"(known: {known}, or 'none')")

    rows = [
        fig_triggers.run_point(
            {"policy": policy, "scenario": args.scenario, "steps": args.steps}
        )
        for policy in fig_triggers.POLICY_NAMES
    ]
    print(fig_triggers.render(fig_triggers.merge(rows)))
    return 0


def _tenants_command(argv: list[str]) -> int:
    """The ``repro tenants`` subcommand: shared-machine contention."""
    parser = argparse.ArgumentParser(
        prog="python -m repro tenants",
        description="Admit several coupled workflows onto one shared "
        "machine under an admission policy and print the fleet's SLO "
        "table: time-to-solution degradation vs the solo baseline, "
        "queue waits, starvations, and Jain fairness over slowdowns.",
    )
    parser.add_argument("--list", action="store_true", dest="list_policies",
                        help="list the admission policies and exit")
    parser.add_argument("--policy", default=None,
                        help="run only this admission policy "
                        "(default: sweep all; see --list)")
    parser.add_argument("--tenants", type=int, default=None, metavar="N",
                        help="run only the N-tenant point "
                        "(default: sweep 1, 2 and 4)")
    parser.add_argument("--steps", type=int, default=None,
                        help="per-tenant workload length in steps "
                        "(default: 10)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: one short fifo 2-tenant point, "
                        "checked for completion and queue accounting")
    args = parser.parse_args(argv)

    from repro.service import ADMISSION_POLICIES

    if args.list_policies:
        width = max(len(name) for name in ADMISSION_POLICIES)
        for name, description in ADMISSION_POLICIES.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    from repro.experiments import fig_tenants

    if args.smoke:
        row = fig_tenants.run_point(
            {"policy": "fifo", "tenants": 2, "steps": 6}
        )
        print(fig_tenants.render(fig_tenants.merge([
            fig_tenants.run_point(
                {"policy": "fifo", "tenants": 1, "steps": 6}
            ),
            row,
        ])))
        ok = row.makespan > 0 and row.mean_tts > 0
        print(f"\ntenant smoke: {'OK' if ok else 'FAILED'} "
              f"(2 tenants served, makespan {row.makespan:.1f}s)")
        return 0 if ok else 1

    if args.policy is not None and args.policy not in ADMISSION_POLICIES:
        known = ", ".join(sorted(ADMISSION_POLICIES))
        parser.error(f"unknown admission policy {args.policy!r} "
                     f"(known: {known})")

    policies = (
        (args.policy,) if args.policy is not None
        else fig_tenants.POLICY_NAMES
    )
    counts = (
        (args.tenants,) if args.tenants is not None
        else fig_tenants.TENANT_COUNTS
    )
    if any(count < 1 for count in counts):
        parser.error("--tenants must be >= 1")
    steps = args.steps if args.steps is not None else fig_tenants.STEPS
    rows = [
        fig_tenants.run_point(
            {"policy": policy, "tenants": count, "steps": steps}
        )
        for policy in policies
        for count in counts
    ]
    print(fig_tenants.render(fig_tenants.merge(rows)))
    return 0


def _profile_command(argv: list[str]) -> int:
    """The ``repro profile`` subcommand: span profile of a quickstart run."""
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Replay the quickstart workload under the span "
        "profiler and print where the host's wall-clock time goes: the "
        "span tree (count, cumulative, self seconds per path), the hot "
        "list by self time, and the attributed fraction of measured "
        "wall time.  With --budgets, check the profile against a "
        "budget manifest and exit 1 on any ceiling violation.",
    )
    parser.add_argument("--mode", default="global",
                        choices=[m.value for m in _trace_modes()],
                        help="execution mode (default: global)")
    parser.add_argument("--steps", type=int, default=20,
                        help="workload length in steps (default: 20)")
    parser.add_argument("--seed", type=int, default=42,
                        help="synthetic workload seed (default: 42)")
    parser.add_argument("--top", type=int, default=10,
                        help="hot-list length (default: 10)")
    parser.add_argument("--budgets", metavar="PATH", default=None,
                        help="check the profile against this "
                        "repro.budgets/1 manifest (benchmarks/budgets.json)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the raw span dump as JSON")
    args = parser.parse_args(argv)

    import json as json_mod
    import time

    from repro.errors import ObservabilityError
    from repro.observability import (
        Profiler,
        check_budgets,
        load_budgets,
        render_budget_report,
        render_hot_spans,
        render_profile,
        unregistered_spans,
    )
    from repro.workflow.driver import CoupledWorkflow

    budgets = None
    if args.budgets is not None:
        try:
            budgets = load_budgets(args.budgets)
        except (OSError, ObservabilityError) as exc:
            print(f"invalid budget manifest {args.budgets}: {exc}",
                  file=sys.stderr)
            return 2

    profiler = Profiler()
    started = time.perf_counter()
    with profiler.span("workload.build"):
        config, trace = _quickstart(args.mode, args.steps, args.seed)
    with profiler.span("workflow.setup"):
        workflow = CoupledWorkflow(config, trace, profiler=profiler)
    result = workflow.run()
    wall = time.perf_counter() - started

    attributed = profiler.total_seconds()
    coverage = 100.0 * attributed / wall if wall > 0 else 0.0
    print(f"mode={config.mode.value}  steps={len(trace)}  "
          f"seed={args.seed}  end-to-end={result.end_to_end_seconds:.2f}s "
          f"(simulated)")
    print(f"host wall time {wall:.4f}s, {attributed:.4f}s attributed to "
          f"spans ({coverage:.1f}%)")
    print("\n## Span tree " + "#" * 58)
    print(render_profile(profiler, total_seconds=wall))
    print(f"\n## Hot spans (top {args.top} by self time) "
          + "#" * max(0, 70 - 31 - len(str(args.top))))
    print(render_hot_spans(profiler, top=args.top))
    unknown = unregistered_spans(profiler)
    if unknown:
        print(f"\nWARNING: unregistered span names: {', '.join(unknown)} "
              "(register them in PROFILE_SPANS)", file=sys.stderr)
    if args.json is not None:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json_mod.dumps(profiler.dump(), indent=2,
                                       sort_keys=True) + "\n")
        print(f"\nwrote span dump to {args.json}")
    if budgets is not None:
        print("\n## Budget check " + "#" * 55)
        print(render_budget_report(profiler, budgets))
        if check_budgets(profiler, budgets):
            return 1
    return 0


def _trace_modes():
    from repro.workflow import Mode

    return list(Mode)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "run-all":
        return _run_all_command(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_command(argv[1:])
    if argv and argv[0] == "audit":
        return _audit_command(argv[1:])
    if argv and argv[0] == "bench-diff":
        return _bench_diff_command(argv[1:])
    if argv and argv[0] == "faults":
        return _faults_command(argv[1:])
    if argv and argv[0] == "triggers":
        return _triggers_command(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_command(argv[1:])
    if argv and argv[0] == "tenants":
        return _tenants_command(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the experiments of Jin et al., SC'13.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'run-all', 'list', "
        "'trace', 'audit', 'bench-diff', 'faults', 'triggers', "
        "'profile', or 'tenants'",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _fn) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        print(f"{'run-all'.ljust(width)}  regenerate experiments via the "
              "parallel sweep runner (see 'run-all --help')")
        print(f"{'trace'.ljust(width)}  instrumented replay: decision "
              "timeline + occupancy Gantt (see 'trace --help')")
        print(f"{'audit'.ljust(width)}  prediction-ledger replay: "
              "calibration report + placement regret (see 'audit --help')")
        print(f"{'bench-diff'.ljust(width)}  compare two benchmark "
              "wall-time snapshots (see 'bench-diff --help')")
        print(f"{'faults'.ljust(width)}  fault-scenario replay: "
              "time-to-solution delta + recovery timeline "
              "(see 'faults --help')")
        print(f"{'triggers'.ljust(width)}  trigger-policy comparison: "
              "monitoring overhead vs adaptation lag "
              "(see 'triggers --help')")
        print(f"{'profile'.ljust(width)}  span profile of a quickstart "
              "run: where host wall time goes, budget check "
              "(see 'profile --help')")
        print(f"{'tenants'.ljust(width)}  multi-tenant service: "
              "contention, queue waits and fairness on a shared machine "
              "(see 'tenants --help')")
        return 0

    if args.experiment == "all":
        for name, (_description, fn) in EXPERIMENTS.items():
            print(f"\n### {name} " + "#" * max(0, 66 - len(name)))
            print(fn())
        return 0

    entry = EXPERIMENTS.get(args.experiment)
    if entry is None:
        print(f"unknown experiment {args.experiment!r}; try 'list'",
              file=sys.stderr)
        return 2
    print(entry[1]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
