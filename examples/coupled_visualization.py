#!/usr/bin/env python
"""A real coupled simulation + visualization workflow through DataSpaces.

This example exercises the full substrate stack with *real* data, the way
the paper's workflow couples Chombo to its visualization service:

- a **simulation process** advances the 3-D Polytropic Gas solver (real
  NumPy Godunov updates on an adaptive hierarchy) and publishes each
  step's density field into the shared :class:`~repro.staging.DataSpace`
  as a versioned object, announcing it on the message bus;
- an **analysis process** subscribes, retrieves each version, extracts an
  isosurface with marching tetrahedra and computes descriptive
  statistics and block entropy -- reporting triangles, surface area and
  entropy range per step.

Run:  python examples/coupled_visualization.py
"""

import numpy as np

from repro.amr import AMRHierarchy, AMRStepper, Box, PolytropicGasSolver
from repro.analysis import (
    block_entropies,
    descriptive_statistics,
    extract_isosurface,
    surface_area,
)
from repro.hpc import Simulator
from repro.staging import DataObject, DataSpace, MessageBus

N = 32
STEPS = 12


def main() -> None:
    sim = Simulator()
    space = DataSpace(sim)
    bus = MessageBus(sim)

    domain = Box((0, 0, 0), (N - 1, N - 1, N - 1))
    hierarchy = AMRHierarchy(
        domain, ncomp=5, nghost=2, max_levels=2, max_box_size=16,
        dx0=1.0 / N, periodic=True,
    )
    solver = PolytropicGasSolver(tag_threshold=0.06, blast_pressure_jump=25.0)
    stepper = AMRStepper(hierarchy, solver, regrid_interval=4)

    def simulation(sim):
        """Advance the gas solver; publish density each step."""
        for version in range(STEPS):
            stats = stepper.step()
            # Cost model: each step occupies the (virtual) machine for a
            # time proportional to its work.
            yield sim.timeout(stats.work_units / 1e6)
            density = hierarchy.levels[0].data.to_dense(hierarchy.level_domain(0))[0]
            space.put(DataObject("density", version, domain, payload=density))
            bus.publish("new-step", version)
        bus.publish("new-step", None)  # end-of-run marker

    def analysis(sim):
        """Consume versions as they appear; visualize and summarize."""
        sub = bus.subscribe("new-step")
        print(f"{'step':>4s} {'cells':>7s} {'tris':>7s} {'area':>7s} "
              f"{'rho max':>8s} {'H range (bits)':>15s}")
        while True:
            version = yield sub.get()
            if version is None:
                return
            objs = space.get("density", version)
            density = objs[0].payload
            iso = float(np.percentile(density, 85))
            verts, tris = extract_isosurface(
                density, iso, spacing=(1 / N, 1 / N, 1 / N)
            )
            stats = descriptive_statistics(density)
            entropies = block_entropies(density, (8, 8, 8), bins=64)
            print(
                f"{version:4d} {density.size:7d} {len(tris):7d} "
                f"{surface_area(verts, tris):7.3f} {stats.maximum:8.3f} "
                f"{entropies.min():6.2f} - {entropies.max():5.2f}"
            )
            space.remove_version("density", version)

    sim.process(simulation(sim), name="simulation")
    done = sim.process(analysis(sim), name="analysis")
    sim.run(done)
    print(f"\nworkflow finished at simulated t={sim.now:.2f}s; "
          f"space holds {space.bytes_stored:.0f} bytes (all consumed)")


if __name__ == "__main__":
    main()
