#!/usr/bin/env python
"""Entropy-guided adaptive down-sampling of a real blast-wave field.

The paper's Fig. 6 story end-to-end: run the 3-D Polytropic Gas solver,
compute per-block Shannon entropies of the density field (Eq. 11), map
them to down-sampling factors, and quantify what the reduction costs --
bytes saved vs reconstruction error vs isosurface fidelity -- separately
for low- and high-entropy regions.

Run:  python examples/entropy_downsampling.py
"""

import numpy as np

from repro.amr import AMRHierarchy, AMRStepper, Box, PolytropicGasSolver
from repro.analysis import (
    block_entropies,
    entropy_downsample_factors,
    isosurface_fidelity,
    reconstruction_error,
)
from repro.units import format_bytes

N = 48
BLOCK = 8
STEPS = 20


def main() -> None:
    domain = Box((0, 0, 0), (N - 1, N - 1, N - 1))
    hierarchy = AMRHierarchy(
        domain, ncomp=5, nghost=2, max_levels=2, max_box_size=16,
        dx0=1.0 / N, periodic=True,
    )
    solver = PolytropicGasSolver(tag_threshold=0.06, blast_pressure_jump=30.0,
                                 blast_density_jump=5.0)
    stepper = AMRStepper(hierarchy, solver, regrid_interval=4)
    print(f"running the gas solver for {STEPS} steps on a {N}^3 domain ...")
    stepper.run(STEPS)
    density = hierarchy.levels[0].data.to_dense(hierarchy.level_domain(0))[0]

    entropies = block_entropies(density, (BLOCK, BLOCK, BLOCK), bins=256)
    threshold = 0.5 * (entropies.min() + entropies.max())
    factors = entropy_downsample_factors(entropies, [threshold], [4, 1])
    print(f"\nblock entropies: {entropies.min():.2f} .. {entropies.max():.2f} bits "
          f"(threshold {threshold:.2f})")

    kept = reduced = 0
    saved_bytes = 0.0
    errs_low, errs_high = [], []
    for idx in np.ndindex(*entropies.shape):
        slc = tuple(slice(i * BLOCK, min((i + 1) * BLOCK, s))
                    for i, s in zip(idx, density.shape))
        block = density[slc]
        err = reconstruction_error(block, 4)
        if factors[idx] > 1:
            reduced += 1
            saved_bytes += block.nbytes * (1 - 1 / 64)
            errs_low.append(err)
        else:
            kept += 1
            errs_high.append(err)

    print(f"blocks kept at full resolution: {kept}")
    print(f"blocks down-sampled x4:         {reduced} "
          f"(saving {format_bytes(saved_bytes)})")
    print(f"mean reconstruction error of reduced (low-entropy) blocks: "
          f"{np.mean(errs_low):.4f}")
    print(f"...vs what reducing the kept (high-entropy) blocks would cost: "
          f"{np.mean(errs_high):.4f}")

    iso = float(np.percentile(density, 90))
    fid = isosurface_fidelity(density, iso, 4, spacing=(1 / N,) * 3)
    print(f"\nuniform x4 reduction for contrast: isosurface would keep only "
          f"{fid.triangle_ratio * 100:.0f}% of its triangles "
          f"({fid.area_ratio * 100:.0f}% of its area)")
    print("entropy-guided reduction keeps the high-entropy (shock) blocks "
          "intact instead.")


if __name__ == "__main__":
    main()
