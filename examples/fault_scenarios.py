#!/usr/bin/env python
"""Fault injection: the autonomic loop under a staging blackout.

The paper's cross-layer loop (Monitor -> Adaptation Engine -> Policies)
is exercised under failure: a seeded :class:`repro.faults.FaultPlan`
kills every staging core mid-run and restores them later.  While staging
is unreachable the engine degrades placement to in-situ
(``placement.fallback`` / degraded ``adapt.decision`` events); after the
restore the resource layer re-runs the Eq. 9-10 sizing against the
surviving pool.  The same workload also runs under a custom plan mixing
a link brownout with a straggler window, to show plans compose.

Run:  python examples/fault_scenarios.py
"""

from repro.experiments.fig9_resource import polytropic_trace
from repro.faults import FaultPlan, LinkDegrade, Straggler, build_scenario
from repro.hpc.systems import intrepid
from repro.observability import MetricsRegistry, Tracer, fault_timeline
from repro.units import format_seconds
from repro.workflow import Mode, WorkflowConfig, run_workflow


def config() -> WorkflowConfig:
    return WorkflowConfig(
        mode=Mode.GLOBAL,
        sim_cores=4096,
        staging_cores=256,
        spec=intrepid(),
        analysis_cost_per_cell=0.1,
    )


def run_with(plan: FaultPlan | None, label: str):
    trace = polytropic_trace(steps=30)
    tracer = Tracer() if plan is not None else None
    result = run_workflow(config(), trace, tracer=tracer,
                          metrics=MetricsRegistry(), faults=plan)
    print(f"{label:<22s} end-to-end {format_seconds(result.end_to_end_seconds):>9s}"
          f"   data moved {result.data_moved_bytes / 1e9:6.2f} GB")
    return result, tracer


def main() -> None:
    baseline, _ = run_with(None, "fault-free")
    horizon = baseline.end_to_end_seconds

    # A named scenario, scaled to this workload's fault-free duration.
    blackout = build_scenario("blackout", horizon=horizon,
                              staging_cores=256, steps=30)
    _result, tracer = run_with(blackout, "blackout scenario")

    # A hand-built plan: brownout + stragglers overlapping mid-run.
    custom = FaultPlan([
        LinkDegrade(at=0.2 * horizon, duration=0.3 * horizon,
                    bandwidth_factor=0.25, latency_factor=4.0),
        Straggler(at=0.3 * horizon, duration=0.25 * horizon, factor=3.0),
    ])
    run_with(custom, "brownout + stragglers")

    print("\nblackout fault/recovery timeline:\n")
    print(fault_timeline(tracer))
    print("\nwhile staging is dark the engine degrades every placement to "
          "in-situ;\nafter the restore the resource layer re-sizes the pool "
          "(Eqs. 9-10).")


if __name__ == "__main__":
    main()
