#!/usr/bin/env python
"""Trigger-detection policies: pay for monitoring only when it matters.

The paper's Monitor samples the full operational state every step.  The
trigger policies in :mod:`repro.workflow.triggers` replace that cadence
with cheap streaming indicators: ``entropy-percentile`` estimates the
90th percentile of the per-rank output-volume distribution from a
bounded random sample (82 probes at eps=0.15/delta=0.05, independent of
rank count -- the percentile-sampling trigger papers' result) and runs
the expensive adaptation machinery only when that percentile drifts.

This example replays the same seeded AMR workload under the
``fixed-interval`` baseline and the ``entropy-percentile`` trigger with
its self-calibration loop on, then compares monitor cost (snapshots x
ranks + sampling budget) and end-to-end time.  The assertions double as
a smoke test: the trigger must cut the monitoring spend at least in half
while staying within 5% of the baseline's end-to-end time.

Run:  python examples/trigger_policies.py
"""

from repro.experiments.fig_triggers import run_point
from repro.workflow import TRIGGER_POLICIES, percentile_sample_size


def main() -> None:
    print("registered trigger policies:")
    for name, (description, _) in TRIGGER_POLICIES.items():
        print(f"  {name:<20s} {description}")
    print()
    print("percentile-sampling budget per evaluation "
          f"(eps=0.15, delta=0.05): {percentile_sample_size(0.15, 0.05)} probes")
    print()

    rows = {
        policy: run_point({"policy": policy, "scenario": "none"})
        for policy in ("fixed-interval", "entropy-percentile")
    }
    print(f"{'policy':<20s} {'end-to-end':>12s} {'snapshots':>10s} "
          f"{'budget':>8s} {'monitor cost':>13s}")
    for policy, row in rows.items():
        print(f"{policy:<20s} {row.end_to_end_seconds:>10.1f} s "
              f"{row.snapshots:>10d} {row.budget_used:>8d} "
              f"{row.monitor_cost:>13d}")
    print()

    fixed, entropy = rows["fixed-interval"], rows["entropy-percentile"]
    saved = 1.0 - entropy.monitor_cost / fixed.monitor_cost
    drift = (
        abs(entropy.end_to_end_seconds - fixed.end_to_end_seconds)
        / fixed.end_to_end_seconds
    )
    print(f"monitor cost saved by entropy-percentile: {saved * 100.0:.0f}%")
    print(f"end-to-end drift vs every-step baseline:  {drift * 100.0:.1f}%")

    assert entropy.monitor_cost <= 0.5 * fixed.monitor_cost
    assert drift <= 0.05
    print("sampling cost halved at equal quality: YES")


if __name__ == "__main__":
    main()
