#!/usr/bin/env python
"""Kernel scaling: events/sec and wall-time attribution vs. rank count.

The typed event kernel (``repro.hpc.kernel``, see ``docs/kernel.md``)
is what lets fig-scale experiments run at 64K-1M virtual ranks in
seconds: per-rank event bursts are admitted with one vectorized
``schedule_batch`` and drained in batched same-``(time, kind)`` runs
instead of a Python sift per record.  This example sweeps a weak-scaled
quickstart workload over increasing rank counts and, for each scale,
prints:

- the host wall seconds for the whole run (build + setup + run);
- the kernel's always-on event tally and the resulting events/sec;
- where the profiler attributes the wall time, per layer -- the same
  span tree ``python -m repro profile`` renders, which must account for
  (nearly) all of the measured wall time.

``benchmarks/bench_kernel.py`` is the enforced version of this sweep
(budget ceilings, throughput floors, 1M-rank stress); this example
keeps the rank counts modest so it runs in about a second.

Run:  python examples/kernel_scaling.py
"""

import time

from repro.hpc.systems import titan
from repro.observability import Profiler, render_hot_spans
from repro.workflow import CoupledWorkflow, Mode, WorkflowConfig
from repro.workload import SyntheticAMRConfig, synthetic_amr_trace

#: Weak-scaling sweep: modest by default so the example (and its smoke
#: test) stays fast; bench_kernel.py pushes the same shape to 1M.
SWEEP = (4096, 16384, 65536)

STEPS = 20
SEED = 42


def scaled_quickstart(nranks: int):
    """The quickstart workload weak-scaled to ``nranks`` virtual ranks.

    Cells and cores grow with the rank count (keeping the canonical
    1024:64 sim:staging core ratio) so per-rank load matches the
    calibrated baseline -- classic weak scaling.
    """
    scale = nranks / 1024
    trace = synthetic_amr_trace(
        SyntheticAMRConfig(
            steps=STEPS,
            nranks=nranks,
            base_cells=5e7 * scale,
            sim_cost_per_cell=8.0,
            growth=2.0,
            analysis_growth_exponent=0.5,
            seed=SEED,
        ),
        name=f"trace-scaling-{nranks}",
    )
    config = WorkflowConfig(
        mode=Mode("global"),
        sim_cores=nranks,
        staging_cores=max(64, nranks // 16),
        spec=titan(),
        analysis_cost_per_cell=0.45,
    )
    return config, trace


def main() -> None:
    print("# Kernel weak-scaling sweep "
          f"({STEPS} steps, seed {SEED}, mode=global)\n")
    print(f"{'ranks':>8} {'wall (s)':>9} {'events':>7} {'events/s':>9} "
          f"{'attributed':>11} {'end-to-end (sim-s)':>19}")

    last_profiler = None
    for nranks in SWEEP:
        profiler = Profiler()
        started = time.perf_counter()
        with profiler.span("workload.build"):
            config, trace = scaled_quickstart(nranks)
        with profiler.span("workflow.setup"):
            workflow = CoupledWorkflow(config, trace, profiler=profiler)
        result = workflow.run()
        wall = time.perf_counter() - started

        # The kernel's first-class counters: no instrumentation needed,
        # the tally is always on.
        events = workflow.sim.kernel.counters.total_processed
        attribution = profiler.total_seconds() / wall
        print(f"{nranks:>8,} {wall:>9.3f} {events:>7} {events / wall:>9,.0f} "
              f"{attribution:>10.1%} {result.end_to_end_seconds:>19.1f}")
        assert attribution >= 0.90, "profiler lost track of the wall time"
        last_profiler = profiler

    print("\nPer-layer attribution at the largest scale (hot spans):")
    print(render_hot_spans(last_profiler, top=6))
    print("\nevents/sec attribution intact at every scale: YES")


if __name__ == "__main__":
    main()
