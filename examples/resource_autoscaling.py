#!/usr/bin/env python
"""Resource-layer adaptation: right-sizing the in-transit staging area.

The paper's Fig. 9 scenario at example scale: a gas workflow whose
refined region grows over the run.  With a static 256-core staging area
most cores idle early on; the adaptive policy (Eqs. 9-10) activates just
enough cores to finish each step's analysis before the next step's data
arrives, growing the allocation as refinement raises the analysis load
-- same time-to-solution, far better utilization (Eq. 12).

Run:  python examples/resource_autoscaling.py
"""

from repro.experiments.fig9_resource import polytropic_trace
from repro.hpc.systems import intrepid
from repro.units import format_seconds
from repro.workflow import Mode, WorkflowConfig, run_workflow


def main() -> None:
    trace = polytropic_trace(steps=30)

    def config(mode: Mode) -> WorkflowConfig:
        return WorkflowConfig(
            mode=mode,
            sim_cores=4096,
            staging_cores=256,
            spec=intrepid(),
            analysis_cost_per_cell=0.1,
        )

    static = run_workflow(config(Mode.STATIC_INTRANSIT), trace)
    adaptive = run_workflow(config(Mode.ADAPTIVE_RESOURCE), trace)

    print("active staging cores per step (static always 256):\n")
    series = adaptive.staging_cores_series()
    peak = max(256, series.max())
    for step, cores in enumerate(series, start=1):
        bar = "#" * int(40 * cores / peak)
        print(f"  step {step:2d}  {int(cores):4d}  {bar}")

    print("\n                      static      adaptive")
    print(f"end-to-end time    {format_seconds(static.end_to_end_seconds):>9s}"
          f"  {format_seconds(adaptive.end_to_end_seconds):>12s}")
    print(f"utilization (Eq.12) {static.utilization_efficiency * 100:7.1f}%"
          f"  {adaptive.utilization_efficiency * 100:11.1f}%")
    print(f"idle core-seconds  {static.staging_idle_core_seconds:9.0f}"
          f"  {adaptive.staging_idle_core_seconds:12.0f}")
    print("\nthe adaptive allocation starts near ~50 cores and grows with the "
          "refined region\n(paper: 87.11% vs 54.57% utilization efficiency)")


if __name__ == "__main__":
    main()
