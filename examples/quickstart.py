#!/usr/bin/env python
"""Quickstart: adaptive vs static placement on a coupled AMR workflow.

Builds a synthetic AMR workload (20 steps, 1K simulation cores, 64
staging cores on a Titan-like machine), runs it under static in-situ,
static in-transit and adaptive middleware placement, and prints the
paper's headline metrics: end-to-end time, overhead and data movement.

Run:  python examples/quickstart.py

The paper-figure experiments (``python -m repro list``) memoize their
deterministic solver runs through ``repro.experiments.cache``; set
``REPRO_NO_CACHE=1`` to force every run to recompute from scratch, or
``REPRO_CACHE_DIR=.cache`` to persist artifacts across processes (the
outputs are bit-identical either way — see docs/performance.md).
"""

from repro.units import format_bytes, format_seconds
from repro.hpc.systems import titan
from repro.workflow import Mode, WorkflowConfig, run_workflow
from repro.workload import SyntheticAMRConfig, synthetic_amr_trace


def main() -> None:
    # 1. A workload: 20 AMR steps with refinement growth and bursty
    #    analysis intensity, distributed over 1024 virtual ranks.
    trace = synthetic_amr_trace(
        SyntheticAMRConfig(
            steps=20,
            nranks=1024,
            base_cells=5e7,
            sim_cost_per_cell=8.0,
            growth=2.0,
            analysis_growth_exponent=0.5,
            seed=42,
        ),
        name="quickstart",
    )

    # 2. Three workflow configurations sharing the same machine shape.
    def config(mode: Mode) -> WorkflowConfig:
        return WorkflowConfig(
            mode=mode,
            sim_cores=1024,
            staging_cores=64,  # the paper's 16:1 ratio
            spec=titan(),
            analysis_cost_per_cell=0.45,
        )

    print(f"workload: {len(trace)} steps, "
          f"{format_bytes(trace.total_data_bytes)} of analysis data\n")
    header = f"{'mode':22s} {'end-to-end':>12s} {'overhead':>10s} {'moved':>12s}"
    print(header)
    print("-" * len(header))
    for mode in (Mode.STATIC_INSITU, Mode.STATIC_INTRANSIT,
                 Mode.ADAPTIVE_MIDDLEWARE):
        result = run_workflow(config(mode), trace)
        print(
            f"{mode.value:22s} "
            f"{format_seconds(result.end_to_end_seconds):>12s} "
            f"{format_seconds(result.overhead_seconds):>10s} "
            f"{format_bytes(result.data_moved_bytes):>12s}"
        )

    print("\nAdaptive placement analyses each step wherever it finishes "
          "soonest: in-transit\nwhen the staging cores are idle, in-situ when "
          "they are backed up (paper Fig. 4).")


if __name__ == "__main__":
    main()
