#!/usr/bin/env python
"""Span profiling: find out *where* a coupled run spends its wall time.

The observability stack's third pillar (after the tracer's *why* and
the metrics registry's *how much*): inject a
:class:`~repro.observability.Profiler` through the same ``profiler=``
keyword the other instruments use and every layer -- workflow driver,
event kernel, monitor, adaptation engine, staging area -- charges its
wall-clock seconds to a nested span path like
``workflow.run/sim.run/workflow.decide/engine.adapt``.

This example profiles one quickstart-sized run, renders the span tree
and the hot list, shows that the spans attribute essentially all of the
measured wall time, and folds a second (simulated worker) profile in
with :func:`~repro.observability.merge_worker_profiles` -- the same
cross-process aggregation ``repro run-all --jobs N`` uses.  The
assertions double as a smoke test: every recorded span name must be
registered in ``PROFILE_SPANS`` and the run must satisfy the shipped
hot-path budgets in ``benchmarks/budgets.json``.

Run:  python examples/profiling.py
"""

import time
from pathlib import Path

from repro.hpc.systems import titan
from repro.observability import (
    Profiler,
    check_budgets,
    merge_worker_profiles,
    render_hot_spans,
    render_profile,
    unregistered_spans,
)
from repro.workflow import CoupledWorkflow, Mode, WorkflowConfig
from repro.workload import SyntheticAMRConfig, synthetic_amr_trace

BUDGETS = Path(__file__).resolve().parent.parent / "benchmarks" / "budgets.json"


def build_workload(steps: int, seed: int):
    config = WorkflowConfig(mode=Mode.GLOBAL, sim_cores=1024,
                            staging_cores=64, spec=titan(),
                            analysis_cost_per_cell=0.035)
    trace = synthetic_amr_trace(
        SyntheticAMRConfig(steps=steps, nranks=64, base_cells=2e7,
                           sim_cost_per_cell=1.0, growth=1.5, seed=seed)
    )
    return config, trace


def main() -> None:
    profiler = Profiler()
    started = time.perf_counter()
    with profiler.span("workload.build"):
        config, trace = build_workload(steps=20, seed=42)
    with profiler.span("workflow.setup"):
        workflow = CoupledWorkflow(config, trace, profiler=profiler)
    result = workflow.run()
    wall = time.perf_counter() - started

    attributed = profiler.total_seconds()
    print(f"simulated end-to-end: {result.end_to_end_seconds:.1f} s; "
          f"host wall time {wall * 1e3:.1f} ms, "
          f"{100.0 * attributed / wall:.1f}% attributed to spans")
    print()
    print(render_profile(profiler, total_seconds=wall))
    print()
    print(render_hot_spans(profiler, top=5))
    print()

    # Cross-process aggregation: a worker ships back its dump() and the
    # parent folds it in -- counts and seconds sum exactly per path.
    worker = Profiler()
    worker_config, worker_trace = build_workload(steps=10, seed=7)
    with worker.span("sweep.point"):
        CoupledWorkflow(worker_config, worker_trace, profiler=worker).run()
    merge_worker_profiles(profiler, [worker.dump()])
    point = profiler.get("sweep.point")
    nested = profiler.get("sweep.point/workflow.run")
    print(f"merged one worker profile: sweep.point count {point.count}, "
          f"its nested workflow.run count {nested.count}")

    assert unregistered_spans(profiler) == []
    violations = check_budgets(profiler, BUDGETS)
    assert not violations, "; ".join(v.describe() for v in violations)
    print("every span registered and within budget: YES")


if __name__ == "__main__":
    main()
