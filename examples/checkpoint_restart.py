#!/usr/bin/env python
"""Checkpoint/restart of an adaptive simulation, with subcycled stepping.

Runs the 2-D Polytropic Gas solver with Berger-Oliger subcycling and
coarse-fine refluxing, checkpoints mid-run, restarts from the file, and
verifies the restarted run reproduces the original bit-for-bit -- the
workflow pattern every production AMR campaign relies on.

Run:  python examples/checkpoint_restart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.amr import (
    AMRHierarchy,
    Box,
    PolytropicGasSolver,
    SubcycledStepper,
    read_checkpoint,
    write_checkpoint,
)

N = 32
FIRST_LEG = 6
SECOND_LEG = 6


def make_solver():
    return PolytropicGasSolver(tag_threshold=0.05, blast_pressure_jump=25.0)


def main() -> None:
    hierarchy = AMRHierarchy(
        Box((0, 0), (N - 1, N - 1)), ncomp=4, nghost=2, max_levels=2,
        max_box_size=16, dx0=1.0 / N, periodic=True,
    )
    stepper = SubcycledStepper(hierarchy, make_solver(), regrid_interval=3,
                               reflux=True)
    print(f"running {FIRST_LEG} subcycled coarse steps "
          f"({hierarchy.finest_level + 1} levels, refluxing on) ...")
    stepper.run(FIRST_LEG)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "blast.chk.npz"
        write_checkpoint(hierarchy, path, time=stepper.time,
                         step=stepper.step_count)
        print(f"checkpoint written: {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB, "
              f"t={stepper.time:.4f}, step={stepper.step_count})")

        # Continue the original run.
        stepper.run(SECOND_LEG)

        # Restart from the checkpoint and run the same continuation.
        restored, time, step = read_checkpoint(path)
        stepper2 = SubcycledStepper(restored, make_solver(), regrid_interval=3,
                                    reflux=True, initialize=False)
        stepper2.time, stepper2.step_count = time, step
        stepper2.run(SECOND_LEG)

    d1 = hierarchy.levels[0].data.to_dense(hierarchy.level_domain(0))
    d2 = restored.levels[0].data.to_dense(restored.level_domain(0))
    max_diff = float(np.abs(d1 - d2).max())
    print(f"\noriginal vs restarted after {SECOND_LEG} more steps:")
    print(f"  times: {stepper.time:.6f} vs {stepper2.time:.6f}")
    print(f"  max state difference: {max_diff:.3e}")
    print("  bit-exact restart:", "YES" if max_diff == 0.0 else "NO")


if __name__ == "__main__":
    main()
