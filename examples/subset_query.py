#!/usr/bin/env python
"""In-situ index building + data subsetting on a real blast field.

The paper lists data subsetting among the communication-free analyses
its placement machinery supports, and cites in-situ index building as
the enabling related work.  This example runs the 3-D gas solver, builds
a per-block min/max index in-situ, and answers "where is the shock?"
range queries -- showing how much raw data the index lets the query skip.

Run:  python examples/subset_query.py
"""

import numpy as np

from repro.amr import AMRHierarchy, AMRStepper, Box, PolytropicGasSolver
from repro.analysis import BlockRangeIndex, query_range
from repro.units import format_bytes

N = 48
STEPS = 18
BLOCK = 8


def main() -> None:
    domain = Box((0, 0, 0), (N - 1, N - 1, N - 1))
    hierarchy = AMRHierarchy(domain, ncomp=5, nghost=2, max_levels=2,
                             max_box_size=16, dx0=1.0 / N, periodic=True)
    solver = PolytropicGasSolver(tag_threshold=0.06, blast_pressure_jump=30.0,
                                 blast_density_jump=5.0)
    stepper = AMRStepper(hierarchy, solver, regrid_interval=4)
    print(f"running the gas solver for {STEPS} steps on a {N}^3 domain ...")
    stepper.run(STEPS)

    density = hierarchy.levels[0].data.to_dense(hierarchy.level_domain(0))[0]
    index = BlockRangeIndex(density, (BLOCK, BLOCK, BLOCK))
    print(f"\nin-situ index: {len(index)} blocks, {format_bytes(index.nbytes)} "
          f"(raw field: {format_bytes(density.nbytes)})")

    queries = [
        ("shock front (top 5% density)", float(np.percentile(density, 95)),
         float(density.max())),
        ("ambient gas (bottom quartile)", float(density.min()),
         float(np.percentile(density, 25))),
        ("undisturbed gas (below median)", float(density.min()),
         float(np.median(density))),
    ]
    print(f"\n{'query':34s} {'cells':>8s} {'blocks scanned':>15s}")
    for label, lo, hi in queries:
        hits = query_range(density, lo, hi, index=index)
        selectivity = index.selectivity(lo, hi)
        print(f"{label:34s} {len(hits):8d} {selectivity:14.0%}")

    print("\nthe index prunes whole blocks before any raw data is read -- "
          "the same\nper-block summaries the entropy-driven reduction "
          "policy consumes.")


if __name__ == "__main__":
    main()
