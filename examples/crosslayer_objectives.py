#!/usr/bin/env python
"""Cross-layer coordination: how the user objective shapes the plan.

Shows the root-leaf procedure of Section 4.4 picking different mechanism
subsets and orders for different user objectives, then runs the full
global adaptation and reports what each layer contributed.

Run:  python examples/crosslayer_objectives.py
"""

from repro.core import CrossLayerPolicy, Objective, UserHints, UserPreferences
from repro.experiments.common import advection_trace, SCALES
from repro.hpc.systems import titan
from repro.units import format_bytes, format_seconds
from repro.workflow import Mode, WorkflowConfig, run_workflow


def main() -> None:
    # 1. The coordination plans, straight from the policy.
    policy = CrossLayerPolicy()
    print("root-leaf execution plans (Section 4.4):\n")
    for objective in (Objective.MINIMIZE_TIME_TO_SOLUTION,
                      Objective.MAXIMIZE_RESOURCE_UTILIZATION,
                      Objective.MAXIMIZE_DATA_RESOLUTION):
        layers = " -> ".join(layer.value for layer in policy.plan_layers(objective))
        print(f"  {objective.value:32s} {layers}")

    # 2. Run global adaptation under the time-to-solution objective.
    scale = SCALES[0]  # the 2K-core configuration
    hints = UserHints(downsample_phases=((1, (2, 4)), (scale.steps // 2, (2, 4, 8, 16))))
    config = WorkflowConfig(
        mode=Mode.GLOBAL,
        sim_cores=scale.sim_cores,
        staging_cores=scale.staging_cores,
        spec=titan(),
        analysis_cost_per_cell=0.7,
        preferences=UserPreferences(Objective.MINIMIZE_TIME_TO_SOLUTION),
        hints=hints,
    )
    result = run_workflow(config, advection_trace(scale))

    print(f"\nglobal adaptation on the {scale.label}-core workflow:")
    print(f"  end-to-end time: {format_seconds(result.end_to_end_seconds)} "
          f"(overhead {format_seconds(result.overhead_seconds)}, "
          f"{result.overhead_fraction * 100:.1f}% of simulation)")
    factors = result.factors_used()
    print(f"  application layer: factors used {sorted(set(factors))}, "
          f"data moved {format_bytes(result.data_moved_bytes)}")
    series = result.staging_cores_series()
    print(f"  resource layer: staging cores ranged {int(series.min())}"
          f"-{int(series.max())} of {result.staging_total_cores}")
    counts = result.placement_counts()
    print(f"  middleware layer: placements {dict((k.value, v) for k, v in counts.items())}")


if __name__ == "__main__":
    main()
