"""Tests for value-range subsetting and the block min/max index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.subset import BlockRangeIndex, query_range
from repro.errors import PolicyError


class TestBlockRangeIndex:
    def test_block_count(self):
        index = BlockRangeIndex(np.zeros((16, 16)), (8, 8))
        assert len(index) == 4
        assert index.nbytes == 64

    def test_partial_blocks(self):
        index = BlockRangeIndex(np.zeros((10, 6)), (4, 4))
        assert len(index) == 6

    def test_pruning(self):
        field = np.zeros((16, 16))
        field[:8, :8] = 5.0  # only one block holds large values
        index = BlockRangeIndex(field, (8, 8))
        assert len(index.candidate_blocks(4.0, 6.0)) == 1
        assert index.selectivity(4.0, 6.0) == pytest.approx(0.25)
        assert index.selectivity(-1.0, 10.0) == 1.0

    def test_nan_blocks_never_match(self):
        field = np.full((8, 8), np.nan)
        index = BlockRangeIndex(field, (4, 4))
        assert index.candidate_blocks(-1e300, 1e300) == []

    def test_validation(self):
        with pytest.raises(PolicyError):
            BlockRangeIndex(np.zeros((4, 4)), (2,))
        with pytest.raises(PolicyError):
            BlockRangeIndex(np.zeros((4, 4)), (0, 2))
        index = BlockRangeIndex(np.zeros((4, 4)), (2, 2))
        with pytest.raises(PolicyError):
            index.candidate_blocks(2.0, 1.0)


class TestQueryRange:
    def test_simple_query(self):
        field = np.arange(16.0).reshape(4, 4)
        hits = query_range(field, 5.0, 7.0)
        values = field[tuple(hits.T)]
        np.testing.assert_array_equal(np.sort(values), [5.0, 6.0, 7.0])

    def test_indexed_equals_unindexed(self):
        rng = np.random.default_rng(0)
        field = rng.normal(size=(24, 24))
        index = BlockRangeIndex(field, (8, 8))
        plain = query_range(field, 0.5, 1.5)
        indexed = query_range(field, 0.5, 1.5, index=index)
        as_set = lambda a: {tuple(row) for row in a}
        assert as_set(plain) == as_set(indexed)

    def test_empty_result_shape(self):
        field = np.zeros((4, 4))
        hits = query_range(field, 5.0, 6.0, index=BlockRangeIndex(field, (2, 2)))
        assert hits.shape == (0, 2)

    def test_shape_mismatch_rejected(self):
        index = BlockRangeIndex(np.zeros((4, 4)), (2, 2))
        with pytest.raises(PolicyError):
            query_range(np.zeros((8, 8)), 0.0, 1.0, index=index)

    def test_bad_range_rejected(self):
        with pytest.raises(PolicyError):
            query_range(np.zeros((2, 2)), 1.0, 0.0)

    @settings(deadline=None, max_examples=30)
    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(2, 20), st.integers(2, 20)),
                   elements=st.floats(-10, 10)),
        st.floats(-10, 10),
        st.floats(0, 5),
        st.integers(2, 6),
    )
    def test_index_never_changes_results(self, field, lo, span, block):
        hi = lo + span
        index = BlockRangeIndex(field, (block, block))
        plain = {tuple(r) for r in query_range(field, lo, hi)}
        indexed = {tuple(r) for r in query_range(field, lo, hi, index=index)}
        assert plain == indexed

    def test_3d_query_on_blast_field(self):
        from repro.experiments.fig6_entropy import density_field

        field = density_field(n=24, nsteps=8)
        index = BlockRangeIndex(field, (8, 8, 8))
        lo = float(np.percentile(field, 95))
        hits = query_range(field, lo, float(field.max()), index=index)
        assert len(hits) > 0
        # The shock/ambient split makes the index selective.
        assert index.selectivity(lo, float(field.max())) < 1.0
