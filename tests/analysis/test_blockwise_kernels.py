"""Equivalence tests: vectorized blockwise kernels vs their scalar oracles.

Every vectorized kernel in :mod:`repro.analysis` keeps its original
per-block implementation as a ``_reference_*`` oracle; these tests assert
*exact* (bit-for-bit) agreement -- including partial trailing blocks,
NaNs, constant blocks, per-block histogram ranges and every supported
rank -- so the vectorization can never drift from the defined semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.downsample import (
    _reference_blockwise_stride_reconstruction,
    blockwise_stride_reconstruction,
)
from repro.analysis.entropy import _reference_block_entropies, block_entropies
from repro.analysis.fidelity import (
    _reference_blockwise_reconstruction_errors,
    blockwise_reconstruction_errors,
)
from repro.analysis.statistics import (
    _reference_blockwise_statistics,
    blockwise_statistics,
)
from repro.errors import PolicyError
from repro.observability.metrics import MetricsRegistry

#: (field shape, block shape) cases: aligned, partial-trailing, 1-D/2-D,
#: block == field, block larger than field.
CASES = [
    ((24, 24, 24), (8, 8, 8)),
    ((23, 21, 11), (8, 8, 8)),
    ((9, 9, 9), (4, 4, 4)),
    ((30,), (7,)),
    ((13, 29), (5, 8)),
    ((16, 16), (16, 16)),
    ((5, 6), (8, 8)),
]


def _field(shape, kind, rng):
    base = rng.standard_normal(shape) * 17.3 + 2.0
    if kind == "nan":
        flat = base.copy()
        flat.ravel()[rng.integers(0, base.size, max(1, base.size // 8))] = np.nan
        return flat
    if kind == "constant":
        return np.full(shape, 3.25)
    if kind == "constant_block":
        mixed = base.copy()
        mixed[tuple(slice(0, min(4, s)) for s in shape)] = 7.5
        return mixed
    if kind == "all_nan":
        return np.full(shape, np.nan)
    return base


class TestBlockEntropies:
    @pytest.mark.parametrize("shape,block", CASES)
    @pytest.mark.parametrize("kind", ["random", "nan", "constant",
                                      "constant_block", "all_nan"])
    @pytest.mark.parametrize("global_range", [True, False])
    def test_matches_reference_exactly(self, shape, block, kind, global_range):
        field = _field(shape, kind, np.random.default_rng(0))
        got = block_entropies(field, block, bins=64, global_range=global_range)
        want = _reference_block_entropies(field, block, bins=64,
                                          global_range=global_range)
        assert np.array_equal(got, want)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(5, 40), st.integers(1, 9), st.integers(2, 32),
           st.booleans())
    def test_property_1d(self, n, b, bins, global_range):
        field = np.random.default_rng(n * 31 + b).standard_normal(n)
        got = block_entropies(field, (b,), bins=bins, global_range=global_range)
        want = _reference_block_entropies(field, (b,), bins=bins,
                                          global_range=global_range)
        assert np.array_equal(got, want)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(PolicyError):
            block_entropies(np.zeros((4, 4)), (2,))

    def test_bad_bins_rejected(self):
        with pytest.raises(PolicyError):
            block_entropies(np.zeros((4, 4)), (2, 2), bins=1)

    def test_metrics_timer_published(self):
        registry = MetricsRegistry()
        block_entropies(np.random.default_rng(0).standard_normal((16, 16)),
                        (8, 8), metrics=registry)
        timer = registry.timer("analysis.entropy_kernel_seconds")
        assert timer.count == 1
        assert timer.value >= 0.0


class TestBlockwiseStrideReconstruction:
    @pytest.mark.parametrize("shape,block", CASES)
    @pytest.mark.parametrize("factor", [1, 2, 4])
    def test_matches_reference_exactly(self, shape, block, factor):
        rng = np.random.default_rng(1)
        field = rng.standard_normal(shape)
        counts = tuple(-(-s // b) for s, b in zip(shape, block))
        for mask in (None, rng.random(counts) < 0.5):
            got = blockwise_stride_reconstruction(field, block, factor, mask)
            want = _reference_blockwise_stride_reconstruction(
                field, block, factor, mask
            )
            assert np.array_equal(got, want)

    def test_unmasked_blocks_untouched(self):
        field = np.random.default_rng(2).standard_normal((16, 16))
        mask = np.zeros((2, 2), dtype=bool)
        mask[0, 0] = True
        out = blockwise_stride_reconstruction(field, (8, 8), 4, mask)
        assert np.array_equal(out[8:, :], field[8:, :])
        assert np.array_equal(out[:8, 8:], field[:8, 8:])
        assert not np.array_equal(out[:8, :8], field[:8, :8])

    def test_mask_shape_rejected(self):
        with pytest.raises(PolicyError):
            blockwise_stride_reconstruction(
                np.zeros((8, 8)), (4, 4), 2, np.ones((3, 3), dtype=bool)
            )

    def test_bad_factor_rejected(self):
        with pytest.raises(PolicyError):
            blockwise_stride_reconstruction(np.zeros((8, 8)), (4, 4), 0)


class TestBlockwiseReconstructionErrors:
    @pytest.mark.parametrize("shape,block", CASES)
    @pytest.mark.parametrize("factor", [1, 2, 4])
    def test_matches_reference_exactly(self, shape, block, factor):
        field = np.random.default_rng(3).standard_normal(shape) * 5.0
        got = blockwise_reconstruction_errors(field, block, factor)
        want = _reference_blockwise_reconstruction_errors(field, block, factor)
        assert np.array_equal(got, want)

    def test_constant_blocks_zero_error(self):
        field = np.full((16, 16), 2.5)
        got = blockwise_reconstruction_errors(field, (8, 8), 4)
        assert np.array_equal(got, np.zeros((2, 2)))

    def test_nonfinite_rejected(self):
        field = np.ones((8, 8))
        field[0, 0] = np.nan
        with pytest.raises(PolicyError):
            blockwise_reconstruction_errors(field, (4, 4), 2)


class TestBlockwiseStatistics:
    @staticmethod
    def _assert_stats_equal(a, b):
        assert a.count == b.count
        assert a.mean == b.mean
        assert a.m2 == b.m2
        assert (a.minimum == b.minimum
                or (np.isnan(a.minimum) and np.isnan(b.minimum)))
        assert (a.maximum == b.maximum
                or (np.isnan(a.maximum) and np.isnan(b.maximum)))
        assert np.array_equal(a.histogram, b.histogram)
        assert np.array_equal(a.bin_edges, b.bin_edges)

    @pytest.mark.parametrize("shape,block", CASES)
    @pytest.mark.parametrize("kind", ["random", "nan", "constant", "all_nan"])
    @pytest.mark.parametrize("value_range", [None, (-60.0, 60.0), (4.0, 4.0)])
    def test_matches_reference_exactly(self, shape, block, kind, value_range):
        field = _field(shape, kind, np.random.default_rng(4))
        got = blockwise_statistics(field, block, bins=16,
                                   value_range=value_range)
        want = _reference_blockwise_statistics(field, block, bins=16,
                                               value_range=value_range)
        assert len(got) == len(want)
        for a, b in zip(got, want):
            self._assert_stats_equal(a, b)

    def test_single_bin(self):
        field = np.random.default_rng(5).standard_normal((10, 10))
        got = blockwise_statistics(field, (4, 4), bins=1)
        want = _reference_blockwise_statistics(field, (4, 4), bins=1)
        for a, b in zip(got, want):
            self._assert_stats_equal(a, b)

    def test_bad_bins_rejected(self):
        with pytest.raises(PolicyError):
            blockwise_statistics(np.zeros((4, 4)), (2, 2), bins=0)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(PolicyError):
            blockwise_statistics(np.zeros((4, 4)), (2, 2, 2))
