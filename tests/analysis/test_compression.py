"""Tests for the error-bounded compression codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.compression import (
    compress_field,
    compression_ratio,
    decompress_field,
    select_tolerance,
)
from repro.errors import PolicyError


class TestRoundtrip:
    def test_error_bound_respected(self):
        rng = np.random.default_rng(0)
        field = rng.normal(size=(16, 16, 16))
        tol = 1e-3
        recon = decompress_field(compress_field(field, tol))
        bound = tol * (field.max() - field.min())
        assert np.abs(recon - field).max() <= bound + 1e-12

    def test_constant_field_exact_and_tiny(self):
        field = np.full((8, 8), 3.25)
        comp = compress_field(field, 1e-3)
        recon = decompress_field(comp)
        np.testing.assert_array_equal(recon, field)
        assert comp.nbytes < 64

    def test_shape_preserved(self):
        field = np.arange(24.0).reshape(2, 3, 4)
        assert decompress_field(compress_field(field, 0.01)).shape == (2, 3, 4)

    def test_subnormal_span_stored_as_constant(self):
        # Regression: a span so small that step = 2*tol*span underflows
        # to exactly 0.0 used to divide by zero and NaN the codes.  The
        # field must round-trip as a constant within the usual slack.
        field = np.array([[5e-324, 0.0, 0.0, 0.0]])
        comp = compress_field(field, 1e-4)
        assert comp.step == 0.0
        recon = decompress_field(comp)
        assert recon.shape == field.shape
        assert np.isfinite(recon).all()
        span = field.max() - field.min()
        assert np.abs(recon - field).max() <= 1e-4 * span + 1e-9

    def test_wide_range_uses_uint32(self):
        # A very tight tolerance forces > 2^16 quantization codes.
        field = np.linspace(0, 1, 100_000)
        tol = 1e-6
        recon = decompress_field(compress_field(field, tol))
        assert np.abs(recon - field).max() <= tol * 1.0 + 1e-15

    def test_validation(self):
        with pytest.raises(PolicyError):
            compress_field(np.zeros(4), tolerance=0)
        with pytest.raises(PolicyError):
            compress_field(np.zeros(4), tolerance=1.0)
        with pytest.raises(PolicyError):
            compress_field(np.array([]), 0.01)
        with pytest.raises(PolicyError):
            compress_field(np.array([np.nan]), 0.01)

    @settings(deadline=None, max_examples=30)
    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(2, 20), st.integers(2, 20)),
                   elements=st.floats(-1e6, 1e6)),
        st.sampled_from([1e-4, 1e-3, 1e-2]),
    )
    def test_roundtrip_bound_property(self, field, tol):
        recon = decompress_field(compress_field(field, tol))
        span = field.max() - field.min()
        assert np.abs(recon - field).max() <= tol * span + 1e-9 * max(1.0, span)


class TestRatios:
    def test_smooth_beats_noisy(self):
        x = np.linspace(0, 2 * np.pi, 64)
        smooth = np.sin(np.add.outer(x, x))
        noisy = np.random.default_rng(0).uniform(-1, 1, (64, 64))
        assert compression_ratio(smooth, 1e-3) > 2 * compression_ratio(noisy, 1e-3)

    def test_looser_bound_compresses_more(self):
        rng = np.random.default_rng(1)
        field = np.cumsum(rng.normal(size=4096)).reshape(64, 64)
        ratios = [compression_ratio(field, t) for t in (1e-4, 1e-3, 1e-2)]
        assert ratios == sorted(ratios)

    def test_ratio_exceeds_one_for_real_data(self):
        from repro.amr.box import Box
        from repro.amr.godunov import PolytropicGasSolver
        from repro.amr.hierarchy import AMRHierarchy
        from repro.amr.stepper import AMRStepper

        h = AMRHierarchy(Box((0, 0), (31, 31)), ncomp=4, nghost=2,
                         max_levels=1, dx0=1 / 32)
        stepper = AMRStepper(h, PolytropicGasSolver(), regrid_interval=0)
        stepper.run(5)
        rho = h.levels[0].data.to_dense(h.level_domain(0))[0]
        assert compression_ratio(rho, 1e-3) > 3.0


class TestSelectTolerance:
    def test_tightest_fitting_bound_chosen(self):
        rng = np.random.default_rng(0)
        field = np.cumsum(rng.normal(size=4096)).reshape(64, 64)
        sizes = {t: compress_field(field, t).nbytes for t in (1e-4, 1e-3, 1e-2)}
        budget = (sizes[1e-4] + sizes[1e-3]) / 2
        tol, comp = select_tolerance(field, (1e-4, 1e-3, 1e-2), budget)
        assert tol == 1e-3
        assert comp.nbytes <= budget

    def test_over_budget_returns_loosest(self):
        field = np.random.default_rng(0).uniform(size=(32, 32))
        tol, comp = select_tolerance(field, (1e-4, 1e-3), budget_bytes=1.0)
        assert tol == 1e-3
        assert comp.nbytes > 1.0

    def test_empty_tolerances_rejected(self):
        with pytest.raises(PolicyError):
            select_tolerance(np.zeros((2, 2)), (), 100.0)
