"""Tests for Shannon entropy and entropy-driven down-sampling factors."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.entropy import (
    block_entropies,
    entropy_downsample_factors,
    shannon_entropy,
)
from repro.errors import PolicyError


class TestShannonEntropy:
    def test_constant_block_zero_entropy(self):
        assert shannon_entropy(np.full(100, 3.0)) == 0.0

    def test_uniform_two_values_one_bit(self):
        values = np.array([0.0, 1.0] * 50)
        assert shannon_entropy(values, bins=2) == pytest.approx(1.0)

    def test_uniform_distribution_max_entropy(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1, 100_000)
        h = shannon_entropy(values, bins=256)
        assert h == pytest.approx(8.0, abs=0.05)

    def test_entropy_bounded_by_log2_bins(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=1000)
        assert 0 <= shannon_entropy(values, bins=64) <= 6.0

    def test_nan_ignored(self):
        values = np.array([1.0, np.nan, 1.0, np.nan])
        assert shannon_entropy(values) == 0.0

    def test_empty_zero(self):
        assert shannon_entropy(np.array([])) == 0.0
        assert shannon_entropy(np.array([np.nan])) == 0.0

    def test_bad_bins(self):
        with pytest.raises(PolicyError):
            shannon_entropy(np.zeros(4), bins=1)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=200))
    def test_nonnegative_and_bounded(self, values):
        h = shannon_entropy(np.array(values), bins=32)
        assert 0.0 <= h <= 5.0 + 1e-9


class TestBlockEntropies:
    def test_blocks_shape(self):
        field = np.zeros((8, 8))
        out = block_entropies(field, (4, 4))
        assert out.shape == (2, 2)

    def test_partial_blocks_included(self):
        field = np.zeros((10, 6))
        out = block_entropies(field, (4, 4))
        assert out.shape == (3, 2)

    def test_high_vs_low_entropy_blocks(self):
        rng = np.random.default_rng(0)
        field = np.zeros((8, 8))
        field[:4, :4] = rng.uniform(0, 1, (4, 4))  # noisy block
        out = block_entropies(field, (4, 4), bins=16)
        assert out[0, 0] > out[1, 1]
        assert out[1, 1] == 0.0

    def test_rank_mismatch_rejected(self):
        with pytest.raises(PolicyError):
            block_entropies(np.zeros((4, 4)), (2,))

    def test_3d(self):
        field = np.random.default_rng(0).normal(size=(8, 8, 8))
        out = block_entropies(field, (4, 4, 4))
        assert out.shape == (2, 2, 2)
        assert (out > 0).all()


class TestEntropyFactors:
    def test_threshold_mapping(self):
        entropies = np.array([2.0, 5.0, 9.0])
        factors = entropy_downsample_factors(entropies, thresholds=[4.0, 8.0],
                                             factors=[8, 4, 1])
        np.testing.assert_array_equal(factors, [8, 4, 1])

    def test_boundary_goes_to_higher_bucket(self):
        factors = entropy_downsample_factors(np.array([4.0]), [4.0], [4, 1])
        np.testing.assert_array_equal(factors, [1])

    def test_paper_example_block_values(self):
        # Fig. 6: entropy 5.14 below threshold -> every 4th point;
        # 9.21 above -> unchanged.
        factors = entropy_downsample_factors(
            np.array([5.14, 9.21]), thresholds=[6.0], factors=[4, 1]
        )
        np.testing.assert_array_equal(factors, [4, 1])

    def test_validation(self):
        with pytest.raises(PolicyError):
            entropy_downsample_factors(np.zeros(2), [1.0], [4, 2, 1])
        with pytest.raises(PolicyError):
            entropy_downsample_factors(np.zeros(2), [2.0, 1.0], [4, 2, 1])
        with pytest.raises(PolicyError):
            entropy_downsample_factors(np.zeros(2), [1.0], [2, 4])
        with pytest.raises(PolicyError):
            entropy_downsample_factors(np.zeros(2), [1.0], [2, 0])

    @given(
        st.lists(st.floats(0, 10), min_size=1, max_size=50),
    )
    def test_monotone_in_entropy(self, entropies):
        ent = np.array(entropies)
        factors = entropy_downsample_factors(ent, [3.0, 6.0], [16, 4, 1])
        order = np.argsort(ent)
        f_sorted = factors[order]
        # Higher entropy never gets a larger factor.
        assert all(a >= b for a, b in zip(f_sorted, f_sorted[1:]))
