"""Tests for down-sampling operators and their memory model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.downsample import (
    downsample_mean,
    downsample_memory_cost,
    downsample_stride,
    reduced_nbytes,
    upsample_nearest,
)
from repro.errors import PolicyError


class TestStride:
    def test_factor_one_is_identity(self):
        a = np.arange(8.0)
        assert downsample_stride(a, 1) is a

    def test_every_other_sample(self):
        a = np.arange(8.0)
        np.testing.assert_array_equal(downsample_stride(a, 2), [0, 2, 4, 6])

    def test_3d_shape(self):
        a = np.zeros((8, 8, 8))
        assert downsample_stride(a, 4).shape == (2, 2, 2)

    def test_nondivisible_shape(self):
        a = np.arange(7.0)
        np.testing.assert_array_equal(downsample_stride(a, 2), [0, 2, 4, 6])

    def test_bad_factor(self):
        with pytest.raises(PolicyError):
            downsample_stride(np.zeros(4), 0)


class TestMean:
    def test_block_average(self):
        a = np.array([1.0, 3.0, 5.0, 7.0])
        np.testing.assert_array_equal(downsample_mean(a, 2), [2.0, 6.0])

    def test_constant_preserved(self):
        a = np.full((8, 8), 3.0)
        np.testing.assert_allclose(downsample_mean(a, 4), 3.0)

    def test_remainder_cropped(self):
        a = np.arange(7.0)
        assert downsample_mean(a, 2).shape == (3,)

    def test_too_small_rejected(self):
        with pytest.raises(PolicyError):
            downsample_mean(np.zeros(3), 4)


class TestUpsample:
    def test_roundtrip_shape(self):
        a = np.random.default_rng(0).normal(size=(9, 9))
        up = upsample_nearest(downsample_stride(a, 2), 2, target_shape=a.shape)
        assert up.shape == a.shape

    def test_nearest_replication(self):
        a = np.array([1.0, 2.0])
        np.testing.assert_array_equal(upsample_nearest(a, 3), [1, 1, 1, 2, 2, 2])

    def test_target_shape_rank_checked(self):
        with pytest.raises(PolicyError):
            upsample_nearest(np.zeros((2, 2)), 2, target_shape=(4,))

    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(4, 16), st.integers(4, 16)),
                   elements=st.floats(-10, 10)),
        st.integers(1, 4),
    )
    def test_constant_blocks_lossless(self, a, factor):
        # For factor 1 reconstruction is always exact.
        up = upsample_nearest(downsample_stride(a, 1), 1, target_shape=a.shape)
        np.testing.assert_array_equal(up, a)
        # Stride+nearest reconstructs exactly at sampled points.
        red = downsample_stride(a, factor)
        up = upsample_nearest(red, factor, target_shape=a.shape)
        np.testing.assert_array_equal(
            up[::factor, ::factor], a[::factor, ::factor]
        )


class TestCostModel:
    def test_reduced_nbytes_scales_with_dim(self):
        assert reduced_nbytes(1024, 2, 3) == 128
        assert reduced_nbytes(1024, 2, 2) == 256
        assert reduced_nbytes(1024, 1, 3) == 1024

    def test_memory_cost_is_two_reduced_buffers(self):
        # Reduced copy + analysis working buffer; the raw data is already
        # resident simulation state.
        assert downsample_memory_cost(1000, 2, 3) == pytest.approx(250.0)
        assert downsample_memory_cost(1000, 1, 3) == pytest.approx(2000.0)

    def test_memory_cost_monotone_decreasing_in_factor(self):
        costs = [downsample_memory_cost(1e6, x, 3) for x in (1, 2, 4, 8, 16)]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_invalid_args(self):
        with pytest.raises(PolicyError):
            reduced_nbytes(100, 0, 3)
        with pytest.raises(PolicyError):
            reduced_nbytes(100, 2, 0)
