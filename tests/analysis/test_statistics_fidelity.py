"""Tests for descriptive statistics and fidelity metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.fidelity import isosurface_fidelity, reconstruction_error
from repro.analysis.statistics import descriptive_statistics, merge_statistics
from repro.errors import PolicyError


class TestDescriptiveStatistics:
    def test_basic_moments(self):
        stats = descriptive_statistics(np.array([1.0, 2.0, 3.0, 4.0]))
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.variance == pytest.approx(1.25)
        assert stats.minimum == 1.0 and stats.maximum == 4.0

    def test_histogram_sums_to_count(self):
        field = np.random.default_rng(0).normal(size=1000)
        stats = descriptive_statistics(field, bins=32)
        assert stats.histogram.sum() == 1000

    def test_nan_excluded(self):
        stats = descriptive_statistics(np.array([1.0, np.nan, 3.0]))
        assert stats.count == 2
        assert stats.mean == pytest.approx(2.0)

    def test_empty_field(self):
        stats = descriptive_statistics(np.array([np.nan]))
        assert stats.count == 0
        assert stats.std == 0.0

    def test_bad_bins(self):
        with pytest.raises(PolicyError):
            descriptive_statistics(np.zeros(4), bins=0)

    def test_merge_equals_whole(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=500)
        vr = (float(data.min()), float(data.max()))
        whole = descriptive_statistics(data, bins=16, value_range=vr)
        left = descriptive_statistics(data[:200], bins=16, value_range=vr)
        right = descriptive_statistics(data[200:], bins=16, value_range=vr)
        merged = merge_statistics(left, right)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.variance == pytest.approx(whole.variance)
        np.testing.assert_array_equal(merged.histogram, whole.histogram)

    def test_merge_with_empty(self):
        stats = descriptive_statistics(np.arange(4.0))
        empty = descriptive_statistics(np.array([np.nan]))
        assert merge_statistics(stats, empty) is stats
        assert merge_statistics(empty, stats) is stats

    def test_merge_mismatched_edges_rejected(self):
        a = descriptive_statistics(np.arange(4.0), value_range=(0, 4))
        b = descriptive_statistics(np.arange(4.0), value_range=(0, 8))
        with pytest.raises(PolicyError):
            merge_statistics(a, b)

    @settings(deadline=None, max_examples=30)
    @given(
        hnp.arrays(np.float64, st.integers(2, 100), elements=st.floats(-50, 50)),
        st.integers(1, 99),
    )
    def test_merge_associativity_with_split_point(self, data, frac):
        split = max(1, min(len(data) - 1, int(len(data) * frac / 100)))
        vr = (float(data.min()), float(data.max()) + 1e-9)
        whole = descriptive_statistics(data, value_range=vr)
        merged = merge_statistics(
            descriptive_statistics(data[:split], value_range=vr),
            descriptive_statistics(data[split:], value_range=vr),
        )
        assert merged.mean == pytest.approx(whole.mean, abs=1e-9)
        assert merged.m2 == pytest.approx(whole.m2, abs=1e-6)


class TestReconstructionError:
    def test_constant_field_lossless(self):
        assert reconstruction_error(np.full((8, 8), 2.5), 4) == 0.0

    def test_factor_one_lossless(self):
        field = np.random.default_rng(0).normal(size=(8, 8))
        assert reconstruction_error(field, 1) == 0.0

    def test_error_grows_with_factor(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 4 * np.pi, 64)
        field = np.sin(np.add.outer(x, x)) + 0.1 * rng.normal(size=(64, 64))
        errs = [reconstruction_error(field, f) for f in (1, 2, 4, 8)]
        assert all(a <= b + 1e-12 for a, b in zip(errs, errs[1:]))

    def test_low_entropy_block_lower_error(self):
        # The paper's claim: smooth/low-information regions lose little.
        rng = np.random.default_rng(0)
        smooth = np.ones((32, 32)) + 1e-3 * np.linspace(0, 1, 32)[:, None]
        noisy = rng.uniform(0, 1, (32, 32))
        assert reconstruction_error(smooth, 4) < reconstruction_error(noisy, 4)

    def test_nan_rejected(self):
        field = np.ones((4, 4))
        field[0, 0] = np.nan
        with pytest.raises(PolicyError):
            reconstruction_error(field, 2)


class TestIsosurfaceFidelity:
    def _sphere(self, n=32, radius=0.3):
        ax = (np.arange(n) + 0.5) / n - 0.5
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        return radius - np.sqrt(x * x + y * y + z * z)

    def test_factor_one_identical(self):
        field = self._sphere()
        fid = isosurface_fidelity(field, 0.0, 1)
        assert fid.area_ratio == pytest.approx(1.0)
        assert fid.triangle_ratio == pytest.approx(1.0)

    def test_smooth_sphere_area_preserved_under_reduction(self):
        field = self._sphere(n=48)
        fid = isosurface_fidelity(field, 0.0, 2, spacing=(1 / 48,) * 3)
        assert fid.area_ratio == pytest.approx(1.0, abs=0.1)
        assert fid.reduced_triangles < fid.full_triangles

    def test_reduction_below_isosurface_scale_destroys_structure(self):
        # A tiny sphere vanishes when sampled at a factor beyond its size.
        field = self._sphere(n=32, radius=0.06)
        fid = isosurface_fidelity(field, 0.0, 8, spacing=(1 / 32,) * 3)
        assert fid.reduced_triangles < fid.full_triangles * 0.5

    def test_bad_factor(self):
        with pytest.raises(PolicyError):
            isosurface_fidelity(self._sphere(8), 0.0, 0)
