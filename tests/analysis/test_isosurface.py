"""Tests for isosurface extraction (3-D) and contouring (2-D)."""

import numpy as np
import pytest

from repro.analysis.isosurface import extract_isosurface, surface_area, surface_stats
from repro.analysis.marching_squares import contour_length, contour_stats, extract_contours
from repro.errors import PolicyError


def sphere_field(n=32, radius=0.3):
    """Signed distance-like field: f = radius - r, isosurface f=0 is a sphere."""
    ax = (np.arange(n) + 0.5) / n - 0.5
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    return radius - np.sqrt(x * x + y * y + z * z), 1.0 / n


class TestIsosurface3D:
    def test_empty_when_no_crossing(self):
        field = np.zeros((4, 4, 4))
        verts, tris = extract_isosurface(field, 1.0)
        assert len(verts) == 0 and len(tris) == 0

    def test_sphere_is_closed_genus_zero(self):
        field, dx = sphere_field(24)
        verts, tris = extract_isosurface(field, 0.0, spacing=(dx, dx, dx))
        stats = surface_stats(verts, tris)
        assert stats.closed
        assert stats.euler_characteristic == 2
        assert stats.n_triangles > 100

    def test_sphere_area_converges(self):
        radius = 0.3
        field, dx = sphere_field(48, radius=radius)
        verts, tris = extract_isosurface(field, 0.0, spacing=(dx, dx, dx))
        area = surface_area(verts, tris)
        exact = 4 * np.pi * radius**2
        assert area == pytest.approx(exact, rel=0.05)

    def test_two_spheres_euler_four(self):
        n = 32
        ax = (np.arange(n) + 0.5) / n
        x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
        r1 = 0.12 - np.sqrt((x - 0.3) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2)
        r2 = 0.12 - np.sqrt((x - 0.7) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2)
        field = np.maximum(r1, r2)
        verts, tris = extract_isosurface(field, 0.0)
        stats = surface_stats(verts, tris)
        assert stats.closed
        assert stats.euler_characteristic == 4  # two spheres

    def test_vertices_lie_on_isovalue_by_interpolation(self):
        # Linear field: interpolated vertices must lie exactly on the plane.
        n = 8
        ax = np.arange(n, dtype=float)
        x, _y, _z = np.meshgrid(ax, ax, ax, indexing="ij")
        verts, tris = extract_isosurface(x, 3.25)
        assert len(tris) > 0
        np.testing.assert_allclose(verts[:, 0], 3.25, atol=1e-12)

    def test_plane_area_matches_cross_section(self):
        n = 9
        ax = np.arange(n, dtype=float)
        x, _y, _z = np.meshgrid(ax, ax, ax, indexing="ij")
        verts, tris = extract_isosurface(x, 4.5)
        # The plane spans the full (n-1)x(n-1) cross-section.
        assert surface_area(verts, tris) == pytest.approx((n - 1) ** 2, rel=1e-9)

    def test_orientation_normals_point_outward(self):
        n = 16
        field, dx = sphere_field(n)
        verts, tris = extract_isosurface(field, 0.0, spacing=(dx, dx, dx))
        # With origin 0 and spacing dx, grid index i sits at i*dx, so the
        # sphere centre (index n/2 - 0.5) is at 0.5 - 0.5/n per axis.
        center = np.full(3, 0.5 - 0.5 / n)
        p0, p1, p2 = verts[tris[:, 0]], verts[tris[:, 1]], verts[tris[:, 2]]
        normals = np.cross(p1 - p0, p2 - p0)
        centroids = (p0 + p1 + p2) / 3
        outward = (normals * (centroids - center)).sum(axis=1)
        assert (outward > 0).all()

    def test_nan_cells_skipped(self):
        field, dx = sphere_field(16)
        field[:4, :, :] = np.nan
        verts, tris = extract_isosurface(field, 0.0)
        assert np.isfinite(verts).all()

    def test_spacing_and_origin_applied(self):
        n = 8
        ax = np.arange(n, dtype=float)
        x, _y, _z = np.meshgrid(ax, ax, ax, indexing="ij")
        verts, _ = extract_isosurface(x, 3.5, spacing=(2.0, 1.0, 1.0),
                                      origin=(10.0, 0.0, 0.0))
        np.testing.assert_allclose(verts[:, 0], 10.0 + 3.5 * 2.0, atol=1e-12)

    def test_bad_inputs(self):
        with pytest.raises(PolicyError):
            extract_isosurface(np.zeros((4, 4)), 0.0)
        with pytest.raises(PolicyError):
            extract_isosurface(np.zeros((1, 4, 4)), 0.0)

    def test_triangle_count_scales_with_resolution(self):
        f1, _ = sphere_field(16)
        f2, _ = sphere_field(32)
        _, t1 = extract_isosurface(f1, 0.0)
        _, t2 = extract_isosurface(f2, 0.0)
        assert len(t2) > 2.5 * len(t1)  # ~4x for 2x resolution


class TestContours2D:
    def test_circle_closed_and_length(self):
        n = 64
        ax = (np.arange(n) + 0.5) / n - 0.5
        x, y = np.meshgrid(ax, ax, indexing="ij")
        radius = 0.3
        field = radius - np.hypot(x, y)
        verts, segs = extract_contours(field, 0.0, spacing=(1 / n, 1 / n))
        stats = contour_stats(verts, segs)
        assert stats["closed"]
        assert stats["length"] == pytest.approx(2 * np.pi * radius, rel=0.02)

    def test_no_crossing_empty(self):
        verts, segs = extract_contours(np.zeros((4, 4)), 5.0)
        assert len(segs) == 0
        assert contour_length(verts, segs) == 0.0

    def test_line_contour_straight(self):
        n = 10
        ax = np.arange(n, dtype=float)
        x, _y = np.meshgrid(ax, ax, indexing="ij")
        verts, segs = extract_contours(x, 4.5)
        np.testing.assert_allclose(verts[:, 0], 4.5)
        assert contour_length(verts, segs) == pytest.approx(n - 1)

    def test_bad_inputs(self):
        with pytest.raises(PolicyError):
            extract_contours(np.zeros((4, 4, 4)), 0.0)
        with pytest.raises(PolicyError):
            extract_contours(np.zeros((1, 4)), 0.0)
