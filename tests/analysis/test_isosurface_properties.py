"""Property-based tests for the isosurface extractor's mesh invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.isosurface import extract_isosurface, surface_stats


def smooth_field(seed: int, n: int) -> np.ndarray:
    """A random band-limited field: a few random Fourier modes."""
    rng = np.random.default_rng(seed)
    ax = np.linspace(0, 2 * np.pi, n)
    x, y, z = np.meshgrid(ax, ax, ax, indexing="ij")
    field = np.zeros((n, n, n))
    for _ in range(4):
        kx, ky, kz = rng.integers(1, 3, size=3)
        phase = rng.uniform(0, 2 * np.pi, size=3)
        field += rng.normal() * (
            np.sin(kx * x + phase[0])
            * np.sin(ky * y + phase[1])
            * np.sin(kz * z + phase[2])
        )
    return field


class TestMeshInvariants:
    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 10_000), st.integers(8, 16), st.floats(-0.5, 0.5))
    def test_edge_manifoldness(self, seed, n, isovalue):
        """Every mesh edge belongs to at most two triangles (no fins)."""
        field = smooth_field(seed, n)
        verts, tris = extract_isosurface(field, isovalue)
        if len(tris) == 0:
            return
        edges = np.concatenate([tris[:, [0, 1]], tris[:, [1, 2]], tris[:, [2, 0]]])
        edges = np.sort(edges, axis=1)
        _uniq, counts = np.unique(edges, axis=0, return_counts=True)
        assert counts.max() <= 2

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 10_000), st.integers(8, 14))
    def test_vertices_inside_grid(self, seed, n):
        field = smooth_field(seed, n)
        verts, tris = extract_isosurface(field, 0.0)
        if len(verts) == 0:
            return
        assert verts.min() >= -1e-9
        assert verts.max() <= n - 1 + 1e-9

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 10_000), st.integers(8, 14), st.floats(-0.4, 0.4))
    def test_triangles_reference_valid_vertices(self, seed, n, isovalue):
        field = smooth_field(seed, n)
        verts, tris = extract_isosurface(field, isovalue)
        if len(tris) == 0:
            return
        assert tris.min() >= 0
        assert tris.max() < len(verts)
        # No degenerate triangles survive.
        assert (tris[:, 0] != tris[:, 1]).all()
        assert (tris[:, 1] != tris[:, 2]).all()
        assert (tris[:, 0] != tris[:, 2]).all()

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 10_000))
    def test_euler_characteristic_is_even_for_closed_meshes(self, seed):
        """Closed orientable surfaces have chi = 2 - 2g (always even)."""
        field = smooth_field(seed, 12)
        verts, tris = extract_isosurface(field, 0.0)
        stats = surface_stats(verts, tris)
        if stats.closed and stats.n_triangles:
            assert stats.euler_characteristic % 2 == 0

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 10_000), st.floats(-0.3, 0.3))
    def test_isovalue_shift_changes_surface_continuously(self, seed, isovalue):
        """Nearby isovalues give comparable triangle counts (no blowups)."""
        field = smooth_field(seed, 10)
        _, t1 = extract_isosurface(field, isovalue)
        _, t2 = extract_isosurface(field, isovalue + 1e-9)
        if len(t1) > 50:
            assert abs(len(t1) - len(t2)) <= 0.2 * len(t1)
