"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fig4_runs_end_to_end(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "PASS" in out

    def test_registry_complete(self):
        # Every evaluated figure/table of the paper has a CLI entry.
        expected = {"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                    "fig10", "fig11", "table2", "ablations", "objectives"}
        assert expected == set(EXPERIMENTS)

    def test_descriptions_nonempty(self):
        for name, (description, fn) in EXPERIMENTS.items():
            assert description
            assert callable(fn)
