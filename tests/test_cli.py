"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fig4_runs_end_to_end(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "PASS" in out

    def test_registry_complete(self):
        # Every evaluated figure/table of the paper has a CLI entry.
        expected = {"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                    "fig10", "fig11", "table2", "ablations", "objectives",
                    "fig_triggers", "fig_tenants"}
        assert expected == set(EXPERIMENTS)

    def test_descriptions_nonempty(self):
        for name, (description, fn) in EXPERIMENTS.items():
            assert description
            assert callable(fn)


class TestRunAllCLI:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        from repro.experiments.cache import reset_default_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        reset_default_cache()
        yield
        reset_default_cache()

    def test_run_all_only_fig4(self, capsys):
        assert main(["run-all", "--only", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "### fig4" in out
        assert "jobs=1" in out
        assert "Cache metrics" in out

    def test_run_all_with_workers(self, capsys):
        assert main(["run-all", "--jobs", "2", "--only", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "### fig4" in out
        assert "jobs=2" in out

    def test_run_all_unknown_experiment_fails(self, capsys):
        assert main(["run-all", "--only", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_run_all_listed_as_subcommand(self, capsys):
        from repro.__main__ import SUBCOMMANDS

        assert "run-all" in SUBCOMMANDS
        assert main(["list"]) == 0
        assert "run-all" in capsys.readouterr().out


class TestTenantsCLI:
    def test_listed_as_subcommand(self, capsys):
        from repro.__main__ import SUBCOMMANDS

        assert "tenants" in SUBCOMMANDS
        assert main(["list"]) == 0
        assert "tenants" in capsys.readouterr().out

    def test_list_policies(self, capsys):
        from repro.service import ADMISSION_POLICIES

        assert main(["tenants", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ADMISSION_POLICIES:
            assert name in out

    def test_smoke_runs_and_passes(self, capsys):
        assert main(["tenants", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "tenant smoke: OK" in out
        assert "Multi-tenant contention" in out

    def test_single_point(self, capsys):
        assert main(
            ["tenants", "--policy", "smallest", "--tenants", "2",
             "--steps", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "smallest" in out

    def test_unknown_policy_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["tenants", "--policy", "bogus"])
        assert "unknown admission policy" in capsys.readouterr().err
