"""Smoke tests: the shipped examples must run end to end.

Each example is executed in-process (``runpy``) so regressions in the
public API surface break the suite, not just the README.  Only the
quicker examples run here; the scale-heavy ones are exercised through
the benchmarks.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "adaptive_middleware" in out
        assert "static_insitu" in out

    def test_checkpoint_restart(self, capsys):
        out = run_example("checkpoint_restart.py", capsys)
        assert "bit-exact restart: YES" in out

    def test_subset_query(self, capsys):
        out = run_example("subset_query.py", capsys)
        assert "shock front" in out
        assert "in-situ index" in out

    def test_trigger_policies(self, capsys):
        out = run_example("trigger_policies.py", capsys)
        assert "entropy-percentile" in out
        assert "82 probes" in out
        assert "sampling cost halved at equal quality: YES" in out

    def test_profiling(self, capsys):
        out = run_example("profiling.py", capsys)
        assert "attributed to spans" in out
        assert "workflow.run" in out
        assert "merged one worker profile" in out
        assert "every span registered and within budget: YES" in out

    def test_kernel_scaling(self, capsys):
        out = run_example("kernel_scaling.py", capsys)
        assert "Kernel weak-scaling sweep" in out
        assert "65,536" in out
        assert "events/s" in out
        assert "events/sec attribution intact at every scale: YES" in out

    def test_all_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 7
        for script in scripts:
            text = script.read_text()
            assert text.startswith("#!/usr/bin/env python"), script.name
            assert '"""' in text.split("\n", 2)[1], script.name
