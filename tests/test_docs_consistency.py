"""Docs-consistency check: the documentation cannot silently rot.

Asserts that everything the observability layer, the fault subsystem and
the CLI expose is actually documented: every public symbol in
``repro.observability.__all__`` and ``repro.faults.__all__``, every
registered event kind, metric name, fault kind and fault scenario, and
every CLI subcommand must appear in the docs.  A new event kind or
public symbol without a matching docs edit fails CI here — as does a
broken intra-repo markdown link (the CI docs job runs this module).
"""

import re
from pathlib import Path

import pytest

import repro.faults as faults
import repro.observability as observability

# Importing the service package registers the `tenant` kernel event
# kind, so the kernel-taxonomy checks below see the full registry.
import repro.service as service
from repro.__main__ import EXPERIMENTS, SUBCOMMANDS
from repro.faults import FAULT_KINDS, SCENARIOS
from repro.observability import (
    BENCH_SCHEMA,
    BUDGETS_SCHEMA,
    EVENT_KINDS,
    METRIC_NAMES,
    PROFILE_SPANS,
    QUANTITIES,
    SNAPSHOT_SCHEMA,
    load_budgets,
)
from repro.workflow.triggers import TRIGGER_POLICIES

REPO = Path(__file__).resolve().parent.parent
OBSERVABILITY_DOC = REPO / "docs" / "observability.md"
PERFORMANCE_DOC = REPO / "docs" / "performance.md"
FAULTS_DOC = REPO / "docs" / "faults.md"
TRIGGERS_DOC = REPO / "docs" / "triggers.md"
PROFILING_DOC = REPO / "docs" / "profiling.md"
SERVICE_DOC = REPO / "docs" / "service.md"


@pytest.fixture(scope="module")
def observability_doc() -> str:
    assert OBSERVABILITY_DOC.exists(), "docs/observability.md is missing"
    return OBSERVABILITY_DOC.read_text()


@pytest.fixture(scope="module")
def all_docs() -> str:
    texts = [(REPO / "README.md").read_text()]
    texts += [p.read_text() for p in sorted((REPO / "docs").glob("*.md"))]
    return "\n".join(texts)


class TestObservabilityDocs:
    def test_every_public_symbol_documented(self, observability_doc):
        missing = [name for name in observability.__all__
                   if name not in observability_doc]
        assert not missing, f"undocumented observability symbols: {missing}"

    def test_every_event_kind_documented(self, observability_doc):
        missing = [kind for kind in EVENT_KINDS
                   if f"`{kind}`" not in observability_doc]
        assert not missing, f"undocumented event kinds: {missing}"

    def test_every_metric_name_documented(self, observability_doc):
        missing = [name for name in METRIC_NAMES
                   if f"`{name}`" not in observability_doc]
        assert not missing, f"undocumented metric names: {missing}"

    def test_every_quantity_documented(self, observability_doc):
        missing = [name for name in QUANTITIES
                   if f"`{name}`" not in observability_doc]
        assert not missing, f"undocumented ledger quantities: {missing}"

    def test_snapshot_schema_documented(self, observability_doc):
        assert SNAPSHOT_SCHEMA in observability_doc, (
            f"snapshot schema string {SNAPSHOT_SCHEMA!r} must appear in "
            "docs/observability.md"
        )


class TestCliDocs:
    def test_every_subcommand_documented(self, all_docs):
        missing = [name for name in SUBCOMMANDS
                   if f"repro {name}" not in all_docs]
        assert not missing, f"undocumented CLI subcommands: {missing}"

    def test_every_experiment_listed_in_docs(self, all_docs):
        missing = [name for name in EXPERIMENTS if name not in all_docs]
        assert not missing, f"undocumented experiments: {missing}"


class TestPerformanceDocs:
    @pytest.fixture(scope="class")
    def performance_doc(self) -> str:
        assert PERFORMANCE_DOC.exists(), "docs/performance.md is missing"
        return PERFORMANCE_DOC.read_text()

    def test_cache_env_vars_documented(self, performance_doc):
        for var in ("REPRO_CACHE_DIR", "REPRO_NO_CACHE"):
            assert var in performance_doc, f"{var} missing from docs/performance.md"

    def test_cache_public_api_documented(self, performance_doc):
        import repro.experiments.cache as cache

        api_doc = (REPO / "docs" / "api.md").read_text()
        missing = [name for name in cache.__all__
                   if name not in api_doc and name not in performance_doc]
        assert not missing, f"cache symbols missing from docs: {missing}"

    def test_bench_diff_usage_shown(self, performance_doc):
        assert "repro bench-diff" in performance_doc
        assert "BENCH_" in performance_doc

    def test_no_cache_semantics_documented(self, performance_doc):
        # The strict REPRO_NO_CACHE parse must be documented: the
        # disabling words and the fact that unrecognized values warn.
        for token in ("true", "yes", "false", "no"):
            assert token in performance_doc, (
                f"REPRO_NO_CACHE value {token!r} missing from "
                "docs/performance.md"
            )
        assert "warns once" in performance_doc

    def test_run_all_sweep_documented(self, performance_doc):
        assert "repro run-all" in performance_doc
        assert "--jobs" in performance_doc
        assert "--only" in performance_doc
        assert "REPRO_BENCH_JOBS" in performance_doc
        assert "parallel-smoke" in performance_doc

    def test_cache_locking_documented(self, performance_doc):
        assert "experiments.cache_lock_waits" in performance_doc
        assert "experiments.cache_store_failures" in performance_doc
        assert "os.replace" in performance_doc
        assert "set_code_salt" in performance_doc

    def test_parallel_public_api_documented(self):
        import repro.experiments.parallel as parallel

        api_doc = (REPO / "docs" / "api.md").read_text()
        performance_doc = PERFORMANCE_DOC.read_text()
        missing = [name for name in parallel.__all__
                   if name not in api_doc and name not in performance_doc]
        assert not missing, f"parallel symbols missing from docs: {missing}"

    def test_linked_from_architecture(self):
        text = (REPO / "docs" / "architecture.md").read_text()
        assert "performance.md" in text
        assert "repro.experiments.cache" in text


class TestFaultDocs:
    @pytest.fixture(scope="class")
    def faults_doc(self) -> str:
        assert FAULTS_DOC.exists(), "docs/faults.md is missing"
        return FAULTS_DOC.read_text()

    def test_every_fault_kind_documented(self, faults_doc):
        missing = [kind for kind in FAULT_KINDS
                   if f"`{kind}`" not in faults_doc]
        assert not missing, f"undocumented fault kinds: {missing}"

    def test_every_public_symbol_documented(self, faults_doc):
        missing = [name for name in faults.__all__ if name not in faults_doc]
        assert not missing, f"undocumented fault symbols: {missing}"

    def test_every_scenario_documented(self, faults_doc):
        missing = [name for name in SCENARIOS
                   if f"`{name}`" not in faults_doc]
        assert not missing, f"undocumented fault scenarios: {missing}"

    def test_fault_event_kinds_and_metrics_documented(self, observability_doc):
        for name in ("fault.injected", "fault.cleared", "staging.retry",
                     "staging.job_abort", "placement.fallback",
                     "faults.injected", "staging.retries",
                     "placement.fallbacks"):
            assert f"`{name}`" in observability_doc, (
                f"{name} missing from docs/observability.md"
            )

    def test_linked_from_readme_and_architecture(self):
        assert "faults.md" in (REPO / "README.md").read_text()
        assert "faults.md" in (REPO / "docs" / "architecture.md").read_text()

    def test_cache_interaction_documented(self):
        text = PERFORMANCE_DOC.read_text()
        assert "cache_token" in text
        assert "FaultPlan" in text


class TestProfilingDocs:
    @pytest.fixture(scope="class")
    def profiling_doc(self) -> str:
        assert PROFILING_DOC.exists(), "docs/profiling.md is missing"
        return PROFILING_DOC.read_text()

    def test_every_registered_span_documented(self, profiling_doc):
        missing = [name for name in PROFILE_SPANS
                   if f"`{name}`" not in profiling_doc]
        assert not missing, f"undocumented profile spans: {missing}"

    def test_every_registered_span_has_description(self):
        empty = [name for name, description in PROFILE_SPANS.items()
                 if not description.strip()]
        assert not empty, f"profile spans without a description: {empty}"

    def test_budget_manifest_guards_only_registered_spans(self):
        manifest = load_budgets(REPO / "benchmarks" / "budgets.json")
        # load_budgets already validates the segments; pin the workload
        # to the canonical quickstart the docs and CLI describe.
        assert manifest["workload"] == {"mode": "global", "steps": 20,
                                       "seed": 42}

    def test_schemas_documented(self, profiling_doc):
        assert BUDGETS_SCHEMA in profiling_doc, (
            f"budget schema string {BUDGETS_SCHEMA!r} must appear in "
            "docs/profiling.md"
        )
        assert BENCH_SCHEMA in profiling_doc, (
            f"bench schema string {BENCH_SCHEMA!r} must appear in "
            "docs/profiling.md"
        )

    def test_profile_cli_and_bench_enforcement_documented(
            self, profiling_doc):
        assert "repro profile" in profiling_doc
        assert "--budgets" in profiling_doc
        assert "bench_profile.py" in profiling_doc
        assert "budgets.json" in profiling_doc

    def test_linked_from_readme_and_architecture(self):
        assert "profiling.md" in (REPO / "README.md").read_text()
        assert "profiling.md" in (REPO / "docs" / "architecture.md").read_text()


class TestTriggerDocs:
    @pytest.fixture(scope="class")
    def triggers_doc(self) -> str:
        assert TRIGGERS_DOC.exists(), "docs/triggers.md is missing"
        return TRIGGERS_DOC.read_text()

    def test_every_policy_documented(self, triggers_doc):
        missing = [name for name in TRIGGER_POLICIES
                   if f"`{name}`" not in triggers_doc]
        assert not missing, f"undocumented trigger policies: {missing}"

    def test_every_registered_policy_has_description(self):
        empty = [name for name, (description, _factory)
                 in TRIGGER_POLICIES.items() if not description.strip()]
        assert not empty, f"trigger policies without a description: {empty}"

    def test_every_public_symbol_documented(self, triggers_doc):
        public = [
            "TriggerPolicy", "TriggerIndicators", "TriggerDecision",
            "CalibrationFeedback", "FixedInterval", "EntropyPercentile",
            "Imbalance", "StagingPressure", "TRIGGER_POLICIES",
            "build_trigger", "percentile_sample_size",
        ]
        import repro.workflow as workflow

        unexported = [name for name in public
                      if name not in workflow.__all__]
        assert not unexported, f"trigger symbols not exported: {unexported}"
        missing = [name for name in public if name not in triggers_doc]
        assert not missing, f"undocumented trigger symbols: {missing}"

    def test_trigger_event_kinds_and_metrics_documented(
            self, observability_doc):
        for name in ("trigger.fired", "trigger.suppressed",
                     "trigger.recalibrated", "monitor.trigger_fires",
                     "monitor.samples_taken",
                     "monitor.sampling_budget_used"):
            assert f"`{name}`" in observability_doc, (
                f"{name} missing from docs/observability.md"
            )

    def test_sampling_budget_math_documented(self, triggers_doc):
        # The bounded-budget worked example: both canonical sample sizes
        # and the Hoeffding formula itself must appear.
        assert "percentile_sample_size" in triggers_doc
        assert "185" in triggers_doc
        assert "82" in triggers_doc
        assert "ln(2/δ)" in triggers_doc

    def test_linked_from_readme_and_architecture(self):
        assert "triggers.md" in (REPO / "README.md").read_text()
        assert "triggers.md" in (REPO / "docs" / "architecture.md").read_text()

    def test_sweep_cli_documented(self, triggers_doc):
        assert "repro triggers" in triggers_doc
        assert "fig_triggers" in triggers_doc


def _markdown_links(text: str):
    """Every ``[label](target)`` in ``text``, skipping fenced code blocks."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        out.extend(re.findall(r"\[[^\]]*\]\(([^)\s]+)\)", line))
    return out


class TestDocLinks:
    """No intra-repo markdown link may dangle (the CI docs job's teeth)."""

    def _doc_files(self):
        return sorted((REPO).glob("*.md")) + sorted((REPO / "docs").glob("*.md"))

    def test_relative_links_resolve(self):
        broken = []
        for doc in self._doc_files():
            for target in _markdown_links(doc.read_text()):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    broken.append(f"{doc.relative_to(REPO)} -> {target}")
        assert not broken, f"broken intra-repo markdown links: {broken}"

    def test_anchored_doc_links_point_at_real_headings(self):
        """For ``page.md#anchor`` links, the anchor must match a heading
        slug in the target page (GitHub's slug rules, simplified)."""

        def slugify(heading: str) -> str:
            slug = re.sub(r"[`*]", "", heading.strip().lower())
            slug = re.sub(r"[^\w\- ]", "", slug)
            return slug.replace(" ", "-")

        broken = []
        for doc in self._doc_files():
            for target in _markdown_links(doc.read_text()):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if "#" not in target:
                    continue
                path, anchor = target.split("#", 1)
                dest = doc if not path else (doc.parent / path).resolve()
                if not dest.exists() or dest.suffix != ".md":
                    continue
                headings = [
                    slugify(line.lstrip("#"))
                    for line in dest.read_text().splitlines()
                    if line.startswith("#")
                ]
                if slugify(anchor) not in headings:
                    broken.append(f"{doc.relative_to(REPO)} -> {target}")
        assert not broken, f"dangling markdown anchors: {broken}"


class TestKernelDocs:
    @pytest.fixture(scope="class")
    def kernel_doc(self) -> str:
        path = REPO / "docs" / "kernel.md"
        assert path.exists(), "docs/kernel.md is missing"
        return path.read_text()

    def test_every_event_kind_documented(self, kernel_doc):
        from repro.hpc.kernel import KERNEL_EVENT_KINDS

        missing = [name for name in KERNEL_EVENT_KINDS
                   if f"`{name}`" not in kernel_doc]
        assert not missing, f"undocumented kernel event kinds: {missing}"

    def test_every_event_kind_has_description(self):
        from repro.hpc.kernel import KERNEL_EVENT_KINDS

        empty = [name for name, description in KERNEL_EVENT_KINDS.items()
                 if not description.strip()]
        assert not empty, f"kernel event kinds without a description: {empty}"

    def test_batched_kinds_marked_in_taxonomy_table(self, kernel_doc):
        # The taxonomy table's "batched" column must agree with the
        # registry: each kind's row says yes exactly when it was
        # registered batched=True.
        from repro.hpc.kernel import KERNEL_EVENT_KINDS, batched_event_kinds

        batched = set(batched_event_kinds())
        rows = {}
        for line in kernel_doc.splitlines():
            match = re.match(r"\| `(\w+)` \| \d+ \| (yes|no) \|", line)
            if match:
                rows[match.group(1)] = match.group(2) == "yes"
        for name in KERNEL_EVENT_KINDS:
            assert name in rows, f"kind {name!r} missing a taxonomy row"
            assert rows[name] == (name in batched), (
                f"taxonomy row for {name!r} disagrees with the registry "
                f"on batching"
            )

    def test_kind_codes_match_registry(self, kernel_doc):
        from repro.hpc.kernel import KERNEL_EVENT_KINDS, event_kind_code

        for name in KERNEL_EVENT_KINDS:
            code = event_kind_code(name)
            assert f"| `{name}` | {code} |" in kernel_doc, (
                f"taxonomy row for {name!r} does not show code {code}"
            )

    def test_kernel_span_documented(self, kernel_doc, observability_doc):
        # The engine layer's only span must be registered and appear in
        # both kernel.md and the span table in profiling.md.
        assert "kernel.dispatch" in PROFILE_SPANS
        assert "`kernel.dispatch`" in kernel_doc
        assert "`kernel.dispatch`" in PROFILING_DOC.read_text()

    def test_kernel_metric_documented(self, kernel_doc, observability_doc):
        assert "kernel.events_processed" in METRIC_NAMES
        assert "`kernel.events_processed`" in kernel_doc
        assert "`kernel.events_processed`" in observability_doc

    def test_public_kernel_symbols_documented(self, kernel_doc):
        for symbol in ("EventKernel", "EventHeap", "ReferenceEventHeap",
                       "KernelCounters", "KERNEL_EVENT_KINDS",
                       "register_event_kind"):
            assert symbol in kernel_doc, (
                f"kernel symbol {symbol} missing from docs/kernel.md"
            )

    def test_linked_from_readme_and_architecture(self):
        assert "kernel.md" in (REPO / "README.md").read_text()
        assert "kernel.md" in (REPO / "docs" / "architecture.md").read_text()


class TestServiceDocs:
    @pytest.fixture(scope="class")
    def service_doc(self) -> str:
        assert SERVICE_DOC.exists(), "docs/service.md is missing"
        return SERVICE_DOC.read_text()

    def test_every_public_symbol_documented(self, service_doc):
        missing = [name for name in service.__all__
                   if name not in service_doc]
        assert not missing, f"undocumented service symbols: {missing}"

    def test_every_admission_policy_documented(self, service_doc):
        from repro.service import ADMISSION_POLICIES

        missing = [name for name in ADMISSION_POLICIES
                   if f"`{name}`" not in service_doc]
        assert not missing, f"undocumented admission policies: {missing}"

    def test_every_admission_policy_has_description(self):
        from repro.service import ADMISSION_POLICIES

        empty = [name for name, description in ADMISSION_POLICIES.items()
                 if not description.strip()]
        assert not empty, f"admission policies without a description: {empty}"

    def test_tenant_event_kinds_and_metrics_documented(
            self, observability_doc):
        for name in ("tenant.submitted", "tenant.queued", "tenant.admitted",
                     "tenant.rejected", "tenant.grant", "tenant.starved",
                     "tenant.completed", "service.tenants_admitted",
                     "service.queue_wait_seconds",
                     "service.staging_committed_cores",
                     "service.grant_expansions", "service.starvations"):
            assert f"`{name}`" in observability_doc, (
                f"{name} missing from docs/observability.md"
            )

    def test_tenant_kernel_kind_documented(self):
        # Importing repro.service (top of this module) registers the
        # kind; the taxonomy checks in TestKernelDocs then cover the
        # row itself.
        from repro.hpc.kernel import KERNEL_EVENT_KINDS

        assert "tenant" in KERNEL_EVENT_KINDS
        assert "`tenant`" in (REPO / "docs" / "kernel.md").read_text()

    def test_sweep_cli_documented(self, service_doc):
        assert "repro tenants" in service_doc
        assert "fig_tenants" in service_doc
        assert "--smoke" in service_doc

    def test_linked_from_readme_and_architecture(self):
        assert "service.md" in (REPO / "README.md").read_text()
        assert "service.md" in (REPO / "docs" / "architecture.md").read_text()


class TestApiDocs:
    def test_workflow_public_api_documented(self):
        import repro.workflow as workflow

        api_doc = (REPO / "docs" / "api.md").read_text()
        missing = [name for name in workflow.__all__ if name not in api_doc]
        assert not missing, f"workflow symbols missing from docs/api.md: {missing}"

    def test_architecture_diagram_names_observability(self):
        text = (REPO / "docs" / "architecture.md").read_text()
        assert "repro.observability" in text
